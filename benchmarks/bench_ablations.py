"""Ablations of the design choices DESIGN.md §5 calls out.

Each test toggles exactly one mechanism and measures its contribution:

1. binned vs first-fit receive-buffer allocation (§4.2),
2. combined vs per-message free replies (§4.2),
3. hybrid prefix size sweep (§4.2),
4. sliding-window size (72 = 2 chunks; §2.2),
5. lazy receive-FIFO popping (§2.1),
6. explicit-ack coalescing threshold (§2.2),
7. FT's staggered vs naive alltoall (§4.4).
"""

import pytest

from benchmarks.conftest import run_once
from repro.am import attach_spam
from repro.am.constants import AMCosts
from repro.bench.report import fmt_table
from repro.hardware import build_sp_machine
from repro.hardware.params import machine_params, with_overrides
from repro.mpi import OPTIMIZED, UNOPTIMIZED, attach_mpi
from repro.mpi.config import variant as cfg_variant
from repro.sim import Simulator


def _mpi_stream_time(cfg, n=256, count=200):
    """Time a one-way stream of small MPI messages under a config."""
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    attach_spam(m)
    mpis = attach_mpi(m, cfg)
    data = bytes(n)

    def sender(_):
        for i in range(count):
            yield from mpis[0].send(data, 1, tag=i)

    def receiver(_):
        for i in range(count):
            yield from mpis[1].recv(n, 0, tag=i)

    p = sim.spawn(sender(0))
    q = sim.spawn(receiver(0))
    sim.run_until_processes_done([p, q], limit=1e9, max_events=40_000_000)
    return sim.now / count


def _store_stream_time(machine_params_obj=None, lazy_pop=16, nbytes=224,
                       count=300, costs=None):
    """Time a one-way stream of AM stores under hardware/protocol knobs."""
    sim = Simulator()
    m = build_sp_machine(sim, 2, machine_params_obj,
                         lazy_pop_batch=lazy_pop)
    ams = attach_spam(m, costs)
    am0, am1 = ams
    src = m.node(0).memory.alloc(nbytes)
    dst = m.node(1).memory.alloc(nbytes)
    flag = [0]

    def sender():
        ops = []
        for _ in range(count):
            op = yield from am0.store_async(1, src, dst, nbytes)
            ops.append(op)
        for op in ops:
            yield from am0.wait_op(op)
        flag[0] = 1

    def receiver():
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender())
    sim.spawn(receiver())
    sim.run_until_processes_done([p], limit=1e9, max_events=60_000_000)
    return sim.now / count, am1


def test_ablation_allocator_and_frees(benchmark, record):
    """§4.2's two small-message optimizations, separated."""

    def run():
        base = UNOPTIMIZED
        t_base = _mpi_stream_time(base)
        t_binned = _mpi_stream_time(cfg_variant(base, binned_allocator=True))
        t_frees = _mpi_stream_time(cfg_variant(base, combined_frees=True))
        t_both = _mpi_stream_time(cfg_variant(base, binned_allocator=True,
                                              combined_frees=True))
        return t_base, t_binned, t_frees, t_both

    t_base, t_binned, t_frees, t_both = run_once(benchmark, run)
    record(
        fmt_table("Ablation: allocator + free batching (us/msg, 256 B)",
                  ["config", "us/msg"],
                  [("first-fit + per-msg frees", round(t_base, 2)),
                   ("binned allocator", round(t_binned, 2)),
                   ("combined frees", round(t_frees, 2)),
                   ("both (optimized)", round(t_both, 2))], width=26),
        base=t_base, both=t_both,
    )
    assert t_binned < t_base          # the first-fit walk was "a major cost"
    assert t_frees < t_base           # free replies were "another source"
    assert t_both < min(t_binned, t_frees) * 1.02


def test_ablation_hybrid_prefix_size(benchmark, record):
    """Sweep the hybrid prefix: 0 (pure rendez-vous) to 4 KB (paper)."""
    from repro.bench.figures import protocol_bandwidth
    from repro.bench.figures import PROTOCOL_CONFIGS

    def run():
        out = {}
        for prefix in (0, 1024, 2048, 4096):
            cfg = cfg_variant(OPTIMIZED, eager_max=0,
                              hybrid=prefix > 0, prefix_bytes=max(prefix, 1))
            sim = Simulator()
            m = build_sp_machine(sim, 2)
            attach_spam(m)
            mpis = attach_mpi(m, cfg)
            n, count = 12288, 24
            data = bytes(n)

            def sender(_):
                for i in range(count):
                    yield from mpis[0].send(data, 1, tag=i)

            def receiver(_):
                for i in range(count):
                    yield from mpis[1].recv(n, 0, tag=i)

            p = sim.spawn(sender(0))
            q = sim.spawn(receiver(0))
            sim.run_until_processes_done([p, q], limit=1e9)
            out[prefix] = count * n / sim.now
        return out

    bw = run_once(benchmark, run)
    record(
        fmt_table("Ablation: hybrid prefix size (12 KB messages)",
                  ["prefix bytes", "MB/s"],
                  [(k, round(v, 2)) for k, v in sorted(bw.items())]),
        **{f"prefix_{k}": v for k, v in bw.items()},
    )
    # any prefix beats pure rendez-vous; bigger prefixes help until the
    # pipeline is covered
    assert bw[1024] > bw[0]
    assert bw[4096] >= bw[1024]


def test_ablation_window_size(benchmark, record):
    """§2.2: the window must cover two chunks (72); smaller windows
    throttle the chunk pipeline."""
    import repro.am.constants as C
    import repro.am.endpoint as E
    import repro.am.window as W

    def run_with_window(req_window):
        # patch both windows coherently (replies keep their +4)
        orig_req, orig_rep = C.REQUEST_WINDOW, C.REPLY_WINDOW
        for mod in (C, E):
            mod.REQUEST_WINDOW = req_window
            mod.REPLY_WINDOW = req_window + 4
        try:
            t, _ = _store_stream_time(nbytes=8064, count=40)
            return t
        finally:
            for mod in (C, E):
                mod.REQUEST_WINDOW = orig_req
                mod.REPLY_WINDOW = orig_rep

    def run():
        return {w: run_with_window(w) for w in (36, 54, 72, 108)}

    times = run_once(benchmark, run)
    record(
        fmt_table("Ablation: sliding-window size (us per 8 KB chunk)",
                  ["window (packets)", "us/store"],
                  [(w, round(t, 1)) for w, t in sorted(times.items())]),
        **{f"win_{w}": t for w, t in times.items()},
    )
    # one-chunk windows serialize chunk N behind chunk N-1's ack
    assert times[36] > times[72] * 1.15
    # beyond two chunks there is little left to win
    assert times[108] > times[72] * 0.9


def test_ablation_lazy_fifo_pop(benchmark, record):
    """§2.1: popping the receive FIFO lazily amortizes the ~1 us
    MicroChannel access."""

    def run():
        eager, am1_eager = _store_stream_time(lazy_pop=1)
        lazy, am1_lazy = _store_stream_time(lazy_pop=16)
        return (eager, am1_eager.stats.get("explicit_acks_sent"),
                lazy, am1_lazy.stats.get("explicit_acks_sent"))

    eager, _, lazy, _ = run_once(benchmark, run)
    record(
        fmt_table("Ablation: lazy receive-FIFO pop (us per 224 B store)",
                  ["pop batch", "us/store"],
                  [(1, round(eager, 2)), (16, round(lazy, 2))]),
        eager=eager, lazy=lazy,
    )
    assert lazy < eager


def test_ablation_interrupts_vs_polling(benchmark, record):
    """§1.1: interrupt-driven reception exists but SP AM ships polling.

    Measures both sides of the trade: request-service *latency* during a
    long computation (interrupts win) and total *throughput* cost under a
    fine-grain message stream (polling wins — each interrupt costs ~55 us
    against a ~3 us poll)."""
    from repro.am import attach_spam, compute_interruptible, compute_polled
    from repro.sim import Delay, Simulator

    def run(style):
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        am0, am1 = attach_spam(m)
        stamps = {}
        count = [0]

        def handler(token, i):
            count[0] += 1
            stamps.setdefault("first_served", sim.now)

        n_msgs = 40

        def victim():
            t0 = sim.now
            if style == "interrupt":
                yield from compute_interruptible(am1, 3_000.0)
            else:
                yield from compute_polled(am1, 3_000.0, quantum_us=1_000.0)
            while count[0] < n_msgs:
                yield from am1._wait_progress()
            stamps["victim_done"] = sim.now - t0

        def sender():
            yield Delay(100.0)
            stamps["first_sent"] = sim.now
            for i in range(n_msgs):
                yield from am0.request_1(1, handler, i)

        pv = sim.spawn(victim())
        ps = sim.spawn(sender())
        sim.run_until_processes_done([pv, ps], limit=1e8)
        return (stamps["first_served"] - stamps["first_sent"],
                stamps["victim_done"])

    def runs():
        return run("interrupt"), run("poll")

    (lat_i, tot_i), (lat_p, tot_p) = run_once(benchmark, runs)
    record(
        fmt_table("Ablation: interrupts vs polling (40-request stream "
                  "into a 3 ms compute)",
                  ["style", "1st-service latency (us)", "victim total (us)"],
                  [("interrupt-driven", round(lat_i, 1), round(tot_i, 1)),
                   ("polling (1 ms quantum)", round(lat_p, 1),
                    round(tot_p, 1))], width=24),
        lat_interrupt=lat_i, lat_poll=lat_p,
        total_interrupt=tot_i, total_poll=tot_p,
    )
    # interrupts give prompt service...
    assert lat_i < lat_p
    # ...but cost more total time under fine-grain traffic — the §1.1 call
    assert tot_i > tot_p


def test_ablation_am_direct_collectives(benchmark, record):
    """The §5 future work, implemented: collectives directly over AM
    "rather than using the default MPICH functions built over MPI sends".
    Measures the FT-style alltoall and a broadcast, generic vs direct."""
    from repro.mpi.am_collectives import (
        am_alltoall,
        am_bcast,
        setup_am_collectives,
    )
    from tests.mpi.conftest import make_mpi, run_ranks

    n, size = 8192, 8

    def run():
        def generic_a2a():
            m, mpis = make_mpi(size)

            def prog(rank):
                def go():
                    yield from mpis[rank].alltoall([bytes(n)] * size)
                return go()

            run_ranks(m, prog, limit=1e9)
            return m.sim.now

        def direct_a2a():
            m, mpis = make_mpi(size)
            ctxs = setup_am_collectives(mpis, max_bytes=n)

            def prog(rank):
                def go():
                    yield from am_alltoall(ctxs[rank], [bytes(n)] * size)
                return go()

            run_ranks(m, prog, limit=1e9)
            return m.sim.now

        def generic_bcast():
            m, mpis = make_mpi(size)

            def prog(rank):
                def go():
                    yield from mpis[rank].bcast(
                        bytes(n) if rank == 0 else None, 0)
                return go()

            run_ranks(m, prog, limit=1e9)
            return m.sim.now

        def direct_bcast():
            m, mpis = make_mpi(size)
            ctxs = setup_am_collectives(mpis, max_bytes=n)

            def prog(rank):
                def go():
                    yield from am_bcast(
                        ctxs[rank], bytes(n) if rank == 0 else None, 0)
                return go()

            run_ranks(m, prog, limit=1e9)
            return m.sim.now

        return (generic_a2a(), direct_a2a(), generic_bcast(),
                direct_bcast())

    ga, da, gb, db = run_once(benchmark, run)
    record(
        fmt_table("Ablation: MPICH-generic vs AM-direct collectives "
                  f"({size} nodes, {n} B)",
                  ["collective", "generic (us)", "AM-direct (us)", "win"],
                  [("alltoall", round(ga, 1), round(da, 1),
                    f"{(1 - da / ga) * 100:.0f}%"),
                   ("bcast", round(gb, 1), round(db, 1),
                    f"{(1 - db / gb) * 100:.0f}%")], width=14),
        generic_alltoall=ga, direct_alltoall=da,
        generic_bcast=gb, direct_bcast=db,
    )
    assert da < ga * 0.8
    assert db < gb


def test_exchange_bandwidth(benchmark, record):
    """§2.4 footnote: "Measurements of the bandwidth on exchange can be
    found in [the tech report]" — both nodes store to each other
    simultaneously.  The links are full duplex, but each single-CPU node
    must now both inject (~4.8 us/packet) and drain (~4.9 us/packet), so
    the exchange is host-CPU-bound at ~9.7 us/packet: per-direction
    bandwidth drops to ~2/3 of the one-way rate while the aggregate still
    beats one-way."""
    from repro.am import attach_spam
    from repro.sim import Simulator

    def run():
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        ams = attach_spam(m)
        n = 262144
        bufs = [(m.node(i).memory.alloc(n), m.node(i).memory.alloc(n))
                for i in range(2)]
        done = [0]

        def prog(rank):
            am = ams[rank]
            peer = 1 - rank
            yield from am.store(peer, bufs[rank][0], bufs[peer][1], n)
            done[0] += 1
            while done[0] < 2:
                yield from am._wait_progress()

        procs = [sim.spawn(prog(r)) for r in range(2)]
        sim.run_until_processes_done(procs, limit=1e9,
                                     max_events=60_000_000)
        return 2 * n / sim.now  # aggregate MB/s

    aggregate = run_once(benchmark, run)
    record(
        fmt_table("Exchange (bidirectional) bandwidth, 256 KB each way",
                  ["direction", "MB/s"],
                  [("aggregate", round(aggregate, 2)),
                   ("per direction", round(aggregate / 2, 2))], width=16),
        aggregate=aggregate,
    )
    # aggregate beats one-way (the links are full duplex) ...
    assert aggregate > 1.2 * 33.5
    # ... but per-direction is CPU-bound below the one-way asymptote
    assert 0.55 * 33.5 < aggregate / 2 < 0.85 * 33.5


def test_ablation_ft_alltoall(benchmark, record):
    """§4.4: spreading the alltoall pattern fixes FT's hot spot."""
    from repro.apps.nas import run_ft

    def run():
        naive = run_ft("mpi-am", nprocs=16, grid_n=32, iters=2)
        spread = run_ft("mpi-am", nprocs=16, grid_n=32, iters=2,
                        staggered=True)
        assert naive.verified and spread.verified
        return naive.elapsed_s, spread.elapsed_s

    naive, spread = run_once(benchmark, run)
    record(
        fmt_table("Ablation: FT alltoall schedule (seconds)",
                  ["schedule", "time"],
                  [("rank-ordered (MPICH generic)", round(naive, 4)),
                   ("staggered", round(spread, 4))], width=30),
        naive=naive, spread=spread,
    )
    assert spread < naive
