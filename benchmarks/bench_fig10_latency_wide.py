"""Figure 10: MPI per-hop latency, wide nodes.

"on wide nodes MPI-F is faster for messages of less than 100 bytes but
slower for larger messages.  Evidently MPI-F was optimized for the wide
nodes while MPI-AM was developed on thin ones."
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import MPI_VARIANTS, mpi_ring_latency
from repro.bench.report import fmt_series

SIZES = [4, 64, 256, 1024, 8192, 16384]


def test_fig10_latency_wide(benchmark, record):
    def run():
        return {
            v: [(n, mpi_ring_latency(v, n, "sp-wide")) for n in SIZES]
            for v in MPI_VARIANTS
        }

    curves = run_once(benchmark, run)
    record(
        fmt_series("Figure 10: per-hop latency, wide nodes", curves,
                   ylabel="us/hop"),
        **{f"{v}_4B": dict(curves[v])[4] for v in MPI_VARIANTS},
    )
    opt = dict(curves["opt_mpi_am"])
    f = dict(curves["mpi_f"])
    # MPI-F wins below ~100 bytes on its home turf
    assert f[4] <= opt[4]
    assert f[64] <= opt[64] * 1.01
    # ... and loses for larger messages
    assert f[16384] > opt[16384]
    # thin-developed MPI-AM is slightly slower here than on thin nodes
    from repro.bench.figures import mpi_ring_latency as ring
    thin_small = ring("opt_mpi_am", 4, "sp-thin")
    assert opt[4] >= thin_small - 0.5
