"""Figure 11: MPI bandwidth, wide nodes.

Shows MPI-F's protocol discontinuity: "the bandwidth achieved using
messages of 8 Kbytes is actually lower than with 4 Kbyte messages because
of the rendez-vous latency introduced for the larger messages" (its
buffered->rendez-vous switch sits at 4 KB on wide nodes); the optimized
MPI-AM's hybrid protocol avoids any such dip.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import MPI_VARIANTS, mpi_bandwidth
from repro.bench.report import fmt_series

SIZES = [1024, 2048, 4096, 6144, 8192, 16384, 65536, 262144]


def test_fig11_bandwidth_wide(benchmark, record):
    def run():
        return {
            v: [(n, mpi_bandwidth(v, n, "sp-wide")) for n in SIZES]
            for v in MPI_VARIANTS
        }

    curves = run_once(benchmark, run)
    record(
        fmt_series("Figure 11: MPI bandwidth, wide nodes", curves),
        **{f"{v}_8k": dict(curves[v])[8192] for v in MPI_VARIANTS},
    )
    f = dict(curves["mpi_f"])
    opt = dict(curves["opt_mpi_am"])
    unopt = dict(curves["unopt_mpi_am"])
    # MPI-F's rendez-vous discontinuity just past its 4 KB switch: raw
    # bandwidth DROPS where the extra round trip lands (§4.3: "the
    # bandwidth achieved using messages of 8 Kbytes is actually lower
    # than with 4 Kbyte messages")
    assert f[6144] < f[4096] * 0.95
    # the optimized MPI-AM shows no dip at ITS switch: the hybrid keeps
    # the curve rising from 8 KB (buffered) into 16 KB (rendez-vous)
    assert opt[16384] > opt[8192]
    # optimized beats unoptimized through the switch region
    assert opt[16384] > unopt[16384]
    # on wide nodes MPI-AM stays ahead of MPI-F for non-tiny messages
    for n in (1024, 8192, 65536, 262144):
        assert opt[n] > f[n] * 0.98, n
