"""Figure 3: bandwidth of blocking and non-blocking bulk transfers.

Six curves over 16 B .. 1 MB: synchronous store/get, MPL send/reply
(blocking), pipelined async store/get, pipelined MPL send.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.bandwidth import MODES, n_half, r_inf, sweep
from repro.bench.report import fmt_series

#: trimmed sweep (the full DEFAULT_SIZES works too, just slower)
SIZES = [64, 256, 1024, 4096, 8064, 16384, 65536, 262144, 1048576]


def test_fig3_bandwidth_curves(benchmark, record):
    def run():
        return {mode: sweep(mode, SIZES) for mode in MODES}

    curves = run_once(benchmark, run)
    record(
        fmt_series("Figure 3: bulk-transfer bandwidth", curves),
        **{f"rinf_{m}": r_inf(curves[m]) for m in MODES},
    )
    by = {m: dict(curves[m]) for m in MODES}
    # asymptotes: AM ~34.3, MPL ~34.6 (Table 3)
    assert r_inf(curves["am_store_async"]) == pytest.approx(34.3, abs=1.0)
    assert r_inf(curves["mpl_send"]) == pytest.approx(34.6, abs=1.2)
    # pipelined async stores dominate blocking stores at small sizes
    assert by["am_store_async"][1024] > 2 * by["am_store"][1024]
    # gets slightly below stores at small sizes (get-request overhead)
    assert by["am_get"][1024] < by["am_store"][1024]
    # both converge for very large transfers ("virtually no distinction")
    assert by["am_store"][1048576] == pytest.approx(
        by["am_store_async"][1048576], rel=0.05)
    # MPL's blocking send/reply is the worst small-message curve
    assert by["mpl_send_reply"][1024] < by["am_store"][1024]
    # AM reaches half power far earlier than MPL (pipelined)
    assert n_half(curves["am_store_async"]) < n_half(curves["mpl_send"]) / 4
