"""Figure 4: Split-C benchmark times normalized to SP AM, split cpu/net.

The figure's claims, asserted below:

* SP AM and SP MPL have *identical* cpu bars (same hardware) — the whole
  difference is communication;
* for the small-message variants, SP MPL's net bar dwarfs SP AM's;
* the SP has the smallest cpu bar of all machines (fastest CPU);
* the CM-5's bars are compute-dominated (slow CPU, cheap messages);
* for bulk variants every SP bar shrinks toward parity.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.radix_sort import run_radix_sort
from repro.apps.sample_sort import run_sample_sort
from repro.bench.report import fmt_table

STACKS = ("sp-am", "sp-mpl", "cm5", "meiko", "unet")
KEYS = 1536


def _runs():
    out = {}
    for stack in STACKS:
        out[("smpsort-sm", stack)] = run_sample_sort(
            stack, nprocs=8, keys_per_proc=KEYS, variant="small")
        out[("smpsort-lg", stack)] = run_sample_sort(
            stack, nprocs=8, keys_per_proc=KEYS, variant="bulk")
    for stack in ("sp-am", "sp-mpl"):
        out[("rdxsort-sm", stack)] = run_radix_sort(
            stack, nprocs=8, keys_per_proc=KEYS, variant="small")
        out[("rdxsort-lg", stack)] = run_radix_sort(
            stack, nprocs=8, keys_per_proc=KEYS, variant="large")
    for r in out.values():
        assert r.payload["verified"]
    return out


def test_fig4_phase_split(benchmark, record):
    results = run_once(benchmark, _runs)
    rows = []
    for bench in ("smpsort-sm", "smpsort-lg", "rdxsort-sm", "rdxsort-lg"):
        base = results.get((bench, "sp-am"))
        for stack in STACKS:
            r = results.get((bench, stack))
            if r is None:
                continue
            rows.append((bench, stack,
                         round(r.cpu_s / base.elapsed_s, 2),
                         round(r.net_s / base.elapsed_s, 2),
                         round(r.elapsed_s / base.elapsed_s, 2)))
    record(
        fmt_table("Figure 4: phases normalized to SP AM (=1.0)",
                  ["bench", "stack", "cpu", "net", "total"], rows,
                  width=11),
        **{f"{b}_{s}_total": r.elapsed_s
           for (b, s), r in results.items()},
    )
    g = results
    for bench in ("smpsort-sm", "smpsort-lg"):
        am = g[(bench, "sp-am")]
        mpl = g[(bench, "sp-mpl")]
        # identical SP hardware -> identical compute phases
        assert mpl.cpu_s == pytest.approx(am.cpu_s, rel=0.02), bench
        # the SP's cpu phase is the smallest of all machines
        for stack in ("cm5", "meiko", "unet"):
            assert am.cpu_s < g[(bench, stack)].cpu_s, (bench, stack)
    # fine-grain: MPL's net phase balloons (>3x AM)
    assert g[("smpsort-sm", "sp-mpl")].net_s > \
        3 * g[("smpsort-sm", "sp-am")].net_s
    assert g[("rdxsort-sm", "sp-mpl")].net_s > \
        3 * g[("rdxsort-sm", "sp-am")].net_s
    # bulk: SP MPL total within ~1.5x of SP AM
    assert g[("smpsort-lg", "sp-mpl")].elapsed_s < \
        1.5 * g[("smpsort-lg", "sp-am")].elapsed_s
    assert g[("rdxsort-lg", "sp-mpl")].elapsed_s < \
        1.5 * g[("rdxsort-lg", "sp-am")].elapsed_s
    # the CM-5 is compute-dominated on the fine-grain sort
    cm5 = g[("smpsort-sm", "cm5")]
    assert cm5.cpu_s > cm5.net_s
