"""Figure 7: buffered vs rendez-vous vs hybrid protocol bandwidth.

"the hybrid protocol keeps the pipeline full while avoiding excessive
buffer space requirements ... and can reach a higher bandwidth than
either the buffered or rendezvous protocols could alone."
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import PROTOCOL_CONFIGS, protocol_bandwidth
from repro.bench.report import fmt_series

SIZES = [512, 1024, 2048, 4096, 8192, 12288, 16384]


def test_fig7_protocol_bandwidth(benchmark, record):
    def run():
        return {
            proto: [(n, protocol_bandwidth(proto, n)) for n in SIZES]
            for proto in PROTOCOL_CONFIGS
        }

    curves = run_once(benchmark, run)
    record(
        fmt_series("Figure 7: protocol bandwidth", curves),
        **{f"{p}_16k": dict(curves[p])[16384] for p in curves},
    )
    buf = dict(curves["buffered"])
    rdv = dict(curves["rendezvous"])
    hyb = dict(curves["hybrid"])
    # rendez-vous pays its round trip at small sizes
    assert rdv[1024] < buf[1024]
    # the hybrid matches or beats BOTH at every size
    for n in SIZES:
        assert hyb[n] >= buf[n] * 0.97, n
        assert hyb[n] >= rdv[n] * 0.97, n
    # and is strictly better than either alone in the mid range
    assert hyb[4096] > max(buf[4096], rdv[4096]) * 1.05
