"""Figure 8: MPI point-to-point per-hop latency, thin nodes.

Four curves (am_store, unoptimized MPI-AM, optimized MPI-AM, MPI-F) over
a 4-node ring.  "On the thin nodes MPI over AM achieves a lower
small-message latency than MPI-F."
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import MPI_VARIANTS, mpi_ring_latency
from repro.bench.report import fmt_series

SIZES = [4, 64, 256, 1024, 4096, 16384]


def test_fig8_latency_thin(benchmark, record):
    def run():
        return {
            v: [(n, mpi_ring_latency(v, n, "sp-thin")) for n in SIZES]
            for v in MPI_VARIANTS
        }

    curves = run_once(benchmark, run)
    record(
        fmt_series("Figure 8: per-hop latency, thin nodes", curves,
                   ylabel="us/hop"),
        **{f"{v}_4B": dict(curves[v])[4] for v in MPI_VARIANTS},
    )
    small = {v: dict(curves[v])[4] for v in MPI_VARIANTS}
    # am_store is the floor every MPI curve sits on
    assert all(small["am_store"] < small[v] for v in MPI_VARIANTS
               if v != "am_store")
    # optimized MPI-AM beats MPI-F for small messages on thin nodes
    assert small["opt_mpi_am"] < small["mpi_f"]
    # ... and is "within a microsecond"-scale of it, not a blowout
    assert small["mpi_f"] - small["opt_mpi_am"] < 6.0
    # the unoptimized implementation is the one that loses to MPI-F
    assert small["unopt_mpi_am"] > small["mpi_f"]
    # optimizations help at every size
    for n in SIZES:
        assert dict(curves["opt_mpi_am"])[n] <= dict(
            curves["unopt_mpi_am"])[n] * 1.01, n
