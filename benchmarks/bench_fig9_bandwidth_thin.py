"""Figure 9: MPI point-to-point bandwidth, thin nodes.

"The current MPI over SP AM matches MPI-F's performance for very small
and very large messages and outperforms MPI-F by 10 to 30% for medium
size (8 KByte to ~20 KByte) messages."
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import MPI_VARIANTS, mpi_bandwidth
from repro.bench.report import fmt_series

SIZES = [256, 1024, 4096, 6144, 8192, 16384, 32768, 131072, 524288]


def test_fig9_bandwidth_thin(benchmark, record):
    def run():
        return {
            v: [(n, mpi_bandwidth(v, n, "sp-thin")) for n in SIZES]
            for v in MPI_VARIANTS
        }

    curves = run_once(benchmark, run)
    record(
        fmt_series("Figure 9: MPI bandwidth, thin nodes", curves),
        **{f"{v}_512k": dict(curves[v])[524288] for v in MPI_VARIANTS},
    )
    opt = dict(curves["opt_mpi_am"])
    f = dict(curves["mpi_f"])
    store = dict(curves["am_store"])
    # raw am_store bounds all the MPI curves from above at large sizes
    assert store[524288] >= opt[524288] * 0.98
    # small messages: the implementations are comparable
    assert opt[1024] == pytest.approx(f[1024], rel=0.10)
    # the medium band past MPI-F's protocol switch: MPI-AM wins, and the
    # peak advantage sits in the paper's 10-30% (and beyond) territory
    for n in (6144, 8192):
        assert opt[n] > f[n], n
    gain = max(opt[n] / f[n] - 1 for n in (6144, 8192, 16384))
    assert gain > 0.10
    # MPI-F's bandwidth drops just past its rendez-vous switch (§4.3)
    assert f[6144] < f[4096]
    # very large: the implementations converge ("matches ... very large")
    assert opt[524288] == pytest.approx(f[524288], rel=0.12)
