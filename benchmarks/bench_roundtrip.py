"""§2.3 round-trip latencies: raw 47 us, SP AM 51.0 us (+0.5/word), MPL 88 us."""

import pytest

from benchmarks.conftest import run_once
from repro.bench.pingpong import am_roundtrip, mpl_roundtrip, raw_roundtrip
from repro.bench.report import paper_vs_measured


def test_roundtrip_latencies(benchmark, record):
    def run():
        return {
            "raw": raw_roundtrip(100),
            "am1": am_roundtrip(1, 100),
            "am2": am_roundtrip(2, 60),
            "am3": am_roundtrip(3, 60),
            "am4": am_roundtrip(4, 60),
            "mpl": mpl_roundtrip(100),
        }

    r = run_once(benchmark, run)
    record(
        paper_vs_measured(
            "S2.3 round-trip latency (us)",
            [
                ("raw ping-pong", 47.0, r["raw"]),
                ("am_request_1/reply_1", 51.0, r["am1"]),
                ("2 words", 51.5, r["am2"]),
                ("3 words", 52.0, r["am3"]),
                ("4 words", 52.5, r["am4"]),
                ("MPL mpc_bsend/mpc_recv", 88.0, r["mpl"]),
            ],
        ),
        **r,
    )
    assert r["raw"] == pytest.approx(47.0, abs=1.5)
    assert r["am1"] == pytest.approx(51.0, abs=1.5)
    assert r["mpl"] == pytest.approx(88.0, abs=2.0)
    # the paper's headline: AM cuts MPL's round trip by ~40%
    assert (r["mpl"] - r["am1"]) / r["mpl"] > 0.35
    # ~0.5 us per extra word
    assert r["am4"] - r["am1"] == pytest.approx(1.5, abs=1.2)
