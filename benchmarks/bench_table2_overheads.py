"""Table 2: am_request_N and am_reply_N call costs."""

import pytest

from benchmarks.conftest import run_once
from repro.bench.report import fmt_table
from repro.bench.callcosts import (
    PAPER_REPLY,
    PAPER_REQUEST,
    reply_call_cost,
    request_call_cost,
)


def test_table2_call_overheads(benchmark, record):
    def run():
        req = {n: request_call_cost(n) for n in (1, 2, 3, 4)}
        rep = {n: reply_call_cost(n) for n in (1, 2, 3, 4)}
        return req, rep

    req, rep = run_once(benchmark, run)
    rows = []
    for n in (1, 2, 3, 4):
        rows.append((f"am_request_{n}", PAPER_REQUEST[n], round(req[n], 2)))
        rows.append((f"am_reply_{n}", PAPER_REPLY[n], round(rep[n], 2)))
    record(
        fmt_table("Table 2: AM call costs (us)",
                  ["call", "paper", "measured"], rows),
        **{f"request_{n}": req[n] for n in req},
        **{f"reply_{n}": rep[n] for n in rep},
    )
    for n in (1, 2, 3, 4):
        assert req[n] == pytest.approx(PAPER_REQUEST[n], abs=0.3)
        assert rep[n] == pytest.approx(PAPER_REPLY[n], abs=0.3)
