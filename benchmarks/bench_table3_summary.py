"""Table 3: performance summary of SP AM vs IBM MPL.

=============================  =========  =========
metric                         SP AM      IBM MPL
=============================  =========  =========
one-word round trip            51.0 us    88.0 us
asymptotic bandwidth r_inf     34.3 MB/s  34.6 MB/s
n_1/2 (non-blocking)           ~260 B     ~2 KB
n_1/2 (blocking)               ~2.8 KB    >3.2 KB
=============================  =========  =========

OCR note: the digits of the paper's n_1/2 rows are partially lost; the
reconstruction (DESIGN.md §4) is pinned by internal consistency with the
measured call costs and the 2x one-way wire latency.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.bandwidth import n_half, r_inf, sweep
from repro.bench.pingpong import am_roundtrip, mpl_roundtrip
from repro.bench.report import paper_vs_measured

NB_SIZES = [64, 128, 256, 512, 1024, 4096, 16384, 262144, 1048576]
BL_SIZES = [256, 1024, 2048, 4096, 8064, 16384, 65536, 262144]


def test_table3_summary(benchmark, record):
    def run():
        am_async = sweep("am_store_async", NB_SIZES)
        mpl_async = sweep("mpl_send", NB_SIZES)
        am_block = sweep("am_store", BL_SIZES)
        mpl_block = sweep("mpl_send_reply", BL_SIZES)
        return {
            "rtt_am": am_roundtrip(1, 100),
            "rtt_mpl": mpl_roundtrip(100),
            "rinf_am": r_inf(am_async),
            "rinf_mpl": r_inf(mpl_async),
            "nhalf_am_async": n_half(am_async, 34.3),
            "nhalf_mpl_async": n_half(mpl_async, 34.6),
            "nhalf_am_block": n_half(am_block, 34.3),
            "nhalf_mpl_block": n_half(mpl_block, 34.6),
        }

    r = run_once(benchmark, run)
    record(
        paper_vs_measured(
            "Table 3: SP AM vs IBM MPL summary",
            [
                ("AM round trip (us)", 51.0, r["rtt_am"]),
                ("MPL round trip (us)", 88.0, r["rtt_mpl"]),
                ("AM r_inf (MB/s)", 34.3, r["rinf_am"]),
                ("MPL r_inf (MB/s)", 34.6, r["rinf_mpl"]),
                ("AM n1/2 async (B)", 260, r["nhalf_am_async"]),
                ("MPL n1/2 async (B)", 2040, r["nhalf_mpl_async"]),
                ("AM n1/2 blocking (B)", 2800, r["nhalf_am_block"]),
                # the paper only bounds this one: "greater than 3200 bytes"
                ("MPL n1/2 blocking (B)", ">3200", r["nhalf_mpl_block"]),
            ],
        ),
        **r,
    )
    assert r["rtt_am"] == pytest.approx(51.0, abs=1.5)
    assert r["rtt_mpl"] == pytest.approx(88.0, abs=2.0)
    assert r["rinf_am"] == pytest.approx(34.3, abs=1.0)
    assert r["rinf_mpl"] == pytest.approx(34.6, abs=1.2)
    assert r["rinf_mpl"] > r["rinf_am"]  # "despite a higher r_inf"
    assert 180 < r["nhalf_am_async"] < 400       # "only ~260 bytes"
    assert 1500 < r["nhalf_mpl_async"] < 3000
    # blocking half-power points: AM well below MPL's ">3200 B" bound
    assert r["nhalf_mpl_block"] > 3200
    assert r["nhalf_am_block"] < r["nhalf_mpl_block"]
