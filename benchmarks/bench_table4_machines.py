"""Table 4: TMC CM-5 vs Meiko CS-2 vs U-Net/ATM vs IBM SP."""

import pytest

from benchmarks.conftest import run_once
from repro.bench.machines import TABLE4_PAPER, table4_rows
from repro.bench.report import fmt_table


def test_table4_machine_comparison(benchmark, record):
    rows = run_once(benchmark, table4_rows)
    by_name = {r.name: r for r in rows}
    table = []
    for r in rows:
        p = TABLE4_PAPER[r.name]
        table.append((p["label"],
                      p["overhead"], round(r.overhead_us, 1),
                      p["rtt"], round(r.rtt_us, 1),
                      p["bw"], round(r.bandwidth_mbs, 1)))
    record(
        fmt_table(
            "Table 4: machine comparison (paper/measured pairs)",
            ["machine", "ovh(p)", "ovh(m)", "rtt(p)", "rtt(m)",
             "bw(p)", "bw(m)"],
            table, width=10),
        **{f"rtt_{r.name}": r.rtt_us for r in rows},
        **{f"bw_{r.name}": r.bandwidth_mbs for r in rows},
    )
    # round trips within 10% of the paper's column
    for name, paper in TABLE4_PAPER.items():
        assert by_name[name].rtt_us == pytest.approx(paper["rtt"], rel=0.10), name
    # bandwidth ordering: Meiko > SP > U-Net > CM-5
    bw = {n: by_name[n].bandwidth_mbs for n in by_name}
    assert bw["meiko"] > bw["sp-thin"] > bw["unet"] > bw["cm5"]
    # overheads: CM-5 and U-Net are the fine-grain machines
    assert by_name["cm5"].overhead_us < by_name["meiko"].overhead_us
    # the SP pairs a *high* network latency with competitive overhead —
    # the paper's central observation
    assert by_name["sp-thin"].rtt_us > 2 * by_name["meiko"].rtt_us
