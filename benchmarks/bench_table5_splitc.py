"""Table 5 + Figure 4: Split-C application benchmarks on five stacks.

Absolute times (Table 5) and per-phase cpu/net splits normalized to SP AM
(Figure 4).  Default scale is reduced from the paper's ~1M keys; the
harness projects the sort results to paper scale (the per-key costs are
scale-stable).  Set ``KEYS_PER_PROC`` higher to run closer to paper scale.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.matmul import run_matmul
from repro.apps.radix_sort import run_radix_sort
from repro.apps.sample_sort import run_sample_sort
from repro.bench.report import fmt_table

STACKS = ("sp-am", "sp-mpl", "cm5", "meiko", "unet")
KEYS_PER_PROC = 2048
#: projection factor to the paper's ~131072 keys/proc
SCALE = 131072 // KEYS_PER_PROC

#: Table 5's legible entries (seconds; several cells are OCR-damaged —
#: see DESIGN.md §4)
PAPER = {
    ("smpsort-sm", "sp-am"): 4.393,
    ("smpsort-sm", "sp-mpl"): 18.70,
    ("smpsort-lg", "sp-am"): 1.814,
    ("smpsort-lg", "sp-mpl"): 1.811,
    ("rdxsort-sm", "sp-am"): 9.894,
    ("rdxsort-lg", "sp-am"): 3.43,
    ("rdxsort-lg", "sp-mpl"): 3.87,
    ("mm128", "sp-mpl"): 1.180,
}


def _sorts():
    out = {}
    for stack in STACKS:
        r = run_sample_sort(stack, nprocs=8, keys_per_proc=KEYS_PER_PROC,
                            variant="small")
        assert r.payload["verified"], ("smpsort-sm", stack)
        out[("smpsort-sm", stack)] = r
        r = run_sample_sort(stack, nprocs=8, keys_per_proc=KEYS_PER_PROC,
                            variant="bulk")
        assert r.payload["verified"], ("smpsort-lg", stack)
        out[("smpsort-lg", stack)] = r
    for stack in ("sp-am", "sp-mpl"):
        r = run_radix_sort(stack, nprocs=8, keys_per_proc=KEYS_PER_PROC,
                           variant="small")
        assert r.payload["verified"], ("rdxsort-sm", stack)
        out[("rdxsort-sm", stack)] = r
        r = run_radix_sort(stack, nprocs=8, keys_per_proc=KEYS_PER_PROC,
                           variant="large")
        assert r.payload["verified"], ("rdxsort-lg", stack)
        out[("rdxsort-lg", stack)] = r
    return out


def _matmuls():
    out = {}
    for stack in ("sp-am", "sp-mpl", "cm5"):
        out[("mm128", stack)] = run_matmul(stack, nprocs=8, n=4, b=128)
        out[("mm16", stack)] = run_matmul(stack, nprocs=8, n=16, b=16)
    return out


def test_table5_sorts(benchmark, record):
    results = run_once(benchmark, _sorts)
    rows = []
    for (bench, stack), r in sorted(results.items()):
        proj = r.elapsed_s * SCALE
        paper = PAPER.get((bench, stack), "-")
        rows.append((bench, stack, round(proj, 2), paper,
                     round(r.cpu_s * SCALE, 2), round(r.net_s * SCALE, 2)))
    record(
        fmt_table("Table 5 (sorts, projected to ~1M keys; seconds)",
                  ["bench", "stack", "measured", "paper", "cpu", "net"],
                  rows, width=10),
        **{f"{b}_{s}": r.elapsed_s * SCALE
           for (b, s), r in results.items()},
    )
    g = {k: v.elapsed_s for k, v in results.items()}
    # MPL's per-message overhead buries the small-message variants (§3)
    assert g[("smpsort-sm", "sp-mpl")] > 3 * g[("smpsort-sm", "sp-am")]
    assert g[("rdxsort-sm", "sp-mpl")] > 3 * g[("rdxsort-sm", "sp-am")]
    # ... but the bulk variants are close (comparable bulk bandwidth)
    assert g[("smpsort-lg", "sp-mpl")] < 1.6 * g[("smpsort-lg", "sp-am")]
    assert g[("rdxsort-lg", "sp-mpl")] < 1.6 * g[("rdxsort-lg", "sp-am")]
    # SP AM's fine-grain sorts beat the slower-CPU CM-5 overall
    assert g[("smpsort-sm", "sp-am")] < g[("smpsort-sm", "cm5")]
    # Figure 4: SP has the fastest CPU -> smallest compute phase
    cpu = {s: results[("smpsort-sm", s)].cpu_s for s in STACKS}
    assert cpu["sp-am"] < min(cpu["cm5"], cpu["meiko"], cpu["unet"])
    # Figure 4: identical SP hardware -> identical cpu bars, bigger net bar
    am, mpl = results[("smpsort-sm", "sp-am")], results[("smpsort-sm", "sp-mpl")]
    assert am.cpu_s == pytest.approx(mpl.cpu_s, rel=0.02)
    assert mpl.net_s > 3 * am.net_s
    # paper-scale sanity for the legible absolute entries
    assert g[("smpsort-lg", "sp-am")] * SCALE == pytest.approx(1.814, rel=0.35)
    assert g[("rdxsort-sm", "sp-am")] * SCALE == pytest.approx(9.894, rel=0.35)


def test_table5_matmul(benchmark, record):
    results = run_once(benchmark, _matmuls)
    rows = []
    for (bench, stack), r in sorted(results.items()):
        rows.append((bench, stack, round(r.elapsed_s, 3),
                     PAPER.get((bench, stack), "-"),
                     round(r.cpu_s, 3), round(r.net_s, 3)))
    record(
        fmt_table("Table 5 (matmul, paper scale directly; seconds)",
                  ["bench", "stack", "measured", "paper", "cpu", "net"],
                  rows, width=10),
        **{f"{b}_{s}": r.elapsed_s for (b, s), r in results.items()},
    )
    g = {k: v.elapsed_s for k, v in results.items()}
    # large blocks: AM ~= MPL (bandwidth-bound, §3)
    assert g[("mm128", "sp-mpl")] < 1.25 * g[("mm128", "sp-am")]
    # small blocks: MPL's message overhead shows ("degrades significantly")
    assert g[("mm16", "sp-mpl")] > 1.25 * g[("mm16", "sp-am")]
    # SP's floating-point advantage over the CM-5
    assert g[("mm128", "cm5")] > 2 * g[("mm128", "sp-am")]
    # mm128 lands near the paper's ~1.0-1.2 s
    assert 0.7 < g[("mm128", "sp-am")] < 1.4
