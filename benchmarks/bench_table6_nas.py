"""Table 6: NAS benchmarks (class-A-like kernels) on 16 thin nodes.

Paper values (seconds; BT's MPI-F cell is OCR-damaged):

    =====  =======  =======
    bench  MPI-F    MPI-AM
    =====  =======  =======
    BT       (?)     ~equal
    FT      31.87    32.49
    LU     ~166.6   ~170.9
    MG      27.9     28.19
    SP      40.37    49.08
    =====  =======  =======

We run reduced-scale kernels with the same communication schedules and
compare the MPI-AM/MPI-F ratio — the quantity the table is about.
"""

import pytest

from benchmarks.conftest import run_once
from repro.apps.nas import NAS_KERNELS
from repro.bench.report import fmt_table

PAPER_RATIO = {"BT": None, "FT": 1.02, "LU": 1.03, "MG": 1.01, "SP": 1.22}


def test_table6_nas(benchmark, record):
    def run():
        out = {}
        for name, runner in sorted(NAS_KERNELS.items()):
            am = runner("mpi-am")
            f = runner("mpi-f")
            assert am.verified and f.verified, name
            out[name] = (f.elapsed_s, am.elapsed_s)
        return out

    results = run_once(benchmark, run)
    rows = []
    for name, (f_s, am_s) in sorted(results.items()):
        ratio = am_s / f_s
        paper = PAPER_RATIO[name]
        rows.append((name, round(f_s, 4), round(am_s, 4),
                     round(ratio, 2), paper if paper else "-"))
    record(
        fmt_table("Table 6: NAS kernels, 16 thin nodes (seconds)",
                  ["bench", "MPI-F", "MPI-AM", "ratio", "paper ratio"],
                  rows, width=11),
        **{f"ratio_{n}": am / f for n, (f, am) in results.items()},
    )
    for name, (f_s, am_s) in results.items():
        # the headline: "the running times of MPI-AM are close to those
        # achieved by the native MPI-F implementation"
        assert am_s / f_s < 1.35, name
        # and MPI-F is never dramatically ahead the other way
        assert am_s / f_s > 0.80, name
    # the communication-heavy kernels show the bigger gaps (FT alltoall,
    # LU's tiny wavefront messages), BT the smallest
    assert results["BT"][1] / results["BT"][0] < 1.05
