"""Benchmark harness conventions.

Every module reproduces one table or figure of the paper.  The pytest-
benchmark fixture times the (wall-clock) experiment once; the *simulated*
results — the numbers comparable to the paper — are attached to
``benchmark.extra_info`` and printed as a paper-vs-measured block.

Run with::

    pytest benchmarks/ --benchmark-only            # everything
    pytest benchmarks/bench_table3_summary.py -s   # one table, verbose
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def record(benchmark, capsys):
    """Attach simulated metrics + print a report block."""

    def _record(report_text: str, **metrics):
        for k, v in metrics.items():
            benchmark.extra_info[k] = round(v, 3) if isinstance(v, float) else v
        with capsys.disabled():
            print("\n" + report_text)

    return _record
