#!/usr/bin/env python3
"""The FT transpose, three ways — §4.4's bottleneck and both of its fixes.

The paper blames FT's MPI-AM gap on MPICH's generic ``MPI_Alltoall``:
"all processors try to send to the same processor at the same time,
rather than spreading out the communication pattern."  This example
measures the transpose on 8 nodes:

1. the generic rank-ordered alltoall (the hot spot),
2. the staggered schedule (the fix the paper suggests),
3. the alltoall implemented *directly over Active Messages*
   (§5's future work: "implementing collective communication functions
   directly over AM ... would improve performance").

Run:  python examples/ft_transpose.py  [chunk_bytes]
"""

import sys

from repro.am import attach_spam
from repro.hardware import build_sp_machine
from repro.mpi import attach_mpi
from repro.mpi.am_collectives import am_alltoall, setup_am_collectives
from repro.sim import Simulator

NPROCS = 8


def run_transpose(style: str, chunk_bytes: int) -> float:
    sim = Simulator()
    machine = build_sp_machine(sim, NPROCS)
    attach_spam(machine)
    mpis = attach_mpi(machine)
    ctxs = (setup_am_collectives(mpis, max_bytes=chunk_bytes)
            if style == "am-direct" else None)
    chunks_of = lambda rank: [bytes([rank * 16 + d % 16]) * chunk_bytes  # noqa: E731
                              for d in range(NPROCS)]
    results = {}

    def prog(rank):
        chunks = chunks_of(rank)
        if style == "am-direct":
            out = yield from am_alltoall(ctxs[rank], chunks)
        else:
            out = yield from mpis[rank].alltoall(
                chunks, staggered=(style == "staggered"))
        results[rank] = out
        yield from mpis[rank].barrier()

    procs = [sim.spawn(prog(r), name=f"ft{r}") for r in range(NPROCS)]
    sim.run_until_processes_done(procs, limit=1e9)
    # verify the permutation
    for rank in range(NPROCS):
        for src in range(NPROCS):
            assert results[rank][src] == bytes(
                [src * 16 + rank % 16]) * chunk_bytes, (rank, src)
    return sim.now


def main() -> None:
    chunk = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    print(f"FT transpose on {NPROCS} nodes, {chunk} B per pair "
          f"({chunk * NPROCS * (NPROCS - 1) / 1024:.0f} KB total)\n")
    base = None
    for style, label in (
            ("generic", "MPICH generic (rank-ordered)"),
            ("staggered", "staggered schedule (S4.4 fix)"),
            ("am-direct", "direct over AM (S5 future work)")):
        t = run_transpose(style, chunk)
        if base is None:
            base = t
        print(f"  {label:35s} {t:10.1f} us   "
              f"({(1 - t / base) * 100:+5.1f}% vs generic)")
    print("\nall three verified the transposed data bit-for-bit.")


if __name__ == "__main__":
    main()
