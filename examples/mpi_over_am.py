#!/usr/bin/env python3
"""MPI over Active Messages vs IBM's MPI-F — a miniature Table 6.

Builds 16 simulated thin nodes, installs MPICH-over-AM and MPI-F, and
runs a NAS kernel on each, plus a point-to-point latency shoot-out
showing the §4.2 optimizations (binned allocation, combined frees, the
hybrid protocol) at work.

Run:  python examples/mpi_over_am.py  [kernel]      # BT FT LU MG SP
"""

import sys

from repro.apps.nas import NAS_KERNELS
from repro.bench.figures import mpi_ring_latency


def main() -> None:
    kernel = (sys.argv[1].upper() if len(sys.argv) > 1 else "MG")
    runner = NAS_KERNELS[kernel]

    print("== point-to-point per-hop latency, 4 thin nodes (Fig 8) ==")
    print(f'{"bytes":>7} {"unopt AM":>9} {"opt AM":>8} {"MPI-F":>8}')
    for n in (4, 256, 1024, 16384):
        u = mpi_ring_latency("unopt_mpi_am", n)
        o = mpi_ring_latency("opt_mpi_am", n)
        f = mpi_ring_latency("mpi_f", n)
        print(f"{n:>7} {u:9.1f} {o:8.1f} {f:8.1f}")
    print("(the optimized MPI-AM beats MPI-F for small messages on thin "
          "nodes, §4.3)\n")

    print(f"== NAS {kernel} kernel, 16 thin nodes (Table 6) ==")
    am = runner("mpi-am")
    f = runner("mpi-f")
    print(f"  MPI-AM : {am.elapsed_s:8.4f} s  (verified={am.verified})")
    print(f"  MPI-F  : {f.elapsed_s:8.4f} s  (verified={f.verified})")
    print(f"  ratio  : {am.elapsed_s / f.elapsed_s:8.2f}   "
          "(the paper: 'close to the native MPI-F implementation')")

    if kernel == "FT":
        spread = runner("mpi-am", staggered=True)
        print(f"  FT with staggered alltoall: {spread.elapsed_s:8.4f} s "
              "(the §4.4 fix)")


if __name__ == "__main__":
    main()
