#!/usr/bin/env python3
"""Quickstart: SP Active Messages in five minutes.

Builds a 2-node simulated IBM SP, attaches SP AM, and demonstrates the
whole Table-1 interface: requests/replies, bulk stores and gets, and
polling — while measuring the paper's headline numbers (51 us round trip,
34.3 MB/s).

Run:  python examples/quickstart.py
"""

from repro.am import attach_spam
from repro.hardware import build_sp_machine
from repro.sim import Simulator


def main() -> None:
    # --- build the machine -------------------------------------------------
    sim = Simulator()
    machine = build_sp_machine(sim, nprocs=2)
    am0, am1 = attach_spam(machine)
    node0, node1 = machine.node(0), machine.node(1)

    # --- 1. request / reply ----------------------------------------------------
    replies = []

    def pong(token, x):
        """Reply handler, runs back on node 0."""
        replies.append(x)

    def ping(token, x):
        """Request handler, runs on node 1; replies through the token."""
        yield from token.reply_1(pong, x * 2)

    ITER = 100

    def pinger():
        t0 = sim.now
        for i in range(ITER):
            before = len(replies)
            yield from am0.request_1(1, ping, i)
            while len(replies) == before:      # spin on am_poll
                yield from am0._wait_progress()
        rtt = (sim.now - t0) / ITER
        print(f"1-word AM round trip : {rtt:6.2f} us   (paper: 51.0)")

    def responder():
        while len(replies) < ITER:
            yield from am1._wait_progress()

    p = sim.spawn(pinger(), name="ping")
    sim.spawn(responder(), name="pong")
    sim.run_until_processes_done([p])

    # --- 2. bulk store ------------------------------------------------------------
    N = 1 << 20  # 1 MB
    src = node0.memory.alloc(N)
    dst = node1.memory.alloc(N)
    node0.memory.write(src, bytes(range(256)) * (N // 256))
    done = []

    def on_complete(token, addr, nbytes, arg):
        done.append(nbytes)

    flag = [0]

    def sender():
        t0 = sim.now
        yield from am0.store(1, src, dst, N, handler=on_complete)
        bw = N / (sim.now - t0)
        print(f"1 MB am_store        : {bw:6.2f} MB/s (paper: 34.3)")
        flag[0] = 1

    def receiver():
        # one poller per node: the server exits cleanly between phases
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender(), name="store")
    q = sim.spawn(receiver(), name="recv")
    sim.run_until_processes_done([p, q])
    assert node1.memory.read(dst, N) == node0.memory.read(src, N)
    assert done == [N]
    print("store completion handler ran on the receiver, data verified")

    # --- 3. bulk get ------------------------------------------------------------
    back = node0.memory.alloc(N)
    flag[0] = 0

    def getter():
        yield from am0.get(1, dst, back, N)
        flag[0] = 1

    p = sim.spawn(getter(), name="get")
    q = sim.spawn(receiver(), name="serve")
    sim.run_until_processes_done([p, q])
    assert node0.memory.read(back, N) == node0.memory.read(src, N)
    print("am_get fetched the data back, round-tripped intact")

    # --- protocol statistics ------------------------------------------------
    print("\nflow-control stats (node 0):", am0.stats.snapshot())
    print("flow-control stats (node 1):", am1.stats.snapshot())


if __name__ == "__main__":
    main()
