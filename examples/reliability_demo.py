#!/usr/bin/env python3
"""Watching §2.2's flow control recover from injected packet loss.

The switch's fault injector drops a configurable fraction of data packets;
the sliding-window protocol (sequence numbers, NACK-triggered go-back-N,
keep-alive probes for tail losses) must still deliver a large store intact
— and the protocol statistics show exactly how it did it.

Run:  python examples/reliability_demo.py  [drop_percent]
"""

import sys

from repro.am import attach_spam
from repro.hardware import build_sp_machine
from repro.hardware.packet import PacketKind
from repro.sim import Simulator


class RandomishDrop:
    """Deterministic pseudo-random dropper (no RNG: reproducible runs)."""

    def __init__(self, percent: float):
        self.period = max(2, int(100 / max(percent, 0.01)))
        self.count = 0
        self.dropped = 0

    def __call__(self, pkt) -> bool:
        if pkt.kind not in (PacketKind.STORE_DATA, PacketKind.GET_DATA):
            return False
        self.count += 1
        # a mixing pattern so drops land irregularly
        if (self.count * 2654435761) % (self.period * 997) < 997:
            self.dropped += 1
            return True
        return False


def main() -> None:
    percent = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    am0, am1 = attach_spam(machine)
    dropper = RandomishDrop(percent)
    machine.switch.fault_injector = dropper

    N = 256 * 1024
    pattern = bytes((7 * i) % 256 for i in range(N))
    src = machine.node(0).memory.alloc(N)
    dst = machine.node(1).memory.alloc(N)
    machine.node(0).memory.write(src, pattern)
    flag = [0]

    def sender():
        t0 = sim.now
        yield from am0.store(1, src, dst, N)
        bw = N / (sim.now - t0)
        print(f"256 KB store with ~{percent}% loss: {bw:6.2f} MB/s "
              "(lossless: ~33.7)")
        flag[0] = 1

    def receiver():
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender(), name="store")
    q = sim.spawn(receiver(), name="recv")
    sim.run_until_processes_done([p, q], limit=1e9)

    ok = machine.node(1).memory.read(dst, N) == pattern
    print(f"data intact after recovery: {ok}")
    assert ok
    print(f"\npackets dropped by the fault injector : {dropper.dropped}")
    s0, s1 = am0.stats, am1.stats
    print(f"go-back-N retransmissions (sender)     : "
          f"{s0.get('retransmissions')}")
    print(f"NACKs issued (receiver)                : {s1.get('nacks_sent')} "
          f"(+{s1.get('nacks_suppressed')} suppressed)")
    print(f"keep-alive probes (tail-loss recovery) : "
          f"{s0.get('keepalives_sent')}")
    print(f"duplicates discarded at the receiver   : "
          f"{s1.get('duplicates_dropped')}")


if __name__ == "__main__":
    main()
