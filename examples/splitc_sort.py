#!/usr/bin/env python3
"""Split-C sample sort across five machines — a miniature Table 5.

Runs the paper's small-message and bulk sample-sort variants on the
simulated IBM SP (over SP AM and over MPL), TMC CM-5, Meiko CS-2 and the
U-Net/ATM cluster, printing the cpu/net phase split of Figure 4.

The point the paper makes, visible directly in the output: on identical
SP hardware, Split-C over MPL pays several times the communication cost
of Split-C over AM for fine-grain traffic — while machines with slower
CPUs (CM-5) lose in the compute phase instead.

Run:  python examples/splitc_sort.py  [keys_per_proc]
"""

import sys

from repro.apps.sample_sort import run_sample_sort
from repro.apps.workloads import STACKS


def main() -> None:
    keys = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    nprocs = 8
    print(f"sample sort, {nprocs} processors x {keys} keys "
          f"(paper scale is ~131072/proc)\n")
    header = f'{"variant":>8} {"machine":>8} {"cpu(ms)":>9} ' \
             f'{"net(ms)":>9} {"total":>9}  sorted?'
    print(header)
    print("-" * len(header))
    for variant in ("small", "bulk"):
        for stack in STACKS:
            r = run_sample_sort(stack, nprocs=nprocs, keys_per_proc=keys,
                                variant=variant)
            print(f"{variant:>8} {stack:>8} {r.cpu_s * 1e3:9.2f} "
                  f"{r.net_s * 1e3:9.2f} {r.elapsed_s * 1e3:9.2f}  "
                  f"{r.payload['verified']}")
        print()
    print("note how sp-mpl's net column balloons for the small-message")
    print("variant but nearly matches sp-am for the bulk variant (§3).")


if __name__ == "__main__":
    main()
