"""Legacy shim: lets ``python setup.py develop`` work in offline
environments where pip's build isolation cannot fetch setuptools/wheel.
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
