"""Reproduction of "Low-Latency Communication on the IBM RISC System/6000 SP".

Chang, Czajkowski, Hawblitzel, von Eicken - ACM/IEEE Supercomputing 1996.

The paper's whole stack - SP Active Messages over the TB2 adapter, the
IBM MPL baseline, Split-C, and MPI (MPICH-over-AM plus an MPI-F model) -
implemented as real protocol code over a microsecond-accurate
discrete-event simulation of the SP's communication hardware.

Quick start::

    from repro.sim import Simulator
    from repro.hardware import build_sp_machine
    from repro.am import attach_spam

    sim = Simulator()
    machine = build_sp_machine(sim, nprocs=2)
    am0, am1 = attach_spam(machine)
    # see examples/quickstart.py for a complete program

Package map (details in DESIGN.md):

- :mod:`repro.sim`      - deterministic event engine (+ tracing)
- :mod:`repro.hardware` - TB2 adapter, MicroChannel, switch, nodes
- :mod:`repro.am`       - SP Active Messages (the paper's contribution)
- :mod:`repro.mpl`      - IBM MPL baseline + the AM-over-MPL shim
- :mod:`repro.splitc`   - the Split-C runtime
- :mod:`repro.mpi`      - MPICH-over-AM, MPI-F, AM-direct collectives
- :mod:`repro.apps`     - Split-C benchmarks + NAS kernels
- :mod:`repro.bench`    - the table/figure measurement harness
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
