"""SP Active Messages — the paper's core contribution (§2).

A full Generic Active Messages 1.1 implementation layered directly on the
simulated TB2 adapter, using none of the (simulated) IBM messaging software:

* ``am_request_M`` / ``am_reply_M`` (M = 1..4): short messages carrying a
  handler id and up to four word arguments,
* ``am_store`` / ``am_store_async``: sender-addressed bulk transfers in
  8064-byte chunks with the paper's pipelined chunk protocol,
* ``am_get``: remote fetch,
* ``am_poll``: explicit network polling; handlers run inside the poll.

Reliability (§2.2): sequence numbers per (peer, channel), a sliding window
of 72 request / 76 reply packets, piggybacked cumulative acks, explicit
acks at a quarter window, NACK-triggered go-back-N retransmission, and a
keep-alive probe for tail losses.

Use :func:`attach_spam` on an SP machine or :func:`attach_generic_am` on a
Table-4 peer machine; both install an object with the same API on each
``node.am``.
"""

from repro.am.api import ActiveMessages, ReplyToken, attach_am, attach_generic_am, attach_spam
from repro.am.constants import (
    ACK_FRACTION,
    AMCosts,
    CHUNK_BYTES,
    CHUNK_PACKETS,
    REPLY_CHANNEL,
    REPLY_WINDOW,
    REQUEST_CHANNEL,
    REQUEST_WINDOW,
)
from repro.am.handler import HandlerTable
from repro.am.interrupts import compute_interruptible, compute_polled
from repro.am.raw import raw_pingpong_roundtrip

__all__ = [
    "ActiveMessages",
    "ReplyToken",
    "attach_am",
    "attach_spam",
    "attach_generic_am",
    "AMCosts",
    "HandlerTable",
    "REQUEST_WINDOW",
    "REPLY_WINDOW",
    "REQUEST_CHANNEL",
    "REPLY_CHANNEL",
    "CHUNK_BYTES",
    "CHUNK_PACKETS",
    "ACK_FRACTION",
    "raw_pingpong_roundtrip",
    "compute_interruptible",
    "compute_polled",
]
