"""Public Active Messages API and per-machine attachment.

Matching Table 1 of the paper::

    am.request_M(dst, handler, i1..iM)   send an M-word request
    token.reply_M(handler, i1..iM)       send an M-word reply (in handler)
    am.store(...)                        long message, blocking
    am.store_async(...)                  long message, non-blocking
    am.get(...)                          fetch data from a remote node
    am.poll()                            poll the network

``attach_spam`` installs the full SP implementation (flow control, chunk
protocol) on an SP machine; ``attach_generic_am`` installs the LogP-cost
implementation on a Table-4 peer machine.  ``attach_am`` picks by machine
kind, so portable code (Split-C, the benchmarks) never branches.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.am.constants import AMCosts
from repro.am.endpoint import ReplyToken, SPAM
from repro.am.generic import GenericAM
from repro.am.handler import HandlerTable
from repro.hardware.machine import Machine

#: anything usable as ``node.am``
ActiveMessages = Union[SPAM, GenericAM]


def attach_spam(
    machine: Machine, costs: Optional[AMCosts] = None,
    xfer_mode: str = "eager", rdzv_crossover: Optional[int] = None,
) -> List[SPAM]:
    """Install SP AM on every node of an SP machine.

    ``xfer_mode`` selects the large-message strategy for stores: "eager"
    (the chunk protocol, default), "rendezvous" (RTS/CTS + simulated
    RDMA), or "auto" (rendezvous above ``rdzv_crossover`` bytes,
    defaulting to one chunk = 8064).
    """
    if not machine.is_sp:
        raise ValueError(
            f"{machine.params.name!r} is not an SP; use attach_generic_am"
        )
    table = HandlerTable()
    return [SPAM(node, table, costs, xfer_mode=xfer_mode,
                 rdzv_crossover=rdzv_crossover) for node in machine.nodes]


def attach_generic_am(machine: Machine) -> List[GenericAM]:
    """Install the generic (LogP-cost) AM on a peer machine."""
    if machine.is_sp:
        raise ValueError(
            f"{machine.params.name!r} is an SP; use attach_spam"
        )
    table = HandlerTable()
    return [GenericAM(node, table) for node in machine.nodes]


def attach_am(machine: Machine, xfer_mode: str = "eager",
              rdzv_crossover: Optional[int] = None) -> List[ActiveMessages]:
    """Install the right AM implementation for the machine kind.

    The rendezvous knobs only apply to the SP implementation; the generic
    (LogP-cost) AM has no chunk protocol to switch."""
    if machine.is_sp:
        return attach_spam(machine, xfer_mode=xfer_mode,
                           rdzv_crossover=rdzv_crossover)
    return attach_generic_am(machine)
