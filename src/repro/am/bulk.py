"""Bulk-transfer operation state (§2.2's chunk protocol).

An outgoing store/get-serve is a :class:`BulkSendOp`: the data is split
into 8064-byte chunks; "initially, two chunks are transmitted and the next
chunk is sent only when the previous-to-last chunk is acknowledged"
(Figure 2).  Because the 172 us chunk-send overhead exceeds one round trip
the pipeline stays full, and for large transfers blocking and non-blocking
stores become indistinguishable — behaviours the benchmark suite checks.

An incoming transfer is a :class:`BulkRecvState`: progress is counted in
bytes and the completion handler fires exactly once when all have landed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.am.constants import CHUNK_BYTES, PACKET_PAYLOAD_BYTES
from repro.sim.primitives import Event


def split_chunks(nbytes: int) -> List[Tuple[int, int]]:
    """Split a transfer into (offset, length) chunks of <= 8064 bytes."""
    if nbytes < 0:
        raise ValueError("negative transfer size")
    if nbytes == 0:
        return []
    return [
        (off, min(CHUNK_BYTES, nbytes - off))
        for off in range(0, nbytes, CHUNK_BYTES)
    ]


def packets_in_chunk(length: int) -> int:
    return -(-length // PACKET_PAYLOAD_BYTES)


class BulkSendOp:
    """Sender-side state of one store / get-serve transfer."""

    _PIPELINE_DEPTH = 2  # chunks in flight before the first ack (Fig. 2)

    def __init__(
        self,
        token: int,
        dst: int,
        channel: int,
        data: bytes,
        remote_addr: int,
        handler: int,
        handler_args: Tuple[int, ...],
        done: Event,
        completion_fn: Optional[Callable[["BulkSendOp"], None]] = None,
        rdzv: bool = False,
    ):
        self.token = token
        self.dst = dst
        self.channel = channel
        self.data = data
        self.remote_addr = remote_addr
        self.handler = handler
        self.handler_args = handler_args
        self.chunks = split_chunks(len(data))
        self.next_chunk = 0
        self.acked_chunks = 0
        self.done = done
        self.completion_fn = completion_fn
        #: rendezvous mode: the transfer starts with an RTS/CTS handshake
        #: and the payload goes out as RDMA_DATA + a trailing RDMA_FIN
        self.rdzv = rdzv
        #: sequence number the RTS went out under (-1 = not sent yet);
        #: the stall watchdog retransmits the saved clone under this key
        self.rts_seq = -1
        #: when the RTS (or its last stall retransmission) went out
        self.rts_sent_t = float("-inf")
        #: set when the peer's CTS arrives; gates the RDMA pump
        self.cts_granted = False
        self.fin_sent = False
        #: the op completes only once the FIN is acknowledged too — the
        #: FIN is what fires the remote completion handler exactly once
        self.fin_acked = False

    @property
    def total_chunks(self) -> int:
        return len(self.chunks)

    @property
    def complete(self) -> bool:
        return self.acked_chunks >= self.total_chunks

    @property
    def fully_acked(self) -> bool:
        """Every chunk acked, plus the FIN for a rendezvous transfer."""
        return self.complete and (not self.rdzv or self.fin_acked)

    def sendable_now(self) -> bool:
        """Chunk pacing: chunk i may go once chunk i-2 is acknowledged."""
        if self.next_chunk >= self.total_chunks:
            return False
        return self.next_chunk < self.acked_chunks + self._PIPELINE_DEPTH

    def take_chunk(self) -> Tuple[int, int, int]:
        """Claim the next chunk; returns (chunk_index, offset, length)."""
        i = self.next_chunk
        off, length = self.chunks[i]
        self.next_chunk += 1
        return i, off, length

    def on_chunk_acked(self) -> bool:
        """One more chunk fully acknowledged.  True when the op finishes."""
        self.acked_chunks += 1
        if self.acked_chunks > self.total_chunks:
            raise AssertionError("more chunk acks than chunks")
        return self.complete


@dataclass
class BulkRecvState:
    """Receiver-side progress of one incoming transfer."""

    src: int
    token: int
    addr: int
    total_len: int
    handler: int
    handler_args: Tuple[int, ...]
    received: int = 0

    def add(self, nbytes: int) -> bool:
        """Record ``nbytes`` landing.  True when the transfer completes."""
        self.received += nbytes
        if self.received > self.total_len:
            raise AssertionError(
                f"bulk overrun: {self.received} > {self.total_len} "
                f"(src={self.src}, token={self.token})"
            )
        return self.received == self.total_len
