"""Protocol constants and calibrated software costs for SP AM (§2.2, §2.5).

Window sizes: a chunk is 36 packets, the window "must be at least twice as
large as a chunk"; the paper chooses 72 for requests and 76 for replies
(the extra 4 accommodate start-up request messages' replies).

The :class:`AMCosts` knobs are calibrated so the simulated call costs land
on Table 2 (am_request_1..4 = 7.7..8.2 us, am_reply_1..4 = 4.0..4.4 us)
and the derived figures on Table 3; see DESIGN.md §4 and
``tests/am/test_calibration.py`` which pins all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.params import (
    CHUNK_BYTES,
    CHUNK_PACKETS,
    PACKET_PAYLOAD_BYTES,
)

__all__ = [
    "REQUEST_CHANNEL",
    "REPLY_CHANNEL",
    "REQUEST_WINDOW",
    "REPLY_WINDOW",
    "CHUNK_BYTES",
    "CHUNK_PACKETS",
    "PACKET_PAYLOAD_BYTES",
    "ACK_FRACTION",
    "RDZV_CROSSOVER",
    "XFER_MODES",
    "RDMA_HEADER_BYTES",
    "AMCosts",
]

#: traffic classes with independent sliding windows (§2.2)
REQUEST_CHANNEL = 0
REPLY_CHANNEL = 1

#: window sizes in packets: 72 for requests, 76 for replies (§2.2)
REQUEST_WINDOW = 2 * CHUNK_PACKETS          # 72
REPLY_WINDOW = 2 * CHUNK_PACKETS + 4        # 76

#: the receiver issues an explicit ack when received-but-unacknowledged
#: traffic reaches window/ACK_FRACTION (§2.2: "when one-quarter of the
#: window remains unacknowledged")
ACK_FRACTION = 4

#: eager/rendezvous crossover in bytes for ``xfer_mode="auto"``: stores
#: strictly larger than this go rendezvous.  One chunk is the natural
#: boundary — below it the RTS/CTS round trip (~one AM RTT, 51 us)
#: cannot be amortized against the saved per-packet receiver work
RDZV_CROSSOVER = CHUNK_BYTES

#: accepted values of the endpoint's ``xfer_mode`` knob
XFER_MODES = ("eager", "rendezvous", "auto")

#: on-wire header of an RDMA_DATA packet.  Once the CTS has pinned the
#: destination region, the DMA stream needs only route + sequence +
#: intra-chunk offset + op token + CRC — no handler id, no argument
#: words, no piggybacked acks (control rides RTS/CTS/FIN/ACK packets).
#: The leaner framing is the same effect that gives MPL's 30-byte header
#: its bandwidth edge over AM's 32 (Table 3), taken further.
RDMA_HEADER_BYTES = 16


@dataclass(frozen=True)
class AMCosts:
    """Host-CPU costs of the SP AM software layer, in microseconds.

    Together with the HostParams costs (cache flush, MicroChannel PIO,
    poll costs) these reproduce Table 2.  The breakdown of e.g.
    ``am_request_1``'s 7.7 us:

        req_fixed (4.4)  + flush of the FIFO entry (0.18, one thin-node
        line for a small packet) + length-array PIO (1.0) +
        save-for-retransmission (0.8) + the empty am_poll it performs
        after sending (1.3)  ~= 7.7 us.
    """

    #: request build/bookkeeping before the packet is visible (seq
    #: assignment, credit check, header+args into the FIFO entry)
    req_fixed: float = 4.42
    #: same for replies — cheaper: no credit wait, no trailing poll (§2.5)
    rep_fixed: float = 2.02
    #: marginal cost per extra 32-bit argument word (Table 2: ~0.15 us)
    per_word: float = 0.15
    #: copying a sequenced packet aside for possible retransmission (§2.2)
    save_retransmit: float = 0.8
    #: fixed cost of an am_store/am_store_async call (op setup, chunking)
    store_fixed: float = 3.5
    #: per-packet cost inside a bulk transfer, excluding the cache flush
    #: and the (batched) length-array PIO:  36 packets x (this + flush
    #: 0.72) + 9 batch PIOs ~= the paper's 172 us chunk-send overhead
    store_per_packet: float = 3.8
    #: extra fixed cost of am_get (building the get request)
    get_fixed: float = 3.0
    #: receiver-side cost of serving one get request (locating the region)
    get_serve: float = 2.0
    #: building + sending an explicit ACK/NACK/keepalive control packet
    ack_send: float = 1.2
    #: flow-control bookkeeping when a NACK triggers go-back-N
    nack_process: float = 1.5
    #: simulated-time between keep-alive probes while blocked on missing
    #: acks ("timeouts are emulated by counting unsuccessful polls"):
    #: ~300 empty polls x 1.3 us
    keepalive_idle: float = 400.0
    #: receiver-side stalled-assembly watchdog: a partially reassembled
    #: chunk with no arrivals for this long NACKs the sender (a mid-chunk
    #: loss produces no sequence gap, so the normal NACK path can't see
    #: it).  Must exceed the worst intra-chunk packet gap (~7 us) by a
    #: wide margin and stay below keepalive_idle so recovery beats the
    #: keep-alive's exponential backoff.
    assembly_stall_timeout: float = 150.0
    #: per-packet receiver cost of copying bulk payload to the user buffer
    #: is charged via HostParams.copy_rate; this is the fixed part
    bulk_recv_fixed: float = 0.3
    #: building an RTS (advertising length + source region) — like a
    #: small request minus the handler-argument marshalling
    rts_fixed: float = 3.0
    #: receiver-side CTS service: allocate the destination region, build
    #: and send the grant
    cts_fixed: float = 2.5
    #: per-packet sender cost of descriptor-driven RDMA streaming — the
    #: host only rings the DMA engine, it never copies or flushes the
    #: payload through the FIFO entry, so this is far below
    #: store_per_packet (the crossover exists because of this gap)
    rdma_per_packet: float = 0.6
    #: fixed sender cost of posting one RDMA chunk descriptor
    rdma_post_fixed: float = 1.2
    #: receiver-side completion bookkeeping when the FIN arrives
    fin_process: float = 1.0
