"""The SP Active Messages endpoint: one per node, over the TB2 adapter (§2).

All public operations are generators (``yield from am.request_2(...)``);
they charge the calibrated host costs of Table 2, move real packets through
the simulated adapter/switch, and implement §2.2's reliability machinery:

* per-peer, per-channel sliding windows (72 request / 76 reply packets),
* piggybacked cumulative acks on every sequenced packet,
* explicit acks at a quarter window and one ack per bulk chunk,
* NACK-triggered go-back-N retransmission of saved packets,
* keep-alive probes when acks stop arriving (emulating the paper's
  unsuccessful-poll timeout),
* pipelined chunk protocol for stores and gets (Figure 2).

Handlers run inside :meth:`poll`, may charge CPU by being generators, and
may send at most one reply through their :class:`ReplyToken`.
"""

from __future__ import annotations

from collections import deque
from types import GeneratorType
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.am.bulk import BulkRecvState, BulkSendOp, packets_in_chunk
from repro.am.constants import (
    ACK_FRACTION,
    AMCosts,
    PACKET_PAYLOAD_BYTES,
    RDMA_HEADER_BYTES,
    RDZV_CROSSOVER,
    REPLY_CHANNEL,
    REPLY_WINDOW,
    REQUEST_CHANNEL,
    REQUEST_WINDOW,
    XFER_MODES,
)
from repro.am.handler import HandlerRestrictionError, HandlerTable, run_handler
from repro.am.window import RecvWindow, SendWindow
from repro.hardware.cache import copy_cost, flush_cost
from repro.hardware.packet import Packet, PacketKind
from repro.sim.primitives import TIMED_OUT, Delay, Timeout
from repro.sim.stats import StatRegistry

# PacketKind members as module constants: the receive path compares the
# kind of every arriving packet, and an identity check against a cached
# global skips the enum attribute lookup per compare
_REQUEST = PacketKind.REQUEST
_REPLY = PacketKind.REPLY
_STORE_DATA = PacketKind.STORE_DATA
_GET_DATA = PacketKind.GET_DATA
_GET_REQUEST = PacketKind.GET_REQUEST
_ACK = PacketKind.ACK
_NACK = PacketKind.NACK
_KEEPALIVE = PacketKind.KEEPALIVE
_RAW = PacketKind.RAW
_RTS = PacketKind.RTS
_CTS = PacketKind.CTS
_RDMA_DATA = PacketKind.RDMA_DATA
_RDMA_FIN = PacketKind.RDMA_FIN

#: sentinel chunk index marking a rendezvous FIN in ``pending_units``
_FIN_UNIT = -2


class _RdmaGrant:
    """Receiver-side record of one granted rendezvous destination region.

    Created when an RTS is delivered (CTS goes back immediately or from a
    later poll), written into by the RDMA landing path, and released
    exactly once when the FIN is delivered.  ``progress_t`` feeds the
    rendezvous stall watchdog: a grant with no landings for the stall
    timeout either retransmits its CTS (the sender never started — the
    CTS was lost) or NACKs the sender (tail loss after the last data
    packet, which produces no sequence gap the normal path could see).
    """

    __slots__ = ("src", "token", "addr", "total_len", "received",
                 "handler", "handler_args", "cts_seq", "granted_t",
                 "progress_t", "stall_nack_t")

    def __init__(self, src: int, token: int, addr: int, total_len: int,
                 handler: int, handler_args: Tuple[int, ...], now: float):
        self.src = src
        self.token = token
        self.addr = addr
        self.total_len = total_len
        self.received = 0
        self.handler = handler
        self.handler_args = handler_args
        self.cts_seq = -1
        self.granted_t = now
        self.progress_t = now
        self.stall_nack_t = float("-inf")


class _PeerState:
    """Everything one endpoint tracks about one remote node."""

    __slots__ = ("send", "recv", "pending_units")

    def __init__(self) -> None:
        self.send = (SendWindow(REQUEST_WINDOW), SendWindow(REPLY_WINDOW))
        self.recv = (
            RecvWindow(REQUEST_WINDOW, REQUEST_WINDOW // ACK_FRACTION),
            RecvWindow(REPLY_WINDOW, REPLY_WINDOW // ACK_FRACTION),
        )
        #: per channel: sorted list of (end_seq, op, chunk_idx) pending acks
        self.pending_units: Tuple[list, list] = ([], [])


class ReplyToken:
    """Handed to request/store handlers; allows at most one reply."""

    __slots__ = ("am", "src", "_used")

    def __init__(self, am: "SPAM", src: int):
        self.am = am
        self.src = src
        self._used = False

    def _claim(self) -> None:
        if self._used:
            raise HandlerRestrictionError("handler already sent its one reply")
        self._used = True

    def reply_1(self, handler: Callable, a0: int):
        """Send the handler's one 1-word reply back to the requester."""
        return self._reply(handler, (a0,))

    def reply_2(self, handler: Callable, a0: int, a1: int):
        """Send the handler's one 2-word reply back to the requester."""
        return self._reply(handler, (a0, a1))

    def reply_3(self, handler: Callable, a0: int, a1: int, a2: int):
        """Send the handler's one 3-word reply back to the requester."""
        return self._reply(handler, (a0, a1, a2))

    def reply_4(self, handler: Callable, a0: int, a1: int, a2: int, a3: int):
        """Send the handler's one 4-word reply back to the requester."""
        return self._reply(handler, (a0, a1, a2, a3))

    def _reply(self, handler: Callable, args: Tuple[int, ...]):
        self._claim()
        return self.am._send_reply(self.src, handler, args)


class SPAM:
    """SP Active Messages on one node.  Access as ``node.am``."""

    def __init__(self, node, handlers: HandlerTable, costs: Optional[AMCosts] = None,
                 xfer_mode: str = "eager",
                 rdzv_crossover: Optional[int] = None):
        if xfer_mode not in XFER_MODES:
            raise ValueError(
                f"xfer_mode must be one of {XFER_MODES}, got {xfer_mode!r}"
            )
        self.node = node
        self.adapter = node.adapter
        self.handlers = handlers
        self.costs = costs if costs is not None else AMCosts()
        #: large-message strategy: "eager" (chunk protocol through the
        #: host path, the default), "rendezvous" (RTS/CTS + simulated
        #: RDMA), or "auto" (rendezvous above ``rdzv_crossover`` bytes)
        self.xfer_mode = xfer_mode
        self.rdzv_crossover = (RDZV_CROSSOVER if rdzv_crossover is None
                               else rdzv_crossover)
        self.sim = node.sim
        self.host = node.host
        self.stats = StatRegistry(f"am[{node.id}].")
        self._peers: Dict[int, _PeerState] = {}
        self._in_handler = False
        #: replies that found the reply window or send FIFO full; drained
        #: by subsequent polls
        self._deferred_replies: Deque[Tuple[int, int, Tuple[int, ...]]] = deque()
        #: bulk receive reassembly, keyed by (src, op_token)
        self._bulk_recv: Dict[Tuple[int, int], BulkRecvState] = {}
        #: bulk send ops with chunks still to transmit
        self._active_sends: List[BulkSendOp] = []
        self._next_token = 1
        #: raw (flow-control-free) packets land here for repro.am.raw
        self._raw_inbox: Deque[Packet] = deque()
        #: blocking-get completion events, keyed like _bulk_recv
        self._get_waiters: Dict[Tuple[int, int], Any] = {}
        #: rendezvous grants this node is receiving into, keyed by
        #: (src, op_token); released exactly once at FIN delivery
        self._rdma_grants: Dict[Tuple[int, int], _RdmaGrant] = {}
        #: grants whose CTS could not go out when the RTS was delivered
        #: (reply window or send FIFO full); drained by _do_duties
        self._deferred_cts: Deque[Tuple[int, int]] = deque()
        #: peers owed a chunk ack for RDMA landings (the DMA path runs
        #: with no host CPU, so the ack is a poll-time duty)
        self._rdma_ack_due: set = set()
        #: last RDMA landing time per source.  The tail-loss watchdog
        #: keys off the per-peer *stream*, not individual grants: a
        #: pipelined sender interleaves chunks of several ops, so any one
        #: grant may legitimately sit idle while the channel is flowing
        self._rdma_stream_t: Dict[int, float] = {}
        #: last stall-NACK time per source (rate limit, one per timeout)
        self._rdma_stall_nack_t: Dict[int, float] = {}
        #: rendezvous-invariant checker (repro.check), None when unchecked
        self.rdma_check = None
        self._sendable_ops_dirty = False
        #: keep-alive backoff: doubles while probes go unanswered (peers
        #: deep in compute phases), resets on any ack progress
        self._keepalive_backoff = 1.0
        #: network time attributed by the Split-C profiler
        self.net_time_accum = 0.0
        #: invariant sanitizer (repro.check), None when unchecked; set by
        #: Sanitizer.attach so freshly created peer windows get checkers
        self.check = None
        # hot-path caches: the two fixed poll charges are yielded as shared
        # Delay instances (the engine only reads ``duration``), and the
        # per-message counters are resolved to Counter objects once instead
        # of going through the registry dict on every packet
        self._poll_empty_delay = Delay(self.host.poll_empty)
        self._poll_pkt_delay = Delay(self.host.poll_per_packet)
        self._save_retx_delay = Delay(self.costs.save_retransmit)
        self._mc_pio_delay = Delay(self.host.mc_pio)
        self._c_requests_sent = self.stats.counter("requests_sent")
        self._c_replies_sent = self.stats.counter("replies_sent")
        self._c_handlers_run = self.stats.counter("handlers_run")
        # observability objects resolved once per hub (the hub is attached
        # before traffic starts and never swapped mid-run)
        self._occ_hist = None
        self._occ_series = self.stats.series("window_occupancy")
        self._handler_hist = None
        #: RDMA landings bypass the host path entirely — the adapter hands
        #: them to this sink at visible time
        self.adapter.rdma_sink = self._rdma_land
        node.am = self

    # ------------------------------------------------------------------
    # public GAM 1.1 API — all generators
    # ------------------------------------------------------------------

    def register(self, fn: Callable) -> int:
        """Register an AM handler; same id on every node of the machine."""
        return self.handlers.register(fn)

    def request_1(self, dst, handler, a0):
        """Send a 1-word request; ``handler`` runs on ``dst`` (Table 1)."""
        return self._request(dst, handler, (a0,))

    def request_2(self, dst, handler, a0, a1):
        """Send a 2-word request; ``handler`` runs on ``dst`` (Table 1)."""
        return self._request(dst, handler, (a0, a1))

    def request_3(self, dst, handler, a0, a1, a2):
        """Send a 3-word request; ``handler`` runs on ``dst`` (Table 1)."""
        return self._request(dst, handler, (a0, a1, a2))

    def request_4(self, dst, handler, a0, a1, a2, a3):
        """Send a 4-word request; ``handler`` runs on ``dst`` (Table 1)."""
        return self._request(dst, handler, (a0, a1, a2, a3))

    def store(self, dst: int, local_addr: int, remote_addr: int, nbytes: int,
              handler: Callable = None, arg: int = 0):
        """Blocking bulk store: returns when every chunk is acknowledged
        ("the sender blocks after every transfer waiting for an
        acknowledgement", §2.4)."""
        op = yield from self._begin_store(dst, local_addr, remote_addr,
                                          nbytes, handler, arg)
        yield from self.wait_op(op)
        return op

    def store_async(self, dst: int, local_addr: int, remote_addr: int,
                    nbytes: int, handler: Callable = None, arg: int = 0,
                    completion_fn: Optional[Callable] = None):
        """Non-blocking bulk store: returns a :class:`BulkSendOp` handle
        immediately after injecting what the chunk pipeline allows;
        ``completion_fn(op)`` runs (inside a later poll) when done."""
        op = yield from self._begin_store(dst, local_addr, remote_addr,
                                          nbytes, handler, arg, completion_fn)
        return op

    def get(self, dst: int, remote_addr: int, local_addr: int, nbytes: int,
            handler: Callable = None, arg: int = 0):
        """Blocking bulk get: fetch ``nbytes`` from ``dst``'s memory."""
        op_done = self.sim.event(f"am[{self.node.id}].get")
        yield from self._begin_get(dst, remote_addr, local_addr, nbytes,
                                   handler, arg, op_done)
        while not op_done.triggered:
            yield from self._wait_progress()
        return op_done.value

    def get_async(self, dst: int, remote_addr: int, local_addr: int,
                  nbytes: int, handler: Callable = None, arg: int = 0):
        """Non-blocking get; completion signalled via the returned event
        (and ``handler`` runs locally when the data has landed)."""
        op_done = self.sim.event(f"am[{self.node.id}].get")
        yield from self._begin_get(dst, remote_addr, local_addr, nbytes,
                                   handler, arg, op_done)
        return op_done

    def poll(self, limit: Optional[int] = None):
        """am_poll: drain arrived packets, dispatching handlers (§1.1).

        Charges the paper's 1.3 us empty-poll cost plus 1.8 us per
        received message (§2.5).  Returns the number of messages handled.
        """
        if self._in_handler:
            raise HandlerRestrictionError("am_poll may not be called from a handler")
        # inlined node.compute(poll_empty): no generator frame per poll
        self.node.cpu_busy_us += self._poll_empty_delay.duration
        yield self._poll_empty_delay
        return (yield from self._drain(limit))

    def wait_op(self, op: BulkSendOp):
        """Block until a bulk op completes (all chunks acknowledged)."""
        while not op.done.triggered:
            yield from self._wait_progress()

    # ------------------------------------------------------------------
    # request / reply internals
    # ------------------------------------------------------------------

    def _peer(self, dst: int) -> _PeerState:
        st = self._peers.get(dst)
        if st is None:
            st = self._peers[dst] = _PeerState()
            if self.check is not None:
                self.check.adopt_peer(self, dst, st)
        return st

    @property
    def _obs(self):
        """The machine's observability hub (None when unobserved)."""
        return self.adapter.obs

    def _note_occupancy(self, win: "SendWindow") -> None:
        """Sample sliding-window occupancy into the observability layer
        (histogram for percentile queries + a time series on this
        endpoint's registry)."""
        obs = self._obs
        if obs is not None:
            h = self._occ_hist
            if h is None:
                h = self._occ_hist = obs.hist("am.window_occupancy")
            h.observe(win.in_flight)
            self._occ_series.record(self.sim.now, win.in_flight)

    def _request(self, dst: int, handler: Callable, args: Tuple[int, ...]):
        if self._in_handler:
            raise HandlerRestrictionError(
                "handlers may not issue requests; reply via the token"
            )
        if dst == self.node.id:
            raise ValueError("AM requests must address a remote node")
        c = self.costs
        peer = self._peer(dst)
        win = peer.send[REQUEST_CHANNEL]
        # credit + FIFO space: am_request services the network while blocked
        while not (win.can_send(1) and self.adapter.host_can_stage(1)):
            yield from self._wait_progress()
        hid = self.handlers.register(handler)
        pkt = Packet(src=self.node.id, dst=dst, kind=PacketKind.REQUEST,
                     channel=REQUEST_CHANNEL, handler=hid, args=args)
        if self._obs is not None:
            self._obs.begin_message(pkt, self.sim.now)
        # build + flush the FIFO entry, then the length-array PIO
        # (inlined node.compute: one generator frame less per request)
        node = self.node
        cost = (c.req_fixed + c.per_word * (len(args) - 1)
                + flush_cost(pkt.wire_bytes, self.host) + self.host.mc_pio)
        node.cpu_busy_us += cost
        yield Delay(cost)
        seq = win.allocate(1)
        self._note_occupancy(win)
        pkt.seq = seq
        self._stamp_acks(pkt, peer)
        self.adapter.host_stage(pkt)
        self.adapter.host_arm()
        node.cpu_busy_us += c.save_retransmit
        yield self._save_retx_delay
        win.save(seq, [pkt])
        self._c_requests_sent.value += 1
        # "each call to am_request checks the network" (§1.1)
        yield from self.poll()

    def _send_reply(self, dst: int, handler: Callable, args: Tuple[int, ...]):
        """Reply path — runs inside a handler (driven by run_handler)."""
        c = self.costs
        t_begin = self.sim.now
        hid = self.handlers.register(handler)
        yield from self.node.compute(
            c.rep_fixed + c.per_word * (len(args) - 1)
        )
        peer = self._peer(dst)
        win = peer.send[REPLY_CHANNEL]
        if not (win.can_send(1) and self.adapter.host_can_stage(1)):
            # handlers cannot block: defer; a later poll sends it
            self._deferred_replies.append((dst, hid, args))
            self.stats.count("replies_deferred")
            return
        yield from self._emit_reply(dst, hid, args, t_begin)

    def _emit_reply(self, dst: int, hid: int, args: Tuple[int, ...],
                    t_begin: Optional[float] = None):
        c = self.costs
        peer = self._peer(dst)
        win = peer.send[REPLY_CHANNEL]
        pkt = Packet(src=self.node.id, dst=dst, kind=PacketKind.REPLY,
                     channel=REPLY_CHANNEL, handler=hid, args=args)
        if self._obs is not None:
            # the reply's life starts when its handler began building it
            # (deferred replies: when the draining poll emits them)
            self._obs.begin_message(
                pkt, self.sim.now if t_begin is None else t_begin)
        # inlined node.compute (hot reply path)
        node = self.node
        cost = flush_cost(pkt.wire_bytes, self.host) + self.host.mc_pio
        node.cpu_busy_us += cost
        yield Delay(cost)
        pkt.seq = win.allocate(1)
        self._note_occupancy(win)
        self._stamp_acks(pkt, peer)
        self.adapter.host_stage(pkt)
        self.adapter.host_arm()
        node.cpu_busy_us += c.save_retransmit
        yield self._save_retx_delay
        win.save(pkt.seq, [pkt])
        self._c_replies_sent.value += 1

    def _stamp_acks(self, pkt: Packet, peer: _PeerState) -> None:
        """Piggyback cumulative acks for both channels (§2.2)."""
        pkt.ack_req = peer.recv[REQUEST_CHANNEL].ack_value()
        pkt.ack_rep = peer.recv[REPLY_CHANNEL].ack_value()

    # ------------------------------------------------------------------
    # bulk transfer internals
    # ------------------------------------------------------------------

    def _begin_store(self, dst, local_addr, remote_addr, nbytes,
                     handler, arg, completion_fn=None):
        if self._in_handler:
            raise HandlerRestrictionError("handlers may not start stores")
        if nbytes < 0:
            raise ValueError("negative store size")
        c = self.costs
        yield from self.node.compute(c.store_fixed)
        hid = self.handlers.register(handler) if handler is not None else -1
        data = self.node.memory.read(local_addr, nbytes)
        done = self.sim.event(f"am[{self.node.id}].store")
        # `arg` may be a single word or a tuple of up to four words; the
        # completion handler receives them after (addr, nbytes) — this is
        # how MPI's buffered protocol ships its envelope (§4.1)
        handler_args = arg if isinstance(arg, tuple) else (arg,)
        mode = self.xfer_mode
        rdzv = (nbytes > 0
                and (mode == "rendezvous"
                     or (mode == "auto" and nbytes > self.rdzv_crossover)))
        op = BulkSendOp(self._take_token(), dst, REQUEST_CHANNEL, data,
                        remote_addr, hid, handler_args, done, completion_fn,
                        rdzv=rdzv)
        self.stats.count("stores_started")
        if op.total_chunks == 0:
            done.succeed(op)
            if completion_fn is not None:
                completion_fn(op)
            return op
        self._active_sends.append(op)
        if rdzv:
            yield from self._send_rts(op)
        else:
            yield from self._pump_send(op)
        return op

    def _begin_get(self, dst, remote_addr, local_addr, nbytes,
                   handler, arg, op_done):
        if self._in_handler:
            raise HandlerRestrictionError("handlers may not start gets")
        if nbytes <= 0:
            raise ValueError("get size must be positive")
        c = self.costs
        peer = self._peer(dst)
        win = peer.send[REQUEST_CHANNEL]
        while not (win.can_send(1) and self.adapter.host_can_stage(1)):
            yield from self._wait_progress()
        hid = self.handlers.register(handler) if handler is not None else -1
        token = self._take_token()
        get_key = (dst, token)
        pkt = Packet(src=self.node.id, dst=dst, kind=PacketKind.GET_REQUEST,
                     channel=REQUEST_CHANNEL, handler=hid,
                     args=(remote_addr, arg), addr=local_addr,
                     total_len=nbytes, op_token=token)
        if self._obs is not None:
            self._obs.begin_message(pkt, self.sim.now)
        yield from self.node.compute(
            c.get_fixed + flush_cost(pkt.wire_bytes, self.host) + self.host.mc_pio
        )
        pkt.seq = win.allocate(1)
        self._note_occupancy(win)
        self._stamp_acks(pkt, peer)
        self.adapter.host_stage(pkt)
        self.adapter.host_arm()
        yield from self.node.compute(c.save_retransmit)
        win.save(pkt.seq, [pkt])
        # local completion bookkeeping: data arrives as GET_DATA
        self._bulk_recv[get_key] = BulkRecvState(
            src=dst, token=token, addr=local_addr, total_len=nbytes,
            handler=hid, handler_args=(arg,))
        self._get_waiters[get_key] = op_done
        self.stats.count("gets_started")

    def _take_token(self) -> int:
        t = self._next_token
        self._next_token += 1
        return t

    def _pump_send(self, op: BulkSendOp):
        """Transmit every chunk the pipeline and window currently allow."""
        if op.rdzv:
            yield from self._pump_rdzv(op)
            return
        c = self.costs
        peer = self._peer(op.dst)
        win = peer.send[op.channel]
        while op.sendable_now():
            npk = packets_in_chunk(op.chunks[op.next_chunk][1])
            if not win.can_send(npk):
                break
            idx, off, length = op.take_chunk()
            yield from self._send_chunk(op, peer, win, idx, off, length, npk)

    #: packets armed per length-array PIO during bulk transfers ("writing
    #: the lengths of several packets at a time", §2.1) — small enough
    #: that the wire starts while later packets are still being staged
    ARM_BATCH = 4

    def _send_chunk(self, op, peer, win, idx, off, length, npk):
        """Stage one chunk's packets, arming in ARM_BATCH sub-batches so
        injection overlaps transmission on the wire."""
        c = self.costs
        seq = win.allocate(npk)
        self._note_occupancy(win)
        kind = (PacketKind.STORE_DATA if op.channel == REQUEST_CHANNEL
                else PacketKind.GET_DATA)
        packets: List[Packet] = []
        for poff in range(0, length, PACKET_PAYLOAD_BYTES):
            payload = op.data[off + poff: off + min(poff + PACKET_PAYLOAD_BYTES, length)]
            pkt = Packet(src=self.node.id, dst=op.dst, kind=kind,
                         channel=op.channel, seq=seq,
                         handler=op.handler, args=op.handler_args,
                         payload=payload, addr=op.remote_addr,
                         offset=off + poff, total_len=len(op.data),
                         chunk_packets=npk, op_token=op.token)
            self._stamp_acks(pkt, peer)
            packets.append(pkt)
        staged = 0
        node = self.node
        adapter = self.adapter
        host = self.host
        mc_pio_delay = self._mc_pio_delay
        per_packet = c.store_per_packet
        for p in packets:
            # inlined node.compute: one generator frame less per packet
            cost = per_packet + flush_cost(p.wire_bytes, host)
            node.cpu_busy_us += cost
            yield Delay(cost)
            while not adapter.host_can_stage(1):
                # send-FIFO backpressure: wait for the adapter to drain one
                # entry (it transmits every ~6.5 us)
                yield Delay(3.3)
            adapter.host_stage(p)
            staged += 1
            if staged % self.ARM_BATCH == 0:
                node.cpu_busy_us += host.mc_pio
                yield mc_pio_delay
                adapter.host_arm()
        if staged % self.ARM_BATCH:
            node.cpu_busy_us += host.mc_pio
            yield mc_pio_delay
            adapter.host_arm()
        win.save(seq, packets)
        peer.pending_units[op.channel].append((seq + npk, op, idx))
        self.stats.count("chunks_sent")
        self.stats.count("bulk_packets_sent", npk)

    # ------------------------------------------------------------------
    # rendezvous (RTS/CTS + simulated RDMA) sender side
    # ------------------------------------------------------------------

    def _send_rts(self, op: BulkSendOp):
        """Advertise the transfer: length + destination region + token.

        The RTS is a sequenced request-channel packet, so loss recovery
        rides the normal machinery; additionally the rendezvous stall
        watchdog retransmits the saved clone if no CTS shows up within
        the assembly-stall timeout.
        """
        c = self.costs
        peer = self._peer(op.dst)
        win = peer.send[REQUEST_CHANNEL]
        while not (win.can_send(1) and self.adapter.host_can_stage(1)):
            yield from self._wait_progress()
        pkt = Packet(src=self.node.id, dst=op.dst, kind=PacketKind.RTS,
                     channel=REQUEST_CHANNEL, handler=op.handler,
                     args=op.handler_args, addr=op.remote_addr,
                     total_len=len(op.data), op_token=op.token)
        if self._obs is not None:
            self._obs.begin_message(pkt, self.sim.now)
        node = self.node
        cost = (c.rts_fixed + flush_cost(pkt.wire_bytes, self.host)
                + self.host.mc_pio)
        node.cpu_busy_us += cost
        yield Delay(cost)
        seq = win.allocate(1)
        self._note_occupancy(win)
        pkt.seq = seq
        op.rts_seq = seq
        op.rts_sent_t = self.sim.now
        self._stamp_acks(pkt, peer)
        self.adapter.host_stage(pkt)
        self.adapter.host_arm()
        node.cpu_busy_us += c.save_retransmit
        yield self._save_retx_delay
        win.save(seq, [pkt])
        self.stats.count("rts_sent")

    def _pump_rdzv(self, op: BulkSendOp):
        """Stream granted RDMA chunks; queue the FIN after the last one."""
        if not op.cts_granted:
            return
        peer = self._peer(op.dst)
        win = peer.send[op.channel]
        while op.sendable_now():
            npk = packets_in_chunk(op.chunks[op.next_chunk][1])
            if not win.can_send(npk):
                break
            idx, off, length = op.take_chunk()
            yield from self._send_rdma_chunk(op, peer, win, idx, off,
                                             length, npk)
        if (op.next_chunk >= op.total_chunks and not op.fin_sent
                and win.can_send(1) and self.adapter.host_can_stage(1)):
            yield from self._send_fin(op, peer, win)

    def _send_rdma_chunk(self, op, peer, win, idx, off, length, npk):
        """Post one chunk of RDMA_DATA descriptors.

        Far cheaper than :meth:`_send_chunk`: the host rings the DMA
        engine with a descriptor per packet but never copies or flushes
        the payload through a FIFO entry — this cost gap (rdma_per_packet
        vs store_per_packet + flush) is what the crossover buys.
        """
        c = self.costs
        seq = win.allocate(npk)
        self._note_occupancy(win)
        packets: List[Packet] = []
        for poff in range(0, length, PACKET_PAYLOAD_BYTES):
            payload = op.data[off + poff: off + min(poff + PACKET_PAYLOAD_BYTES, length)]
            # lean framing, no piggybacked acks: the granted region is
            # pinned, so each packet carries only what the DMA engine
            # needs (the FIN/control packets carry this op's acks)
            pkt = Packet(src=self.node.id, dst=op.dst,
                         kind=PacketKind.RDMA_DATA,
                         channel=op.channel, seq=seq,
                         payload=payload, addr=op.remote_addr,
                         offset=off + poff, total_len=len(op.data),
                         chunk_packets=npk, op_token=op.token,
                         header_bytes=RDMA_HEADER_BYTES)
            packets.append(pkt)
        node = self.node
        adapter = self.adapter
        host = self.host
        mc_pio_delay = self._mc_pio_delay
        node.cpu_busy_us += c.rdma_post_fixed
        yield Delay(c.rdma_post_fixed)
        per_packet = c.rdma_per_packet
        staged = 0
        for p in packets:
            node.cpu_busy_us += per_packet
            yield Delay(per_packet)
            while not adapter.host_can_stage(1):
                # adapter TX backpressure: the DMA engine shares the send
                # pipeline with everything else on this node
                yield Delay(3.3)
            adapter.host_stage(p)
            staged += 1
            if staged % self.ARM_BATCH == 0:
                node.cpu_busy_us += host.mc_pio
                yield mc_pio_delay
                adapter.host_arm()
        if staged % self.ARM_BATCH:
            node.cpu_busy_us += host.mc_pio
            yield mc_pio_delay
            adapter.host_arm()
        win.save(seq, packets)
        peer.pending_units[op.channel].append((seq + npk, op, idx))
        self.stats.count("rdma_chunks_sent")
        self.stats.count("rdma_packets_sent", npk)

    def _send_fin(self, op, peer, win):
        """Completion notification, sequenced after the last RDMA_DATA:
        in-order window delivery guarantees the receiver sees it only
        once every payload packet has landed (or go-back-N re-sends)."""
        c = self.costs
        pkt = Packet(src=self.node.id, dst=op.dst, kind=PacketKind.RDMA_FIN,
                     channel=op.channel, handler=op.handler,
                     args=op.handler_args, addr=op.remote_addr,
                     total_len=len(op.data), op_token=op.token)
        if self._obs is not None:
            self._obs.begin_message(pkt, self.sim.now)
        node = self.node
        cost = (c.ack_send + flush_cost(pkt.wire_bytes, self.host)
                + self.host.mc_pio)
        node.cpu_busy_us += cost
        yield Delay(cost)
        seq = win.allocate(1)
        self._note_occupancy(win)
        pkt.seq = seq
        self._stamp_acks(pkt, peer)
        self.adapter.host_stage(pkt)
        self.adapter.host_arm()
        node.cpu_busy_us += c.save_retransmit
        yield self._save_retx_delay
        win.save(seq, [pkt])
        op.fin_sent = True
        peer.pending_units[op.channel].append((seq + 1, op, _FIN_UNIT))
        self.stats.count("fins_sent")

    # ------------------------------------------------------------------
    # the poll loop
    # ------------------------------------------------------------------

    def _drain(self, limit: Optional[int] = None):
        """Consume arrived packets + perform flow-control duties."""
        handled = 0
        node = self.node
        adapter = self.adapter
        fifo = adapter.recv_fifo
        pkt_delay = self._poll_pkt_delay
        while fifo.visible:
            if limit is not None and handled >= limit:
                break
            pkt = adapter.host_recv_consume()
            node.cpu_busy_us += pkt_delay.duration
            yield pkt_delay
            yield from self._process(pkt)
            handled += 1
            if fifo.should_pop():
                # lazy pop: flush the consumed entries + one PIO (§2.1)
                batch = fifo.pending_pop
                cost = self.host.mc_pio + flush_cost(batch * 256, self.host)
                node.cpu_busy_us += cost  # inlined node.compute
                yield Delay(cost)
                adapter.host_recv_pop_batch()
        if self._duties_pending():
            yield from self._do_duties()
        return handled

    def _process(self, pkt: Packet):
        self._apply_acks(pkt)
        kind = pkt.kind
        if kind is _REQUEST or kind is _REPLY:
            # _process_small + _dispatch + run_handler, flattened: this is
            # the dominant receive path and every nested ``yield from``
            # frame is traversed again on each of the handler's yields
            peer = self._peers.get(pkt.src)  # inlined _peer fast path
            if peer is None:
                peer = self._peer(pkt.src)
            rwin = peer.recv[pkt.channel]
            verdict, _unit = rwin.accept(pkt)
            if verdict == "deliver":
                fn = self.handlers.lookup(pkt.handler)
                token = ReplyToken(self, pkt.src)
                obs = self._obs
                t0 = self.sim.now
                if obs is not None:
                    obs.mark_packet(pkt, "handler_start", t0)
                self._in_handler = True
                try:
                    result = fn(token, *pkt.args)
                    if type(result) is GeneratorType:
                        yield from result
                finally:
                    self._in_handler = False
                if obs is not None:
                    obs.mark_packet(pkt, "handler_end", self.sim.now)
                    h = self._handler_hist
                    if h is None:
                        h = self._handler_hist = obs.hist("am.handler_us")
                    h.observe(self.sim.now - t0)
                self._c_handlers_run.value += 1
            elif verdict == "duplicate":
                self.stats.count("duplicates_dropped")
            elif verdict == "nack":
                yield from self._send_nack(pkt.src, rwin)
        elif kind is _STORE_DATA or kind is _GET_DATA:
            yield from self._process_bulk(pkt)
        elif kind is _GET_REQUEST:
            yield from self._process_get_request(pkt)
        elif kind is _RTS:
            yield from self._process_rts(pkt)
        elif kind is _CTS:
            yield from self._process_cts(pkt)
        elif kind is _RDMA_FIN:
            yield from self._process_fin(pkt)
        elif kind is _ACK:
            pass  # carried only its ack fields, already applied
        elif kind is _NACK:
            yield from self._process_nack(pkt)
        elif kind is _KEEPALIVE:
            yield from self._process_keepalive(pkt)
        elif kind is _RAW:
            self._raw_inbox.append(pkt)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled packet kind {kind}")

    def _apply_acks(self, pkt: Packet):
        # unrolled over the two channels: this runs for every packet
        ack_req = pkt.ack_req
        ack_rep = pkt.ack_rep
        if ack_req < 0 and ack_rep < 0:
            return
        peer = self._peers.get(pkt.src)  # inlined _peer fast path
        if peer is None:
            peer = self._peer(pkt.src)
        if ack_req >= 0:
            win = peer.send[REQUEST_CHANNEL]
            if ack_req > win.base:
                win.on_ack(ack_req)
                self._keepalive_backoff = 1.0
                self._complete_units(peer, REQUEST_CHANNEL, ack_req)
        if ack_rep >= 0:
            win = peer.send[REPLY_CHANNEL]
            if ack_rep > win.base:
                win.on_ack(ack_rep)
                self._keepalive_backoff = 1.0
                self._complete_units(peer, REPLY_CHANNEL, ack_rep)

    def _complete_units(self, peer: _PeerState, channel: int, ack: int):
        pending = peer.pending_units[channel]
        while pending and pending[0][0] <= ack:
            _end, op, idx = pending.pop(0)
            if idx == _FIN_UNIT:
                op.fin_acked = True
                if op.complete:
                    self._finish_send_op(op)
            elif op.on_chunk_acked() and (not op.rdzv or op.fin_acked):
                self._finish_send_op(op)
            self._sendable_ops_dirty = True

    def _finish_send_op(self, op: BulkSendOp):
        if op in self._active_sends:
            self._active_sends.remove(op)
        op.done.succeed(op)
        if op.completion_fn is not None:
            op.completion_fn(op)
        self.stats.count("bulk_ops_completed")

    def _process_bulk(self, pkt: Packet):
        channel = pkt.channel
        peer = self._peers.get(pkt.src)  # inlined _peer fast path
        if peer is None:
            peer = self._peer(pkt.src)
        rwin = peer.recv[channel]
        verdict, unit = rwin.accept(pkt)
        if rwin.has_partial_assembly and verdict in ("partial", "duplicate"):
            # feed the stalled-assembly watchdog (§2.2 gap-less loss);
            # duplicates count as progress too — they mean the sender's
            # go-back-N burst is in flight, so NACKing again would only
            # trigger another redundant full-window retransmission
            rwin.assembly_progress_t = self.sim.now
        if verdict in ("deliver", "partial"):
            # copy payload out of the FIFO entry into the user buffer
            # (inlined node.compute: one generator frame less per packet)
            node = self.node
            cost = (self.costs.bulk_recv_fixed
                    + copy_cost(len(pkt.payload), self.host))
            node.cpu_busy_us += cost
            yield Delay(cost)
            node.memory.write(pkt.addr + pkt.offset, pkt.payload)
            yield from self._bulk_progress(pkt)
            if verdict == "deliver":
                # one explicit acknowledgement per chunk (§2.2)
                yield from self._send_ack(pkt.src)
                self.stats.count("chunk_acks_sent")
        elif verdict == "duplicate":
            self.stats.count("duplicates_dropped")
        else:
            yield from self._send_nack(pkt.src, rwin)

    def _bulk_progress(self, pkt: Packet):
        key = (pkt.src, pkt.op_token)
        st = self._bulk_recv.get(key)
        if st is None:
            st = self._bulk_recv[key] = BulkRecvState(
                src=pkt.src, token=pkt.op_token, addr=pkt.addr,
                total_len=pkt.total_len, handler=pkt.handler,
                handler_args=pkt.args)
        if st.add(len(pkt.payload)):
            del self._bulk_recv[key]
            if pkt.kind == PacketKind.GET_DATA:
                waiter = self._get_waiters.pop(key, None)
                if waiter is not None:
                    waiter.succeed(st)
            if st.handler >= 0:
                fn = self.handlers.lookup(st.handler)
                token = ReplyToken(self, st.src)
                obs = self._obs
                t0 = self.sim.now
                if obs is not None:
                    obs.mark_packet(pkt, "handler_start", t0)
                self._in_handler = True
                try:
                    yield from run_handler(fn, token, st.addr, st.total_len,
                                           *st.handler_args)
                finally:
                    self._in_handler = False
                if obs is not None:
                    obs.mark_packet(pkt, "handler_end", self.sim.now)
                    h = self._handler_hist
                    if h is None:
                        h = self._handler_hist = obs.hist("am.handler_us")
                    h.observe(self.sim.now - t0)
            self.stats.count("bulk_recv_completed")

    # ------------------------------------------------------------------
    # rendezvous (RTS/CTS + simulated RDMA) receiver side
    # ------------------------------------------------------------------

    def _process_rts(self, pkt: Packet):
        """RTS delivered: grant the destination region and send the CTS."""
        peer = self._peer(pkt.src)
        rwin = peer.recv[pkt.channel]
        verdict, _ = rwin.accept(pkt)
        if verdict == "duplicate":
            # a stalled sender re-sent its RTS; if our CTS is still
            # unacked the CTS was probably lost — re-send the saved clone
            # instead of waiting out our own stall timer
            self.stats.count("duplicates_dropped")
            grant = self._rdma_grants.get((pkt.src, pkt.op_token))
            if grant is not None and grant.cts_seq >= 0:
                unit = peer.send[REPLY_CHANNEL]._saved.get(grant.cts_seq)
                if unit is not None:
                    yield from self._retransmit_unit(peer, unit)
                    self.stats.count("cts_retransmits")
            return
        if verdict == "nack":
            yield from self._send_nack(pkt.src, rwin)
            return
        grant = _RdmaGrant(pkt.src, pkt.op_token, pkt.addr, pkt.total_len,
                           pkt.handler, pkt.args, self.sim.now)
        self._rdma_grants[(pkt.src, pkt.op_token)] = grant
        if self.rdma_check is not None:
            self.rdma_check.on_grant(self, grant)
        self.stats.count("rts_received")
        win = peer.send[REPLY_CHANNEL]
        if win.can_send(1) and self.adapter.host_can_stage(1):
            yield from self._emit_cts(pkt.src, grant)
        else:
            # reply window or FIFO full: a later poll sends it (blocking
            # here would wedge the drain loop that frees the window)
            self._deferred_cts.append((pkt.src, pkt.op_token))
            self.stats.count("cts_deferred")

    def _emit_cts(self, dst: int, grant: _RdmaGrant):
        """Build + send the clear-to-send carrying the granted region."""
        c = self.costs
        peer = self._peer(dst)
        win = peer.send[REPLY_CHANNEL]
        pkt = Packet(src=self.node.id, dst=dst, kind=PacketKind.CTS,
                     channel=REPLY_CHANNEL, addr=grant.addr,
                     total_len=grant.total_len, op_token=grant.token)
        if self._obs is not None:
            self._obs.begin_message(pkt, self.sim.now)
        node = self.node
        cost = (c.cts_fixed + flush_cost(pkt.wire_bytes, self.host)
                + self.host.mc_pio)
        node.cpu_busy_us += cost
        yield Delay(cost)
        pkt.seq = win.allocate(1)
        self._note_occupancy(win)
        grant.cts_seq = pkt.seq
        grant.progress_t = self.sim.now
        self._stamp_acks(pkt, peer)
        self.adapter.host_stage(pkt)
        self.adapter.host_arm()
        node.cpu_busy_us += c.save_retransmit
        yield self._save_retx_delay
        win.save(pkt.seq, [pkt])
        self.stats.count("cts_sent")

    def _process_cts(self, pkt: Packet):
        """CTS delivered at the sender: open the RDMA pump."""
        peer = self._peer(pkt.src)
        rwin = peer.recv[pkt.channel]
        verdict, _ = rwin.accept(pkt)
        if verdict == "duplicate":
            self.stats.count("duplicates_dropped")
            return
        if verdict == "nack":
            yield from self._send_nack(pkt.src, rwin)
            return
        op = None
        for cand in self._active_sends:
            if (cand.rdzv and cand.dst == pkt.src
                    and cand.token == pkt.op_token):
                op = cand
                break
        if op is None or op.cts_granted:
            # the op already completed or this CTS re-delivered after a
            # window resync; nothing to grant
            self.stats.count("stale_cts_dropped")
            return
        op.cts_granted = True
        self.stats.count("cts_received")
        # ack the CTS explicitly: RDMA_DATA carries no piggybacked acks,
        # so nothing else would ack it until the FIN — leaving the
        # receiver's grant watchdog unable to tell "CTS lost" from "CTS
        # fine, stream long (or queued behind earlier ops)"
        yield from self._send_ack(pkt.src)
        yield from self._pump_rdzv(op)

    def _rdma_land(self, pkt: Packet) -> None:
        """RDMA_DATA landing — called by the adapter at visible time.

        Runs with **zero host CPU** (plain callback, no generator): the
        DMA engine writes the granted region directly.  Acks and NACKs it
        provokes are deferred to the host's poll loop via duty flags.  A
        sequence gap here may just mean older sequenced traffic is still
        sitting unpolled in the receive FIFO ahead of this landing, so a
        gap drops the packet silently and leaves recovery to the grant
        stall watchdog (a real loss shows up as no-progress).
        """
        self._apply_acks(pkt)
        peer = self._peers.get(pkt.src)
        if peer is None:
            peer = self._peer(pkt.src)
        rwin = peer.recv[pkt.channel]
        verdict, _ = rwin.accept(pkt)
        now = self.sim.now
        if rwin._assembly is not None and verdict in ("partial", "duplicate"):
            rwin.assembly_progress_t = now
        if verdict == "deliver" or verdict == "partial":
            self._rdma_stream_t[pkt.src] = now
            grant = self._rdma_grants.get((pkt.src, pkt.op_token))
            if self.rdma_check is not None:
                self.rdma_check.on_write(self, grant, pkt)
            if grant is None:
                # no active grant: the write has nowhere legal to land
                # (the sanitizer flags this as a CTS-before-write breach)
                self.stats.count("rdma_orphan_writes")
                return
            # the engine writes the *granted* region — the per-packet
            # address is never trusted after the CTS pinned the target
            self.node.memory.write(grant.addr + pkt.offset, pkt.payload)
            grant.received += len(pkt.payload)
            grant.progress_t = now
            if verdict == "deliver":
                # one explicit ack per completed chunk, sent host-side
                self._rdma_ack_due.add(pkt.src)
        elif verdict == "duplicate":
            self.stats.count("duplicates_dropped")
        else:
            self.stats.count("rdma_out_of_order_dropped")

    def _process_fin(self, pkt: Packet):
        """FIN delivered: release the grant, run the completion handler
        exactly once, and ack so the sender's op can finish."""
        peer = self._peer(pkt.src)
        rwin = peer.recv[pkt.channel]
        verdict, _ = rwin.accept(pkt)
        if verdict == "duplicate":
            self.stats.count("duplicates_dropped")
            return
        if verdict == "nack":
            yield from self._send_nack(pkt.src, rwin)
            return
        yield from self.node.compute(self.costs.fin_process)
        grant = self._rdma_grants.pop((pkt.src, pkt.op_token), None)
        if self.rdma_check is not None:
            self.rdma_check.on_fin(self, grant, pkt)
        if grant is None:
            # in-order delivery makes a FIN without a grant a protocol
            # breach (flagged above), not a recoverable condition
            self.stats.count("fin_without_grant")
            return
        if grant.handler >= 0:
            fn = self.handlers.lookup(grant.handler)
            token = ReplyToken(self, grant.src)
            obs = self._obs
            t0 = self.sim.now
            if obs is not None:
                obs.mark_packet(pkt, "handler_start", t0)
            self._in_handler = True
            try:
                yield from run_handler(fn, token, grant.addr,
                                       grant.total_len, *grant.handler_args)
            finally:
                self._in_handler = False
            if obs is not None:
                obs.mark_packet(pkt, "handler_end", self.sim.now)
                h = self._handler_hist
                if h is None:
                    h = self._handler_hist = obs.hist("am.handler_us")
                h.observe(self.sim.now - t0)
        self.stats.count("rdma_recv_completed")
        # prompt ack: the sender is blocked on exactly this
        yield from self._send_ack(pkt.src)

    def _process_get_request(self, pkt: Packet):
        peer = self._peer(pkt.src)
        rwin = peer.recv[pkt.channel]
        verdict, _ = rwin.accept(pkt)
        if verdict == "duplicate":
            self.stats.count("duplicates_dropped")
            return
        if verdict == "nack":
            yield from self._send_nack(pkt.src, rwin)
            return
        yield from self.node.compute(self.costs.get_serve)
        remote_addr = pkt.args[0]
        data = self.node.memory.read(remote_addr, pkt.total_len)
        done = self.sim.event(f"am[{self.node.id}].get_serve")
        op = BulkSendOp(pkt.op_token, pkt.src, REPLY_CHANNEL, data,
                        pkt.addr, pkt.handler, (pkt.args[1],), done)
        self._active_sends.append(op)
        self.stats.count("gets_served")
        yield from self._pump_send(op)

    # ------------------------------------------------------------------
    # flow control: acks, nacks, keepalive, retransmission
    # ------------------------------------------------------------------

    def _send_control(self, dst: int, kind: PacketKind):
        c = self.costs
        peer = self._peer(dst)
        while not self.adapter.host_can_stage(1):
            yield Delay(2.0)
        pkt = Packet(src=self.node.id, dst=dst, kind=kind)
        self._stamp_acks(pkt, peer)
        yield from self.node.compute(
            c.ack_send + flush_cost(pkt.wire_bytes, self.host) + self.host.mc_pio
        )
        self.adapter.host_stage(pkt)
        self.adapter.host_arm()

    def _send_ack(self, dst: int):
        yield from self._send_control(dst, PacketKind.ACK)
        self.stats.count("explicit_acks_sent")

    def _send_nack(self, dst: int, rwin: RecvWindow):
        if rwin.nack_outstanding:
            self.stats.count("nacks_suppressed")
            return
        rwin.nack_outstanding = True
        yield from self._send_control(dst, PacketKind.NACK)
        self.stats.count("nacks_sent")

    def _process_nack(self, pkt: Packet):
        """Go-back-N: retransmit saved packets the peer reports missing.

        Fresh clones go on the wire: the retransmission buffer's copies
        (and any earlier transmissions still referenced by in-flight
        ``sim.at`` callbacks) must never be aliased by a packet whose ack
        fields are being re-stamped.
        """
        yield from self.node.compute(self.costs.nack_process)
        peer = self._peer(pkt.src)
        resent = 0
        for channel, ack in ((REQUEST_CHANNEL, pkt.ack_req),
                             (REPLY_CHANNEL, pkt.ack_rep)):
            if ack < 0:
                continue
            for old in peer.send[channel].unacked_from(ack):
                while not self.adapter.host_can_stage(1):
                    if self.adapter.send_fifo.staged_count:
                        # the FIFO may be full of our own staged-but-unarmed
                        # retransmissions: arm them or the adapter never
                        # drains and this loop waits forever (a go-back-N
                        # burst can exceed the whole send FIFO)
                        yield from self.node.compute(self.host.mc_pio)
                        self.adapter.host_arm()
                    yield Delay(2.0)
                rt = old.clone()
                self._stamp_acks(rt, peer)
                yield from self.node.compute(
                    self.costs.store_per_packet
                    + flush_cost(rt.wire_bytes, self.host)
                )
                self.adapter.host_stage(rt)
                resent += 1
                if resent % self.ARM_BATCH == 0:
                    yield from self.node.compute(self.host.mc_pio)
                    self.adapter.host_arm()
        if resent:
            yield from self.node.compute(self.host.mc_pio)
            self.adapter.host_arm()
            self.stats.count("retransmissions", resent)

    def _process_keepalive(self, pkt: Packet):
        """§2.2: a keep-alive probe forces NACKs back to the initiator so
        any lost tail packets are retransmitted."""
        peer = self._peer(pkt.src)
        # answer with the current expected values; do not rate-limit —
        # the probe explicitly asks for state
        for ch in (REQUEST_CHANNEL, REPLY_CHANNEL):
            peer.recv[ch].nack_outstanding = False
        yield from self._send_control(pkt.src, PacketKind.NACK)
        self.stats.count("keepalive_nacks_sent")

    def _duties_pending(self) -> bool:
        """Whether :meth:`_do_duties` could possibly do any work.

        Conservative (may return True when the generator then does
        nothing — e.g. a partial assembly that has not stalled yet), but
        never False when work exists: every branch of ``_do_duties`` is
        covered.  Lets the poll loop skip two generator frames per drain
        in the common nothing-to-do case.
        """
        if self._deferred_replies or self._sendable_ops_dirty:
            return True
        if self._deferred_cts or self._rdma_ack_due:
            return True
        if self._rdma_grants:
            return True  # the rendezvous stall watchdog needs the check
        for op in self._active_sends:
            if op.rdzv and not op.cts_granted:
                return True  # AWAIT_CTS stall watchdog
        for peer in self._peers.values():
            r_req, r_rep = peer.recv
            if (r_req.unacked_count >= r_req.ack_threshold
                    or r_rep.unacked_count >= r_rep.ack_threshold):
                return True
            if (r_req._assembly is not None
                    or r_rep._assembly is not None):
                return True  # the stall watchdog needs the timing check
        return False

    def _do_duties(self):
        """End-of-poll flow-control work: deferred replies, quarter-window
        explicit acks, stalled-assembly NACKs, and newly-unblocked bulk
        chunks."""
        while self._deferred_replies:
            dst, hid, args = self._deferred_replies[0]
            win = self._peer(dst).send[REPLY_CHANNEL]
            if not (win.can_send(1) and self.adapter.host_can_stage(1)):
                break
            self._deferred_replies.popleft()
            yield from self._emit_reply(dst, hid, args)
        while self._deferred_cts:
            src, token = self._deferred_cts[0]
            grant = self._rdma_grants.get((src, token))
            if grant is None:
                self._deferred_cts.popleft()  # released before we could send
                continue
            win = self._peer(src).send[REPLY_CHANNEL]
            if not (win.can_send(1) and self.adapter.host_can_stage(1)):
                break
            self._deferred_cts.popleft()
            yield from self._emit_cts(src, grant)
        while self._rdma_ack_due:
            # lowest peer id first: deterministic duty order regardless of
            # set-iteration quirks (digest stability)
            dst = min(self._rdma_ack_due)
            self._rdma_ack_due.discard(dst)
            yield from self._send_ack(dst)
            self.stats.count("chunk_acks_sent")
        for dst, peer in self._peers.items():
            # open-coded explicit_ack_due, once per channel (hot loop)
            r_req, r_rep = peer.recv
            if r_req.unacked_count >= r_req.ack_threshold:
                yield from self._send_ack(dst)
            if r_rep.unacked_count >= r_rep.ack_threshold:
                yield from self._send_ack(dst)
        yield from self._check_stalled_assemblies()
        yield from self._check_rdzv_stalls()
        if self._sendable_ops_dirty:
            self._sendable_ops_dirty = False
            for op in list(self._active_sends):
                # a rendezvous op with every chunk staged still owes its
                # FIN (sendable_now is False then, but the pump sends it
                # once window credit frees up)
                if op.sendable_now() or (op.rdzv and op.cts_granted
                                         and not op.fin_sent):
                    yield from self._pump_send(op)

    def _check_stalled_assemblies(self):
        """Receiver-side recovery for gap-less mid-chunk losses (§2.2).

        Every packet of a chunk carries the chunk's base sequence number,
        so a loss *inside* a chunk produces no out-of-sequence arrival and
        the normal NACK path never fires; without this watchdog the chunk
        waits for the sender's keep-alive probe and its exponential
        backoff.  A partial assembly with no arrivals for
        ``assembly_stall_timeout`` sends a NACK carrying the expected
        values (our cumulative acks), triggering go-back-N from the
        chunk's base.  The check re-arms at the same interval, so a lost
        stall-NACK still gives bounded recovery time.
        """
        threshold = self.costs.assembly_stall_timeout
        for dst, peer in self._peers.items():
            for rwin in peer.recv:
                # open-coded has_partial_assembly (hot loop)
                if (rwin._assembly is None
                        or rwin.assembly_progress_t is None):
                    continue
                now = self.sim.now
                if (now - rwin.assembly_progress_t >= threshold
                        and now - rwin.stall_nack_t >= threshold):
                    rwin.stall_nack_t = now
                    rwin.nack_outstanding = True
                    yield from self._send_control(dst, PacketKind.NACK)
                    self.stats.count("stall_nacks_sent")

    def _check_rdzv_stalls(self):
        """Mid-handshake and tail-loss recovery for rendezvous (§2.2 style).

        Three losses produce no sequence gap the normal NACK path could
        see, so each gets a watchdog on the assembly-stall clock:

        * **RTS lost** — the sender sits in AWAIT_CTS; after the stall
          timeout it retransmits the saved RTS clone.
        * **CTS lost** — the receiver's grant sees no landings; it
          retransmits the saved CTS clone (the sender's duplicate-RTS
          retransmissions also trigger this, whichever clock fires first).
        * **FIN / tail data lost** — the grant has (some) data but stalls;
          the receiver NACKs with its expected values and the sender
          goes-back-N over the missing RDMA_DATA/FIN packets.
        """
        threshold = self.costs.assembly_stall_timeout
        now = self.sim.now
        for op in self._active_sends:
            if not op.rdzv or op.cts_granted:
                continue
            if now - op.rts_sent_t < threshold:
                continue
            peer = self._peer(op.dst)
            unit = peer.send[REQUEST_CHANNEL]._saved.get(op.rts_seq)
            op.rts_sent_t = now
            if unit is None:
                # RTS already acked: the CTS is in flight (or lost — the
                # receiver-side grant watchdog owns that case)
                continue
            yield from self._retransmit_unit(peer, unit)
            self.stats.count("rts_retransmits")
        nack_srcs = set()
        for (src, _token), grant in list(self._rdma_grants.items()):
            if grant.received == 0:
                # stream never started for this grant.  If its CTS is
                # still unacked, assume the CTS was lost and retransmit
                # it; if it was acked, the sender has the grant and is
                # merely busy (queued behind earlier pipelined ops) or
                # lost *everything* it sent — the sender's own keep-alive
                # probe recovers that case, so a NACK here would only
                # trigger spurious go-back-N storms.
                if (now - grant.progress_t < threshold
                        or now - grant.stall_nack_t < threshold):
                    continue
                peer = self._peer(src)
                unit = (peer.send[REPLY_CHANNEL]._saved.get(grant.cts_seq)
                        if grant.cts_seq >= 0 else None)
                if unit is not None:
                    grant.stall_nack_t = now
                    yield from self._retransmit_unit(peer, unit)
                    self.stats.count("cts_retransmits")
                continue
            # this grant's stream started — judge silence on the whole
            # per-peer stream, not the grant: a pipelined sender
            # interleaves chunks of several ops, so one grant sitting
            # idle while another lands is progress, not loss
            if now - self._rdma_stream_t.get(src, grant.progress_t) < threshold:
                continue
            if now - self._rdma_stall_nack_t.get(src, float("-inf")) < threshold:
                continue
            nack_srcs.add(src)
        for src in sorted(nack_srcs):
            # the stream went silent mid-transfer: tail data or FIN lost
            # — NACK so the sender goes-back-N from our expected values
            self._rdma_stall_nack_t[src] = now
            rwin = self._peer(src).recv[REQUEST_CHANNEL]
            rwin.nack_outstanding = True
            yield from self._send_control(src, PacketKind.NACK)
            self.stats.count("rdzv_stall_nacks_sent")

    def _retransmit_unit(self, peer: _PeerState, unit: List[Packet]):
        """Re-stage saved control packets (RTS/CTS stall retransmission).

        Clones go on the wire, ack fields re-stamped — same aliasing rule
        as :meth:`_process_nack`.
        """
        for old in unit:
            while not self.adapter.host_can_stage(1):
                yield Delay(2.0)
            rt = old.clone()
            self._stamp_acks(rt, peer)
            yield from self.node.compute(
                self.costs.ack_send + flush_cost(rt.wire_bytes, self.host)
                + self.host.mc_pio
            )
            self.adapter.host_stage(rt)
            self.adapter.host_arm()
        self.stats.count("retransmissions", len(unit))

    def _stall_wait_cap(self) -> Optional[float]:
        """How long _wait_progress may sleep before a stall watchdog
        (partial assembly, AWAIT_CTS, or active grant) must run again."""
        if self._rdma_grants:
            return self.costs.assembly_stall_timeout
        for op in self._active_sends:
            if op.rdzv and not op.cts_granted:
                return self.costs.assembly_stall_timeout
        for peer in self._peers.values():
            r_req, r_rep = peer.recv
            if r_req._assembly is not None or r_rep._assembly is not None:
                return self.costs.assembly_stall_timeout
        return None

    def _send_keepalives(self):
        sent = 0
        for dst, peer in self._peers.items():
            if any(w.has_unacked for w in peer.send):
                yield from self._send_control(dst, PacketKind.KEEPALIVE)
                sent += 1
        self.stats.count("keepalives_sent", sent)

    def _wait_progress(self):
        """Blocked on credit / acks / completion: service the network; if
        idle, sleep until the next arrival (equivalent in simulated time
        to the paper's poll spinning) with a keep-alive timeout."""
        rf = self.adapter.recv_fifo
        if not rf.visible:
            if rf.pending_pop > 0:
                # going idle: return consumed receive-FIFO slots to the
                # adapter even below the lazy-pop batch, so a near-full
                # FIFO can't keep dropping the very retransmissions that
                # would drain it
                batch = rf.pending_pop
                yield from self.node.compute(
                    self.host.mc_pio + flush_cost(batch * 256, self.host)
                )
                self.adapter.host_recv_pop_batch()
                self.stats.count("idle_pop_flushes")
            timeout = self.costs.keepalive_idle * self._keepalive_backoff
            stall_cap = self._stall_wait_cap()
            if stall_cap is not None:
                # a chunk is mid-reassembly: wake early enough for the
                # stalled-assembly watchdog regardless of backoff
                timeout = min(timeout, stall_cap)
            ev = self.adapter.arrival_event()
            res = yield Timeout(ev, timeout)
            if res is TIMED_OUT:
                yield from self._send_keepalives()
                self._keepalive_backoff = min(self._keepalive_backoff * 2,
                                              64.0)
        # inlined poll() (blocked software never runs inside a handler):
        # empty-poll charge + drain without the extra generator frame
        self.node.cpu_busy_us += self._poll_empty_delay.duration
        yield self._poll_empty_delay
        # re-check visibility after the yield (arrivals may have landed);
        # an idle spin with no packets and no duties skips the _drain
        # generator entirely — it would be a pure no-op
        if rf.visible or self._duties_pending():
            yield from self._drain()
