"""Generic Active Messages on the Table-4 peer machines.

The CM-5, Meiko CS-2, and U-Net/ATM AM ports are characterized in the
paper purely by their LogP numbers (per-message overhead, latency,
bandwidth).  This implementation provides the same API as
:class:`~repro.am.endpoint.SPAM` with those costs and a reliable, ordered
fabric underneath — the right level of detail for the Split-C
cross-machine comparison (Table 5 / Figure 4), which depends on message
counts, overheads, and bandwidths rather than on the SP-specific
flow-control machinery.

Bulk transfers fragment at 1 KB: large enough that these machines' bulk
bandwidth is wire-limited (as measured in their AM papers), small enough
that per-fragment overhead shows up for medium messages.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.am.handler import HandlerRestrictionError, HandlerTable, run_handler
from repro.hardware.packet import PACKET_HEADER_BYTES
from repro.sim.primitives import TIMED_OUT, Delay, Timeout
from repro.sim.stats import StatRegistry


class _Fragment:
    """A bulk fragment on a generic fabric: arbitrary payload length."""

    __slots__ = ("src", "dst", "kind", "handler", "args", "payload", "addr",
                 "offset", "total_len", "op_token", "wire_bytes", "seq",
                 "ack_req", "ack_rep", "channel", "chunk_packets", "trace_id")

    def __init__(self, src, dst, kind, handler, args, payload, addr,
                 offset, total_len, op_token):
        self.trace_id = 0
        self.src = src
        self.dst = dst
        self.kind = kind  # "store", "get_data"
        self.handler = handler
        self.args = args
        self.payload = payload
        self.addr = addr
        self.offset = offset
        self.total_len = total_len
        self.op_token = op_token
        self.wire_bytes = PACKET_HEADER_BYTES + len(payload)


class _Request:
    __slots__ = ("src", "dst", "kind", "handler", "args", "addr",
                 "total_len", "op_token", "wire_bytes", "trace_id")

    def __init__(self, src, dst, kind, handler, args, addr=0,
                 total_len=0, op_token=0, nwords=1):
        self.trace_id = 0
        self.src = src
        self.dst = dst
        self.kind = kind  # "request", "reply", "get_request"
        self.handler = handler
        self.args = args
        self.addr = addr
        self.total_len = total_len
        self.op_token = op_token
        self.wire_bytes = PACKET_HEADER_BYTES + 4 * nwords


class GenericReplyToken:
    """Reply capability for generic-AM handlers (one reply max)."""

    __slots__ = ("am", "src", "_used")

    def __init__(self, am: "GenericAM", src: int):
        self.am = am
        self.src = src
        self._used = False

    def _claim(self):
        if self._used:
            raise HandlerRestrictionError("handler already sent its one reply")
        self._used = True

    def reply_1(self, handler, a0):
        """Send the handler's one 1-word reply."""
        self._claim()
        return self.am._send_reply(self.src, handler, (a0,))

    def reply_2(self, handler, a0, a1):
        """Send the handler's one 2-word reply."""
        self._claim()
        return self.am._send_reply(self.src, handler, (a0, a1))

    def reply_3(self, handler, a0, a1, a2):
        """Send the handler's one 3-word reply."""
        self._claim()
        return self.am._send_reply(self.src, handler, (a0, a1, a2))

    def reply_4(self, handler, a0, a1, a2, a3):
        """Send the handler's one 4-word reply."""
        self._claim()
        return self.am._send_reply(self.src, handler, (a0, a1, a2, a3))


class _OpHandle:
    """Async-op handle matching SPAM's BulkSendOp surface (.done event)."""

    __slots__ = ("done",)

    def __init__(self, done):
        self.done = done

    @property
    def complete(self) -> bool:
        """Whether the operation's done event has fired."""
        return self.done.triggered


class GenericAM:
    """Active Messages with LogP costs on a generic machine."""

    FRAGMENT_BYTES = 1024

    def __init__(self, node, handlers: HandlerTable):
        if node.nic is None:
            raise ValueError("GenericAM needs a node with a GenericNIC")
        self.node = node
        self.nic = node.nic
        self.handlers = handlers
        self.sim = node.sim
        self.host = node.host
        self.params = node.nic.params
        self.stats = StatRegistry(f"gam[{node.id}].")
        self._in_handler = False
        self._next_token = 1
        self._bulk_recv: Dict[Tuple[int, int], list] = {}
        self._store_waiters: Dict[Tuple[int, int], Any] = {}
        self._get_waiters: Dict[Tuple[int, int], Any] = {}
        self.net_time_accum = 0.0
        node.am = self

    # -- small messages -----------------------------------------------

    def register(self, fn: Callable) -> int:
        """Register an AM handler (machine-wide id)."""
        return self.handlers.register(fn)

    def request_1(self, dst, handler, a0):
        """Send a 1-word request (LogP o_send charged)."""
        return self._request(dst, handler, (a0,))

    def request_2(self, dst, handler, a0, a1):
        """Send a 2-word request (LogP o_send charged)."""
        return self._request(dst, handler, (a0, a1))

    def request_3(self, dst, handler, a0, a1, a2):
        """Send a 3-word request (LogP o_send charged)."""
        return self._request(dst, handler, (a0, a1, a2))

    def request_4(self, dst, handler, a0, a1, a2, a3):
        """Send a 4-word request (LogP o_send charged)."""
        return self._request(dst, handler, (a0, a1, a2, a3))

    def _request(self, dst, handler, args):
        if self._in_handler:
            raise HandlerRestrictionError("handlers may not issue requests")
        hid = self.handlers.register(handler)
        msg = _Request(self.node.id, dst, "request", hid, args,
                       nwords=len(args))
        if self.nic.obs is not None:
            self.nic.obs.begin_message(msg, self.sim.now)
        yield from self.node.compute(self.params.o_send)
        self.nic.host_send(msg)
        self.stats.count("requests_sent")
        yield from self.poll()

    def _send_reply(self, dst, handler, args):
        hid = self.handlers.register(handler)
        msg = _Request(self.node.id, dst, "reply", hid, args,
                       nwords=len(args))
        if self.nic.obs is not None:
            self.nic.obs.begin_message(msg, self.sim.now)
        yield from self.node.compute(self.params.o_send)
        self.nic.host_send(msg)
        self.stats.count("replies_sent")

    # -- bulk ------------------------------------------------------------

    def store(self, dst, local_addr, remote_addr, nbytes,
              handler: Callable = None, arg: int = 0):
        """Blocking bulk store (completes on the receiver's ack)."""
        op = yield from self.store_async(dst, local_addr, remote_addr,
                                         nbytes, handler, arg)
        yield from self.wait_op(op)
        return op

    def wait_op(self, op: "_OpHandle"):
        """Block until an async bulk op completes."""
        while not op.done.triggered:
            yield from self._wait_progress()

    def store_async(self, dst, local_addr, remote_addr, nbytes,
                    handler: Callable = None, arg: int = 0,
                    completion_fn: Optional[Callable] = None):
        """Non-blocking bulk store; returns a handle with a .done event."""
        if self._in_handler:
            raise HandlerRestrictionError("handlers may not start stores")
        hid = self.handlers.register(handler) if handler is not None else -1
        token = self._next_token
        self._next_token += 1
        data = self.node.memory.read(local_addr, nbytes)
        done = self.sim.event(f"gam[{self.node.id}].store")
        handle = _OpHandle(done)
        if completion_fn is not None:
            done.add_waiter(lambda _v: completion_fn(handle))
        if nbytes == 0:
            done.succeed(None)
            return handle
        # completion is signalled by the receiver's store_ack (mirroring
        # SP AM, whose blocking stores wait for the chunk acknowledgement)
        self._store_waiters[(dst, token)] = done
        handler_args = arg if isinstance(arg, tuple) else (arg,)
        yield from self._inject_fragments(dst, "store", data, remote_addr,
                                          hid, handler_args, token)
        self.stats.count("stores_started")
        return handle

    def get(self, dst, remote_addr, local_addr, nbytes,
            handler: Callable = None, arg: int = 0):
        """Blocking bulk get from the remote node's memory."""
        done = yield from self.get_async(dst, remote_addr, local_addr,
                                         nbytes, handler, arg)
        while not done.triggered:
            yield from self._wait_progress()
        return done

    def get_async(self, dst, remote_addr, local_addr, nbytes,
                  handler: Callable = None, arg: int = 0):
        """Non-blocking get; returns the completion event."""
        if self._in_handler:
            raise HandlerRestrictionError("handlers may not start gets")
        if nbytes <= 0:
            raise ValueError("get size must be positive")
        hid = self.handlers.register(handler) if handler is not None else -1
        token = self._next_token
        self._next_token += 1
        done = self.sim.event(f"gam[{self.node.id}].get")
        self._get_waiters[(dst, token)] = done
        yield from self.node.compute(self.params.o_send)
        self.nic.host_send(_Request(self.node.id, dst, "get_request", hid,
                                    (remote_addr, arg), addr=local_addr,
                                    total_len=nbytes, op_token=token,
                                    nwords=4))
        self.stats.count("gets_started")
        return done

    def _inject_fragments(self, dst, kind, data, remote_addr, hid, args, token):
        frag = self.FRAGMENT_BYTES
        for off in range(0, len(data), frag):
            payload = data[off: off + frag]
            yield from self.node.compute(self.params.o_send)
            self.nic.host_send(_Fragment(self.node.id, dst, kind, hid, args,
                                         payload, remote_addr, off,
                                         len(data), token))

    # -- polling -----------------------------------------------------------

    def poll(self, limit: Optional[int] = None):
        """am_poll: drain arrivals, dispatching handlers."""
        if self._in_handler:
            raise HandlerRestrictionError("am_poll may not be called from a handler")
        yield from self.node.compute(self.host.poll_empty)
        handled = 0
        while self.nic.host_recv_available() > 0:
            if limit is not None and handled >= limit:
                break
            msg = self.nic.host_recv_consume()
            yield from self.node.compute(self.params.o_recv)
            yield from self._process(msg)
            handled += 1
        return handled

    def _process(self, msg):
        if isinstance(msg, _Request):
            if msg.kind in ("request", "reply"):
                fn = self.handlers.lookup(msg.handler)
                token = GenericReplyToken(self, msg.src)
                obs = self.nic.obs
                t0 = self.sim.now
                if obs is not None:
                    obs.mark_packet(msg, "handler_start", t0)
                self._in_handler = True
                try:
                    yield from run_handler(fn, token, *msg.args)
                finally:
                    self._in_handler = False
                if obs is not None:
                    obs.mark_packet(msg, "handler_end", self.sim.now)
                    obs.hist("am.handler_us").observe(self.sim.now - t0)
                self.stats.count("handlers_run")
            elif msg.kind == "get_request":
                data = self.node.memory.read(msg.args[0], msg.total_len)
                yield from self._inject_fragments(
                    msg.src, "get_data", data, msg.addr, msg.handler,
                    (msg.args[1],), msg.op_token)
                self.stats.count("gets_served")
            elif msg.kind == "store_ack":
                waiter = self._store_waiters.pop((msg.src, msg.op_token), None)
                if waiter is not None:
                    waiter.succeed(None)
            else:  # pragma: no cover - exhaustive
                raise AssertionError(msg.kind)
        elif isinstance(msg, _Fragment):
            yield from self.node.compute(len(msg.payload) / self.host.copy_rate)
            self.node.memory.write(msg.addr + msg.offset, msg.payload)
            key = (msg.src, msg.op_token)
            got = self._bulk_recv.get(key, 0) + len(msg.payload)
            if got >= msg.total_len:
                self._bulk_recv.pop(key, None)
                if msg.kind == "get_data":
                    waiter = self._get_waiters.pop(key, None)
                    if waiter is not None:
                        waiter.succeed(None)
                elif msg.kind == "store":
                    yield from self.node.compute(self.params.o_send)
                    self.nic.host_send(_Request(self.node.id, msg.src,
                                                "store_ack", -1, (),
                                                op_token=msg.op_token))
                if msg.handler >= 0:
                    fn = self.handlers.lookup(msg.handler)
                    token = GenericReplyToken(self, msg.src)
                    self._in_handler = True
                    try:
                        yield from run_handler(fn, token, msg.addr,
                                               msg.total_len, *msg.args)
                    finally:
                        self._in_handler = False
                self.stats.count("bulk_recv_completed")
            else:
                self._bulk_recv[key] = got
        else:  # pragma: no cover - exhaustive
            raise AssertionError(type(msg))

    def _wait_progress(self):
        if self.nic.host_recv_available() == 0:
            ev = self.nic.arrival_event()
            # generous guard: peers may sit in near-second compute phases
            # (a CM-5 128x128 dgemm costs ~0.8 s of simulated time) and
            # bulk-store acks trail their data; a true hang is caught by
            # the simulator's deadlock detection anyway
            res = yield Timeout(ev, 5_000_000.0)
            if res is TIMED_OUT:
                raise RuntimeError(
                    f"generic AM on node {self.node.id} stalled 5 s with "
                    "no arrivals (reliable fabric should never stall)"
                )
        yield from self.poll()
