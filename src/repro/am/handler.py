"""Handler registration and invocation rules (§1.1).

Handlers are registered identically on every node (SPMD style): the table
is shared per machine, so a handler id names the same function everywhere.

Request handlers receive a :class:`ReplyToken`-like object as their first
argument and may send **at most one reply** through it — and nothing else:
Active Messages forbids handlers from blocking, polling, or issuing new
requests (that restriction is what makes the request/reply discipline
deadlock-free, and it is why the MPI layer's rendez-vous protocol must
defer its store to the main thread, §4.1).  The table enforces this.

A handler may be a plain function (bookkeeping only) or a generator
(when it needs to charge CPU time or send a reply); the poll loop drives
generators with ``yield from``.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Dict, List, Optional


class HandlerRestrictionError(RuntimeError):
    """A handler tried to do something the AM model forbids."""


class HandlerTable:
    """Machine-wide handler-id -> function mapping."""

    def __init__(self) -> None:
        self._handlers: List[Callable] = []
        self._ids: Dict[Callable, int] = {}

    def register(self, fn: Callable) -> int:
        """Register ``fn`` and return its handler id (idempotent)."""
        if fn in self._ids:
            return self._ids[fn]
        hid = len(self._handlers)
        self._handlers.append(fn)
        self._ids[fn] = hid
        return hid

    def lookup(self, hid: int) -> Callable:
        try:
            return self._handlers[hid]
        except IndexError:
            raise KeyError(f"no handler registered with id {hid}") from None

    def __len__(self) -> int:
        return len(self._handlers)


def run_handler(fn: Callable, *args: Any):
    """Drive a handler that may be a plain function or a generator.

    This is itself a generator: the poll loop invokes it with
    ``yield from``.  Returns the handler's return value.
    """
    result = fn(*args)
    if type(result) is GeneratorType:
        result = yield from result
    return result
