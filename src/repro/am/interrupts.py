"""Interrupt-driven message reception — the §1.1 road not taken.

"Interrupt-driven reception is also available but not used in this
analysis of SP AM."  This module implements it so the choice can be
measured: :func:`compute_interruptible` runs a long computation during
which every packet arrival raises an interrupt that preempts the
computation, pays the (large — AIX signal delivery + context switch)
per-interrupt cost, services the network, and resumes.

The trade the paper's authors made is then visible in the ablation
benchmark: interrupts give prompt remote-request service without
sprinkled ``am_poll`` calls, but each interrupt costs tens of
microseconds of host CPU — under fine-grain traffic the interrupt
overhead swamps the polling it replaced, which is exactly why SP AM
shipped polling-first.
"""

from __future__ import annotations

from repro.sim.primitives import TIMED_OUT, Timeout

#: host cost of one receive interrupt: kernel signal delivery, context
#: switch into the handler and back (AIX 3.x on a Power2)
INTERRUPT_OVERHEAD_US = 55.0


def compute_interruptible(am, us: float,
                          interrupt_overhead: float = INTERRUPT_OVERHEAD_US):
    """Perform ``us`` microseconds of computation with receive interrupts.

    Every packet arrival during the computation preempts it: the
    interrupt overhead is charged, the network serviced (handlers run),
    and the computation resumes where it left off.  Total elapsed time =
    compute + interrupts + service; the pure compute portion is exactly
    ``us``.

    Returns the number of interrupts taken.
    """
    if us < 0:
        raise ValueError("negative compute time")
    node = am.node
    adapter = am.adapter
    interrupts = 0
    remaining = us
    # float guard: subtracting elapsed times leaves sub-resolution residue
    # (~1e-13 us) that a Timeout cannot advance past
    EPS = 1e-9
    while remaining > EPS:
        if adapter.host_recv_available() > 0:
            # a packet is already pending: take the interrupt now
            interrupts += 1
            yield from node.compute(interrupt_overhead)
            yield from am.poll()
            continue
        started = node.sim.now
        res = yield Timeout(adapter.arrival_event(), remaining)
        remaining -= node.sim.now - started
        if res is not TIMED_OUT and remaining > EPS:
            interrupts += 1
            yield from node.compute(interrupt_overhead)
            yield from am.poll()
    return interrupts


def compute_polled(am, us: float, quantum_us: float = 1000.0):
    """The polling alternative: the same computation with an ``am_poll``
    every ``quantum_us`` of work ("explicit checks can be added using
    am_poll", §1.1).  Returns the number of polls."""
    if us < 0:
        raise ValueError("negative compute time")
    node = am.node
    remaining = us
    polls = 0
    while remaining > 0:
        step = min(quantum_us, remaining)
        yield from node.compute(step)
        remaining -= step
        if remaining > 0:
            yield from am.poll()
            polls += 1
    return polls
