"""The raw (flow-control-free) message path — the paper's 47 us baseline.

§2.3: "This round trip latency compares well with a raw message (no data
or sequence number) ping-pong latency of 47 us.  The additional overhead
of 4 us is due to the cost of the cache flushes and the flow control
bookkeeping."

The raw path stages a bare header into the send FIFO, arms it, and on the
receive side merely detects and consumes the packet — no sequence numbers,
no retransmission copies, no per-message flow-control state, and only the
minimal single-line cache flush.
"""

from __future__ import annotations

from repro.hardware.cache import flush_cost
from repro.hardware.machine import Machine
from repro.hardware.packet import Packet, PacketKind
from repro.sim import Simulator
from repro.sim.primitives import Delay, WaitEvent

#: host cost of building a raw FIFO entry (header construction and the
#: FIFO-pointer bookkeeping survive even without sequence numbers)
RAW_BUILD = 2.17
#: host cost of detecting + consuming a raw packet
RAW_CONSUME = 2.67


def _raw_send(node, dst: int):
    pkt = Packet(src=node.id, dst=dst, kind=PacketKind.RAW)
    if node.adapter.obs is not None:
        node.adapter.obs.begin_message(pkt, node.sim.now)
    yield from node.compute(
        RAW_BUILD + flush_cost(pkt.wire_bytes, node.host) + node.host.mc_pio
    )
    node.adapter.host_stage(pkt)
    node.adapter.host_arm()


def _raw_recv(node):
    adapter = node.adapter
    while adapter.host_recv_available() == 0:
        yield WaitEvent(adapter.arrival_event())
    yield from node.compute(RAW_CONSUME)
    pkt = adapter.host_recv_consume()
    if adapter.host_recv_should_pop():
        yield from node.compute(node.host.mc_pio)
        adapter.host_recv_pop_batch()
    return pkt


def raw_pingpong_roundtrip(machine: Machine, iterations: int = 100) -> float:
    """Measure the raw one-word round-trip time on an SP machine.

    Runs ``iterations`` ping-pongs between nodes 0 and 1 and returns the
    average round trip in microseconds.
    """
    if not machine.is_sp:
        raise ValueError("raw path exists only on the SP")
    if machine.nprocs < 2:
        raise ValueError("need two nodes")
    sim = machine.sim
    n0, n1 = machine.node(0), machine.node(1)
    t0 = sim.now

    def pinger():
        for _ in range(iterations):
            yield from _raw_send(n0, 1)
            yield from _raw_recv(n0)

    def ponger():
        for _ in range(iterations):
            yield from _raw_recv(n1)
            yield from _raw_send(n1, 0)

    p = sim.spawn(pinger(), name="raw-ping")
    q = sim.spawn(ponger(), name="raw-pong")
    sim.run_until_processes_done([p, q])
    return (sim.now - t0) / iterations
