"""Sliding-window state machines for one (peer, channel) direction (§2.2).

The sender keeps every unacknowledged packet for retransmission; the
receiver accepts only the expected sequence number (go-back-N).  Packets of
one chunk share the chunk's base sequence number and are ordered within the
chunk by their address offsets; the window slides by the number of packets
in the chunk and the whole chunk is covered by a single acknowledgement.

Invariants (property-tested in ``tests/am/test_window_properties.py``):

* the receiver delivers transfer units exactly once, in sequence order;
* ``in_flight <= window`` at the sender, always;
* a cumulative ack never moves backwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hardware.packet import Packet


class AckBeyondWindowError(ValueError):
    """A cumulative ack claimed sequence numbers never allocated."""


class MidChunkAckError(ValueError):
    """A cumulative ack landed strictly inside a saved transfer unit.

    Chunks slide the window as one unit (§2.2): the receiver only ever
    advertises unit-aligned values, so a mid-chunk ack means the peers
    have desynchronized.  Accepting it silently would strand the unit's
    packets in the retransmission buffer below ``base``, where go-back-N
    can no longer reach them.
    """


class SendWindow:
    """Sender side: sequence allocation, credit, retransmission buffer."""

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.next_seq = 0
        self.base = 0  # oldest unacknowledged sequence number
        #: seq -> packets saved for retransmission (one entry per transfer
        #: unit: a single packet or a whole chunk)
        self._saved: Dict[int, List[Packet]] = {}
        #: window-invariant checker (repro.check), None when unchecked
        self.check = None

    @property
    def in_flight(self) -> int:
        """Unacknowledged sequence numbers currently outstanding."""
        return self.next_seq - self.base

    def can_send(self, npackets: int = 1) -> bool:
        """Whether the window has credit for ``npackets`` more."""
        return self.in_flight + npackets <= self.window

    def allocate(self, npackets: int = 1) -> int:
        """Claim ``npackets`` sequence numbers; returns the base seq."""
        if not self.can_send(npackets):
            raise RuntimeError(
                f"window overflow: {self.in_flight}+{npackets} > {self.window}"
            )
        seq = self.next_seq
        self.next_seq += npackets
        if self.check is not None:
            self.check.on_allocate(self, seq, npackets)
        return seq

    def save(self, seq: int, packets: List[Packet]) -> None:
        """Keep a transfer unit for possible go-back-N retransmission.

        **Clones** are saved, not the caller's objects: the originals are
        on their way through the send FIFO and may still be referenced by
        in-flight ``sim.at`` callbacks when a retransmission later
        re-stamps acknowledgements.
        """
        self._saved[seq] = [p.clone() for p in packets]
        if self.check is not None:
            self.check.on_save(self, seq, len(packets))

    def on_ack(self, ack: int) -> int:
        """Cumulative ack: all seq < ack received.  Returns packets freed.

        Raises :class:`AckBeyondWindowError` for an ack past ``next_seq``
        and :class:`MidChunkAckError` for one landing strictly inside a
        saved transfer unit — both indicate peer desynchronization and
        must fail loudly rather than corrupt the retransmission buffer.
        """
        if ack <= self.base:
            return 0
        if self.check is not None:
            # before the structural guards, so a violating ack is named
            # by the checker rather than surfacing as a bare exception
            self.check.on_ack(self, ack)
        if ack > self.next_seq:
            raise AckBeyondWindowError(
                f"ack {ack} beyond next_seq {self.next_seq} (corrupt peer?)"
            )
        for s, unit in self._saved.items():
            if s < ack < s + len(unit):
                raise MidChunkAckError(
                    f"ack {ack} splits transfer unit [{s}, {s + len(unit)}) "
                    f"(base={self.base})"
                )
        freed = 0
        for seq in [s for s in self._saved if s < ack]:
            freed += len(self._saved.pop(seq))
        self.base = ack
        return freed

    def unacked_from(self, seq: int) -> List[Packet]:
        """All saved packets with sequence >= seq, in order (go-back-N).

        Returns the saved clones themselves; callers that put them back on
        the wire must clone again (see :meth:`~repro.hardware.packet.
        Packet.clone`) so the retransmission buffer never aliases live
        wire state.
        """
        out: List[Packet] = []
        for s in sorted(self._saved):
            if s >= seq:
                out.extend(self._saved[s])
        return out

    @property
    def has_unacked(self) -> bool:
        """Whether any saved packets still await acknowledgement."""
        return bool(self._saved)


class _ChunkAssembly:
    """Reassembly of one in-progress chunk at the receiver."""

    __slots__ = ("npackets", "received_offsets", "packets")

    def __init__(self, npackets: int):
        self.npackets = npackets
        self.received_offsets: set = set()
        self.packets: List[Packet] = []

    def add(self, pkt: Packet) -> str:
        """Returns 'duplicate', 'partial', or 'complete'."""
        if pkt.offset in self.received_offsets:
            # a go-back-N retransmission re-sends offsets that survived
            # the original loss; they must not be double-counted
            return "duplicate"
        self.received_offsets.add(pkt.offset)
        self.packets.append(pkt)
        return ("complete" if len(self.received_offsets) == self.npackets
                else "partial")


class RecvWindow:
    """Receiver side: in-sequence acceptance, chunk reassembly, ack duty."""

    def __init__(self, window: int, ack_threshold: int):
        self.window = window
        self.ack_threshold = ack_threshold
        self.expected = 0
        #: how many accepted packets the peer hasn't been told about yet
        self.unacked_count = 0
        self._assembly: Optional[_ChunkAssembly] = None
        #: set when a gap is observed and cleared when expected advances,
        #: so one loss triggers one NACK rather than a storm
        self.nack_outstanding = False
        #: simulated time of the last packet accepted into a *partial*
        #: chunk assembly (maintained by the endpoint); a partial assembly
        #: with no arrivals past the stall threshold triggers a receiver-
        #: side NACK, because a mid-chunk loss produces no sequence gap
        #: (all chunk packets share the base seq) and would otherwise wait
        #: for the sender's exponentially backed-off keep-alive.
        self.assembly_progress_t: Optional[float] = None
        #: when the last stalled-assembly NACK went out (rate limiting;
        #: re-arms if the NACK itself is lost)
        self.stall_nack_t: float = float("-inf")
        #: delivery-order checker (repro.check), None when unchecked
        self.check = None

    @property
    def has_partial_assembly(self) -> bool:
        """Whether a chunk is mid-reassembly (some offsets still missing)."""
        return self._assembly is not None

    def accept(self, pkt: Packet) -> Tuple[str, Optional[List[Packet]]]:
        """Classify an arriving sequenced packet.

        Returns ``(verdict, completed)`` where verdict is one of
        ``deliver`` (completed holds the packet(s) of the finished transfer
        unit, in arrival order), ``partial`` (accepted, chunk incomplete),
        ``duplicate`` (old traffic; re-ack), or ``nack`` (gap: caller sends
        a NACK for ``self.expected`` unless one is already outstanding).
        """
        if pkt.seq < self.expected:
            return "duplicate", None
        if pkt.seq > self.expected:
            return "nack", None
        # pkt.seq == expected
        if pkt.chunk_packets == 1:
            self.expected += 1
            self.unacked_count += 1
            self.nack_outstanding = False
            if self.check is not None:
                self.check.on_deliver(self, pkt.seq, 1)
            return "deliver", [pkt]
        if self._assembly is None:
            self._assembly = _ChunkAssembly(pkt.chunk_packets)
        status = self._assembly.add(pkt)
        if status == "duplicate":
            return "duplicate", None
        if status == "complete":
            done = self._assembly
            self._assembly = None
            self.assembly_progress_t = None
            self.expected += pkt.chunk_packets
            self.unacked_count += pkt.chunk_packets
            self.nack_outstanding = False
            if self.check is not None:
                self.check.on_deliver(self, pkt.seq, pkt.chunk_packets)
            return "deliver", done.packets
        return "partial", None

    def ack_value(self) -> int:
        """The cumulative ack to advertise; resets the explicit-ack debt."""
        self.unacked_count = 0
        return self.expected

    @property
    def explicit_ack_due(self) -> bool:
        """§2.2: explicit ack once a quarter of the window is unacked."""
        return self.unacked_count >= self.ack_threshold
