"""Sliding-window state machines for one (peer, channel) direction (§2.2).

The sender keeps every unacknowledged packet for retransmission; the
receiver accepts only the expected sequence number (go-back-N).  Packets of
one chunk share the chunk's base sequence number and are ordered within the
chunk by their address offsets; the window slides by the number of packets
in the chunk and the whole chunk is covered by a single acknowledgement.

Invariants (property-tested in ``tests/am/test_window_properties.py``):

* the receiver delivers transfer units exactly once, in sequence order;
* ``in_flight <= window`` at the sender, always;
* a cumulative ack never moves backwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hardware.packet import Packet


class SendWindow:
    """Sender side: sequence allocation, credit, retransmission buffer."""

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.next_seq = 0
        self.base = 0  # oldest unacknowledged sequence number
        #: seq -> packets saved for retransmission (one entry per transfer
        #: unit: a single packet or a whole chunk)
        self._saved: Dict[int, List[Packet]] = {}

    @property
    def in_flight(self) -> int:
        """Unacknowledged sequence numbers currently outstanding."""
        return self.next_seq - self.base

    def can_send(self, npackets: int = 1) -> bool:
        """Whether the window has credit for ``npackets`` more."""
        return self.in_flight + npackets <= self.window

    def allocate(self, npackets: int = 1) -> int:
        """Claim ``npackets`` sequence numbers; returns the base seq."""
        if not self.can_send(npackets):
            raise RuntimeError(
                f"window overflow: {self.in_flight}+{npackets} > {self.window}"
            )
        seq = self.next_seq
        self.next_seq += npackets
        return seq

    def save(self, seq: int, packets: List[Packet]) -> None:
        """Keep a transfer unit for possible go-back-N retransmission."""
        self._saved[seq] = packets

    def on_ack(self, ack: int) -> int:
        """Cumulative ack: all seq < ack received.  Returns packets freed."""
        if ack <= self.base:
            return 0
        if ack > self.next_seq:
            raise ValueError(
                f"ack {ack} beyond next_seq {self.next_seq} (corrupt peer?)"
            )
        freed = 0
        for seq in [s for s in self._saved if s < ack]:
            freed += len(self._saved.pop(seq))
        self.base = ack
        return freed

    def unacked_from(self, seq: int) -> List[Packet]:
        """All saved packets with sequence >= seq, in order (go-back-N)."""
        out: List[Packet] = []
        for s in sorted(self._saved):
            if s >= seq:
                out.extend(self._saved[s])
        return out

    @property
    def has_unacked(self) -> bool:
        """Whether any saved packets still await acknowledgement."""
        return bool(self._saved)


class _ChunkAssembly:
    """Reassembly of one in-progress chunk at the receiver."""

    __slots__ = ("npackets", "received_offsets", "packets")

    def __init__(self, npackets: int):
        self.npackets = npackets
        self.received_offsets: set = set()
        self.packets: List[Packet] = []

    def add(self, pkt: Packet) -> str:
        """Returns 'duplicate', 'partial', or 'complete'."""
        if pkt.offset in self.received_offsets:
            # a go-back-N retransmission re-sends offsets that survived
            # the original loss; they must not be double-counted
            return "duplicate"
        self.received_offsets.add(pkt.offset)
        self.packets.append(pkt)
        return ("complete" if len(self.received_offsets) == self.npackets
                else "partial")


class RecvWindow:
    """Receiver side: in-sequence acceptance, chunk reassembly, ack duty."""

    def __init__(self, window: int, ack_threshold: int):
        self.window = window
        self.ack_threshold = ack_threshold
        self.expected = 0
        #: how many accepted packets the peer hasn't been told about yet
        self.unacked_count = 0
        self._assembly: Optional[_ChunkAssembly] = None
        #: set when a gap is observed and cleared when expected advances,
        #: so one loss triggers one NACK rather than a storm
        self.nack_outstanding = False

    def accept(self, pkt: Packet) -> Tuple[str, Optional[List[Packet]]]:
        """Classify an arriving sequenced packet.

        Returns ``(verdict, completed)`` where verdict is one of
        ``deliver`` (completed holds the packet(s) of the finished transfer
        unit, in arrival order), ``partial`` (accepted, chunk incomplete),
        ``duplicate`` (old traffic; re-ack), or ``nack`` (gap: caller sends
        a NACK for ``self.expected`` unless one is already outstanding).
        """
        if pkt.seq < self.expected:
            return "duplicate", None
        if pkt.seq > self.expected:
            return "nack", None
        # pkt.seq == expected
        if pkt.chunk_packets == 1:
            self.expected += 1
            self.unacked_count += 1
            self.nack_outstanding = False
            return "deliver", [pkt]
        if self._assembly is None:
            self._assembly = _ChunkAssembly(pkt.chunk_packets)
        status = self._assembly.add(pkt)
        if status == "duplicate":
            return "duplicate", None
        if status == "complete":
            done = self._assembly
            self._assembly = None
            self.expected += pkt.chunk_packets
            self.unacked_count += pkt.chunk_packets
            self.nack_outstanding = False
            return "deliver", done.packets
        return "partial", None

    def ack_value(self) -> int:
        """The cumulative ack to advertise; resets the explicit-ack debt."""
        self.unacked_count = 0
        return self.expected

    @property
    def explicit_ack_due(self) -> bool:
        """§2.2: explicit ack once a quarter of the window is unacked."""
        return self.unacked_count >= self.ack_threshold
