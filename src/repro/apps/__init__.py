"""Evaluation applications.

Split-C benchmarks of §3 (Table 5 / Figure 4):

* :mod:`repro.apps.matmul` — blocked matrix multiply (two blockings),
* :mod:`repro.apps.sample_sort` — sample sort, small-message + bulk variants,
* :mod:`repro.apps.radix_sort` — radix sort, small + large variants.

NAS Parallel Benchmark kernels of §4.4 (Table 6) live in
:mod:`repro.apps.nas`.

Every application moves real bytes through the simulated network and
validates its own answer; computation phases charge calibrated time to
the simulated clock via the Split-C profiler so the Figure-4 cpu/net
split is measured, not assumed.
"""

from repro.apps.matmul import run_matmul
from repro.apps.radix_sort import run_radix_sort
from repro.apps.sample_sort import run_sample_sort

__all__ = ["run_matmul", "run_sample_sort", "run_radix_sort"]
