"""Blocked matrix multiply in Split-C (§3, Table 5's ``mm`` rows).

The matrix is an ``n x n`` grid of ``b x b`` double blocks distributed
round-robin; the owner of each C block fetches the needed A and B blocks
with split-phase bulk gets and runs a local dgemm.  The paper's two
configurations:

* ``mm 128x128`` — 4x4 blocks of 128x128 doubles (bulk-transfer friendly),
* ``mm 16x16``  — 16x16 blocks of 16x16 doubles (2 KB messages, where
  MPL's per-message overhead shows).

The dgemm is computed for real (numpy) so tests verify the product; its
time is charged analytically at the host's calibrated flop rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.workloads import AppResult, run_app
from repro.splitc import GlobalPtr


def _owner(i: int, j: int, n: int, nprocs: int) -> int:
    return (i * n + j) % nprocs


@dataclass
class _Layout:
    """Where every block of A, B, C lives: (proc, addr)."""

    n: int
    b: int
    blocks: Dict[Tuple[str, int, int], GlobalPtr]

    @property
    def block_bytes(self) -> int:
        return self.b * self.b * 8


def _allocate(machine, n: int, b: int, seed: int = 7) -> _Layout:
    """Symmetric allocation of all blocks, with deterministic contents."""
    rng = np.random.RandomState(seed)
    blocks: Dict[Tuple[str, int, int], GlobalPtr] = {}
    for name in ("A", "B", "C"):
        for i in range(n):
            for j in range(n):
                proc = _owner(i, j, n, machine.nprocs)
                addr, arr = machine.node(proc).memory.alloc_array(
                    b * b, np.float64)
                if name == "C":
                    arr[:] = 0.0
                else:
                    arr[:] = rng.uniform(-1, 1, size=b * b)
                blocks[(name, i, j)] = GlobalPtr(proc, addr)
    return _Layout(n=n, b=b, blocks=blocks)


def _block_view(machine, gp: GlobalPtr, b: int) -> np.ndarray:
    mem = machine.node(gp.proc).memory
    return np.frombuffer(mem.view(gp.addr, b * b * 8), np.float64).reshape(b, b)


def matmul_program(machine, rts, rank: int, layout: _Layout,
                   service: str = "poll"):
    """One rank's share of C = A x B, with split-phase prefetching.

    The Split-C blocked matmul issues the gets for step t+1 *before*
    computing step t, so the remote owners' service delay (they only poll
    between their own dgemms) is hidden behind local computation — without
    this, every get can stall for up to one remote block-multiply.

    ``service`` selects how remote gets are served during the dgemm:
    ``"poll"`` (sprinkled am_poll checks, the paper's §1.1 suggestion) or
    ``"interrupt"`` (the §1.1 interrupt-driven alternative).
    """
    rt = rts[rank]
    n, b = layout.n, layout.b
    nbytes = layout.block_bytes
    mem = machine.node(rank).memory
    # double-buffered scratch for fetched A and B blocks
    bufs = [(mem.alloc(nbytes), mem.alloc(nbytes)) for _ in range(2)]
    # the (i, j, k) schedule of this rank's block-multiplies
    steps = [(i, j, k)
             for i in range(n) for j in range(n)
             if _owner(i, j, n, machine.nprocs) == rank
             for k in range(n)]

    def fetch(step_idx: int, slot: int):
        i, j, k = steps[step_idx]
        yield from rt.get_bulk(bufs[slot][0], layout.blocks[("A", i, k)],
                               nbytes)
        yield from rt.get_bulk(bufs[slot][1], layout.blocks[("B", k, j)],
                               nbytes)

    if steps:
        yield from fetch(0, 0)
    for t in range(len(steps)):
        yield from rt.sync()  # operands for step t have landed
        cur = t % 2
        if t + 1 < len(steps):
            yield from fetch(t + 1, (t + 1) % 2)  # prefetch next operands
        i, j, k = steps[t]
        c = _block_view(machine, layout.blocks[("C", i, j)], b)
        a = np.frombuffer(mem.view(bufs[cur][0], nbytes),
                          np.float64).reshape(b, b)
        bb = np.frombuffer(mem.view(bufs[cur][1], nbytes),
                           np.float64).reshape(b, b)
        c += a @ bb
        flops = 2.0 * b * b * b
        if service == "interrupt":
            from repro.am.interrupts import compute_interruptible

            yield from compute_interruptible(rt.am,
                                             flops * rt.node.host.flop_us)
            rt.profile.cpu_us += flops * rt.node.host.flop_us
        else:
            # the dgemm polls periodically so this node keeps serving its
            # peers' gets while it computes (§1.1's explicit poll checks)
            yield from rt.profile.flops_polled(flops, rt.am)
    yield from rt.barrier()


def run_matmul(stack: str, nprocs: int = 8, n: int = 4, b: int = 128,
               verify: bool = False, service: str = "poll") -> AppResult:
    """Run one Table-5 matmul configuration on one stack.

    Paper scale: ``n=4, b=128`` ("mm 128x128") and ``n=16, b=16``
    ("mm 16x16"); pass ``verify=True`` to check C == A @ B afterwards;
    ``service="interrupt"`` uses interrupt-driven reception during the
    dgemms instead of sprinkled polls (SP AM stack only).
    """
    layout_holder: List[_Layout] = []
    machine_holder: List = []

    def make_prog(machine, rts, rank):
        if not layout_holder:
            layout_holder.append(_allocate(machine, n, b))
            machine_holder.append(machine)
        return matmul_program(machine, rts, rank, layout_holder[0],
                              service=service)

    result = run_app(stack, nprocs, make_prog)
    if verify:
        result.payload["verified"] = verify_matmul(machine_holder[0],
                                                   layout_holder[0])
    return result


def verify_matmul(machine, layout: _Layout) -> bool:
    n, b = layout.n, layout.b
    size = n * b
    A = np.zeros((size, size))
    B = np.zeros((size, size))
    C = np.zeros((size, size))
    for i in range(n):
        for j in range(n):
            sl = np.s_[i * b:(i + 1) * b, j * b:(j + 1) * b]
            A[sl] = _block_view(machine, layout.blocks[("A", i, j)], b)
            B[sl] = _block_view(machine, layout.blocks[("B", i, j)], b)
            C[sl] = _block_view(machine, layout.blocks[("C", i, j)], b)
    return bool(np.allclose(C, A @ B, atol=1e-9 * size))
