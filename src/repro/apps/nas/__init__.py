"""NAS Parallel Benchmark kernels (v2.0-style) for Table 6 (§4.4).

Communication-faithful implementations of the five benchmarks the paper
runs — BT, FT, LU, MG, SP — over our MPI (MPI-AM or MPI-F):

* the **communication schedules are real** (face exchanges, wavefront
  pipelines, all-to-all transposes move real bytes through the simulated
  network, and every receiver validates the payloads it gets);
* the **computation is charged** analytically per cell/point at the
  host's calibrated flop rate, scaled from the NAS operation counts.

Table 6 compares communication layers, so what matters is each kernel's
communication pattern and its compute/communication ratio — both are
preserved at the (configurable, default reduced) problem scales; see
EXPERIMENTS.md for the scale note.
"""

from repro.apps.nas.bt import run_bt
from repro.apps.nas.common import NASResult, NAS_KERNELS, run_nas_kernel
from repro.apps.nas.ft import run_ft
from repro.apps.nas.lu import run_lu
from repro.apps.nas.mg import run_mg
from repro.apps.nas.sp import run_sp

__all__ = ["NASResult", "NAS_KERNELS", "run_nas_kernel",
           "run_bt", "run_ft", "run_lu", "run_mg", "run_sp"]
