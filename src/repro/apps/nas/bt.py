"""BT — block tridiagonal ADI solver (NAS 2.0).

A 3D grid decomposed over a 2D process grid; each iteration runs an
x-, y-, and z-sweep.  Communication per sweep is a face exchange of
5-component block boundary data with the four grid neighbours — BT moves
relatively few, relatively large messages, which is why its MPI-AM/MPI-F
gap in Table 6 is small.

Class A is 64^3 x 200 iterations; the default here is a reduced scale
with the same per-iteration pattern (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.apps.nas.common import (
    NAS_KERNELS,
    NASResult,
    exchange_faces,
    grid_2d,
    neighbors_2d,
    run_nas_kernel,
)

#: ~flops per grid cell per full BT iteration (three block-5x5 sweeps)
FLOPS_PER_CELL_ITER = 2800.0
#: solution components per cell
COMPONENTS = 5


def bt_program(machine, mpis, rank, grid_n: int, iters: int):
    mpi = mpis[rank]
    nprocs = machine.nprocs
    px, py = grid_2d(nprocs)
    neigh = neighbors_2d(rank, px, py)
    cells_local = grid_n ** 3 // nprocs
    # one face: a grid_n x (grid_n/px) pencil of 5-vectors
    face_doubles = max(1, grid_n * grid_n // max(px, py)) * COMPONENTS
    ok = True
    yield from mpi.barrier()
    for it in range(iters):
        for sweep in range(3):  # x, y, z solves
            good = yield from exchange_faces(
                mpi, rank, neigh, it * 3 + sweep, salt=11, count=face_doubles)
            ok = ok and good
            yield from machine.node(rank).charge_flops(
                cells_local * FLOPS_PER_CELL_ITER / 3.0)
    yield from mpi.barrier()
    return ok


def run_bt(variant: str = "mpi-am", nprocs: int = 16, grid_n: int = 24,
           iters: int = 3) -> NASResult:
    def make_prog(machine, mpis, rank):
        return bt_program(machine, mpis, rank, grid_n, iters)

    return run_nas_kernel("BT", variant, nprocs, make_prog)


NAS_KERNELS["BT"] = run_bt
