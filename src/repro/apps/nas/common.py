"""Shared machinery for the NAS kernels: variants, grids, verification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.am import attach_spam
from repro.hardware import build_sp_machine
from repro.hardware.params import machine_params
from repro.mpi import OPTIMIZED, UNOPTIMIZED, attach_mpi, attach_mpif
from repro.sim import Simulator

#: the MPI variants Table 6 compares (plus the unoptimized ablation)
VARIANTS = ("mpi-am", "mpi-f", "mpi-am-unopt")


@dataclass
class NASResult:
    """One kernel run."""

    name: str
    variant: str
    nprocs: int
    elapsed_s: float
    verified: bool
    stats: Dict = field(default_factory=dict)


def build_variant(variant: str, nprocs: int):
    """Build a 16-thin-node SP with the chosen MPI stack."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; one of {VARIANTS}")
    sim = Simulator()
    machine = build_sp_machine(sim, nprocs, machine_params("sp-thin"))
    if variant == "mpi-f":
        mpis = attach_mpif(machine)
    else:
        attach_spam(machine)
        cfg = OPTIMIZED if variant == "mpi-am" else UNOPTIMIZED
        mpis = attach_mpi(machine, cfg)
    return machine, mpis


def run_nas_kernel(name: str, variant: str, nprocs: int,
                   make_prog: Callable, limit_us: float = 5e9) -> NASResult:
    """Run ``make_prog(machine, mpis, rank)`` on every rank, timed."""
    machine, mpis = build_variant(variant, nprocs)
    sim = machine.sim
    checks: List[bool] = []

    def wrapped(rank):
        ok = yield from make_prog(machine, mpis, rank)
        checks.append(bool(ok))

    t0 = sim.now
    procs = [sim.spawn(wrapped(r), name=f"{name}{r}")
             for r in range(nprocs)]
    sim.run_until_processes_done(procs, limit=limit_us,
                                 max_events=400_000_000)
    return NASResult(name=name, variant=variant, nprocs=nprocs,
                     elapsed_s=(sim.now - t0) / 1e6,
                     verified=len(checks) == nprocs and all(checks))


def grid_2d(nprocs: int) -> Tuple[int, int]:
    """Near-square 2D process grid (BT/SP/LU/MG decomposition)."""
    px = int(np.sqrt(nprocs))
    while nprocs % px:
        px -= 1
    return px, nprocs // px


def neighbors_2d(rank: int, px: int, py: int) -> Dict[str, Optional[int]]:
    """Torus-free 2D neighbourhood (None at the domain edge)."""
    x, y = rank % px, rank // px
    return {
        "west": rank - 1 if x > 0 else None,
        "east": rank + 1 if x < px - 1 else None,
        "south": rank - px if y > 0 else None,
        "north": rank + px if y < py - 1 else None,
    }


def face_pattern(rank: int, it: int, salt: int, count: int) -> np.ndarray:
    """Deterministic face payload the receiver can verify."""
    base = (rank * 1_000_003 + it * 101 + salt) % 65521
    return (np.arange(count, dtype=np.float64) + base)


def check_pattern(data: bytes, rank: int, it: int, salt: int,
                  count: int) -> bool:
    got = np.frombuffer(data, np.float64)
    return len(got) == count and bool(
        np.array_equal(got, face_pattern(rank, it, salt, count)))


def exchange_faces(mpi, rank: int, neigh: Dict[str, Optional[int]],
                   it: int, salt: int, count: int):
    """Post receives from all neighbours, send to all, verify payloads.

    The standard NAS face exchange: non-blocking receives first, then
    sends, then wait — deadlock-free at any message size.  Returns True
    if every received face carried its sender's expected pattern.
    """
    opposite = {"west": "east", "east": "west",
                "south": "north", "north": "south"}
    recvs = []
    for dname, peer in neigh.items():
        if peer is None:
            continue
        req = yield from mpi.irecv(count * 8, peer,
                                   tag=it * 8 + _dirtag(opposite[dname]))
        recvs.append((peer, req))
    for dname, peer in neigh.items():
        if peer is None:
            continue
        payload = face_pattern(rank, it, salt, count).tobytes()
        yield from mpi.send(payload, peer, tag=it * 8 + _dirtag(dname))
    ok = True
    for peer, req in recvs:
        yield from mpi.wait(req)
        ok = ok and check_pattern(req.data, peer, it, salt, count)
    return ok


_DIRS = {"west": 0, "east": 1, "south": 2, "north": 3}


def _dirtag(dname: str) -> int:
    return _DIRS[dname]


#: (name, callable) registry filled by the kernel modules
NAS_KERNELS: Dict[str, Callable] = {}
