"""FT — 3D FFT (NAS 2.0).

Each iteration: local 1D FFT passes, then a **global transpose** done with
``MPI_Alltoall``.  The paper singles FT out: "the all-to-all communication
function used by the FT benchmark caused unnecessary bottlenecks because
all processors try to send to the same processor at the same time, rather
than spreading out the communication pattern" (§4.4) — MPICH's generic
rank-ordered alltoall hot-spots the destination links.  The staggered
variant (``staggered=True``) implements the fix the paper suggests and is
measured by the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.apps.nas.common import NAS_KERNELS, NASResult, run_nas_kernel

#: complex doubles are 16 bytes
COMPLEX_BYTES = 16


def ft_program(machine, mpis, rank, grid_n: int, iters: int,
               staggered: bool):
    mpi = mpis[rank]
    nprocs = machine.nprocs
    points_local = grid_n ** 3 // nprocs
    # each pairwise alltoall chunk: N^3 / P^2 complex points
    chunk_points = max(1, grid_n ** 3 // (nprocs * nprocs))
    # ~5 N log2(N) flops per point per 3D FFT
    fft_flops = points_local * 5.0 * 3.0 * np.log2(grid_n)
    ok = True
    yield from mpi.barrier()
    for it in range(iters):
        yield from machine.node(rank).charge_flops(fft_flops)
        chunks = [
            (np.full(chunk_points * 2, rank * 64 + dst, np.float64)
             .tobytes())
            for dst in range(nprocs)
        ]
        out = yield from mpi.alltoall(chunks, staggered=staggered)
        for src in range(nprocs):
            got = np.frombuffer(out[src], np.float64)
            if not (len(got) == chunk_points * 2
                    and (got == src * 64 + rank).all()):
                ok = False
        # local transpose/reorder pass
        yield from machine.node(rank).charge_flops(points_local * 2.0)
    yield from mpi.barrier()
    return ok


def run_ft(variant: str = "mpi-am", nprocs: int = 16, grid_n: int = 48,
           iters: int = 3, staggered: bool = False) -> NASResult:
    """Class A FT moves ~512 KB alltoall chunks; keep the default grid
    large enough (48^3 / 16^2 ~ 6.8 KB chunks) that the transpose stays
    bandwidth-dominated as in the paper rather than latency-dominated.
    (Much larger grids push 15 concurrent senders past the receive-FIFO
    capacity and the run spends its time in go-back-N recovery — the
    §4.4 hot spot in its most extreme form.)"""
    def make_prog(machine, mpis, rank):
        return ft_program(machine, mpis, rank, grid_n, iters, staggered)

    return run_nas_kernel("FT", variant, nprocs, make_prog)


NAS_KERNELS["FT"] = run_ft
