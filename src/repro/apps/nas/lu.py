"""LU — SSOR solver with a pipelined wavefront (NAS 2.0).

The lower/upper triangular sweeps propagate a dependence diagonally
across the 2D process grid: for every k-plane each rank receives thin
boundary strips from its west and south neighbours, computes, and
forwards east and north.  This produces *many tiny messages* (a few
hundred bytes each, one pair per plane per sweep) — the most
latency-sensitive NAS kernel, which is why Table 6's LU shows MPI-AM's
per-message costs most directly.
"""

from __future__ import annotations

from repro.apps.nas.common import (
    NAS_KERNELS,
    NASResult,
    check_pattern,
    face_pattern,
    grid_2d,
    neighbors_2d,
    run_nas_kernel,
)

#: ~flops per grid cell per SSOR iteration (both sweeps)
FLOPS_PER_CELL_ITER = 1800.0
COMPONENTS = 5


def lu_program(machine, mpis, rank, grid_n: int, iters: int):
    mpi = mpis[rank]
    nprocs = machine.nprocs
    px, py = grid_2d(nprocs)
    neigh = neighbors_2d(rank, px, py)
    cells_local = grid_n ** 3 // nprocs
    nz = grid_n
    strip_doubles = max(1, grid_n // px) * COMPONENTS
    strip_bytes = strip_doubles * 8
    ok = True
    yield from mpi.barrier()
    for it in range(iters):
        for sweep, (recv_from, send_to) in enumerate(
                [("west", "east"), ("east", "west")]):  # lower, upper
            rf1, rf2 = ((neigh["west"], neigh["south"])
                        if sweep == 0 else (neigh["east"], neigh["north"]))
            st1, st2 = ((neigh["east"], neigh["north"])
                        if sweep == 0 else (neigh["west"], neigh["south"]))
            for k in range(nz):
                tag = (it * 2 + sweep) * 1000 + k
                for peer in (rf1, rf2):
                    if peer is None:
                        continue
                    d, _ = yield from mpi.recv(strip_bytes, peer, tag)
                    ok = ok and check_pattern(d, peer, tag, 17, strip_doubles)
                yield from machine.node(rank).charge_flops(
                    cells_local / nz * FLOPS_PER_CELL_ITER / 2.0)
                for peer in (st1, st2):
                    if peer is None:
                        continue
                    payload = face_pattern(rank, tag, 17, strip_doubles)
                    yield from mpi.send(payload.tobytes(), peer, tag)
    yield from mpi.barrier()
    return ok


def run_lu(variant: str = "mpi-am", nprocs: int = 16, grid_n: int = 16,
           iters: int = 3) -> NASResult:
    def make_prog(machine, mpis, rank):
        return lu_program(machine, mpis, rank, grid_n, iters)

    return run_nas_kernel("LU", variant, nprocs, make_prog)


NAS_KERNELS["LU"] = run_lu
