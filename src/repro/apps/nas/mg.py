"""MG — multigrid V-cycle (NAS 2.0).

Each V-cycle descends and re-ascends a hierarchy of grids; at every level
each rank exchanges ghost faces with its four neighbours.  Message sizes
shrink geometrically down the hierarchy, so MG mixes bulk faces at the
fine levels with near-minimum-size messages at the coarse ones — its
Table 6 gap sits between BT's (bulk) and LU's (tiny).
"""

from __future__ import annotations

from repro.apps.nas.common import (
    NAS_KERNELS,
    NASResult,
    exchange_faces,
    grid_2d,
    neighbors_2d,
    run_nas_kernel,
)

#: ~flops per fine-grid cell per V-cycle (residual, smooth, transfer ops)
FLOPS_PER_CELL_CYCLE = 450.0


def mg_program(machine, mpis, rank, grid_n: int, cycles: int):
    mpi = mpis[rank]
    nprocs = machine.nprocs
    px, py = grid_2d(nprocs)
    neigh = neighbors_2d(rank, px, py)
    cells_local = grid_n ** 3 // nprocs
    levels = max(1, grid_n.bit_length() - 2)  # down to a 4^3-ish grid
    ok = True
    step = 0
    yield from mpi.barrier()
    for cy in range(cycles):
        for half in range(2):  # restriction descent, prolongation ascent
            order = range(levels) if half == 0 else range(levels - 1, -1, -1)
            for lv in order:
                n_lv = max(4, grid_n >> lv)
                face_doubles = max(1, n_lv * n_lv // max(px, py))
                good = yield from exchange_faces(
                    mpi, rank, neigh, step, salt=23, count=face_doubles)
                ok = ok and good
                step += 1
                yield from machine.node(rank).charge_flops(
                    (cells_local >> (3 * lv)) * FLOPS_PER_CELL_CYCLE / 2.0)
    yield from mpi.barrier()
    return ok


def run_mg(variant: str = "mpi-am", nprocs: int = 16, grid_n: int = 32,
           cycles: int = 3) -> NASResult:
    def make_prog(machine, mpis, rank):
        return mg_program(machine, mpis, rank, grid_n, cycles)

    return run_nas_kernel("MG", variant, nprocs, make_prog)


NAS_KERNELS["MG"] = run_mg
