"""SP — scalar pentadiagonal ADI solver (NAS 2.0).

The same ADI structure as BT but scalar pentadiagonal systems: less
computation per cell and *more, smaller* messages per iteration (each
sweep exchanges boundary data twice — forward and back substitution).
That higher message rate is why SP shows the largest MPI-AM/MPI-F gap in
Table 6 (40.37 vs 49.08 s): it leans hardest on the collective-free
point-to-point layer and on nonblocking-send overhead.
"""

from __future__ import annotations

from repro.apps.nas.common import (
    NAS_KERNELS,
    NASResult,
    exchange_faces,
    grid_2d,
    neighbors_2d,
    run_nas_kernel,
)

#: ~flops per grid cell per full SP iteration
FLOPS_PER_CELL_ITER = 2100.0
COMPONENTS = 5
#: boundary exchanges per sweep (forward + backward substitution)
EXCHANGES_PER_SWEEP = 2


def sp_program(machine, mpis, rank, grid_n: int, iters: int):
    mpi = mpis[rank]
    nprocs = machine.nprocs
    px, py = grid_2d(nprocs)
    neigh = neighbors_2d(rank, px, py)
    cells_local = grid_n ** 3 // nprocs
    # SP's substitution messages are thinner than BT's block faces
    face_doubles = max(1, grid_n * grid_n // max(px, py)) * 2
    ok = True
    yield from mpi.barrier()
    step = 0
    for it in range(iters):
        for sweep in range(3):
            for sub in range(EXCHANGES_PER_SWEEP):
                good = yield from exchange_faces(
                    mpi, rank, neigh, step, salt=13, count=face_doubles)
                ok = ok and good
                step += 1
            yield from machine.node(rank).charge_flops(
                cells_local * FLOPS_PER_CELL_ITER / 3.0)
    yield from mpi.barrier()
    return ok


def run_sp(variant: str = "mpi-am", nprocs: int = 16, grid_n: int = 24,
           iters: int = 3) -> NASResult:
    def make_prog(machine, mpis, rank):
        return sp_program(machine, mpis, rank, grid_n, iters)

    return run_nas_kernel("SP", variant, nprocs, make_prog)


NAS_KERNELS["SP"] = run_sp
