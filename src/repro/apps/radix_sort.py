"""Parallel radix sort in Split-C (§3, Table 5's ``rdxsort`` rows).

Counting-sort passes over the key bits (11 bits per pass, 3 passes for the
paper's 32-bit keys).  Each pass:

1. local histogram of the current digit (compute);
2. histogram exchange: every rank bulk-stores its counts to rank 0, which
   computes every rank's global bucket offsets and bulk-stores them back;
3. permutation: every key moves to its global rank —
   * **small variant**: one ``store_word`` per key straight into its final
     slot on the destination processor (fine-grain traffic),
   * **large variant**: per-destination packed (slot, key) pairs moved
     with one ``store_bulk`` per destination, scattered locally on arrival;
4. ``all_store_sync`` and swap to the received array.

Keys are real int64s and the result is verified globally sorted.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.apps.workloads import AppResult, keys_for_rank, run_app
from repro.splitc import GlobalPtr

WORD = 8
RADIX_BITS = 11
KEY_BITS = 32

#: calibrated per-pass compute charges (integer ops per key): the bulk
#: variant of Table 5 bounds cpu at ~8.7 us/key/pass on the Power2
#: (~435 ops at 50 Mops); see EXPERIMENTS.md
HIST_OPS_PER_KEY = 150.0
PERMUTE_OPS_PER_KEY = 250.0
SCATTER_OPS_PER_KEY = 35.0


def radix_sort_program(machine, rts, rank: int, keys: np.ndarray,
                       variant: str, shared: Dict,
                       radix_bits: int = RADIX_BITS):
    rt = rts[rank]
    nprocs = machine.nprocs
    n_local = len(keys)
    mem = machine.node(rank).memory
    buckets = 1 << radix_bits
    mask = buckets - 1
    passes = -(-KEY_BITS // radix_bits)

    # regions published to all ranks before the timed loop
    cur_addr, cur = mem.alloc_array(n_local, np.int64)
    nxt_addr, nxt = mem.alloc_array(n_local, np.int64)
    off_addr = mem.alloc(buckets * WORD)
    cur[:] = keys
    shared.setdefault("next_addr", {})[rank] = nxt_addr
    shared.setdefault("off_addr", {})[rank] = off_addr
    if rank == 0 and "hist_region" not in shared:
        shared["hist_region"] = mem.alloc(buckets * nprocs * WORD)
    yield from rt.barrier()

    for p in range(passes):
        shift = p * radix_bits
        digits = (cur >> shift) & mask
        hist = np.bincount(digits, minlength=buckets).astype(np.int64)
        yield from rt.profile.intops(HIST_OPS_PER_KEY * n_local)

        # -- histogram exchange -------------------------------------------
        hbuf = mem.alloc(buckets * WORD)
        mem.write(hbuf, hist.tobytes())
        yield from rt.store_bulk(
            GlobalPtr(0, shared["hist_region"] + rank * buckets * WORD),
            hbuf, buckets * WORD)
        yield from rt.all_store_sync()
        if rank == 0:
            counts = np.frombuffer(
                machine.node(0).memory.read(shared["hist_region"],
                                            buckets * nprocs * WORD),
                np.int64).reshape(nprocs, buckets)
            # offset of (bucket b, proc q) = all keys in smaller buckets
            # + same-bucket keys on smaller ranks
            bucket_tot = counts.sum(axis=0)
            bucket_base = np.concatenate(([0], np.cumsum(bucket_tot)[:-1]))
            proc_prefix = np.cumsum(counts, axis=0) - counts
            offsets = bucket_base[None, :] + proc_prefix  # (nprocs, buckets)
            yield from rt.profile.intops(4.0 * buckets * nprocs)
            obuf = machine.node(0).memory.alloc(buckets * nprocs * WORD)
            machine.node(0).memory.write(obuf, offsets.astype(np.int64).tobytes())
            for q in range(nprocs):
                yield from rt.store_bulk(
                    GlobalPtr(q, shared["off_addr"][q]),
                    obuf + q * buckets * WORD, buckets * WORD)
        yield from rt.all_store_sync()
        my_off = np.frombuffer(mem.read(off_addr, buckets * WORD),
                               np.int64).copy()

        # -- permutation -----------------------------------------------------
        # global index of each local key: offset[digit] + occurrence number
        order = np.argsort(digits, kind="stable")
        sorted_digits = digits[order]
        within = np.arange(n_local) - np.searchsorted(sorted_digits,
                                                      sorted_digits)
        g = np.empty(n_local, np.int64)
        g[order] = my_off[sorted_digits] + within
        yield from rt.profile.intops(PERMUTE_OPS_PER_KEY * n_local)
        dest_proc = g // n_local
        dest_slot = g % n_local
        next_addr_of = shared["next_addr"]
        if variant == "small":
            for key, dp, ds in zip(cur.tolist(), dest_proc.tolist(),
                                   dest_slot.tolist()):
                yield from rt.store_word(
                    GlobalPtr(int(dp), next_addr_of[int(dp)] + int(ds) * WORD),
                    int(key))
        elif variant == "large":
            for q in range(nprocs):
                sel = dest_proc == q
                cnt = int(sel.sum())
                if cnt == 0:
                    continue
                pairs = np.empty(2 * cnt, np.int64)
                pairs[0::2] = dest_slot[sel]
                pairs[1::2] = cur[sel]
                if q == rank:
                    nxt[dest_slot[sel]] = cur[sel]
                    rt.stores_sent_bytes += 0
                    continue
                pbuf = mem.alloc(2 * cnt * WORD)
                mem.write(pbuf, pairs.tobytes())
                stage = shared["stage_addr"][q][rank]
                yield from rt.store_bulk(GlobalPtr(q, stage), pbuf,
                                         2 * cnt * WORD)
                # record how many pairs went so the receiver can scatter
                yield from rt.store_word(
                    GlobalPtr(q, shared["stage_cnt"][q] + rank * WORD), cnt)
        else:
            raise ValueError(f"unknown variant {variant!r}")
        yield from rt.all_store_sync()

        if variant == "large":
            # scatter staged (slot, key) pairs into the next array
            for s in range(nprocs):
                if s == rank:
                    continue
                cnt = int(np.frombuffer(
                    mem.read(shared["stage_cnt"][rank] + s * WORD, WORD),
                    np.int64)[0])
                if cnt == 0:
                    continue
                pairs = np.frombuffer(
                    mem.read(shared["stage_addr"][rank][s], 2 * cnt * WORD),
                    np.int64)
                nxt[pairs[0::2]] = pairs[1::2]
                yield from rt.profile.intops(SCATTER_OPS_PER_KEY * cnt)
            # reset counters for the next pass
            mem.write(shared["stage_cnt"][rank], b"\x00" * nprocs * WORD)
            yield from rt.barrier()
        cur, nxt = nxt, cur
        cur_addr, nxt_addr = nxt_addr, cur_addr
        # republish the (swapped) destination array for the next pass
        shared["next_addr"][rank] = nxt_addr
        yield from rt.barrier()

    yield from rt.barrier()
    return cur.copy()


def run_radix_sort(stack: str, nprocs: int = 8, keys_per_proc: int = 4096,
                   variant: str = "small", verify: bool = True,
                   seed: int = 999, radix_bits: int = RADIX_BITS) -> AppResult:
    """One Table-5 radix-sort configuration (paper scale ~1M keys total)."""
    total = keys_per_proc * nprocs
    all_keys = [keys_for_rank(total, nprocs, r, seed) for r in range(nprocs)]
    shared: Dict = {}

    def make_prog(machine, rts, rank):
        if "stage_addr" not in shared:
            # staging areas for the large variant: per (receiver, sender)
            shared["stage_addr"] = {}
            shared["stage_cnt"] = {}
            for q in range(nprocs):
                memq = machine.node(q).memory
                shared["stage_addr"][q] = {
                    s: memq.alloc(2 * keys_per_proc * WORD)
                    for s in range(nprocs) if s != q
                }
                cnt_addr = memq.alloc(nprocs * WORD)
                memq.write(cnt_addr, b"\x00" * nprocs * WORD)
                shared["stage_cnt"][q] = cnt_addr
        return radix_sort_program(machine, rts, rank, all_keys[rank],
                                  variant, shared, radix_bits)

    result = run_app(stack, nprocs, make_prog)
    if verify:
        pieces = [result.payload[r] for r in range(nprocs)]
        got = np.concatenate(pieces)
        expect = np.sort(np.concatenate(all_keys))
        result.payload["verified"] = bool(
            len(got) == len(expect) and (got == expect).all())
    return result
