"""Sample sort in Split-C (§3, Table 5's ``smpsort`` rows).

Phases (instrumented separately, per Figure 4):

1. sample: each rank contributes an oversampled set of keys to rank 0,
   which sorts them and broadcasts P-1 splitters;
2. partition: local keys are classified against the splitters (compute);
3. distribute: keys travel to their destination rank —
   * the **small-message variant** stores each key individually
     (one ``store_word``/Active Message per key: the fine-grain traffic
     that buries MPL's per-message overhead),
   * the **bulk variant** packs one array per destination and issues a
     single ``store_bulk`` each;
4. local sort of the received keys (compute).

Keys are real int64s; the harness verifies global sortedness and multiset
preservation.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.apps.workloads import AppResult, keys_for_rank, run_app
from repro.splitc import GlobalPtr

OVERSAMPLE = 8
WORD = 8

#: calibrated compute charges (integer operations per key).  Derived from
#: Table 5: the bulk variant's time is almost all compute, giving
#: ~11.8 us/key of cpu on the Power2 (~590 ops at 50 Mops) — 1996 qsort +
#: bucketing with cold caches; see EXPERIMENTS.md.
SORT_OPS_PER_KEY = 450.0
PARTITION_OPS_PER_KEY = 140.0


def sample_sort_program(machine, rts, rank: int, keys: np.ndarray,
                        variant: str, shared: Dict):
    rt = rts[rank]
    nprocs = machine.nprocs
    n_local = len(keys)
    mem = machine.node(rank).memory

    # --- receive region: each rank can hold up to 3x its share ---------------
    cap = 3 * n_local + OVERSAMPLE * nprocs
    recv_addr, recv_arr = mem.alloc_array(cap, np.int64)
    shared.setdefault("recv", {})[rank] = (recv_addr, cap)
    shared.setdefault("recv_counts", {})[rank] = 0
    # per-sender slots so one-way stores never collide: sender s writes
    # into [s * 2*n_local/nprocs ...] — sized by worst case below
    yield from rt.barrier()

    # --- phase 1: sampling -----------------------------------------------
    samples = np.sort(keys)[:: max(1, n_local // OVERSAMPLE)][:OVERSAMPLE]
    yield from rt.profile.intops(OVERSAMPLE * 4)
    sample_region = shared["sample_region"]
    gp = GlobalPtr(0, sample_region + rank * OVERSAMPLE * WORD)
    src = mem.alloc(OVERSAMPLE * WORD)
    mem.write(src, samples.astype(np.int64).tobytes())
    yield from rt.store_bulk(gp, src, OVERSAMPLE * WORD)
    yield from rt.all_store_sync()

    if rank == 0:
        allsamp = np.frombuffer(
            machine.node(0).memory.read(sample_region,
                                        OVERSAMPLE * nprocs * WORD),
            np.int64)
        order = np.sort(allsamp)
        step = len(order) // nprocs
        splitters = order[step::step][: nprocs - 1]
        yield from rt.profile.intops(len(order) * 8)
        shared["splitters"] = splitters
    # broadcast splitters as words
    splitters = []
    for i in range(nprocs - 1):
        v = yield from rt.broadcast_int(
            int(shared["splitters"][i]) if rank == 0 else None)
        splitters.append(v)
    splitters = np.array(splitters, np.int64)

    # --- phase 2: partition ---------------------------------------------------
    dest = np.searchsorted(splitters, keys, side="right")
    yield from rt.profile.intops(PARTITION_OPS_PER_KEY * n_local)

    # --- phase 3: distribute --------------------------------------------------
    per_slot = (2 * n_local) // nprocs + OVERSAMPLE  # per-sender slot size
    base = shared["recv"]  # rank -> (addr, cap)
    if variant == "small":
        cursors = [0] * nprocs
        for key, d in zip(keys.tolist(), dest.tolist()):
            slot_addr = (base[d][0]
                         + (rank * per_slot + cursors[d]) * WORD)
            yield from rt.store_word(GlobalPtr(d, slot_addr), key)
            cursors[d] += 1
        sent = cursors
    elif variant == "bulk":
        sent = []
        for d in range(nprocs):
            bucket = keys[dest == d].astype(np.int64)
            sent.append(len(bucket))
            if len(bucket) == 0:
                continue
            if len(bucket) > per_slot:
                raise AssertionError("slot overflow; raise capacity")
            buf = mem.alloc(len(bucket) * WORD)
            mem.write(buf, bucket.tobytes())
            slot_addr = base[d][0] + rank * per_slot * WORD
            yield from rt.store_bulk(GlobalPtr(d, slot_addr), buf,
                                     len(bucket) * WORD)
        yield from rt.profile.intops(2.0 * n_local)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    # publish how many keys each sender put in each slot (at the
    # destination's counts array, indexed by sender)
    counts_addr_of = shared["counts_addr_of"]
    for d in range(nprocs):
        gp = GlobalPtr(d, counts_addr_of[d] + rank * WORD)
        yield from rt.store_word(gp, int(sent[d]))
    yield from rt.all_store_sync()

    # --- phase 4: local sort ----------------------------------------------
    counts = np.frombuffer(
        machine.node(rank).memory.read(counts_addr_of[rank], nprocs * WORD),
        np.int64)
    mine: List[np.ndarray] = []
    for s in range(nprocs):
        cnt = int(counts[s])
        if cnt:
            raw = machine.node(rank).memory.read(
                base[rank][0] + s * per_slot * WORD, cnt * WORD)
            mine.append(np.frombuffer(raw, np.int64))
    merged = np.sort(np.concatenate(mine)) if mine else np.empty(0, np.int64)
    yield from rt.profile.intops(SORT_OPS_PER_KEY * max(1, len(merged)))
    yield from rt.barrier()
    return merged


def run_sample_sort(stack: str, nprocs: int = 8, keys_per_proc: int = 4096,
                    variant: str = "small", verify: bool = True,
                    seed: int = 2023) -> AppResult:
    """One Table-5 sample-sort configuration.

    Paper scale is ~1M keys total; the default here is smaller (the
    cpu/net *shape* is scale-stable — see EXPERIMENTS.md).
    """
    total = keys_per_proc * nprocs
    all_keys = [keys_for_rank(total, nprocs, r, seed) for r in range(nprocs)]
    shared: Dict = {}

    def make_prog(machine, rts, rank):
        if "sample_region" not in shared:
            shared["sample_region"] = machine.node(0).memory.alloc(
                OVERSAMPLE * nprocs * WORD)
        return _with_counts(machine, rts, rank, all_keys[rank],
                            variant, shared)

    result = run_app(stack, nprocs, make_prog)
    if verify:
        result.payload["verified"] = _verify(result, all_keys, nprocs)
    return result


def _with_counts(machine, rts, rank, keys, variant, shared):
    # allocate this node's counts region before anything else so that the
    # address is known; publish it in shared (addresses may differ per node)
    addr = machine.node(rank).memory.alloc(machine.nprocs * WORD)
    machine.node(rank).memory.write(addr, b"\x00" * machine.nprocs * WORD)
    shared.setdefault("counts_addr_of", {})[rank] = addr
    yield from rts[rank].barrier()
    out = yield from sample_sort_program(machine, rts, rank, keys,
                                         variant, shared)
    return out


def _verify(result: AppResult, all_keys, nprocs: int) -> bool:
    pieces = [result.payload[r] for r in range(nprocs)]
    got = np.concatenate(pieces)
    expect = np.sort(np.concatenate(all_keys))
    if len(got) != len(expect):
        return False
    if not (got == expect).all():
        return False
    # global order across ranks
    for a, b in zip(pieces, pieces[1:]):
        if len(a) and len(b) and a[-1] > b[0]:
            return False
    return True
