"""Shared machinery for the Split-C application benchmarks.

Table 5 runs the same applications on five stacks; :func:`build_stack`
assembles each, and :func:`run_app` executes an SPMD program set and
returns the per-node cpu/net profile split plus the app's own result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.am import attach_generic_am, attach_spam
from repro.hardware import build_generic_machine, build_sp_machine
from repro.hardware.machine import Machine
from repro.hardware.params import machine_params
from repro.mpl import attach_mpl_am
from repro.sim import Simulator
from repro.splitc import SplitC, attach_splitc

#: the five columns of Table 5
STACKS = ("sp-am", "sp-mpl", "cm5", "meiko", "unet")


def build_stack(stack: str, nprocs: int):
    """Build a machine + Split-C runtimes for one Table-5 column."""
    if stack not in STACKS:
        raise ValueError(f"unknown stack {stack!r}; one of {STACKS}")
    sim = Simulator()
    if stack == "sp-am":
        machine = build_sp_machine(sim, nprocs)
        attach_spam(machine)
    elif stack == "sp-mpl":
        machine = build_sp_machine(sim, nprocs)
        attach_mpl_am(machine)
    else:
        machine = build_generic_machine(sim, nprocs, machine_params(stack))
        attach_generic_am(machine)
    return machine, attach_splitc(machine)


@dataclass
class AppResult:
    """Outcome of one application run."""

    stack: str
    elapsed_us: float
    #: per-rank (cpu_us, net_us, total_us)
    splits: List[tuple]
    payload: Dict  # app-specific artifacts (for verification)

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6

    @property
    def cpu_s(self) -> float:
        """Mean per-node compute-phase time, seconds (Figure 4's cpu bar)."""
        return float(np.mean([s[0] for s in self.splits])) / 1e6

    @property
    def net_s(self) -> float:
        """Mean per-node communication-phase time (Figure 4's net bar)."""
        return float(np.mean([s[1] for s in self.splits])) / 1e6


def run_app(stack: str, nprocs: int,
            make_prog: Callable[[Machine, Sequence[SplitC], int], object],
            limit_us: float = 1e12,
            max_events: int = 400_000_000) -> AppResult:
    """Run ``make_prog(machine, rts, rank)`` on every rank, profiled."""
    machine, rts = build_stack(stack, nprocs)
    sim = machine.sim
    payload: Dict = {}

    def wrapped(rank):
        rt = rts[rank]
        yield from rt.barrier()
        rt.profile.start()
        result = yield from make_prog(machine, rts, rank)
        yield from rt.barrier()
        rt.profile.stop()
        if result is not None:
            payload[rank] = result

    procs = [sim.spawn(wrapped(r), name=f"app{r}") for r in range(nprocs)]
    sim.run_until_processes_done(procs, limit=limit_us, max_events=max_events)
    elapsed = max(rt.profile.total_us for rt in rts)
    return AppResult(stack=stack, elapsed_us=elapsed,
                     splits=[rt.profile.split() for rt in rts],
                     payload=payload)


def keys_for_rank(total_keys: int, nprocs: int, rank: int,
                  seed: int = 12345) -> np.ndarray:
    """Deterministic per-rank key arrays (uint32), same on every stack."""
    rng = np.random.RandomState(seed + rank)
    return rng.randint(0, 2 ** 31, size=total_keys // nprocs).astype(np.int64)
