"""Benchmark harness: experiment runners and paper-format reporting.

Each table/figure of the paper has a module in ``benchmarks/`` that drives
the functions here; everything below is also importable for interactive
use::

    from repro.bench import pingpong, bandwidth
    pingpong.am_roundtrip(words=1)          # -> ~51.0 (us)
    bandwidth.sweep("am_store_async")       # -> [(size, MB/s), ...]
"""

from repro.bench.harness import NodeProgramSet, run_programs

__all__ = ["NodeProgramSet", "run_programs"]
