"""Bandwidth benchmarks: Figure 3 curves, Table 3 r_inf / n_1/2 (§2.4).

Six configurations, exactly as the paper's Figure 3:

=====================  =====================================================
``am_store``            blocking stores, wait for ack each transfer
``am_get``              blocking gets
``mpl_send_reply``      mpc_bsend + 0-byte mpc_brecv (blocking MPL)
``am_store_async``      pipelined non-blocking stores (1 MB in n-byte ops)
``am_get_async``        pipelined gets
``mpl_send``            pipelined mpc_send
=====================  =====================================================

``r_inf``/``n_half`` are extracted the standard way: fit transfer time
T(n) = t0 + n/B over the largest sizes for the asymptote, then find the
size where measured bandwidth crosses B/2 by interpolation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.am import attach_spam
from repro.hardware.machine import build_sp_machine
from repro.hardware.params import MachineParams
from repro.mpl import attach_mpl
from repro.sim import Simulator

#: message sizes of the Figure 3 sweep (16 B .. 1 MB)
DEFAULT_SIZES = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8064,
                 16384, 32768, 65536, 131072, 262144, 524288, 1048576]

MODES = ("am_store", "am_get", "mpl_send_reply",
         "am_store_async", "am_get_async", "mpl_send")


def _measure_am(mode: str, n: int, total: int, params=None) -> float:
    sim = Simulator()
    machine = build_sp_machine(sim, 2, params)
    am0, am1 = attach_spam(machine)
    src = machine.node(0).memory.alloc(max(n, 1))
    dst = machine.node(1).memory.alloc(max(n, 1))
    count = max(1, total // max(n, 1))
    flag = [0]

    def sender(_):
        if mode == "am_store":
            for _i in range(count):
                yield from am0.store(1, src, dst, n)
        elif mode == "am_get":
            for _i in range(count):
                yield from am0.get(1, dst, src, n)
        elif mode == "am_store_async":
            ops = []
            for _i in range(count):
                ops.append((yield from am0.store_async(1, src, dst, n)))
            for op in ops:
                yield from am0.wait_op(op)
        elif mode == "am_get_async":
            evs = []
            for _i in range(count):
                evs.append((yield from am0.get_async(1, dst, src, n)))
            while not all(e.triggered for e in evs):
                yield from am0._wait_progress()
        else:  # pragma: no cover
            raise ValueError(mode)
        flag[0] = 1

    def receiver(_):
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender(0), name="bw-send")
    sim.spawn(receiver(0), name="bw-recv")
    sim.run_until_processes_done([p], limit=1e10, max_events=80_000_000)
    return count * n / sim.now  # bytes/us == MB/s


def _measure_mpl(mode: str, n: int, total: int, params=None) -> float:
    sim = Simulator()
    machine = build_sp_machine(sim, 2, params)
    attach_mpl(machine)
    s, r = machine.node(0).mpl, machine.node(1).mpl
    count = max(1, total // max(n, 1))
    data = bytes(n)

    def sender(_):
        for _i in range(count):
            if mode == "mpl_send":
                yield from s.mpc_send(data, 1, tag=1)
            else:
                yield from s.mpc_bsend(data, 1, tag=1)
                yield from s.mpc_brecv(4, 1, tag=2)

    def receiver(_):
        for _i in range(count):
            yield from r.mpc_brecv(max(n, 1), 0, tag=1)
            if mode != "mpl_send":
                yield from r.mpc_bsend(b"\x00" * 4, 0, tag=2)

    p = sim.spawn(sender(0), name="bw-send")
    q = sim.spawn(receiver(0), name="bw-recv")
    sim.run_until_processes_done([p, q], limit=1e10, max_events=80_000_000)
    return count * n / sim.now


def measure_bandwidth(mode: str, n: int, total: int = 0, params=None) -> float:
    """One-way bandwidth (MB/s) moving ~``total`` bytes in ``n``-byte ops."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; one of {MODES}")
    if total <= 0:
        # enough repetitions for steady state, bounded for tiny sizes
        total = min(1_000_000, max(150_000, 6 * n))
    fn = _measure_mpl if mode.startswith("mpl") else _measure_am
    return fn(mode, n, total, params)


def sweep(mode: str, sizes: Sequence[int] = DEFAULT_SIZES,
          params=None) -> List[Tuple[int, float]]:
    """Figure 3: (size, MB/s) series for one configuration."""
    return [(n, measure_bandwidth(mode, n, params=params)) for n in sizes]


def r_inf(series: Sequence[Tuple[int, float]]) -> float:
    """Asymptotic bandwidth from a linear fit of T(n) = t0 + n/B over the
    largest sizes (robust against fixed overheads)."""
    big = sorted(series)[-4:]
    ns = np.array([n for n, _ in big], dtype=float)
    ts = ns / np.array([bw for _, bw in big], dtype=float)
    slope, _t0 = np.polyfit(ns, ts, 1)
    return 1.0 / slope


def n_half(series: Sequence[Tuple[int, float]], asymptote: float = None) -> float:
    """The transfer size at which bandwidth reaches half the asymptote."""
    b_inf = asymptote if asymptote is not None else r_inf(series)
    target = b_inf / 2
    pts = sorted(series)
    prev = None
    for n, bw in pts:
        if bw >= target:
            if prev is None:
                return float(n)
            n0, b0 = prev
            # log-linear interpolation between the straddling points
            frac = (target - b0) / (bw - b0)
            return float(n0 + frac * (n - n0))
        prev = (n, bw)
    raise ValueError(
        f"series never reaches half of the asymptote {b_inf:.2f} MB/s"
    )
