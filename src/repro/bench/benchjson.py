"""Machine-readable bench reports: ``BENCH_<experiment>.json``.

Every table-style experiment the CLI runs can also leave behind a JSON
report (schema ``spam-bench/1``) pairing the paper's published numbers
with the measured ones, plus — when an Observatory was attached — the
merged counter/histogram snapshot and the per-stage latency breakdown.
CI and regression tooling consume these instead of scraping the ASCII
tables.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Dict, Iterable, Optional, Tuple

from repro.obs.schema import BENCH_SCHEMA


def make_report(
    experiment: str,
    entries: Iterable[Tuple[str, Optional[float], float]],
    obs=None,
    extra: Optional[Dict] = None,
) -> Dict:
    """Build a ``spam-bench/1`` report from ``(name, paper, measured)``
    rows (``paper`` may be ``None`` for measurements without a published
    counterpart).  ``obs`` contributes its snapshot + stage summary."""
    results = []
    for name, paper, measured in entries:
        row: Dict = {"name": name, "paper": paper,
                     "measured": round(float(measured), 3)}
        if paper:
            row["dev_pct"] = round((measured - paper) / paper * 100.0, 2)
        results.append(row)
    report: Dict = {
        "schema": BENCH_SCHEMA,
        "experiment": experiment,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "results": results,
    }
    if obs is not None:
        report["stats"] = obs.snapshot()
        stage = obs.stage_summary()
        if stage:
            report["stage_summary"] = stage
    if extra:
        report.update(extra)
    return report


def write_report(report: Dict, directory: str = ".") -> str:
    """Write ``report`` to ``<directory>/BENCH_<experiment>.json``."""
    path = os.path.join(directory, f"BENCH_{report['experiment']}.json")
    with open(path, "w") as f:
        json.dump(report, f, indent=1)
        f.write("\n")
    return path
