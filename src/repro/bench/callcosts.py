"""Table 2 measurement: AM call costs, measured as call durations.

``request_call_cost(N)`` times one ``am_request_N`` on an otherwise idle
2-node SP (so the in-call poll finds an empty network, matching Table 2's
footnote); ``reply_call_cost(N)`` times the ``am_reply_N`` a handler
issues, as the handler's inflation of the receiving poll.
"""

from __future__ import annotations

from repro.am import attach_spam
from repro.hardware import build_sp_machine
from repro.sim import Simulator

#: the paper's Table 2 values, microseconds
PAPER_REQUEST = {1: 7.7, 2: 7.9, 3: 8.0, 4: 8.2}
PAPER_REPLY = {1: 4.0, 2: 4.1, 3: 4.3, 4: 4.4}


def request_call_cost(words: int) -> float:
    """Duration of one am_request_N call (empty-network poll included)."""
    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    am0, _am1 = attach_spam(machine)
    t = {}

    def prog():
        t["start"] = sim.now
        yield from getattr(am0, f"request_{words}")(
            1, lambda tok, *a: None, *range(words))
        t["end"] = sim.now

    p = sim.spawn(prog())
    sim.run_until_processes_done([p], limit=1e6)
    return t["end"] - t["start"]


def reply_call_cost(words: int) -> float:
    """Duration of one am_reply_N call, measured inside the handler."""
    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    am0, am1 = attach_spam(machine)
    spans = []

    def reply_sink(tok, *a):
        pass

    def replying_handler(tok, *_a):
        t0 = sim.now
        yield from getattr(tok, f"reply_{words}")(reply_sink, *range(words))
        spans.append(sim.now - t0)

    def sender():
        yield from am0.request_1(1, replying_handler, 1)

    def receiver():
        while not spans:
            yield from am1._wait_progress()

    p = sim.spawn(sender())
    q = sim.spawn(receiver())
    sim.run_until_processes_done([p, q], limit=1e6)
    return spans[0]


def empty_poll_cost() -> float:
    """Duration of an am_poll on an empty network (§2.5: 1.3 us)."""
    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    am0, _am1 = attach_spam(machine)
    t = {}

    def prog():
        t["start"] = sim.now
        yield from am0.poll()
        t["end"] = sim.now

    p = sim.spawn(prog())
    sim.run_until_processes_done([p], limit=1e6)
    return t["end"] - t["start"]
