"""Measurement kernels for the paper's MPI figures (7–11).

* :func:`mpi_ring_latency` — Figs 8/10: "sending messages around a ring of
  4 nodes using MPI_Send and MPI_Recv.  All latencies shown are the time
  per hop (the time around the ring divided by 4)."
* :func:`mpi_bandwidth` — Figs 9/11: one-way point-to-point bandwidth.
* :func:`am_store_latency` — the raw ``am_store`` reference curve of
  Figs 8/10.
* :func:`protocol_bandwidth` — Fig 7: buffered vs rendez-vous vs hybrid,
  forced via configuration.
"""

from __future__ import annotations

from typing import Optional

from repro.am import attach_spam
from repro.hardware import build_sp_machine
from repro.hardware.params import machine_params
from repro.mpi import OPTIMIZED, UNOPTIMIZED, attach_mpi, attach_mpif
from repro.mpi.config import variant as cfg_variant
from repro.sim import Simulator

#: MPI stack builders, keyed by the curve names used in the figures
MPI_VARIANTS = ("am_store", "unopt_mpi_am", "opt_mpi_am", "mpi_f")


def _build(variant_name: str, machine):
    if variant_name == "mpi_f":
        return attach_mpif(machine)
    attach_spam(machine)
    cfg = OPTIMIZED if variant_name == "opt_mpi_am" else UNOPTIMIZED
    return attach_mpi(machine, cfg)


def mpi_ring_latency(variant_name: str, nbytes: int, node_kind: str = "sp-thin",
                     nprocs: int = 4, iters: int = 16) -> float:
    """Per-hop latency in microseconds (Figs 8/10)."""
    if variant_name == "am_store":
        return am_store_latency(nbytes, node_kind, nprocs, iters)
    sim = Simulator()
    machine = build_sp_machine(sim, nprocs, machine_params(node_kind))
    mpis = _build(variant_name, machine)
    data = bytes(nbytes)

    def prog(rank):
        mpi = mpis[rank]
        for it in range(iters):
            if rank == 0:
                yield from mpi.send(data, 1, tag=it)
                yield from mpi.recv(nbytes, nprocs - 1, tag=it)
            else:
                d, _ = yield from mpi.recv(nbytes, rank - 1, tag=it)
                yield from mpi.send(d, (rank + 1) % nprocs, tag=it)

    procs = [sim.spawn(prog(r)) for r in range(nprocs)]
    sim.run_until_processes_done(procs, limit=1e9, max_events=40_000_000)
    return sim.now / iters / nprocs


def am_store_latency(nbytes: int, node_kind: str = "sp-thin",
                     nprocs: int = 4, iters: int = 16) -> float:
    """The bare am_store reference curve: per-hop around the same ring."""
    sim = Simulator()
    machine = build_sp_machine(sim, nprocs, machine_params(node_kind))
    attach_spam(machine)
    nbytes = max(nbytes, 1)
    bufs = [(machine.node(r).memory.alloc(nbytes),
             machine.node(r).memory.alloc(nbytes)) for r in range(nprocs)]
    counters = [0] * nprocs

    def bump(rank):
        def handler(token, addr, total, arg):
            counters[rank] += 1
        return handler

    handlers = [bump(r) for r in range(nprocs)]

    def prog(rank):
        am = machine.node(rank).am
        nxt = (rank + 1) % nprocs
        for it in range(iters):
            if rank == 0:
                yield from am.store(1, bufs[0][0], bufs[1][1], nbytes,
                                    handler=handlers[1])
                while counters[0] <= it:
                    yield from am._wait_progress()
            else:
                while counters[rank] <= it:
                    yield from am._wait_progress()
                yield from am.store(nxt, bufs[rank][0], bufs[nxt][1], nbytes,
                                    handler=handlers[nxt])

    procs = [sim.spawn(prog(r)) for r in range(nprocs)]
    sim.run_until_processes_done(procs, limit=1e9, max_events=40_000_000)
    return sim.now / iters / nprocs


def mpi_bandwidth(variant_name: str, nbytes: int, node_kind: str = "sp-thin",
                  total: Optional[int] = None) -> float:
    """One-way MPI bandwidth in MB/s (Figs 9/11)."""
    if variant_name == "am_store":
        from repro.bench.bandwidth import measure_bandwidth
        return measure_bandwidth("am_store_async", nbytes,
                                 params=machine_params(node_kind))
    sim = Simulator()
    machine = build_sp_machine(sim, 2, machine_params(node_kind))
    mpis = _build(variant_name, machine)
    if total is None:
        total = min(800_000, max(120_000, 6 * nbytes))
    count = max(1, total // max(nbytes, 1))
    data = bytes(nbytes)

    def sender(_):
        reqs = []
        for i in range(count):
            r = yield from mpis[0].isend(data, 1, tag=i)
            reqs.append(r)
        yield from mpis[0].waitall(reqs)

    def receiver(_):
        for i in range(count):
            yield from mpis[1].recv(nbytes, 0, tag=i)

    p = sim.spawn(sender(0))
    q = sim.spawn(receiver(0))
    sim.run_until_processes_done([p, q], limit=1e10, max_events=80_000_000)
    return count * nbytes / sim.now


#: Fig 7 protocol forcing: buffered-only, rendez-vous-only, hybrid
PROTOCOL_CONFIGS = {
    # pure buffered, first-fit so a message may fill the whole 16 KB region
    "buffered": cfg_variant(OPTIMIZED, eager_max=16384, hybrid=False,
                            binned_allocator=False),
    "rendezvous": cfg_variant(OPTIMIZED, eager_max=0, hybrid=False),
    "hybrid": cfg_variant(OPTIMIZED, eager_max=0, hybrid=True),
}


def protocol_bandwidth(protocol: str, nbytes: int,
                       node_kind: str = "sp-thin") -> float:
    """Fig 7: bandwidth of one protocol, forced regardless of size."""
    cfg = PROTOCOL_CONFIGS[protocol]
    sim = Simulator()
    machine = build_sp_machine(sim, 2, machine_params(node_kind))
    attach_spam(machine)
    mpis = attach_mpi(machine, cfg)
    total = min(400_000, max(100_000, 5 * nbytes))
    count = max(1, total // max(nbytes, 1))
    data = bytes(nbytes)

    def sender(_):
        for i in range(count):
            yield from mpis[0].send(data, 1, tag=i)

    def receiver(_):
        for i in range(count):
            yield from mpis[1].recv(nbytes, 0, tag=i)

    p = sim.spawn(sender(0))
    q = sim.spawn(receiver(0))
    sim.run_until_processes_done([p, q], limit=1e10, max_events=80_000_000)
    return count * nbytes / sim.now
