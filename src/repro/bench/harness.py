"""Utilities for running SPMD node programs on a simulated machine.

A *node program* is a generator factory ``prog(node) -> generator``; the
harness spawns one per node, runs the simulation until the programs that
matter finish, and reports the elapsed simulated time.  Background service
loops (e.g. a receiver that polls until told to stop) are supported via
``serve_until``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.hardware.machine import Machine
from repro.sim import Simulator
from repro.sim.process import Process


@dataclass
class NodeProgramSet:
    """Results of a multi-node run."""

    machine: Machine
    processes: List[Process]
    elapsed_us: float

    def result(self, rank: int):
        return self.processes[rank].result


def run_programs(
    machine: Machine,
    programs: Sequence[Callable],
    wait_for: Optional[Sequence[int]] = None,
    limit_us: float = 1e10,
    max_events: Optional[int] = None,
) -> NodeProgramSet:
    """Spawn ``programs[i](machine.node(i))`` on each node and run.

    :param wait_for: ranks whose completion ends the run (default: all).
        Programs not waited for (e.g. infinite server loops) are abandoned
        when the waited-for set finishes.
    """
    if len(programs) != machine.nprocs:
        raise ValueError(
            f"{len(programs)} programs for {machine.nprocs} nodes"
        )
    sim = machine.sim
    t0 = sim.now
    procs = [
        sim.spawn(prog(machine.node(i)), name=f"rank{i}")
        for i, prog in enumerate(programs)
    ]
    targets = procs if wait_for is None else [procs[i] for i in wait_for]
    sim.run_until_processes_done(targets, limit=limit_us, max_events=max_events)
    return NodeProgramSet(machine, procs, sim.now - t0)


def serve_until(am, flag: list):
    """A standard background receiver: poll until ``flag[0]`` is truthy.

    Use as the program for passive ranks::

        done = [0]
        run_programs(m, [sender(done), lambda n: serve_until(n.am, done)],
                     wait_for=[0])
    """
    while not flag[0]:
        yield from am._wait_progress()


def spmd(fn: Callable) -> List[Callable]:
    """Helper: the same program factory for every rank."""
    return fn
