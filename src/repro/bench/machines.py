"""Table 4: machine comparison across the four platforms.

Measures, on each simulated machine, the three quantities the paper
tabulates: per-message send overhead, one-word round-trip latency, and
bulk bandwidth — using the same AM API everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.am import attach_am
from repro.bench.pingpong import machine_roundtrip
from repro.hardware.machine import build_machine
from repro.sim import Simulator

#: the four rows of Table 4, with the paper's values for comparison
TABLE4_PAPER = {
    "cm5": {"label": "TMC CM-5", "cpu": "33 MHz Sparc-2",
            "overhead": 3.0, "rtt": 12.0, "bw": 10.0},
    "meiko": {"label": "Meiko CS-2", "cpu": "40 MHz Sparc-20(mod)",
              "overhead": 11.0, "rtt": 25.0, "bw": 39.0},
    "unet": {"label": "U-Net ATM cluster", "cpu": "50/60 MHz Sparc-20",
             "overhead": 3.5, "rtt": 66.0, "bw": 14.0},
    "sp-thin": {"label": "IBM SP", "cpu": "66 MHz RS6000 (P2)",
                "overhead": 3.7, "rtt": 51.0, "bw": 34.0},
}


@dataclass
class MachineRow:
    name: str
    label: str
    overhead_us: float
    rtt_us: float
    bandwidth_mbs: float


def measure_send_overhead(machine_name: str, iterations: int = 50) -> float:
    """Per-message send overhead: CPU time consumed per one-way message in
    a send stream (LogP's 'o'), excluding polling for replies."""
    sim = Simulator()
    machine = build_machine(sim, 2, machine_name)
    attach_am(machine)
    am0, am1 = machine.node(0).am, machine.node(1).am
    count = [0]

    def sink(token, x):
        count[0] += 1

    t = {}

    def sender():
        t["start"] = sim.now
        for i in range(iterations):
            yield from am0.request_1(1, sink, i)
        t["end"] = sim.now

    def receiver():
        while count[0] < iterations:
            yield from am1._wait_progress()

    p = sim.spawn(sender())
    sim.spawn(receiver())
    sim.run_until_processes_done([p], limit=1e8)
    return (t["end"] - t["start"]) / iterations


def measure_bulk_bandwidth(machine_name: str, nbytes: int = 262144) -> float:
    """One-way bulk bandwidth via a large blocking store."""
    sim = Simulator()
    machine = build_machine(sim, 2, machine_name)
    attach_am(machine)
    am0, am1 = machine.node(0).am, machine.node(1).am
    src = machine.node(0).memory.alloc(nbytes)
    dst = machine.node(1).memory.alloc(nbytes)
    flag = [0]

    def sender():
        yield from am0.store(1, src, dst, nbytes)
        flag[0] = 1

    def receiver():
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender())
    sim.spawn(receiver())
    sim.run_until_processes_done([p], limit=1e9, max_events=40_000_000)
    return nbytes / sim.now


def table4_rows() -> List[MachineRow]:
    """Measure every Table 4 machine."""
    rows = []
    for name, paper in TABLE4_PAPER.items():
        rows.append(MachineRow(
            name=name,
            label=paper["label"],
            overhead_us=measure_send_overhead(name),
            rtt_us=machine_roundtrip(name, iterations=60),
            bandwidth_mbs=measure_bulk_bandwidth(name),
        ))
    return rows
