"""Simulator-core performance suite (``spam-bench perf``).

The paper's creed — per-message *software* overhead is the limit (§3) —
applies to the simulator itself: every reproduced experiment is bounded
by how many events per second the core can retire.  This suite measures
that number over the protocol workloads that dominate real runs:

* ``pingpong`` — 100k one-word AM round trips (the §2.3 latency path),
* ``bulk`` — multi-chunk ``store``/``get`` rounds (the §2.1 bulk path),
* ``alltoall`` — 16 ranks of converging ``store_async`` traffic (the
  §4.4 congestion case),
* ``soak`` — the chaos campaign at 1% loss (timers, retransmissions,
  NACK recovery — the go-back-N machinery of §2.2).

Each sized workload runs under both schedulers (``wheel`` and ``heap``)
and the suite additionally drives reduced copies of the workloads one
:meth:`~repro.sim.engine.Simulator.step` at a time to fold every executed
event's ``(time, seq, callback)`` into a digest: the two schedulers must
produce **byte-identical** digests and final simulated clocks, or the
wheel is reordering events and the run fails.

The wheel workloads are additionally timed with idle fast-forward
disabled (``wheel_noff``) and the on/off ratio is reported per workload;
a second differential pass records full-speed event-order digests (via
the engine's check hooks, so no ``step()`` slowdown) with fast-forward
on and off on **all four** workloads — digests, final clocks, and
event/stale counts must match exactly, or the fast path is changing
execution order rather than just skipping idle queue work.

Events/sec is reported *adjusted*: ``(events_executed +
stale_events_skipped) / wall``.  The pre-PR engine executed cancelled
timer wakeups as counted no-op events; the current engine discards them
on pop without executing, so the raw counter alone would understate the
work retired per second.

Regression gating (``--check``) is machine-independent: it compares the
current wheel/heap events-per-second *ratio* per workload against the
ratio stored in a committed ``BENCH_simperf.json``, so CI hardware speed
cancels out and only scheduler regressions trip it.

The multiprocessing worker backend (``--workers``) is covered twice:
``determinism_workers`` proves ``workers=P`` runs bit-identical to the
single-process sharded engine and the sequential heap on every workload
plus the 1%-loss soak (gated unconditionally), and the scaling section
grows one timed column per worker count (speedup ratios gated only when
the committed report shows a gain and the runner has the cores — see
the report's ``cpus`` field).
"""

from __future__ import annotations

import hashlib
import os
import struct
import time
from typing import Callable, Dict, List, Optional

from repro.sim import ShardedSimulator, Simulator

#: committed pre-PR baseline (single-heap engine, counted-stale-wakeup
#: semantics, reference dev box): adjusted events/sec on the full-size
#: workloads.  Denominators for the headline speedup rows.
PRE_PR_BASELINE: Dict[str, float] = {
    "pingpong": 135761.2,
    "bulk": 128960.3,
    "alltoall": 144057.1,
    "soak": 86005.6,
}

#: full-size workloads (the committed-report configuration)
FULL_SIZES: Dict[str, tuple] = {
    "pingpong": (100_000,),
    "bulk": (262_144, 4),
    "alltoall": (16, 16_384, 2),
    "soak": (60,),
}

#: reduced sizes for CI smoke runs (``--quick``)
QUICK_SIZES: Dict[str, tuple] = {
    "pingpong": (1_000,),
    "bulk": (65_536, 1),
    "alltoall": (8, 4_096, 1),
    "soak": (12,),
}

#: sizes for the step()-driven digest runs (deliberately small: the
#: one-event-at-a-time loop trades speed for event-order visibility)
DIGEST_SIZES: Dict[str, tuple] = {
    "pingpong": (200,),
    "bulk": (32_768, 1),
    "alltoall": (4, 2_048, 1),
}

#: sizes for the fast-forward on/off digest comparison.  These runs ride
#: the engine's check hooks through the full-speed drain loops, so they
#: afford larger sizes than the ``step()``-driven ``DIGEST_SIZES`` — and
#: they cover soak, which ``step()`` cannot drive (``run_soak`` owns its
#: simulator).
FF_DIGEST_SIZES: Dict[str, tuple] = {
    "pingpong": (2_000,),
    "bulk": (65_536, 2),
    "alltoall": (8, 4_096, 1),
    "soak": (20,),
}

#: workloads that run under both schedulers (soak builds its own
#: simulator inside ``run_soak``, so it is measured on the default only)
DUAL_SCHEDULER = ("pingpong", "bulk", "alltoall")

#: every workload, for the fast-forward comparisons (which only need the
#: wheel scheduler and therefore include soak)
ALL_WORKLOADS = ("pingpong", "bulk", "alltoall", "soak")

#: node counts for the sharded scaling section (``--nodes``); iterations
#: per ring round shrink with N so each config's wall stays ~seconds
SCALING_NODES = (64, 256, 1024)
SCALING_ITERS: Dict[int, int] = {64: 32, 256: 16, 1024: 4}

#: worker-process counts for the scaling section's workers columns
SCALING_WORKERS = (2, 4)

#: sizes for the worker-backend digest runs (``workers=P`` must be
#: bit-identical to every sequential engine); full-speed check-hook
#: recording, like FF_DIGEST_SIZES, but small enough that the fork +
#: round-barrier overhead keeps the suite snappy
PARALLEL_DIGEST_SIZES: Dict[str, tuple] = {
    "pingpong": (400,),
    "bulk": (32_768, 1),
    "alltoall": (4, 2_048, 1),
    "soak": (12,),
}


def _make_sim(scheduler: str, idle_fast_forward: bool = True,
              workers: int = 1) -> Simulator:
    """``"wheel"`` / ``"heap"`` / ``"sharded"`` — one seam for the suite.

    The sharded engine's shards and lookahead are configured by
    ``build_sp_machine`` (one shard per node, lookahead = switch
    latency), so the factory itself stays topology-free.  ``workers``
    spreads the shards over that many processes (sharded only).
    """
    if scheduler == "sharded":
        return ShardedSimulator(idle_fast_forward=idle_fast_forward,
                                workers=workers)
    if workers > 1:
        raise ValueError("workers > 1 requires the sharded engine")
    return Simulator(scheduler=scheduler,
                     idle_fast_forward=idle_fast_forward)


# ---------------------------------------------------------------------------
# workload builders: populate ``sim`` and return the processes to wait on
# ---------------------------------------------------------------------------

def _build_pingpong(sim: Simulator, iterations: int,
                    xfer_mode: str = "eager") -> list:
    from repro.am import attach_am
    from repro.hardware.machine import build_machine

    machine = build_machine(sim, 2, "sp-thin")
    attach_am(machine, xfer_mode=xfer_mode)
    am0 = machine.node(0).am
    am1 = machine.node(1).am
    got = [0]      # node 0 state: replies landed (bumped by node-0 events)
    served = [0]   # node 1 state: requests served (bumped by node-1 events)

    def reply_handler(token, x):
        got[0] += 1

    def request_handler(token, x):
        served[0] += 1
        yield from token.reply_1(reply_handler, x)

    # SPMD discipline: handlers register on the shared (pre-fork) table
    # so their ids resolve in every shard worker process
    am0.register(reply_handler)
    am0.register(request_handler)

    def pinger():
        for i in range(iterations):
            before = got[0]
            yield from am0.request_1(1, request_handler, i & 0xFFFF)
            while got[0] == before:
                yield from am0._wait_progress()

    def ponger():
        # terminate on node-1-local state only (shard-clean): the old
        # ``got[0] < iterations`` condition read node 0's counter across
        # the shard boundary
        while served[0] < iterations:
            yield from am1._wait_progress()

    p = sim.spawn(pinger(), name="perf-ping", shard=0)
    sim.spawn(ponger(), name="perf-pong", shard=1)
    return [p]


def _build_bulk(sim: Simulator, nbytes: int, rounds: int,
                xfer_mode: str = "eager") -> list:
    from repro.am import attach_am
    from repro.hardware.machine import build_machine

    machine = build_machine(sim, 2, "sp-thin")
    attach_am(machine, xfer_mode=xfer_mode)
    am0 = machine.node(0).am
    am1 = machine.node(1).am
    src = machine.node(0).memory.alloc(nbytes)
    dst = machine.node(1).memory.alloc(nbytes)
    back = machine.node(0).memory.alloc(nbytes)
    machine.node(0).memory.write(src, bytes(i % 251 for i in range(nbytes)))
    done = [False]  # node 1 state: set by the done-marker handler below

    def h_bulk_done(token, x):
        done[0] = True

    am0.register(h_bulk_done)  # pre-fork, for shard workers

    def mover():
        for _ in range(rounds):
            yield from am0.store(1, src, dst, nbytes)
            yield from am0.get(1, dst, back, nbytes)
        # tell the server it can stop: the old shared ``done`` flag was
        # node-0 state read from node 1 across the shard boundary
        yield from am0.request_1(1, h_bulk_done, 0)

    def server():
        while not done[0]:
            yield from am1._wait_progress()

    p = sim.spawn(mover(), name="perf-bulk", shard=0)
    sim.spawn(server(), name="perf-bulk-server", shard=1)
    return [p]


def _build_alltoall(sim: Simulator, nodes: int, nbytes: int,
                    rounds: int, xfer_mode: str = "eager") -> list:
    from repro.am import attach_am
    from repro.hardware.machine import build_machine

    machine = build_machine(sim, nodes, "sp-thin")
    attach_am(machine, xfer_mode=xfer_mode)
    ams = [machine.node(i).am for i in range(nodes)]
    srcs = [machine.node(i).memory.alloc(nbytes) for i in range(nodes)]
    dsts = [[machine.node(i).memory.alloc(nbytes) for _ in range(nodes)]
            for i in range(nodes)]
    #: per-node set of peers that announced completion; entry ``r`` is
    #: touched only by node-``r`` events, so the workload is shard-clean
    #: (the old shared ``finished`` counter was written by every rank)
    done_from = [set() for _ in range(nodes)]

    def h_a2a_done(token, src):
        done_from[token.am.node.id].add(src)

    ams[0].register(h_a2a_done)  # pre-fork, for shard workers

    def rank(r):
        am = ams[r]
        for _ in range(rounds):
            ops = []
            for off in range(1, nodes):
                peer = (r + off) % nodes
                op = yield from am.store_async(
                    peer, srcs[r], dsts[peer][r], nbytes)
                ops.append(op)
            for op in ops:
                yield from am.wait_op(op)
        # done broadcast: my stores are acked (wait_op above), so the
        # marker can only arrive after them; serve the network until
        # every peer's marker has landed here
        for off in range(1, nodes):
            yield from am.request_1((r + off) % nodes, h_a2a_done, r)
        while len(done_from[r]) < nodes - 1:
            yield from am._wait_progress()

    return [sim.spawn(rank(r), name=f"a2a{r}", shard=r)
            for r in range(nodes)]


def _build_ring(sim: Simulator, nodes: int, iterations: int) -> list:
    """Neighbor ring for the scaling section: every rank fires
    ``iterations`` one-word requests at its right neighbor, then serves
    the network until all traffic has landed.  All work is node-local
    except the switch traversals, so the shard decomposition carries the
    whole workload — the scaling story in its purest form."""
    from repro.am import attach_am
    from repro.hardware.machine import build_machine

    machine = build_machine(sim, nodes, "sp-thin")
    attach_am(machine)
    ams = [machine.node(i).am for i in range(nodes)]
    got = [0] * nodes  # entry r is only touched by node-r events

    def handler(token, x):
        got[token.am.node.id] += 1

    ams[0].register(handler)  # pre-fork, for shard workers

    def rank(r):
        am = ams[r]
        right = (r + 1) % nodes
        for i in range(iterations):
            yield from am.request_1(right, handler, i)
        # serve until my own inbox is full: my left neighbor can only
        # push its full quota while I poll (window credits + acks), so
        # this node-local condition is also the global-progress one —
        # no shared ``finished`` counter needed, which keeps the
        # workload shard-clean for the worker backend
        while got[r] < iterations:
            yield from am._wait_progress()

    return [sim.spawn(rank(r), name=f"ring{r}", shard=r)
            for r in range(nodes)]


_BUILDERS: Dict[str, Callable] = {
    "pingpong": _build_pingpong,
    "bulk": _build_bulk,
    "alltoall": _build_alltoall,
}


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------

def _adjusted_eps(sim: Simulator, wall: float) -> float:
    # stale (cancelled-then-skipped) entries are queue work the engine
    # retired; the pre-PR engine executed them as counted no-op events
    return (sim.events_executed + sim.stale_events_skipped) / wall


def _timed_run(name: str, scheduler: str, sizes: tuple,
               repeat: int, idle_fast_forward: bool = True,
               xfer_mode: str = "eager") -> Dict:
    """Best-of-``repeat`` wall time for one workload on one scheduler."""
    build = _BUILDERS[name]
    best: Optional[Dict] = None
    for _ in range(repeat):
        sim = Simulator(scheduler=scheduler,
                        idle_fast_forward=idle_fast_forward)
        procs = build(sim, *sizes, xfer_mode=xfer_mode)
        t0 = time.perf_counter()
        sim.run_until_processes_done(procs, limit=1e12)
        wall = time.perf_counter() - t0
        rec = {
            "scheduler": scheduler,
            "sizes": list(sizes),
            "events": sim.events_executed,
            "stale_skipped": sim.stale_events_skipped,
            "wall_s": round(wall, 4),
            "eps": round(sim.events_executed / wall, 1),
            "adj_eps": round(_adjusted_eps(sim, wall), 1),
            "sim_us": round(sim.now, 3),
        }
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    return best


def _timed_soak(pingpong: int, repeat: int,
                idle_fast_forward: bool = True,
                xfer_mode: str = "eager") -> Dict:
    from repro.faults import run_soak

    best: Optional[Dict] = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        res = run_soak(seed=11, loss=0.01, nodes=3, pingpong=pingpong,
                       compare_clean=False,
                       idle_fast_forward=idle_fast_forward,
                       xfer_mode=xfer_mode)
        wall = time.perf_counter() - t0
        if res.violations:
            raise RuntimeError(
                f"soak workload violated reliability invariants: "
                f"{res.violations}")
        sim = res.obs.machine.sim
        rec = {
            "scheduler": sim.scheduler,
            "sizes": [pingpong],
            "events": sim.events_executed,
            "stale_skipped": sim.stale_events_skipped,
            "wall_s": round(wall, 4),
            "eps": round(sim.events_executed / wall, 1),
            "adj_eps": round(_adjusted_eps(sim, wall), 1),
            "sim_us": round(res.elapsed_us, 3),
        }
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    return best


# ---------------------------------------------------------------------------
# differential determinism: wheel and heap must agree byte-for-byte
# ---------------------------------------------------------------------------

_DIGEST_PACK = struct.Struct("<dq").pack


def _digest_run(scheduler: str, name: str, sizes: tuple,
                xfer_mode: str = "eager"):
    """Drive a workload one event at a time, hashing the execution order.

    Returns ``(final_sim_time, hex_digest)`` where the digest covers every
    executed event's ``(when, seq, callback qualname)``.  Two schedulers
    agree on this digest iff they executed the same callbacks at the same
    times in the same order.  Entries with negative seqs (the unsequenced
    observer lane: metrics-sampler ticks) are excluded — they are
    digest-neutral by contract.
    """
    sim = _make_sim(scheduler)
    procs = _BUILDERS[name](sim, *sizes, xfer_mode=xfer_mode)
    h = hashlib.blake2b(digest_size=16)
    pack = _DIGEST_PACK
    while not all(p.finished for p in procs):
        if not sim.step():
            break
        when, seq, fn = sim.last_event
        if seq < 0:
            continue
        h.update(pack(when, seq))
        h.update(getattr(fn, "__qualname__", type(fn).__name__).encode())
    return sim.now, h.hexdigest()


def _soak_digest_run(pingpong: int, sharding: bool,
                     xfer_mode: str = "eager"):
    """One soak campaign with a digest recorder; ``(sim_us, digest)``."""
    from repro.faults import run_soak

    rec = _FFDigestRecorder()
    res = run_soak(seed=11, loss=0.01, nodes=3, pingpong=pingpong,
                   compare_clean=False, sim_check=rec,
                   xfer_mode=xfer_mode, sharding=sharding)
    if res.violations:
        raise RuntimeError(
            f"soak digest run violated reliability invariants: "
            f"{res.violations}")
    return res.elapsed_us, rec.hexdigest()


def run_determinism(sizes: Optional[Dict[str, tuple]] = None,
                    xfer_mode: str = "eager") -> Dict:
    """Differential check: sharded == wheel == heap per workload.

    Returns ``{workload: {wheel_digest, heap_digest, sharded_digest,
    wheel_sim_us, heap_sim_us, sharded_sim_us, identical}}`` plus a
    ``"soak"`` leg (sharded vs sequential at 1% loss) and an
    ``"identical"`` rollup key.
    """
    sizes = sizes or DIGEST_SIZES
    out: Dict = {}
    all_ok = True
    for name in DUAL_SCHEDULER:
        if name not in sizes:
            continue
        w_now, w_dig = _digest_run("wheel", name, sizes[name], xfer_mode)
        h_now, h_dig = _digest_run("heap", name, sizes[name], xfer_mode)
        s_now, s_dig = _digest_run("sharded", name, sizes[name], xfer_mode)
        ok = (w_dig == h_dig == s_dig) and (w_now == h_now == s_now)
        all_ok = all_ok and ok
        out[name] = {
            "wheel_digest": w_dig,
            "heap_digest": h_dig,
            "sharded_digest": s_dig,
            "wheel_sim_us": w_now,
            "heap_sim_us": h_now,
            "sharded_sim_us": s_now,
            "identical": ok,
        }
    soak_pp = (sizes.get("soak") or FF_DIGEST_SIZES["soak"])[0]
    q_now, q_dig = _soak_digest_run(soak_pp, sharding=False,
                                    xfer_mode=xfer_mode)
    s_now, s_dig = _soak_digest_run(soak_pp, sharding=True,
                                    xfer_mode=xfer_mode)
    ok = (q_dig == s_dig) and (q_now == s_now)
    all_ok = all_ok and ok
    out["soak"] = {
        "sequential_digest": q_dig,
        "sharded_digest": s_dig,
        "sequential_sim_us": q_now,
        "sharded_sim_us": s_now,
        "identical": ok,
    }
    out["identical"] = all_ok
    return out


# ---------------------------------------------------------------------------
# differential determinism: idle fast-forward on/off must agree too
# ---------------------------------------------------------------------------

class _FFDigestRecorder:
    """Event-order digest collected through the engine's check hooks.

    Unlike :func:`_digest_run` this never forces the one-event-at-a-time
    ``step()`` path: the engine's fast drain loops call ``on_execute`` /
    ``on_stale`` on whatever object sits on ``sim.check``, so the digest
    covers exactly what the full-speed path retired — which is the path
    idle fast-forward changes and therefore the one that must be proven
    order-identical with fast-forward off.
    """

    __slots__ = ("_update", "_hexdigest", "stale", "cancels")

    def __init__(self):
        h = hashlib.blake2b(digest_size=16)
        self._update = h.update
        self._hexdigest = h.hexdigest
        self.stale = 0
        self.cancels = 0

    def on_execute(self, entry) -> None:
        if entry[1] < 0:
            # the unsequenced observer lane (metrics-sampler ticks) is
            # digest-neutral by contract: its presence must not change
            # any ordinary event's (when, seq) identity, so it is not
            # part of the order being proven either
            return
        fn = entry[2]
        self._update(_DIGEST_PACK(entry[0], entry[1]))
        self._update(getattr(fn, "__qualname__", type(fn).__name__).encode())

    def on_stale(self, entry) -> None:
        self.stale += 1

    def on_cancel(self, entry) -> None:
        self.cancels += 1

    def hexdigest(self) -> str:
        return self._hexdigest()


def _ff_recorded_run(name: str, sizes: tuple, idle_fast_forward: bool,
                     xfer_mode: str = "eager"):
    """One wheel run with a digest recorder attached; returns the record."""
    rec = _FFDigestRecorder()
    if name == "soak":
        from repro.faults import run_soak

        res = run_soak(seed=11, loss=0.01, nodes=3, pingpong=sizes[0],
                       compare_clean=False, sim_check=rec,
                       idle_fast_forward=idle_fast_forward,
                       xfer_mode=xfer_mode)
        if res.violations:
            raise RuntimeError(
                f"soak digest run violated reliability invariants: "
                f"{res.violations}")
        sim = res.obs.machine.sim
    else:
        sim = Simulator(scheduler="wheel",
                        idle_fast_forward=idle_fast_forward)
        procs = _BUILDERS[name](sim, *sizes, xfer_mode=xfer_mode)
        sim.check = rec
        sim.run_until_processes_done(procs, limit=1e12)
    return {
        "digest": rec.hexdigest(),
        "sim_us": sim.now,
        "events": sim.events_executed,
        "stale_skipped": sim.stale_events_skipped,
    }


def run_ff_determinism(sizes: Optional[Dict[str, tuple]] = None,
                       xfer_mode: str = "eager") -> Dict:
    """Fast-forward on vs off over all four workloads.

    ``identical`` per workload requires byte-identical digests,
    bit-identical final simulated clocks, and equal executed/stale
    counts; anything less means the fast-forward path altered execution
    rather than just skipping idle queue scans.
    """
    sizes = sizes or FF_DIGEST_SIZES
    out: Dict = {}
    all_ok = True
    for name in ALL_WORKLOADS:
        if name not in sizes:
            continue
        on = _ff_recorded_run(name, sizes[name], True, xfer_mode)
        off = _ff_recorded_run(name, sizes[name], False, xfer_mode)
        ok = (on["digest"] == off["digest"]
              and on["sim_us"] == off["sim_us"]
              and on["events"] == off["events"]
              and on["stale_skipped"] == off["stale_skipped"])
        all_ok = all_ok and ok
        out[name] = {
            "ff_on_digest": on["digest"],
            "ff_off_digest": off["digest"],
            "ff_on_sim_us": on["sim_us"],
            "ff_off_sim_us": off["sim_us"],
            "ff_on_events": on["events"],
            "ff_off_events": off["events"],
            "identical": ok,
        }
    out["identical"] = all_ok
    return out


# ---------------------------------------------------------------------------
# differential determinism: the worker backend must agree as well
# ---------------------------------------------------------------------------

def _workers_recorded_run(name: str, sizes: tuple, workers: int,
                          xfer_mode: str = "eager") -> Dict:
    """One full-speed sharded run (``workers`` processes when > 1) with
    an event-order digest recorder on the engine's check hooks.  Under
    workers the parent replays every worker op through its real merge
    path, so the recorder sees the exact committed order."""
    rec = _FFDigestRecorder()
    sim = _make_sim("sharded", workers=workers)
    procs = _BUILDERS[name](sim, *sizes, xfer_mode=xfer_mode)
    sim.check = rec
    sim.run_until_processes_done(procs, limit=1e12)
    return {
        "digest": rec.hexdigest(),
        "sim_us": sim.now,
        "events": sim.events_executed,
        "stale_skipped": sim.stale_events_skipped,
    }


def run_parallel_determinism(sizes: Optional[Dict[str, tuple]] = None,
                             workers: int = 2,
                             xfer_mode: str = "eager") -> Dict:
    """Workers-on vs workers-off vs sequential heap, per workload.

    ``identical`` requires byte-identical digests, bit-identical final
    clocks, and equal executed/stale counts across all three engines —
    plus a ``"soak"`` leg driving the 1%-loss chaos campaign through
    ``run_soak(workers=...)``, whose digest, elapsed clock, and
    retransmission counters must match the single-process run.
    """
    from repro.faults import run_soak

    sizes = sizes or PARALLEL_DIGEST_SIZES
    out: Dict = {"workers": workers}
    all_ok = True
    for name in DUAL_SCHEDULER:
        if name not in sizes:
            continue
        sh = _workers_recorded_run(name, sizes[name], 1, xfer_mode)
        wk = _workers_recorded_run(name, sizes[name], workers, xfer_mode)
        h_now, h_dig = _digest_run("heap", name, sizes[name], xfer_mode)
        ok = (sh["digest"] == wk["digest"] == h_dig
              and sh["sim_us"] == wk["sim_us"] == h_now
              and sh["events"] == wk["events"]
              and sh["stale_skipped"] == wk["stale_skipped"])
        all_ok = all_ok and ok
        out[name] = {
            "sharded_digest": sh["digest"],
            "workers_digest": wk["digest"],
            "heap_digest": h_dig,
            "sharded_sim_us": sh["sim_us"],
            "workers_sim_us": wk["sim_us"],
            "heap_sim_us": h_now,
            "identical": ok,
        }
    if "soak" in sizes:
        legs = {}
        for label, p in (("sharded", 1), ("workers", workers)):
            rec = _FFDigestRecorder()
            res = run_soak(seed=11, loss=0.01, nodes=3,
                           pingpong=sizes["soak"][0],
                           compare_clean=False, sim_check=rec,
                           xfer_mode=xfer_mode, sharding=True,
                           sample_period_us=None, workers=p)
            if res.violations:
                raise RuntimeError(
                    f"soak workers digest run violated reliability "
                    f"invariants: {res.violations}")
            legs[label] = {
                "digest": rec.hexdigest(),
                "sim_us": res.elapsed_us,
                "retransmissions": res.counters.get("retransmissions"),
            }
        ok = legs["sharded"] == legs["workers"]
        all_ok = all_ok and ok
        out["soak"] = {
            "sharded_digest": legs["sharded"]["digest"],
            "workers_digest": legs["workers"]["digest"],
            "sharded_sim_us": legs["sharded"]["sim_us"],
            "workers_sim_us": legs["workers"]["sim_us"],
            "identical": ok,
        }
    out["identical"] = all_ok
    return out


# ---------------------------------------------------------------------------
# sharded scaling: ring traffic at 64/256/1024 nodes
# ---------------------------------------------------------------------------

def _scaling_run(scheduler: str, nodes: int, iterations: int,
                 workers: int = 1) -> Dict:
    """One timed + digest-recorded ring run on one engine."""
    rec = _FFDigestRecorder()
    sim = _make_sim(scheduler, workers=workers)
    procs = _build_ring(sim, nodes, iterations)
    sim.check = rec
    t0 = time.perf_counter()
    sim.run_until_processes_done(procs, limit=1e12)
    wall = time.perf_counter() - t0
    out = {
        "scheduler": scheduler,
        "events": sim.events_executed,
        "stale_skipped": sim.stale_events_skipped,
        "wall_s": round(wall, 4),
        "adj_eps": round(_adjusted_eps(sim, wall), 1),
        "sim_us": sim.now,
        "digest": rec.hexdigest(),
    }
    if scheduler == "sharded":
        out["rounds"] = sim.rounds
        out["cross_posts"] = sim.cross_posts
        out["workers"] = workers
    return out


def run_scaling(nodes_list=None,
                iters: Optional[Dict[int, int]] = None,
                workers_list=None) -> Dict:
    """The ``--nodes`` scaling columns: per node count, the sharded
    engine vs the sequential wheel on the neighbor-ring workload —
    digests must match, and the events/sec ratio is the committed,
    machine-independent scaling record the ``--check`` gate defends.

    ``workers_list`` adds one column per worker-process count P
    (``workers=P`` on the sharded engine): the digest must again be
    bit-identical, and the workers/sharded eps ratio is the scaling
    curve the multicore story is judged by (see the ``cpus`` field of
    the committed report — the ratio only exceeds 1 when the runner
    actually has the cores).
    """
    nodes_list = list(nodes_list or SCALING_NODES)
    iters = iters or SCALING_ITERS
    out: Dict = {}
    all_ok = True
    for n in nodes_list:
        iterations = iters.get(n, max(4, 2048 // max(n, 1)))
        seq = _scaling_run("wheel", n, iterations)
        sh = _scaling_run("sharded", n, iterations)
        ok = (seq["digest"] == sh["digest"]
              and seq["sim_us"] == sh["sim_us"]
              and seq["events"] == sh["events"])
        entry = {
            "nodes": n,
            "iterations": iterations,
            "sequential": seq,
            "sharded": sh,
            "ratio_sharded_over_sequential": round(
                sh["adj_eps"] / seq["adj_eps"], 4),
            "identical": ok,
        }
        if workers_list:
            entry["workers"] = {}
            for p in workers_list:
                wr = _scaling_run("sharded", n, iterations, workers=p)
                wok = (wr["digest"] == seq["digest"]
                       and wr["sim_us"] == seq["sim_us"]
                       and wr["events"] == seq["events"])
                ok = ok and wok
                entry["workers"][str(p)] = {
                    **wr,
                    "ratio_workers_over_sharded": round(
                        wr["adj_eps"] / sh["adj_eps"], 4),
                    "identical": wok,
                }
            entry["identical"] = ok
        all_ok = all_ok and ok
        out[str(n)] = entry
    out["identical"] = all_ok
    return out


# ---------------------------------------------------------------------------
# critical-path attribution (embedded in the perf report)
# ---------------------------------------------------------------------------

def _attribution_section(iterations: int) -> Dict:
    """A small *observed* AM ping-pong whose critical-path rollup the
    perf report embeds.  Runs on its own simulator so the timed
    workloads above stay unobserved — their walls measure the engine,
    not the tracing."""
    from repro.bench.pingpong import am_roundtrip_observed
    from repro.obs.critpath import (
        attribution_coverage,
        bottleneck_verdict,
        critpath_rollup,
    )

    mean, obs = am_roundtrip_observed(1, iterations)
    rollup = critpath_rollup(obs)
    return {
        "iterations": iterations,
        "mean_rtt_us": mean,
        "coverage": attribution_coverage(obs, mean),
        "rollup_all": rollup.get("ALL", {}),
        "verdict": bottleneck_verdict(rollup),
    }


# ---------------------------------------------------------------------------
# suite driver + regression gate
# ---------------------------------------------------------------------------

def run_perf(
    quick: bool = False,
    repeat: Optional[int] = None,
    sizes: Optional[Dict[str, tuple]] = None,
    digest_sizes: Optional[Dict[str, tuple]] = None,
    ff_digest_sizes: Optional[Dict[str, tuple]] = None,
    xfer_mode: str = "eager",
    scaling_nodes: Optional[List[int]] = None,
    workers: Optional[List[int]] = None,
    parallel_digest_sizes: Optional[Dict[str, tuple]] = None,
) -> Dict:
    """Run the whole suite; returns the report ``extra`` payload.

    ``sizes``/``digest_sizes``/``ff_digest_sizes`` override the built-in
    workload sizes (tests use tiny ones).  ``repeat`` defaults to 3 in
    quick mode — best-of-N damps scheduler-ratio noise on short runs —
    and 1 on the full sizes, where runs are long enough to be stable.
    The soak workload always gets at least best-of-5: its full-size wall
    is ~45 ms, short enough that single draws scatter by double-digit
    percentages on a noisy box.  ``xfer_mode`` selects the AM
    large-message strategy throughout (the determinism digests must be
    byte-identical under both ``eager`` and ``rendezvous``).
    ``scaling_nodes`` adds the sharded scaling section (the ``--nodes``
    columns) at the given node counts; ``None`` skips it.  ``workers``
    lists worker-process counts: the scaling section grows one column
    per count, and the workers-backend digest comparison
    (``determinism_workers``) runs at the first count — it always runs
    at ``workers=2`` even when the list is ``None``, because the
    bit-identity contract must hold regardless of whether anyone asked
    for the timing columns.
    """
    sizes = sizes or (QUICK_SIZES if quick else FULL_SIZES)
    if repeat is None:
        repeat = 3 if quick else 1
    workloads: Dict[str, Dict] = {}
    # soak first: at ~40 ms its wall is the suite's most noise-sensitive
    # measurement, so take its draws at the start of the run instead of
    # a minute of pingpong later, when the box's background load may
    # have drifted away from whatever the caller probed
    soak_repeat = max(repeat, 5)
    soak: Dict = {
        "wheel": _timed_soak(sizes["soak"][0], soak_repeat,
                             xfer_mode=xfer_mode),
        "wheel_noff": _timed_soak(sizes["soak"][0], soak_repeat,
                                  idle_fast_forward=False,
                                  xfer_mode=xfer_mode),
    }
    soak["ratio_ff_on_over_off"] = round(
        soak["wheel"]["adj_eps"] / soak["wheel_noff"]["adj_eps"], 4)
    workloads["soak"] = soak
    for name in DUAL_SCHEDULER:
        per: Dict = {}
        for scheduler in ("wheel", "heap"):
            per[scheduler] = _timed_run(name, scheduler, sizes[name], repeat,
                                        xfer_mode=xfer_mode)
        per["wheel_noff"] = _timed_run(name, "wheel", sizes[name], repeat,
                                       idle_fast_forward=False,
                                       xfer_mode=xfer_mode)
        per["ratio_wheel_over_heap"] = round(
            per["wheel"]["adj_eps"] / per["heap"]["adj_eps"], 4)
        per["ratio_ff_on_over_off"] = round(
            per["wheel"]["adj_eps"] / per["wheel_noff"]["adj_eps"], 4)
        workloads[name] = per
    out = {
        "quick": quick,
        "repeat": repeat,
        "xfer_mode": xfer_mode,
        "cpus": os.cpu_count(),
        "workloads": workloads,
        "determinism": run_determinism(digest_sizes, xfer_mode),
        "determinism_ff": run_ff_determinism(ff_digest_sizes, xfer_mode),
        "determinism_workers": run_parallel_determinism(
            parallel_digest_sizes, (workers or [2])[0], xfer_mode),
        "attribution": _attribution_section(50 if quick else 200),
        "baseline_pre_pr": dict(PRE_PR_BASELINE),
    }
    if scaling_nodes is not None:
        out["scaling"] = run_scaling(scaling_nodes, workers_list=workers)
    return out


def report_entries(data: Dict) -> List[tuple]:
    """``(name, paper, measured)`` rows for :func:`make_report`."""
    entries = []
    for name, per in data["workloads"].items():
        w = per["wheel"]
        entries.append((f"{name} events/sec (adjusted)", None, w["adj_eps"]))
        if not data["quick"]:
            # speedups only mean something on the full-size workloads the
            # baseline was measured with
            entries.append((f"{name} speedup vs pre-PR (x)", None,
                            w["adj_eps"] / PRE_PR_BASELINE[name]))
        if "ratio_wheel_over_heap" in per:
            entries.append((f"{name} wheel/heap eps ratio", None,
                            per["ratio_wheel_over_heap"]))
        if "ratio_ff_on_over_off" in per:
            entries.append((f"{name} idle-ff on/off eps ratio", None,
                            per["ratio_ff_on_over_off"]))
    att = data.get("attribution")
    if att is not None:
        entries.append(("pingpong attribution coverage", 1.0,
                        att["coverage"]["coverage"]))
    scaling = data.get("scaling")
    if scaling is not None:
        for key, per in scaling.items():
            if key == "identical":
                continue
            entries.append((
                f"ring {per['nodes']}n sharded events/sec (adjusted)",
                None, per["sharded"]["adj_eps"]))
            entries.append((
                f"ring {per['nodes']}n sharded/sequential eps ratio",
                None, per["ratio_sharded_over_sequential"]))
            for p, wper in per.get("workers", {}).items():
                entries.append((
                    f"ring {per['nodes']}n workers={p} events/sec "
                    f"(adjusted)", None, wper["adj_eps"]))
                entries.append((
                    f"ring {per['nodes']}n workers={p}/sharded eps ratio",
                    None, wper["ratio_workers_over_sharded"]))
    return entries


def check_regression(current: Dict, committed: Dict,
                     tolerance: float = 0.2) -> List[str]:
    """Machine-independent regression gate.

    Compares the wheel/heap adjusted-eps ratio per workload against the
    committed report's ratio; a drop beyond ``tolerance`` (default 20%)
    is a regression.  Absolute events/sec never enters the comparison,
    so the gate is insensitive to CI hardware speed.

    The idle-fast-forward on/off ratio is gated the same way, but with a
    floor that concedes half the committed gain (``1 + (ref - 1)/2``)
    and only where the committed report shows fast-forward actually
    mattering (ref >= 1.1): a silently-disabled fast path lands at ~1.0
    and trips the gate on exactly the workloads it was built for, while
    workloads that never idle (ratio ~1.0) can't flake the gate on
    timing noise.
    """
    problems: List[str] = []
    ref_workloads = committed.get("workloads", {})
    for name in DUAL_SCHEDULER:
        cur = current["workloads"].get(name, {}).get("ratio_wheel_over_heap")
        ref = ref_workloads.get(name, {}).get("ratio_wheel_over_heap")
        if cur is None or ref is None:
            problems.append(f"{name}: missing wheel/heap ratio "
                            f"(current={cur}, committed={ref})")
            continue
        floor = (1.0 - tolerance) * ref
        if cur < floor:
            problems.append(
                f"{name}: wheel/heap eps ratio {cur:.3f} fell below "
                f"{floor:.3f} ({(1.0 - tolerance) * 100:.0f}% of the "
                f"committed {ref:.3f}) — wheel scheduler regression")
    for name in ALL_WORKLOADS:
        ref = ref_workloads.get(name, {}).get("ratio_ff_on_over_off")
        if ref is None or ref < 1.1:
            # pre-fast-forward committed report, or a workload where
            # fast-forward never bought anything to lose
            continue
        cur = current["workloads"].get(name, {}).get("ratio_ff_on_over_off")
        floor = 1.0 + (ref - 1.0) * 0.5
        if cur is None:
            problems.append(f"{name}: missing idle-ff on/off ratio "
                            f"(committed={ref})")
        elif cur < floor:
            problems.append(
                f"{name}: idle-ff on/off eps ratio {cur:.3f} fell below "
                f"{floor:.3f} (half the committed gain of {ref:.3f}) — "
                f"idle fast-forward regression")
    if not current["determinism"]["identical"]:
        problems.append(
            "wheel/heap/sharded event-order digests differ")
    if not current.get("determinism_ff", {}).get("identical", True):
        problems.append(
            "idle fast-forward on/off event-order digests differ")
    if not current.get("determinism_workers", {}).get("identical", True):
        problems.append(
            "worker-backend event-order digests differ from the "
            "single-process engines")
    # sharded scaling: digests must hold at every measured node count,
    # and the sharded/sequential eps ratio must not collapse vs the
    # committed record (same machine-independence argument as above)
    cur_scaling = current.get("scaling")
    if cur_scaling is not None:
        if not cur_scaling.get("identical", True):
            problems.append(
                "sharded/sequential event-order digests differ in the "
                "scaling section")
        ref_scaling = committed.get("scaling", {})
        for key, per in cur_scaling.items():
            if key == "identical":
                continue
            ref = ref_scaling.get(key, {}).get(
                "ratio_sharded_over_sequential")
            if ref is None:
                continue  # node count not in the committed report
            cur = per["ratio_sharded_over_sequential"]
            floor = (1.0 - tolerance) * ref
            if cur < floor:
                problems.append(
                    f"scaling {per['nodes']}n: sharded/sequential eps "
                    f"ratio {cur:.3f} fell below {floor:.3f} "
                    f"({(1.0 - tolerance) * 100:.0f}% of the committed "
                    f"{ref:.3f}) — sharded engine regression")
            # workers speedup columns are CPU-aware: the committed
            # ratio only constitutes a target when the committed run
            # actually showed a gain (ref >= 1.1 — a 1-CPU reference
            # box records honest sub-1 ratios, which are not a floor
            # worth defending) AND this runner has at least P cores to
            # reproduce it with.  Digest identity is gated above
            # unconditionally either way.
            for p, wref_per in ref_scaling.get(key, {}).get(
                    "workers", {}).items():
                wref = wref_per.get("ratio_workers_over_sharded")
                if wref is None or wref < 1.1:
                    continue
                if (os.cpu_count() or 1) < int(p):
                    continue
                wcur = per.get("workers", {}).get(p, {}).get(
                    "ratio_workers_over_sharded")
                wfloor = 1.0 + (wref - 1.0) * 0.5
                if wcur is None:
                    problems.append(
                        f"scaling {per['nodes']}n: missing workers={p} "
                        f"column (committed ratio {wref:.3f})")
                elif wcur < wfloor:
                    problems.append(
                        f"scaling {per['nodes']}n: workers={p}/sharded "
                        f"eps ratio {wcur:.3f} fell below {wfloor:.3f} "
                        f"(half the committed gain of {wref:.3f}) — "
                        f"worker backend regression")
    return problems
