"""Round-trip latency benchmarks (§2.3, Table 3, Table 4).

* :func:`am_roundtrip` — the paper's ping-pong with ``am_request_M`` /
  ``am_reply_M`` on 2 SP thin nodes: 51.0 us for one word, +~0.5 us/word.
* :func:`raw_roundtrip` — the flow-control-free baseline: 47 us.
* :func:`mpl_roundtrip` — mpc_bsend/mpc_recv ping-pong: 88 us.
* :func:`machine_roundtrip` — same AM ping-pong on any registered
  machine (CM-5 / Meiko / U-Net), for Table 4's round-trip column.
"""

from __future__ import annotations

from typing import Optional

from repro.am import attach_am, attach_spam, raw_pingpong_roundtrip
from repro.hardware.machine import build_machine, build_sp_machine
from repro.hardware.params import MachineParams
from repro.sim import Simulator


def raw_roundtrip(iterations: int = 200) -> float:
    """Raw one-word round trip on SP thin nodes (paper: 47 us)."""
    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    return raw_pingpong_roundtrip(machine, iterations)


def _am_pingpong(machine, words: int, iterations: int) -> float:
    ams = [machine.node(i).am for i in range(2)]
    am0, am1 = ams
    sim = machine.sim
    obs = machine.obs
    got = [0]
    args = tuple(range(words))

    def reply_handler(token, *xs):
        got[0] += 1

    def request_handler(token, *xs):
        yield from getattr(token, f"reply_{words}")(reply_handler, *xs)

    def pinger():
        for _ in range(iterations):
            before = got[0]
            t_iter = sim.now
            yield from getattr(am0, f"request_{words}")(
                1, request_handler, *args
            )
            while got[0] == before:
                yield from am0._wait_progress()
            if obs is not None:
                obs.hist("am.rtt_us").observe(sim.now - t_iter)

    def ponger():
        while got[0] < iterations:
            yield from am1._wait_progress()

    t0 = sim.now
    p = sim.spawn(pinger(), name="ping")
    sim.spawn(ponger(), name="pong")
    sim.run_until_processes_done([p], limit=1e9)
    return (sim.now - t0) / iterations


def am_roundtrip(words: int = 1, iterations: int = 200,
                 machine_name: str = "sp-thin") -> float:
    """AM M-word round trip (paper: 51.0 us at one word on thin nodes)."""
    if not 1 <= words <= 4:
        raise ValueError("AM carries 1..4 word arguments")
    sim = Simulator()
    machine = build_machine(sim, 2, machine_name)
    attach_am(machine)
    return _am_pingpong(machine, words, iterations)


def am_roundtrip_observed(words: int = 1, iterations: int = 200,
                          machine_name: str = "sp-thin"):
    """Like :func:`am_roundtrip` but with an Observatory attached.

    Returns ``(mean_rtt_us, obs)`` — the observatory holds one message
    span per packet (with the full stage breakdown), the ``am.rtt_us``
    round-trip histogram, handler-time and occupancy histograms, and the
    merged counters of every layer, ready for the exporters.
    """
    from repro.obs import Observatory

    if not 1 <= words <= 4:
        raise ValueError("AM carries 1..4 word arguments")
    sim = Simulator()
    machine = build_machine(sim, 2, machine_name)
    Observatory().attach(machine)
    attach_am(machine)
    mean = _am_pingpong(machine, words, iterations)
    return mean, machine.obs


def stage_attribution(obs) -> dict:
    """Reconstruct the round trip from span marks (§2.3 / Table 2 style).

    One ping-pong iteration is one REQUEST span plus one REPLY span; the
    reply's ``begin`` falls inside the request handler, so

        mean(REQUEST begin->handler_start) + mean(REPLY begin->handler_end)

    tiles the round trip up to a sub-microsecond residual (the final
    poll-loop check).  Returns per-kind, per-stage mean durations, the two
    half-trip means, and their sum for comparison against the measured
    mean RTT.
    """
    out = {"stages": {}, "half_us": {}}
    total = 0.0
    for kind, end_mark in (("REQUEST", "handler_start"),
                           ("REPLY", "handler_end")):
        spans = obs.spans_by_kind(kind)
        sums: dict = {}
        counts: dict = {}
        halves = []
        for s in spans:
            for stage, dur in s.stage_durations().items():
                sums[stage] = sums.get(stage, 0.0) + dur
                counts[stage] = counts.get(stage, 0) + 1
            b, e = s.marks.get("begin"), s.marks.get(end_mark)
            if b is not None and e is not None:
                halves.append(e - b)
        out["stages"][kind] = {
            stage: sums[stage] / counts[stage] for stage in sums
        }
        half = sum(halves) / len(halves) if halves else 0.0
        out["half_us"][kind] = half
        total += half
    out["stage_sum_us"] = total
    return out


def machine_roundtrip(machine_name: str, iterations: int = 200) -> float:
    """Table 4: one-word AM round trip on any registered machine."""
    return am_roundtrip(words=1, iterations=iterations,
                        machine_name=machine_name)


def mpl_roundtrip(iterations: int = 200) -> float:
    """MPL one-word ping-pong with mpc_bsend / mpc_recv (paper: 88 us)."""
    from repro.mpl import attach_mpl

    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    attach_mpl(machine)
    mpl0 = machine.node(0).mpl
    mpl1 = machine.node(1).mpl
    word = b"\x2a\x00\x00\x00"

    def pinger(node):
        for _ in range(iterations):
            yield from mpl0.mpc_bsend(word, 1, tag=7)
            yield from mpl0.mpc_brecv(4, 1, tag=8)

    def ponger(node):
        for _ in range(iterations):
            yield from mpl1.mpc_brecv(4, 0, tag=7)
            yield from mpl1.mpc_bsend(word, 0, tag=8)

    t0 = sim.now
    p = sim.spawn(pinger(machine.node(0)), name="mpl-ping")
    sim.spawn(ponger(machine.node(1)), name="mpl-pong")
    sim.run_until_processes_done([p], limit=1e9)
    return (sim.now - t0) / iterations
