"""``spam-bench profile`` — the critical-path + metrics profiling suite.

Runs three observed workloads, each with the periodic gauge sampler
attached (:meth:`Observatory.start_sampler`), and reduces every one to
the same evidence bundle:

* **pingpong** — the §2.3 AM ping-pong on 2 thin nodes.  The per-stage
  critical-path attribution must explain >= 95% of the measured RTT
  (``coverage``), reproducing Table 2 / §2.3 from live span marks.
* **bulk** — a multi-chunk blocking ``am_store`` stream, where the
  windowed pipeline (not per-message latency) dominates and the verdict
  should move toward wire/DMA occupancy.
* **soak** — the chaos soak under packet loss, where retransmit backoff
  and NACK traffic enter the critical path.

Each workload yields a critical-path rollup
(:func:`~repro.obs.critpath.critpath_rollup`), the top-K slowest message
exemplars with their full mark timelines, a bottleneck verdict naming the
dominant stage plus its saturated gauge, and the sampler's gauge
summaries.  :func:`render_dashboard` turns the bundle into the
``top``-style console view; the CLI writes it all as
``BENCH_obsprofile.json`` (validated by
``repro.obs.schema.validate_bench_report``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.critpath import (
    attribution_coverage,
    bottleneck_verdict,
    critpath_rollup,
    slowest_exemplars,
)

#: attribution must explain at least this fraction of the measured RTT
COVERAGE_FLOOR = 0.95

#: (iterations, bulk bytes, soak pingpongs) per mode
_FULL = (200, 64 * 1024, 24)
_QUICK = (40, 16 * 1024, 8)


def _workload_bundle(obs, k: int, coverage: Optional[Dict] = None) -> Dict:
    """The common per-workload evidence: rollup, exemplars, verdict,
    gauge summaries."""
    rollup = critpath_rollup(obs)
    bundle = {
        "rollup": rollup,
        "exemplars": slowest_exemplars(obs, k),
        "verdict": bottleneck_verdict(rollup, obs.metrics),
        "gauges": obs.metrics.snapshot() if obs.metrics is not None else {},
        "spans": len(obs.spans),
        "sampler_ticks": (obs.metrics.samples_taken
                          if obs.metrics is not None else 0),
    }
    if coverage is not None:
        bundle["coverage"] = coverage
    return bundle


def _profile_pingpong(iterations: int, period_us: float, k: int,
                      words: int = 1) -> Tuple[Dict, float, object]:
    from repro.am import attach_am
    from repro.bench.pingpong import _am_pingpong
    from repro.hardware.machine import build_machine
    from repro.obs import Observatory
    from repro.sim import Simulator

    sim = Simulator()
    machine = build_machine(sim, 2, "sp-thin")
    obs = Observatory().attach(machine)
    attach_am(machine)
    obs.start_sampler(period_us=period_us)
    mean_rtt = _am_pingpong(machine, words, iterations)
    cov = attribution_coverage(obs, mean_rtt)
    return _workload_bundle(obs, k, coverage=cov), mean_rtt, obs


def _profile_bulk(nbytes: int, period_us: float, k: int) -> Tuple[Dict, float]:
    from repro.am import attach_spam
    from repro.hardware.machine import build_sp_machine
    from repro.obs import Observatory
    from repro.sim import Simulator

    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    obs = Observatory().attach(machine)
    ams = attach_spam(machine)
    obs.start_sampler(period_us=period_us)
    src = machine.nodes[0].memory.alloc(nbytes)
    dst = machine.nodes[1].memory.alloc(nbytes)
    machine.nodes[0].memory.write(src, bytes(i % 251 for i in range(nbytes)))

    def storer():
        yield from ams[0].store(1, src, dst, nbytes)

    def server():
        while machine.nodes[1].memory.read(dst, 1) == b"\x00":
            yield from ams[1]._wait_progress()

    t0 = sim.now
    p = sim.spawn(storer(), name="bulk-store")
    sim.spawn(server(), name="bulk-serve")
    sim.run_until_processes_done([p], limit=1e9)
    elapsed = sim.now - t0
    return _workload_bundle(obs, k), elapsed


def _profile_soak(pingpong: int, period_us: float, k: int,
                  seed: int = 7, loss: float = 0.03) -> Tuple[Dict, object]:
    from repro.faults import run_soak

    result = run_soak(seed=seed, loss=loss, nodes=2, pingpong=pingpong,
                      compare_clean=False, sample_period_us=period_us)
    bundle = _workload_bundle(result.obs, k)
    bundle["violations"] = result.violations
    bundle["injected"] = result.total_injected
    return bundle, result


def run_profile(quick: bool = False, period_us: float = 50.0,
                topk: int = 5) -> Dict:
    """Run the three profiled workloads; return the full evidence bundle.

    The returned dict carries ``entries`` (report rows), ``profile``
    (the per-workload bundles for the report's ``profile`` section),
    ``obs`` (the ping-pong observatory, for trace export), and ``ok``
    (False when attribution coverage fell below :data:`COVERAGE_FLOOR`
    or the soak leg saw violations).
    """
    iters, bulk_bytes, soak_pp = _QUICK if quick else _FULL

    pp_bundle, mean_rtt, pp_obs = _profile_pingpong(iters, period_us, topk)
    bulk_bundle, bulk_elapsed = _profile_bulk(bulk_bytes, period_us, topk)
    soak_bundle, soak_result = _profile_soak(soak_pp, period_us, topk)

    coverage = pp_bundle["coverage"]["coverage"]
    entries: List[Tuple[str, Optional[float], float]] = [
        ("pingpong rtt (us)", 51.0, mean_rtt),
        ("pingpong attribution coverage", 1.0, coverage),
        ("bulk store elapsed (us)", None, bulk_elapsed),
        ("bulk bytes", None, float(bulk_bytes)),
        ("soak elapsed (us)", None, soak_result.elapsed_us),
        ("soak faults injected", None, float(soak_result.total_injected)),
        ("soak retransmit backoff (us)", None,
         sum(s.backoff_us for s in soak_result.obs.spans.values())),
    ]
    return {
        "entries": entries,
        "profile": {
            "period_us": period_us,
            "quick": quick,
            "workloads": {
                "pingpong": pp_bundle,
                "bulk": bulk_bundle,
                "soak": soak_bundle,
            },
        },
        "obs": pp_obs,
        "ok": (coverage >= COVERAGE_FLOOR
               and not soak_result.violations),
    }


# ---------------------------------------------------------------------------
# console dashboard
# ---------------------------------------------------------------------------

def _fmt_verdict(verdict: Dict) -> str:
    if verdict.get("stage") is None:
        return "no attributed spans"
    line = (f"bottleneck: {verdict['stage']} "
            f"({verdict['share'] * 100.0:.1f}% of attributed time, "
            f"mean {verdict['mean_us']:.2f} us)")
    if verdict.get("gauge"):
        line += (f"; saturated gauge {verdict['gauge']} "
                 f"p95={verdict['gauge_p95']:.3g} "
                 f"max={verdict['gauge_max']:.3g}")
    return line


def render_dashboard(data: Dict) -> str:
    """The ``top``-style console view of :func:`run_profile` output."""
    from repro.bench.report import fmt_table

    out: List[str] = []
    prof = data["profile"]
    out.append(f"critical-path profile "
               f"(sampler period {prof['period_us']:.0f} us"
               f"{', quick' if prof.get('quick') else ''})")
    for wname, w in prof["workloads"].items():
        rows = []
        for stage, cell in w["rollup"].get("ALL", {}).items():
            rows.append((stage, cell["count"],
                         round(cell["mean_us"], 2),
                         round(cell["max_us"], 2),
                         f"{cell['share'] * 100.0:.1f}%"))
        out.append(fmt_table(
            f"{wname}: critical path ({w['spans']} spans, "
            f"{w['sampler_ticks']} sampler ticks)",
            ["stage", "count", "mean", "max", "share"], rows))
        out.append(f"  {_fmt_verdict(w['verdict'])}")
        cov = w.get("coverage")
        if cov is not None:
            out.append(
                f"  attribution: {cov['attributed_us']:.2f} us of "
                f"{cov['measured_rtt_us']:.2f} us measured RTT "
                f"({cov['coverage'] * 100.0:.1f}% explained; floor "
                f"{COVERAGE_FLOOR * 100.0:.0f}%)")
        ex = w.get("exemplars") or ()
        if ex:
            worst = ex[0]
            stages = sorted(worst["stages"].items(),
                            key=lambda kv: -kv[1])[:3]
            out.append(
                f"  slowest message: trace {worst['trace_id']} "
                f"{worst['kind']} {worst['src']}->{worst['dst']} "
                f"{worst['total_us']:.2f} us (top stages: "
                + ", ".join(f"{s} {d:.2f}" for s, d in stages) + ")")
    return "\n".join(out)
