"""Protocol-comparison bench (``spam-bench protocols``).

Bandwidth curves for the four large-message strategies the repo can
drive over the same simulated SP hardware:

=============  ==========================================================
``eager``       AM chunk protocol (pipelined ``store_async``)
``rendezvous``  RTS/CTS + simulated RDMA (same calls, ``xfer_mode`` knob)
``mpl``         IBM MPL ``mpc_send`` (the paper's Table 3 rival)
``mpi-f``       the reference MPI-F stack
=============  ==========================================================

The interesting structure is the eager/rendezvous crossover: rendezvous
pays an RTS/CTS round trip (~one AM RTT) before the first payload byte
moves, then streams leaner RDMA framing with no per-packet receiver
handler work.  Below about one chunk the round trip dominates and eager
wins; a few chunks up the lean framing has repaid it.  The committed
``BENCH_protocols.json`` must show rendezvous bandwidth >= eager for
every size >= ``CROSSOVER_FACTOR`` x the default crossover — that is the
regression gate for the rendezvous data path staying on its fast path.

A small single-transfer latency series for eager vs rendezvous is
included too, since the crossover is easiest to eyeball as a latency
ratio dipping below 1.0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.am import attach_spam
from repro.am.constants import RDZV_CROSSOVER
from repro.hardware.machine import build_sp_machine
from repro.sim import Simulator

#: curve names, in display order
CURVES = ("eager", "rendezvous", "mpl", "mpi-f")

#: sweep sizes: sub-crossover, the crossover itself, then 2x/4x/8x and
#: two asymptotic points (the crossover is one chunk = 8064 B)
DEFAULT_SIZES = [1024, 4032, 8064, 16128, 32256, 64512, 131072, 262144]

#: reduced sweep for CI smoke (--quick)
QUICK_SIZES = [4032, 8064, 16128, 32256, 64512]

#: rendezvous must beat (or match) eager from this multiple of the
#: crossover upward; below it either may win
CROSSOVER_FACTOR = 4


def _measure_am(xfer_mode: str, n: int, total: int) -> float:
    """One-way bandwidth (MB/s) of pipelined AM stores in one mode."""
    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    am0, am1 = attach_spam(machine, xfer_mode=xfer_mode)
    src = machine.node(0).memory.alloc(max(n, 1))
    dst = machine.node(1).memory.alloc(max(n, 1))
    count = max(1, total // max(n, 1))
    flag = [0]

    def sender(_):
        ops = []
        for _i in range(count):
            ops.append((yield from am0.store_async(1, src, dst, n)))
        for op in ops:
            yield from am0.wait_op(op)
        flag[0] = 1

    def receiver(_):
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender(0), name="proto-send")
    sim.spawn(receiver(0), name="proto-recv")
    sim.run_until_processes_done([p], limit=1e10, max_events=80_000_000)
    return count * n / sim.now  # bytes/us == MB/s


def _measure_am_latency(xfer_mode: str, n: int, iters: int = 4) -> float:
    """Mean microseconds of one blocking ``store`` of ``n`` bytes."""
    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    am0, am1 = attach_spam(machine, xfer_mode=xfer_mode)
    src = machine.node(0).memory.alloc(max(n, 1))
    dst = machine.node(1).memory.alloc(max(n, 1))
    flag = [0]
    stamps: List[float] = []

    def sender(_):
        for _i in range(iters):
            t0 = sim.now
            yield from am0.store(1, src, dst, n)
            stamps.append(sim.now - t0)
        flag[0] = 1

    def receiver(_):
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender(0), name="lat-send")
    sim.spawn(receiver(0), name="lat-recv")
    sim.run_until_processes_done([p], limit=1e10)
    return sum(stamps) / len(stamps)


def measure_curve(curve: str, n: int, total: int = 0) -> float:
    """Bandwidth (MB/s) of one protocol at one transfer size."""
    if curve not in CURVES:
        raise ValueError(f"unknown curve {curve!r}; one of {CURVES}")
    if total <= 0:
        total = min(1_000_000, max(150_000, 6 * n))
    if curve in ("eager", "rendezvous"):
        return _measure_am(curve, n, total)
    if curve == "mpl":
        from repro.bench.bandwidth import measure_bandwidth

        return measure_bandwidth("mpl_send", n, total=total)
    from repro.bench.figures import mpi_bandwidth

    return mpi_bandwidth("mpi_f", n, total=total)


def crossover_problems(data: Dict, factor: int = CROSSOVER_FACTOR
                       ) -> List[str]:
    """The regression gate: rendezvous >= eager from factor x crossover."""
    problems: List[str] = []
    eager = dict(data["curves"]["eager"])
    rdzv = dict(data["curves"]["rendezvous"])
    floor = factor * data["crossover_bytes"]
    for n in sorted(eager):
        if n < floor or n not in rdzv:
            continue
        if rdzv[n] < eager[n]:
            problems.append(
                f"rendezvous {rdzv[n]:.2f} MB/s < eager {eager[n]:.2f} "
                f"MB/s at {n} B (>= {factor}x crossover of "
                f"{data['crossover_bytes']} B)")
    return problems


def run_protocols(quick: bool = False,
                  sizes: Optional[Sequence[int]] = None) -> Dict:
    """Run the full comparison; returns the report ``extra`` payload."""
    sizes = list(sizes) if sizes is not None else (
        QUICK_SIZES if quick else DEFAULT_SIZES)
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for curve in CURVES:
        curves[curve] = [(n, round(measure_curve(curve, n), 3))
                         for n in sizes]
    latency = {
        mode: [(n, round(_measure_am_latency(mode, n), 3)) for n in sizes]
        for mode in ("eager", "rendezvous")
    }
    data: Dict = {
        "quick": quick,
        "sizes": sizes,
        "crossover_bytes": RDZV_CROSSOVER,
        "crossover_factor": CROSSOVER_FACTOR,
        "curves": curves,
        "latency_us": latency,
    }
    data["crossover_problems"] = crossover_problems(data)
    data["crossover_ok"] = not data["crossover_problems"]
    return data


def report_entries(data: Dict) -> List[tuple]:
    """``(name, paper, measured)`` rows for ``make_report``."""
    entries: List[tuple] = []
    for curve in CURVES:
        for n, bw in data["curves"][curve]:
            entries.append((f"{curve} {n}B (MB/s)", None, bw))
    eager = dict(data["latency_us"]["eager"])
    for n, us in data["latency_us"]["rendezvous"]:
        entries.append((f"rendezvous/eager latency ratio {n}B", None,
                        round(us / eager[n], 4)))
    entries.append((f"rendezvous>=eager from "
                    f"{data['crossover_factor']}x crossover", 1.0,
                    1.0 if data["crossover_ok"] else 0.0))
    return entries
