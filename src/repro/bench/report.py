"""Paper-format output: tables and figure series as aligned text.

Every benchmark prints a "paper vs measured" block through these helpers
so EXPERIMENTS.md and the benchmark logs read the same way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def fmt_table(title: str, headers: Sequence[str],
              rows: Sequence[Sequence], width: int = 12) -> str:
    """A fixed-width text table."""
    out = [title, "=" * len(title)]
    out.append("  ".join(f"{h:>{width}}" for h in headers))
    out.append("  ".join("-" * width for _ in headers))
    for row in rows:
        cells = []
        for v in row:
            if isinstance(v, float):
                cells.append(f"{v:>{width}.2f}")
            else:
                cells.append(f"{str(v):>{width}}")
        out.append("  ".join(cells))
    return "\n".join(out)


def fmt_series(title: str, series: Dict[str, Sequence[Tuple[int, float]]],
               xlabel: str = "bytes", ylabel: str = "MB/s") -> str:
    """A figure as columns: x then one column per named curve."""
    names = list(series)
    xs = sorted({x for s in series.values() for x, _ in s})
    lookup = {name: dict(s) for name, s in series.items()}
    headers = [xlabel] + names
    rows = []
    for x in xs:
        row: List = [x]
        for name in names:
            v = lookup[name].get(x)
            row.append(v if v is not None else "-")
        rows.append(row)
    return fmt_table(f"{title}  ({ylabel})", headers, rows)


def paper_vs_measured(title: str,
                      entries: Sequence[Tuple[str, object, float]],
                      unit: str = "") -> str:
    """Rows of (quantity, paper value, measured value, deviation)."""
    rows = []
    for label, paper, measured in entries:
        if isinstance(paper, (int, float)) and paper:
            dev = f"{(measured - paper) / paper * 100:+.1f}%"
        else:
            dev = "-"
        rows.append((label, paper if paper is not None else "-",
                     round(measured, 2), dev))
    return fmt_table(title, ["quantity", "paper", "measured", "dev"], rows,
                     width=16) + (f"\n(units: {unit})" if unit else "")
