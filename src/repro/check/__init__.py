"""repro.check — the protocol invariant sanitizer.

Always-available runtime checking of the invariants the paper states but
never mechanizes: FIFO slot conservation (§2.1), go-back-N window and
exactly-once delivery (§2.2), MPI request lifecycle and receiver-region
allocation conservation (§4.1–4.2), and event-scheduler ordering.

Checking follows the observability zero-cost pattern: every instrumented
component carries a ``check`` attribute that defaults to ``None``, and
every hook site is guarded by ``if self.check is not None`` — disabled
checking costs one attribute load on the hot path and nothing else.

See ``docs/checking.md`` for the invariant catalogue and campaign usage.
"""

from repro.check.core import InvariantViolation, Sanitizer
from repro.check.campaign import (
    CampaignResult,
    ShrinkResult,
    generate_ops,
    run_campaign,
    run_campaigns,
    shrink_failure,
)

__all__ = [
    "InvariantViolation",
    "Sanitizer",
    "CampaignResult",
    "ShrinkResult",
    "generate_ops",
    "run_campaign",
    "run_campaigns",
    "shrink_failure",
]
