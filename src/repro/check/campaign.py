"""Randomized conformance campaigns under the sanitizer.

``run_campaign`` builds a fresh SP machine, attaches AM + MPI-AM, plants
a :class:`~repro.check.core.Sanitizer` over every layer, and drives a
seeded random mix of operations — point-to-point over subcommunicators
(including ANY_SOURCE matches and self-sends), collectives, and
wait-family stress — optionally under fabric loss.  Every op verifies its
own payload and status against a deterministic pattern, so a campaign
cross-checks three ledgers: the workload's expectations, the protocol
state machines, and the sanitizer's redundant bookkeeping.

Ops are *self-contained units* (a p2p op names both its sender and its
receiver; a collective names its whole membership) executed by every
participating rank in global index order, so any sub-list of ops is
itself a deadlock-free campaign — the property :func:`shrink_failure`
exploits to reduce a failing seed to a minimal op list.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.am import attach_spam
from repro.check.core import Sanitizer
from repro.faults.injector import install_faults
from repro.faults.plan import FaultPlan
from repro.hardware.machine import build_sp_machine
from repro.mpi import attach_mpi
from repro.mpi.comm import Communicator
from repro.mpi.status import ANY_SOURCE
from repro.obs.core import Observatory
from repro.sim import ShardedSimulator, Simulator
from repro.sim.errors import SimulationError

#: fixed communicator contexts, one per subcommunicator name; kept below
#: the Communicator auto-allocation floor (100) and distinct from
#: comm_world's context 1
_CTX_BASE = 40

#: p2p payload sizes: zero-byte, sub-packet, packet-ish, eager mid-range,
#: the eager/rendez-vous boundary, and two rendez-vous sizes
_P2P_SIZES = (0, 1, 17, 256, 1024, 4000, 8192, 12000, 20000)

_COLL_SIZES = (1, 16, 64, 256)
_COLLECTIVES = ("barrier", "bcast", "reduce", "allreduce", "gather",
                "alltoall", "scan")

#: post-barrier drain: a rank declares itself done once its own protocol
#: state has been quiet this long.  Keep-alives back off up to
#: ``keepalive_idle * 64`` = 25.6 ms between sends, so a 30 ms window
#: outlasts the longest legitimate silent gap (mirrors repro.faults.soak)
_DRAIN_GRACE_US = 30_000.0


def _subcomms(nodes: int) -> Dict[str, Tuple[List[int], int]]:
    """name -> (world_ranks, context).  ``rot`` is the world rotated by
    one, so every member's communicator-local rank differs from its
    world rank — the layout that flushed the loopback status bug."""
    combos = {
        "world": list(range(nodes)),
        "rot": [(i + 1) % nodes for i in range(nodes)],
        "even": [r for r in range(nodes) if r % 2 == 0],
        "odd": [r for r in range(nodes) if r % 2 == 1],
    }
    return {name: (ranks, _CTX_BASE + i)
            for i, (name, ranks) in enumerate(sorted(combos.items()))
            if ranks}


def _pattern(i: int, src: int, nbytes: int) -> bytes:
    """Deterministic payload of op ``i`` from sender ``src``."""
    return bytes((31 * i + 17 * src + 5 * j + 11) % 251
                 for j in range(nbytes))


def generate_ops(seed: int, nodes: int = 4, nops: int = 24) -> List[dict]:
    """The seeded random op mix (pure function of its arguments).

    Ranks inside an op are communicator-local; ``comm`` names an entry
    of :func:`_subcomms`.
    """
    rng = random.Random(seed)
    subs = _subcomms(nodes)
    names = sorted(subs)
    multi = [n for n in names if len(subs[n][0]) >= 2]
    ops: List[dict] = []
    for i in range(nops):
        tag = 1024 + i * 32
        kind = rng.choices(("p2p", "self", "coll", "waitmix"),
                           weights=(4, 2, 3, 2))[0]
        if kind == "p2p" and multi:
            name = rng.choice(multi)
            size = len(subs[name][0])
            src, dst = rng.sample(range(size), 2)
            ops.append({
                "kind": "p2p", "comm": name, "tag": tag,
                "src": (ANY_SOURCE if rng.random() < 0.3 else src),
                "src_actual": src, "dst": dst,
                "nbytes": rng.choice(_P2P_SIZES),
            })
        elif kind == "self":
            name = rng.choice(names)
            size = len(subs[name][0])
            ops.append({
                "kind": "self", "comm": name, "tag": tag,
                "rank": rng.randrange(size),
                "nbytes": rng.choice(_COLL_SIZES),
                "order": rng.choice(("send_first", "recv_first")),
            })
        elif kind == "waitmix" and multi:
            name = rng.choice(multi)
            size = len(subs[name][0])
            dst = rng.randrange(size)
            others = [r for r in range(size) if r != dst]
            nsrc = rng.randint(1, min(3, len(others)))
            ops.append({
                "kind": "waitmix", "comm": name, "tag": tag,
                "dst": dst, "srcs": rng.sample(others, nsrc),
                "nbytes": rng.choice((1, 64, 2048)),
                "style": rng.choice(("waitsome", "waitany")),
            })
        else:
            name = rng.choice(names)
            size = len(subs[name][0])
            coll = rng.choice(_COLLECTIVES)
            ops.append({
                "kind": "coll", "comm": name, "coll": coll,
                "root": rng.randrange(size),
                "nbytes": rng.choice(_COLL_SIZES),
            })
    return ops


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


@dataclass
class CampaignResult:
    """Verdict and evidence of one sanitized campaign."""

    seed: int
    nodes: int
    loss: float
    nops: int
    #: large-message strategy the campaign's AM layer ran with
    xfer_mode: str
    #: sanitizer violations + workload mismatches + aborting exceptions
    violations: List[str]
    #: check counts per checker kind (all must be > 0 on a real run)
    checks: Dict[str, int]
    #: transfer units delivered across every receive window
    delivered_units: int
    #: combined delivery-order digest (deterministic per seed)
    digest: int
    elapsed_us: float
    #: the run raised and stopped early (conservation checks skipped)
    aborted: bool = False
    ops: List[dict] = field(default_factory=list, repr=False)
    #: critical-path rollup over every traced message (stage ->
    #: count/total_us/mean_us/max_us/share), for the check report's
    #: attribution section
    critpath: Dict[str, Dict] = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        state = ("FAIL" if self.violations else "ok")
        counts = " ".join(f"{k}={v}" for k, v in sorted(self.checks.items()))
        return (f"check seed={self.seed} nodes={self.nodes} "
                f"loss={self.loss} mode={self.xfer_mode} "
                f"ops={self.nops}: {state} "
                f"[{counts}] units={self.delivered_units} "
                f"t={self.elapsed_us:.0f}us")


@dataclass
class ShrinkResult:
    """Outcome of minimizing a failing campaign."""

    seed: int
    #: whether the starting op list failed at all
    reproduced: bool
    #: the minimal failing op list (empty when not reproduced)
    minimal: List[dict]
    original_nops: int
    #: reproduction runs spent shrinking
    runs: int
    #: violations of the minimal run
    violations: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# the campaign machine
# ---------------------------------------------------------------------------


class _CheckCampaign:
    def __init__(self, seed: int, nodes: int, ops: List[dict], loss: float,
                 collect: bool, limit: float,
                 only: Optional[List[str]] = None,
                 xfer_mode: str = "eager", sharding: bool = False,
                 workers: int = 1):
        self.seed = seed
        self.nodes = nodes
        self.ops = ops
        self.limit = limit
        self.violations: List[str] = []
        self.aborted = False
        if workers > 1 and not sharding:
            raise ValueError("workers > 1 requires the sharded engine")
        self.workers = workers
        self.sim = (ShardedSimulator(workers=workers) if sharding
                    else Simulator())
        self.machine = build_sp_machine(self.sim, nodes)
        self.obs = Observatory().attach(self.machine)
        self.ams = attach_spam(self.machine, xfer_mode=xfer_mode)
        self.mpis = attach_mpi(self.machine)
        if loss > 0.0:
            install_faults(self.machine, FaultPlan.loss(seed, loss))
        # last: MPI attachment must exist so allocators get checkers
        self.san = Sanitizer(collect=collect, only=only).attach(self.machine)
        subs = _subcomms(nodes)
        #: per world rank: subcomm name -> Communicator (members only)
        self.comms: List[Dict[str, Communicator]] = []
        for w in range(nodes):
            mine = {}
            for name, (ranks, ctx) in subs.items():
                if w in ranks:
                    mine[name] = Communicator(list(ranks), w, context=ctx)
            self.comms.append(mine)

    def _complain(self, rank: int, i: int, msg: str) -> None:
        self.violations.append(f"rank {rank} op {i}: {msg}")

    # -- op execution ---------------------------------------------------

    def _run_op(self, i: int, op: dict, w: int):
        kind = op["kind"]
        if kind == "violate":
            self._op_violate(op, w, self.mpis[w])
            return
        comm = self.comms[w].get(op["comm"])
        if comm is None:
            return
        mpi = self.mpis[w]
        local = comm.rank
        if kind == "p2p":
            yield from self._op_p2p(i, op, w, mpi, comm, local)
        elif kind == "self":
            yield from self._op_self(i, op, w, mpi, comm, local)
        elif kind == "waitmix":
            yield from self._op_waitmix(i, op, w, mpi, comm, local)
        elif kind == "coll":
            yield from self._op_coll(i, op, w, mpi, comm, local)
        else:  # pragma: no cover - generation is exhaustive
            raise ValueError(f"unknown op kind {kind!r}")

    def _op_p2p(self, i, op, w, mpi, comm, local):
        want = _pattern(i, op["src_actual"], op["nbytes"])
        if local == op["src_actual"]:
            yield from mpi.send(want, op["dst"], op["tag"], comm)
        if local == op["dst"]:
            data, st = yield from mpi.recv(op["nbytes"], op["src"],
                                           op["tag"], comm)
            if data != want:
                self._complain(w, i, "p2p payload corrupted")
            expect_src = comm.world_rank_of(op["src_actual"])
            if st.source != expect_src:
                self._complain(w, i, f"status.source={st.source}, expected "
                                     f"world rank {expect_src}")
            if st.tag != op["tag"]:
                self._complain(w, i, f"status.tag={st.tag}, expected "
                                     f"{op['tag']}")

    def _op_self(self, i, op, w, mpi, comm, local):
        if local != op["rank"]:
            return
        want = _pattern(i, w, op["nbytes"])
        if op["order"] == "send_first":
            sreq = yield from mpi.isend(want, local, op["tag"], comm)
            rreq = yield from mpi.irecv(op["nbytes"], local, op["tag"], comm)
        else:
            rreq = yield from mpi.irecv(op["nbytes"], local, op["tag"], comm)
            sreq = yield from mpi.isend(want, local, op["tag"], comm)
        yield from mpi.wait(sreq)
        st = yield from mpi.wait(rreq)
        if rreq.data != want:
            self._complain(w, i, "self-send payload corrupted")
        # the status must carry the world rank (the loopback bug stamped
        # the communicator-local rank, breaking world_ranks.index)
        if st.source != w:
            self._complain(w, i, f"self-recv status.source={st.source}, "
                                 f"expected world rank {w}")
        elif comm.world_ranks.index(st.source) != local:
            self._complain(w, i, "world_ranks.index(status.source) "
                                 "does not resolve to my local rank")

    def _op_waitmix(self, i, op, w, mpi, comm, local):
        if local in op["srcs"]:
            j = op["srcs"].index(local)
            yield from mpi.send(_pattern(i, j, op["nbytes"]), op["dst"],
                                op["tag"] + j, comm)
        if local != op["dst"]:
            return
        empty = yield from mpi.waitsome([])
        if empty != []:
            self._complain(w, i, f"waitsome([]) returned {empty!r}")
        reqs = []
        for j, s in enumerate(op["srcs"]):
            r = yield from mpi.irecv(op["nbytes"], s, op["tag"] + j, comm)
            reqs.append(r)
        remaining = list(reqs)
        while remaining:
            if op["style"] == "waitany":
                k, _st = yield from mpi.waitany(remaining)
                remaining.pop(k)
            else:
                done = yield from mpi.waitsome(remaining)
                remaining = [r for k, r in enumerate(remaining)
                             if k not in done]
        for j, r in enumerate(reqs):
            if r.data != _pattern(i, j, op["nbytes"]):
                self._complain(w, i, f"waitmix payload {j} corrupted")
            expect_src = comm.world_rank_of(op["srcs"][j])
            if r.status.source != expect_src:
                self._complain(w, i, f"waitmix status.source="
                                     f"{r.status.source}, expected "
                                     f"{expect_src}")
            r.free()

    def _op_coll(self, i, op, w, mpi, comm, local):
        size = comm.size
        coll = op["coll"]
        root = op["root"]
        n = op["nbytes"]
        if coll == "barrier":
            yield from mpi.barrier(comm)
            return
        if coll == "bcast":
            want = _pattern(i, comm.world_rank_of(root), n)
            out = yield from mpi.bcast(want if local == root else None,
                                       root, comm)
            if out != want:
                self._complain(w, i, "bcast payload corrupted")
            return
        if coll == "gather":
            data = _pattern(i, w, n)
            out = yield from mpi.gather(data, root, comm)
            if local == root:
                for r in range(size):
                    if out[r] != _pattern(i, comm.world_rank_of(r), n):
                        self._complain(w, i, f"gather slot {r} corrupted")
            return
        if coll == "alltoall":
            chunks = [_pattern(i, 16 * local + d, n) for d in range(size)]
            out = yield from mpi.alltoall(chunks, comm)
            for r in range(size):
                if out[r] != _pattern(i, 16 * r + local, n):
                    self._complain(w, i, f"alltoall slot {r} corrupted")
            return
        # numeric collectives over a small int64 vector
        count = max(1, n // 8)
        arr = np.arange(count, dtype=np.int64) + w
        rank_sum = sum(comm.world_ranks)
        base = np.arange(count, dtype=np.int64)
        if coll == "reduce":
            res = yield from mpi.reduce(arr, "sum", root, comm)
            if local == root and not np.array_equal(
                    res, base * size + rank_sum):
                self._complain(w, i, "reduce result wrong")
        elif coll == "allreduce":
            res = yield from mpi.allreduce(arr, "sum", comm)
            if not np.array_equal(res, base * size + rank_sum):
                self._complain(w, i, "allreduce result wrong")
        elif coll == "scan":
            res = yield from mpi.scan(arr, "sum", comm)
            prefix = sum(comm.world_ranks[: local + 1])
            if not np.array_equal(res, base * (local + 1) + prefix):
                self._complain(w, i, "scan result wrong")
        else:  # pragma: no cover - generation is exhaustive
            raise ValueError(f"unknown collective {coll!r}")

    def _op_violate(self, op, w, mpi):
        """Deliberate protocol violation (shrinking tests): free a region
        offset that was never allocated."""
        if w != op["rank"]:
            return
        mpi.adi._alloc[op["peer"]].free(op.get("offset", 12321), 64)

    # -- the per-rank program -------------------------------------------

    def _rank_quiet(self, w: int) -> bool:
        """Is rank ``w``'s *own* protocol state drained?  Deliberately
        node-local (no switch counters, no other rank's windows) so the
        identical drain predicate runs inside shard worker processes
        (``workers > 1``), where a rank cannot see foreign shards."""
        am = self.ams[w]
        if am._active_sends or am._deferred_replies:
            return False
        if am._rdma_grants or am._deferred_cts or am._rdma_ack_due:
            return False
        adapter = am.adapter
        if adapter.send_fifo.occupied > 0:
            return False
        rf = adapter.recv_fifo
        visible = len(rf.visible)
        if visible > 0:
            return False
        if rf.occupied != visible + rf.pending_pop:
            return False  # a packet is mid-RX-DMA
        # open-coded window-field reads (vs the has_unacked /
        # has_partial_assembly properties): this runs per idle poll
        for peer in am._peers.values():
            s_req, s_rep = peer.send
            if s_req._saved or s_rep._saved:
                return False
            r_req, r_rep = peer.recv
            if r_req._assembly is not None or r_rep._assembly is not None:
                return False
        adi = self.mpis[w].adi
        if adi._send_states or adi._recv_states:
            return False
        return True

    def _program(self, w: int):
        mpi = self.mpis[w]
        node = self.machine.nodes[w]
        for i, op in enumerate(self.ops):
            yield from self._run_op(i, op, w)
        yield from mpi.barrier()
        # Drain.  The world barrier above proves every rank has finished
        # its ops; what remains is straggling protocol traffic (acks,
        # batched frees, retransmissions under loss).  Serve the network
        # until this rank's own state has been quiet — and no packet has
        # arrived — for a grace window that outlasts the keep-alive
        # backoff.  Any in-flight packet addressed to us lands within
        # wire latency, bumps rx_packets, and restarts the window.
        rx = node.adapter._c_rx_packets
        quiet_since = None
        last_rx = rx.value
        while True:
            if rx.value == last_rx and self._rank_quiet(w):
                if quiet_since is None:
                    quiet_since = self.sim.now
                elif self.sim.now - quiet_since >= _DRAIN_GRACE_US:
                    break
            else:
                quiet_since = None
                last_rx = rx.value
            yield from mpi.adi._wait_progress()

    # -- execution ------------------------------------------------------

    def run(self) -> float:
        self._vio_baseline = len(self.violations)
        self._san_baseline = len(self.san.violations)
        if self.workers > 1:
            self.sim.worker_finalize = self._finalize_span
        procs = [self.sim.spawn(self._program(w), name=f"check{w}", shard=w)
                 for w in range(self.nodes)]
        try:
            self.sim.run_until_processes_done(procs, limit=self.limit)
        except SimulationError as exc:
            self.aborted = True
            self.violations.append(f"{type(exc).__name__}: {exc}")
        except (ValueError, AssertionError) as exc:
            self.aborted = True
            self.violations.append(f"{type(exc).__name__}: {exc}")
        self._collect_finalizers()
        return self.sim.now

    def _finalize_span(self, lo: int, hi: int) -> Dict:
        """Runs inside each worker at shutdown: everything the parent
        needs from this shard span's live state — workload complaints,
        sanitizer violations (run-time and quiescence-time separately,
        so an aborted parent can discard the latter), check counts,
        delivery digest, and the conservation-equation operands."""
        san = self.san
        vio_base = len(san.violations)
        numbers = san.quiescence_local(lo, hi)
        return {
            "lo": lo, "hi": hi,
            "complaints": list(self.violations[self._vio_baseline:]),
            "violations": [str(v)
                           for v in san.violations[self._san_baseline:
                                                   vio_base]],
            "q_violations": [str(v) for v in san.violations[vio_base:]],
            "numbers": numbers,
            **san.span_report(lo, hi),
        }

    def _collect_finalizers(self) -> None:
        """Populate ``check_counts`` / ``delivered_units`` / ``digest``
        and fold worker payloads into ``violations``.  The sequential
        path runs the exact same two quiescence phases over the single
        span (0, nodes), so verdicts are engine-independent."""
        if self.workers > 1:
            payloads = getattr(self.sim, "worker_results", None)
            if payloads is None:
                # run died before the final round handshake; the
                # SimulationError is already recorded above
                self.violations.extend(
                    str(v) for v in self.san.violations)
                self.check_counts = dict(self.san.snapshot())
                self.delivered_units = 0
                self.digest = 0
                return
            payloads = sorted(payloads, key=lambda p: p["lo"])
            numbers = {"outstanding": {}, "owed": {}}
            for p in payloads:
                self.violations.extend(p["complaints"])
                self.violations.extend(p["violations"])
                numbers["outstanding"].update(p["numbers"]["outstanding"])
                numbers["owed"].update(p["numbers"]["owed"])
            if not self.aborted:
                for p in payloads:
                    self.violations.extend(p["q_violations"])
                # cross-node pair equation over the shipped numbers;
                # failures land in the parent sanitizer's violations
                self.san.quiescence_pairs(numbers)
            self.violations.extend(str(v) for v in self.san.violations)
            # parent snapshot covers the sequencer-side SchedulerCheck
            # (workers run with sim.check cleared) plus the pair checks
            # just counted; worker payloads carry every per-node checker
            counts = dict(self.san.snapshot())
            units = 0
            digest = 0
            for p in payloads:
                for k, v in p["counts"].items():
                    counts[k] = counts.get(k, 0) + v
                units += p["units"]
                digest ^= p["digest"]
            self.check_counts = counts
            self.delivered_units = units
            self.digest = digest
        else:
            if not self.aborted:
                # conservation only means something on a drained machine
                self.san.check_quiescent()
            self.violations.extend(str(v) for v in self.san.violations)
            self.check_counts = dict(self.san.snapshot())
            rep = self.san.span_report(0, self.nodes)
            self.delivered_units = rep["units"]
            self.digest = rep["digest"]


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def run_campaign(
    seed: int,
    nodes: int = 4,
    nops: int = 24,
    loss: float = 0.0,
    op_list: Optional[List[dict]] = None,
    collect: bool = True,
    limit: float = 5e7,
    only: Optional[List[str]] = None,
    xfer_mode: str = "eager",
    sharding: bool = False,
    workers: int = 1,
) -> CampaignResult:
    """One seeded campaign under the sanitizer; returns its verdict.

    ``op_list`` overrides generation (shrinking and tests); otherwise
    the ops are :func:`generate_ops(seed, nodes, nops)`.  ``xfer_mode``
    selects the AM large-message strategy, so the same op mix can
    cross-check the eager chunk protocol against rendezvous.
    ``sharding`` runs the campaign on the per-node-sharded engine —
    execution is digest-identical, so every sanitizer verdict carries
    over unchanged.  ``workers`` additionally spreads the shards over
    that many worker processes (implies ``sharding``): per-node checkers
    then run inside the workers and their violations, check counts, and
    delivery digests are shipped back at shutdown — verdicts, units,
    and digests stay identical to every sequential engine.  Two
    worker-mode caveats: the critical-path rollup is empty (traces are
    recorded worker-side and not shipped), and an op that *raises*
    inside a worker surfaces as the worker-failure traceback alone —
    checker entries collected before the crash die with the worker.
    """
    ops = op_list if op_list is not None else generate_ops(seed, nodes, nops)
    camp = _CheckCampaign(seed, nodes, ops, loss, collect, limit, only,
                          xfer_mode=xfer_mode,
                          sharding=sharding or workers > 1, workers=workers)
    elapsed = camp.run()
    from repro.obs.critpath import critpath_rollup

    return CampaignResult(
        seed=seed, nodes=nodes, loss=loss, nops=len(ops),
        xfer_mode=xfer_mode,
        violations=camp.violations, checks=camp.check_counts,
        delivered_units=camp.delivered_units, digest=camp.digest,
        elapsed_us=elapsed,
        aborted=camp.aborted, ops=ops,
        critpath=critpath_rollup(camp.obs, by_kind=False).get("ALL", {}),
    )


def run_campaigns(seeds, nodes: int = 4, nops: int = 24,
                  loss: float = 0.0, **kw) -> List[CampaignResult]:
    """Run one campaign per seed (the ``spam-bench check`` loop)."""
    return [run_campaign(s, nodes=nodes, nops=nops, loss=loss, **kw)
            for s in seeds]


def shrink_failure(
    seed: int,
    nodes: int = 4,
    nops: int = 24,
    loss: float = 0.0,
    op_list: Optional[List[dict]] = None,
    limit: float = 5e7,
    xfer_mode: str = "eager",
) -> ShrinkResult:
    """Minimize a failing campaign to its smallest failing op list.

    Binary-searches the shortest failing prefix (the violating op is the
    prefix's last element), then greedily drops every earlier op that
    the failure does not depend on.  Ops are self-contained, so every
    candidate sub-list is a valid deadlock-free campaign.
    """
    ops = op_list if op_list is not None else generate_ops(seed, nodes, nops)
    runs = 0

    def fails(candidate: List[dict]) -> Optional[List[str]]:
        nonlocal runs
        runs += 1
        res = run_campaign(seed, nodes=nodes, loss=loss,
                           op_list=candidate, collect=True, limit=limit,
                           xfer_mode=xfer_mode)
        return res.violations if not res.ok else None

    first = fails(ops)
    if first is None:
        return ShrinkResult(seed=seed, reproduced=False, minimal=[],
                            original_nops=len(ops), runs=runs)
    lo, hi = 1, len(ops)  # invariant: ops[:hi] fails
    while lo < hi:
        mid = (lo + hi) // 2
        if fails(ops[:mid]) is not None:
            hi = mid
        else:
            lo = mid + 1
    cur = ops[:hi]
    i = len(cur) - 2  # never drop the prefix's last op (the trigger)
    while i >= 0:
        candidate = cur[:i] + cur[i + 1:]
        if fails(candidate) is not None:
            cur = candidate
        i -= 1
    final = fails(cur) or []
    return ShrinkResult(seed=seed, reproduced=True, minimal=cur,
                        original_nops=len(ops), runs=runs,
                        violations=final)
