"""Invariant checkers and the Sanitizer that plants them (see package doc).

Each checker shadows one component with redundant bookkeeping derived only
from the hook stream, then cross-checks the component's own state against
it.  A violation therefore names the *first operation* at which the two
disagree — the op that broke the invariant — rather than the much later
point where corrupted state happens to explode.

Checker kinds (the ``only=`` vocabulary of :class:`Sanitizer`):

* ``fifo``    — send/receive FIFO slot conservation (§2.1)
* ``window``  — go-back-N credit, ack alignment, exactly-once (§2.2)
* ``request`` — MPI request lifecycle posted→matched→completed (§4.1)
* ``alloc``   — receiver-region allocate/free conservation (§4.1–4.2)
* ``rdma``    — rendezvous grants: CTS-before-write, region bounds and
  disjointness, exactly-once FIN release, no grant leaks
* ``sched``   — event execution in strict (time, seq) order
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.sim.engine import TimerHandle

#: multiplier of the rolling delivery digest (a prime, per FNV-style mixes)
_DIGEST_MULT = 1000003
_DIGEST_MASK = (1 << 61) - 1


class InvariantViolation(AssertionError):
    """An invariant the sanitizer watches was broken.

    ``checker`` names the instrumented component (e.g.
    ``send_window[0->2 ch0]``), ``op`` the hook at which the redundant
    bookkeeping and the component disagreed.
    """

    def __init__(self, checker: str, op: str, msg: str):
        self.checker = checker
        self.op = op
        self.msg = msg
        super().__init__(f"[{checker}.{op}] {msg}")


class _Check:
    """Base checker: counts checks, reports violations to the sanitizer."""

    kind = "?"

    def __init__(self, san: "Sanitizer", name: str):
        self.san = san
        self.name = name
        #: hook invocations — campaigns assert these are > 0, so a checker
        #: that silently detached would fail the run, not pass it
        self.checks = 0
        san._checkers.append(self)

    def fail(self, op: str, msg: str) -> None:
        self.san._report(InvariantViolation(self.name, op, msg))


# ---------------------------------------------------------------------------
# hardware FIFOs (§2.1)
# ---------------------------------------------------------------------------


class SendFifoCheck(_Check):
    """Slot conservation of the host send FIFO: every packet is staged,
    then armed, then taken, and ``occupied`` equals staged-minus-taken."""

    kind = "fifo"

    def __init__(self, san, name, fifo):
        super().__init__(san, name)
        self.fifo = fifo
        self.staged = 0
        self.armed = 0
        self.taken = 0

    def _conserved(self, op, fifo):
        if self.taken > self.armed:
            self.fail(op, f"took {self.taken} packets but only "
                          f"{self.armed} were armed")
        if self.armed > self.staged:
            self.fail(op, f"armed {self.armed} packets but only "
                          f"{self.staged} were staged")
        expect = self.staged - self.taken
        if fifo.occupied != expect:
            self.fail(op, f"occupied={fifo.occupied} but ledger says "
                          f"{self.staged} staged - {self.taken} taken "
                          f"= {expect}")

    def on_stage(self, fifo):
        self.checks += 1
        self.staged += 1
        if fifo.occupied > fifo.entries:
            self.fail("stage", f"occupied {fifo.occupied} exceeds "
                               f"{fifo.entries} entries")
        self._conserved("stage", fifo)

    def on_arm(self, fifo, n):
        self.checks += 1
        self.armed += n
        self._conserved("arm", fifo)

    def on_take(self, fifo):
        self.checks += 1
        self.taken += 1
        self._conserved("take", fifo)


class RecvFifoCheck(_Check):
    """Slot conservation of the receive FIFO: reserve → deliver →
    consume → pop, with ``occupied`` always reserved-minus-popped."""

    kind = "fifo"

    def __init__(self, san, name, fifo):
        super().__init__(san, name)
        self.fifo = fifo
        self.reserved = 0
        self.delivered = 0
        self.consumed = 0
        self.popped = 0

    def _conserved(self, op, fifo):
        expect = self.reserved - self.popped
        if fifo.occupied != expect:
            self.fail(op, f"occupied={fifo.occupied} but ledger says "
                          f"{self.reserved} reserved - {self.popped} "
                          f"popped = {expect}")

    def on_reserve(self, fifo):
        self.checks += 1
        self.reserved += 1
        if fifo.occupied > fifo.capacity:
            self.fail("reserve", f"occupied {fifo.occupied} exceeds "
                                 f"capacity {fifo.capacity}")
        self._conserved("reserve", fifo)

    def on_deliver(self, fifo):
        self.checks += 1
        self.delivered += 1
        if self.delivered > self.reserved:
            self.fail("deliver", "deliver without a reserved slot "
                      f"({self.delivered} delivered > {self.reserved} "
                      f"reserved)")

    def on_consume(self, fifo):
        self.checks += 1
        self.consumed += 1
        if self.consumed > self.delivered:
            self.fail("consume", f"consumed {self.consumed} packets but "
                                 f"only {self.delivered} were delivered")
        self._conserved("consume", fifo)

    def on_pop(self, fifo, freed):
        self.checks += 1
        self.popped += freed
        if self.popped > self.consumed:
            self.fail("pop", f"popped {self.popped} slots but only "
                             f"{self.consumed} were consumed")
        self._conserved("pop", fifo)

    def at_quiescence(self):
        """No slot may stay occupied once traffic has drained."""
        self.checks += 1
        fifo = self.fifo
        held = len(fifo.visible) + fifo.pending_pop
        if fifo.occupied != held:
            self.fail("quiescence",
                      f"slot leak: occupied={fifo.occupied} but only "
                      f"{len(fifo.visible)} visible + {fifo.pending_pop} "
                      f"pending pop remain")


# ---------------------------------------------------------------------------
# go-back-N windows (§2.2)
# ---------------------------------------------------------------------------


class SendWindowCheck(_Check):
    """Sender window: credit never exceeded, cumulative acks monotone and
    aligned to transfer-unit boundaries."""

    kind = "window"

    def __init__(self, san, name, win):
        super().__init__(san, name)
        self.win = win
        #: sequence numbers at which a cumulative ack may legally land
        #: (transfer-unit end points; chunks ack as one unit)
        self._ack_points: Set[int] = {win.next_seq}
        self.max_ack = win.base

    def on_allocate(self, win, seq, npackets):
        self.checks += 1
        if win.in_flight > win.window:
            self.fail("allocate",
                      f"in_flight {win.in_flight} exceeds window "
                      f"{win.window}")

    def on_save(self, win, seq, npackets):
        self.checks += 1
        self._ack_points.add(seq + npackets)

    def on_ack(self, win, ack):
        self.checks += 1
        if ack > win.next_seq:
            self.fail("ack", f"cumulative ack {ack} claims sequence "
                             f"numbers never allocated (next_seq "
                             f"{win.next_seq})")
        elif ack not in self._ack_points:
            self.fail("ack", f"cumulative ack {ack} is not unit-aligned "
                             f"(legal points: "
                             f"{sorted(self._ack_points)[:8]}...)")
        if ack < self.max_ack:
            self.fail("ack", f"cumulative ack moved backwards "
                             f"({ack} < {self.max_ack})")
        self.max_ack = max(self.max_ack, ack)
        self._ack_points = {p for p in self._ack_points if p >= ack}


class RecvWindowCheck(_Check):
    """Receiver window: transfer units delivered exactly once, in
    sequence order.  A rolling digest of delivered base sequences feeds
    campaign reports (two runs of one seed must agree)."""

    kind = "window"

    def __init__(self, san, name, win):
        super().__init__(san, name)
        self.win = win
        self.next_expected = win.expected
        self.delivered_units = 0
        self.digest = 0

    def on_deliver(self, win, base_seq, npackets):
        self.checks += 1
        if base_seq != self.next_expected:
            self.fail("deliver",
                      f"transfer unit at seq {base_seq} delivered out of "
                      f"order (expected {self.next_expected}) — "
                      f"exactly-once broken")
        self.next_expected = base_seq + npackets
        self.delivered_units += 1
        self.digest = (self.digest * _DIGEST_MULT + base_seq) & _DIGEST_MASK


# ---------------------------------------------------------------------------
# MPI request lifecycle (§4.1)
# ---------------------------------------------------------------------------


class RequestCheck(_Check):
    """Posted → matched → completed, exactly once; nothing after free.

    State rides on the request itself (``_ck_*`` flags) so one checker
    per device covers every request it creates, and requests that cross
    layers (loopback matches, unexpected-queue consumption) stay tracked.
    """

    kind = "request"

    def _adopt(self, req):
        if req.check is not self:
            req.check = self
            req._ck_posted = False
            req._ck_matched = False
            req._ck_completed = False

    def on_new(self, req):
        self.checks += 1
        self._adopt(req)

    def on_posted(self, req):
        self.checks += 1
        self._adopt(req)
        if req.freed:
            self.fail("posted", f"request #{req.id} posted after free")
        if req._ck_posted:
            self.fail("posted", f"request #{req.id} posted twice")
        req._ck_posted = True

    def on_matched(self, req):
        self.checks += 1
        self._adopt(req)
        if req._ck_completed:
            self.fail("matched",
                      f"request #{req.id} matched after completion")
        if req._ck_matched:
            self.fail("matched", f"request #{req.id} matched twice")
        req._ck_matched = True

    def on_complete(self, req):
        self.checks += 1
        self._adopt(req)
        if req._ck_completed:
            self.fail("complete", f"request #{req.id} completed twice")
        if req.freed:
            self.fail("complete", f"request #{req.id} completed after free")
        if req._ck_posted and not req._ck_matched:
            self.fail("complete",
                      f"request #{req.id} completed while still posted "
                      f"(never matched)")
        req._ck_completed = True

    def on_progress(self, req):
        self.checks += 1
        self._adopt(req)
        if req.freed:
            self.fail("progress",
                      f"wait/test on freed request #{req.id}")

    def on_free(self, req):
        self.checks += 1
        self._adopt(req)
        if req.freed:
            self.fail("free", f"request #{req.id} freed twice")


# ---------------------------------------------------------------------------
# receiver-region allocation (§4.1–4.2)
# ---------------------------------------------------------------------------


class AllocCheck(_Check):
    """Sender-side region allocator: allocations in bounds and disjoint,
    every free returns exactly what was allocated."""

    kind = "alloc"

    def __init__(self, san, name, alloc):
        super().__init__(san, name)
        self.alloc = alloc
        #: offset -> length of live allocations
        self.outstanding: Dict[int, int] = {}
        self.allocated_bytes = 0
        self.freed_bytes = 0

    def on_alloc(self, alloc, offset, nbytes):
        self.checks += 1
        if offset < 0 or offset + nbytes > alloc.capacity:
            self.fail("alloc", f"allocation [{offset}, {offset + nbytes}) "
                               f"outside region of {alloc.capacity} bytes")
        for off, length in self.outstanding.items():
            if offset < off + length and off < offset + nbytes:
                self.fail("alloc",
                          f"allocation [{offset}, {offset + nbytes}) "
                          f"overlaps live [{off}, {off + length})")
        self.outstanding[offset] = nbytes
        self.allocated_bytes += nbytes

    def on_free(self, alloc, offset, nbytes):
        self.checks += 1
        have = self.outstanding.get(offset)
        if have is None:
            self.fail("free", f"free of unallocated offset {offset}")
            return
        if have != nbytes:
            self.fail("free", f"free of {nbytes} bytes at {offset} but "
                              f"{have} were allocated")
        del self.outstanding[offset]
        self.freed_bytes += have

    @property
    def outstanding_bytes(self) -> int:
        return sum(self.outstanding.values())


# ---------------------------------------------------------------------------
# rendezvous grants (RTS/CTS + simulated RDMA)
# ---------------------------------------------------------------------------


class RdmaCheck(_Check):
    """Shadow ledger of one endpoint's incoming rendezvous grants.

    Invariants: a grant is issued at most once per (src, token) and its
    region is in bounds and disjoint from every live grant; RDMA writes
    land only inside an active grant (CTS-before-write) and within its
    bounds; the FIN releases a fully-landed grant exactly once; at
    quiescence no grant is outstanding (region leak) and no sender op is
    still waiting on a CTS.
    """

    kind = "rdma"

    def __init__(self, san, name, am):
        super().__init__(san, name)
        self.am = am
        #: (src, token) -> (addr, total_len) of live grants
        self.live: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.granted = 0
        self.released = 0
        self.bytes_written = 0

    def on_grant(self, am, grant):
        self.checks += 1
        key = (grant.src, grant.token)
        if key in self.live:
            self.fail("grant", f"grant {key} issued twice")
        if grant.total_len <= 0 or grant.addr < 0:
            self.fail("grant", f"grant {key} malformed: "
                               f"[{grant.addr}, +{grant.total_len})")
        lo, hi = grant.addr, grant.addr + grant.total_len
        for k, (a, length) in self.live.items():
            if lo < a + length and a < hi:
                self.fail("grant",
                          f"granted region [{lo}, {hi}) of {key} overlaps "
                          f"live grant [{a}, {a + length}) of {k}")
        self.live[key] = (grant.addr, grant.total_len)
        self.granted += 1

    def on_write(self, am, grant, pkt):
        self.checks += 1
        key = (pkt.src, pkt.op_token)
        if grant is None or key not in self.live:
            self.fail("write",
                      f"RDMA write {key} offset {pkt.offset} with no "
                      f"active grant (CTS-before-write broken)")
            return
        if pkt.offset < 0 or pkt.offset + len(pkt.payload) > grant.total_len:
            self.fail("write",
                      f"RDMA write {key} [{pkt.offset}, "
                      f"{pkt.offset + len(pkt.payload)}) outside granted "
                      f"{grant.total_len} bytes")
        self.bytes_written += len(pkt.payload)

    def on_fin(self, am, grant, pkt):
        self.checks += 1
        key = (pkt.src, pkt.op_token)
        if grant is None:
            self.fail("fin", f"FIN {key} with no active grant "
                             f"(duplicate FIN, or FIN before RTS)")
            return
        if key not in self.live:
            self.fail("fin", f"FIN released grant {key} unknown to the "
                             f"ledger")
            return
        if grant.received != grant.total_len:
            self.fail("fin", f"FIN {key} with only {grant.received} of "
                             f"{grant.total_len} bytes landed")
        del self.live[key]
        self.released += 1

    def at_quiescence(self):
        self.checks += 1
        am = self.am
        if am._rdma_grants:
            keys = sorted(am._rdma_grants)
            self.fail("quiescence",
                      f"region leak: {len(keys)} grant(s) outstanding at "
                      f"quiescence: {keys[:4]}")
        if set(am._rdma_grants) != set(self.live):
            self.fail("quiescence",
                      f"ledger desync: endpoint holds "
                      f"{sorted(am._rdma_grants)[:4]}, ledger "
                      f"{sorted(self.live)[:4]}")
        for op in am._active_sends:
            if op.rdzv and not op.cts_granted:
                self.fail("quiescence",
                          f"op token {op.token} -> node {op.dst} still "
                          f"awaiting CTS at quiescence")


# ---------------------------------------------------------------------------
# event scheduler
# ---------------------------------------------------------------------------


class SchedulerCheck(_Check):
    """Events execute in strictly increasing (time, seq) order; no
    cancelled (tombstoned) timer ever fires; the idle fast-forward only
    ever discards tombstones, in queue order — it can never jump the
    clock over a live entry."""

    kind = "sched"

    def __init__(self, san, name, sim):
        super().__init__(san, name)
        self.sim = sim
        self.last: Tuple[float, int] = (float("-inf"), -1)
        #: (time, seq) of the last entry consumed from the queue front,
        #: executed *or* discarded as a tombstone.  Fast-forward's bulk
        #: skip reports each discarded entry through on_stale, so a skip
        #: that jumped past a live entry surfaces here: the live entry
        #: eventually executes with a key behind this watermark.
        self.last_popped: Tuple[float, int] = (float("-inf"), -1)
        self.cancelled = 0
        self.stale_skipped = 0

    def _note_popped(self, entry, op):
        key = (entry[0], entry[1])
        if key <= self.last_popped:
            self.fail(op,
                      f"queue consumed (t={entry[0]}, seq={entry[1]}) after "
                      f"(t={self.last_popped[0]}, seq={self.last_popped[1]}) "
                      "— fast-forward skipped over a live region")
        self.last_popped = key
        return key

    def on_execute(self, entry):
        self.checks += 1
        key = self._note_popped(entry, "execute")
        if key <= self.last:
            self.fail("execute",
                      f"event (t={entry[0]}, seq={entry[1]}) executed "
                      f"after (t={self.last[0]}, seq={self.last[1]})")
        self.last = key
        fn = entry[2]
        owner = getattr(fn, "__self__", None)
        if type(owner) is TimerHandle and owner._entry is not entry:
            # the handle no longer claims this entry: it was cancelled or
            # rescheduled, so this firing is from a dead generation
            self.fail("execute",
                      f"timer fired from a stale generation at t={entry[0]}")

    def on_stale(self, entry):
        self.checks += 1
        self.stale_skipped += 1
        self._note_popped(entry, "stale")
        if entry[2] is not None:
            self.fail("stale",
                      "fast-forward discarded a live entry as a tombstone")
        if entry[3] != ():
            self.fail("stale", "tombstoned entry still holds callback args")

    def on_cancel(self, entry):
        self.checks += 1
        self.cancelled += 1
        if entry[2] is not None:
            self.fail("cancel", "cancel left the entry un-tombstoned")


# ---------------------------------------------------------------------------
# the sanitizer
# ---------------------------------------------------------------------------

_KINDS = ("fifo", "window", "request", "alloc", "rdma", "sched")


class Sanitizer:
    """Plants checkers across a machine and collects their verdicts.

    :param collect: when True, violations accumulate in ``violations``
        instead of raising — campaign mode, where one bad op must not
        mask the ops after it.  When False (the default, for tests),
        the first violation raises :class:`InvariantViolation`.
    :param only: restrict to a subset of checker kinds (see _KINDS).
    """

    def __init__(self, collect: bool = False,
                 only: Optional[List[str]] = None):
        if only is not None:
            bad = set(only) - set(_KINDS)
            if bad:
                raise ValueError(f"unknown checker kinds {sorted(bad)}")
        self.collect = collect
        self.only = set(only) if only is not None else None
        self.violations: List[InvariantViolation] = []
        self._checkers: List[_Check] = []
        self._machine = None

    # -- reporting ------------------------------------------------------

    def _report(self, violation: InvariantViolation) -> None:
        self.violations.append(violation)
        if not self.collect:
            raise violation

    def _want(self, kind: str) -> bool:
        return self.only is None or kind in self.only

    # -- attachment -----------------------------------------------------

    def watch_sim(self, sim) -> "Sanitizer":
        """Install the scheduler checker alone (engine-level tests)."""
        if self._want("sched"):
            sim.check = SchedulerCheck(self, "sched", sim)
        return self

    def adopt_peer(self, am, dst: int, st) -> None:
        """Checker the four windows of a freshly created peer state.

        Called by ``SPAM._peer`` (via ``am.check``) so peers created
        after attachment are covered from their first packet.
        """
        if not self._want("window"):
            return
        nid = am.node.id
        for ch, win in enumerate(st.send):
            win.check = SendWindowCheck(
                self, f"send_window[{nid}->{dst} ch{ch}]", win)
        for ch, win in enumerate(st.recv):
            win.check = RecvWindowCheck(
                self, f"recv_window[{nid}<-{dst} ch{ch}]", win)

    def attach(self, machine) -> "Sanitizer":
        """Walk the machine planting every applicable checker."""
        self._machine = machine
        self.watch_sim(machine.sim)
        for node in machine.nodes:
            adapter = getattr(node, "adapter", None)
            if adapter is not None and self._want("fifo"):
                adapter.send_fifo.check = SendFifoCheck(
                    self, f"send_fifo[{node.id}]", adapter.send_fifo)
                adapter.recv_fifo.check = RecvFifoCheck(
                    self, f"recv_fifo[{node.id}]", adapter.recv_fifo)
            am = getattr(node, "am", None)
            if am is not None and hasattr(am, "_peers"):
                am.check = self
                for dst, st in am._peers.items():
                    self.adopt_peer(am, dst, st)
                if self._want("rdma") and hasattr(am, "_rdma_grants"):
                    am.rdma_check = RdmaCheck(self, f"rdma[{node.id}]", am)
            mpi = getattr(node, "mpi", None)
            adi = getattr(mpi, "adi", None) if mpi is not None else None
            if adi is not None:
                if self._want("request"):
                    adi.check = RequestCheck(self, f"request[{node.id}]")
                if self._want("alloc"):
                    for peer, alloc in getattr(adi, "_alloc", {}).items():
                        alloc.check = AllocCheck(
                            self, f"alloc[{node.id}->{peer}]", alloc)
        return self

    # -- quiescence -----------------------------------------------------

    def check_quiescent(self) -> None:
        """End-of-campaign conservation checks (machine drained).

        * every receive-FIFO slot is accounted for (no leak);
        * per (sender, receiver) pair, the bytes the sender's allocator
          ledger still holds equal the bytes the receiver legitimately
          owes back: batched frees below the combine threshold, stashed
          hybrid prefixes, and unconsumed unexpected eager messages.

        Split into a span-local half (:meth:`quiescence_local`, reads
        only per-node state, so it can run inside a shard worker) and a
        parent-side pair equation (:meth:`quiescence_pairs`) over the
        collected numbers.
        """
        machine = self._machine
        if machine is None:
            # engine-level sanitizers (watch_sim) have no machine to
            # walk; run whatever quiescence hooks were planted directly
            for c in self._checkers:
                if isinstance(c, (RecvFifoCheck, RdmaCheck)):
                    c.at_quiescence()
            return
        self.quiescence_pairs(self.quiescence_local(0, len(machine.nodes)))

    def quiescence_local(self, lo: int, hi: int) -> Dict:
        """Quiescence work that touches only nodes ``lo..hi-1``: run the
        per-node hooks (receive-FIFO accounting, RDMA grant table) and
        collect the conservation-equation operands — what each sender's
        allocator ledger still holds, and what each receiver legitimately
        owes each sender.  Under shard workers this runs worker-side,
        against live state, and only the numbers travel."""
        from repro.mpi.adi import ADI, _UnexpectedEager

        outstanding: Dict = {}
        owed: Dict = {}
        for node in self._machine.nodes[lo:hi]:
            adapter = getattr(node, "adapter", None)
            if adapter is not None:
                ck = getattr(adapter.recv_fifo, "check", None)
                if isinstance(ck, RecvFifoCheck):
                    ck.at_quiescence()
            am = getattr(node, "am", None)
            rck = getattr(am, "rdma_check", None) if am is not None else None
            if isinstance(rck, RdmaCheck):
                rck.at_quiescence()
            adi = getattr(getattr(node, "mpi", None), "adi", None)
            if not isinstance(adi, ADI):
                continue
            for rid, alloc in adi._alloc.items():
                if alloc.check is not None:
                    outstanding[(node.id, rid)] = \
                        alloc.check.outstanding_bytes
            rid = node.id
            senders = set(adi._frees_owed)
            senders.update(src for (src, _t) in adi._prefixes)
            senders.update(e.src for e in adi.unexpected
                           if isinstance(e, _UnexpectedEager)
                           and e.region_offset is not None)
            for sid in senders:
                o = sum(l for _o, l in adi._frees_owed.get(sid, []))
                o += sum(l for (src, _t), (_o, l)
                         in adi._prefixes.items() if src == sid)
                o += sum(e.total_len for e in adi.unexpected
                         if isinstance(e, _UnexpectedEager)
                         and e.src == sid
                         and e.region_offset is not None)
                owed[(rid, sid)] = o
        return {"outstanding": outstanding, "owed": owed}

    def quiescence_pairs(self, numbers: Dict) -> None:
        """The cross-node half of the conservation check: compare each
        (sender, receiver) pair's collected operands.  A missing ``owed``
        entry means the receiver owes nothing."""
        from repro.mpi.adi import ADI

        machine = self._machine
        if machine is None:
            return
        adis = {}
        for node in machine.nodes:
            adi = getattr(getattr(node, "mpi", None), "adi", None)
            if isinstance(adi, ADI):
                adis[node.id] = adi
        for (sid, rid), held in sorted(numbers["outstanding"].items()):
            if sid not in adis or rid not in adis:
                continue
            ck = adis[sid]._alloc[rid].check
            if ck is None:
                continue
            ck.checks += 1
            owed = numbers["owed"].get((rid, sid), 0)
            if held != owed:
                ck.fail("quiescence",
                        f"conservation broken: sender ledger holds "
                        f"{held} bytes but receiver "
                        f"{rid} owes {owed}")

    def span_report(self, lo: int, hi: int) -> Dict:
        """Check counts, delivered units, and the delivery-order digest
        for the checkers owned by nodes ``lo..hi-1`` (resolved through
        their attachment points, so a worker reports exactly its own
        span).  The engine-level :class:`SchedulerCheck` is excluded —
        it runs on the parent sequencer and is counted there."""
        counts: Dict[str, int] = {}
        units = 0
        digest = 0

        def add(ck) -> None:
            if ck is None:
                return
            counts[ck.kind] = counts.get(ck.kind, 0) + ck.checks

        for node in self._machine.nodes[lo:hi]:
            adapter = getattr(node, "adapter", None)
            if adapter is not None:
                add(getattr(adapter.send_fifo, "check", None))
                add(getattr(adapter.recv_fifo, "check", None))
            am = getattr(node, "am", None)
            if am is not None and hasattr(am, "_peers"):
                add(getattr(am, "rdma_check", None))
                for st in am._peers.values():
                    for win in st.send:
                        add(win.check)
                    for rwin in st.recv:
                        add(rwin.check)
                        ck = rwin.check
                        if isinstance(ck, RecvWindowCheck):
                            units += ck.delivered_units
                            digest ^= ck.digest
            adi = getattr(getattr(node, "mpi", None), "adi", None)
            if adi is not None:
                add(getattr(adi, "check", None))
                for alloc in getattr(adi, "_alloc", {}).values():
                    add(alloc.check)
        return {"counts": counts, "units": units, "digest": digest}

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Check counts per checker kind (campaign report material)."""
        out: Dict[str, int] = {}
        for c in self._checkers:
            out[c.kind] = out.get(c.kind, 0) + c.checks
        return out
