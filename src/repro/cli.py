"""``spam-bench`` — command-line driver for the reproduction experiments.

Usage::

    spam-bench list                     # what can be run
    spam-bench roundtrip                # §2.3 latencies
        [--iters N] [--stats] [--trace-out FILE [--trace-format jsonl]]
        [--report-dir DIR | --no-report]
    spam-bench table2|table3|table4|table6
    spam-bench fig3|fig7|fig8|fig9|fig10|fig11
    spam-bench table5 [--keys 2048]
    spam-bench nas [BT|FT|LU|MG|SP] [--variant mpi-am|mpi-f]
    spam-bench inspect FILE...          # validate + summarize traces/reports
    spam-bench validate FILE...         # schema validation only (CI gate)
    spam-bench profile [--quick] [--period-us 50] [--topk 5]
                                        # metrics sampler + critical-path
                                        # attribution over three workloads
    spam-bench soak --seed 7 --loss 0.05 [--chaos] [--xfer-mode rendezvous]
                    [--workers P]       # chaos campaign vs the reliability layer
    spam-bench perf [--quick] [--check BENCH_simperf.json]
                    [--nodes 64 256 1024] [--workers 2 4]
                                        # simulator events/sec + wheel-vs-heap
                                        # + worker-backend determinism/
                                        # regression gates
    spam-bench check --seeds 20 [--loss 0.01] [--shrink] [--xfer-mode auto]
                     [--workers P]      # randomized conformance campaigns
                                        # under the invariant sanitizer
    spam-bench protocols [--quick]      # eager vs rendezvous vs MPL vs MPI-F
                                        # bandwidth curves + crossover gate

Table-style experiments also leave a machine-readable
``BENCH_<experiment>.json`` report next to the ASCII table (suppress with
``--no-report``); ``roundtrip --trace-out`` dumps the full message-span
trace in Chrome trace-event or JSONL form (see docs/observability.md).

Everything is also runnable through pytest (``pytest benchmarks/``); this
driver is for quick interactive looks at single experiments.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.report import fmt_series, fmt_table, paper_vs_measured


def _write_report(args, experiment, entries, obs=None, extra=None) -> None:
    if getattr(args, "no_report", True):
        return
    from repro.bench.benchjson import make_report, write_report

    report = make_report(experiment, entries, obs=obs, extra=extra)
    try:
        path = write_report(report, getattr(args, "report_dir", "."))
    except OSError as e:
        raise SystemExit(f"spam-bench: cannot write report: {e}")
    print(f"report: {path}")


def cmd_roundtrip(args) -> None:
    from repro.bench.pingpong import (
        am_roundtrip_observed,
        mpl_roundtrip,
        raw_roundtrip,
        stage_attribution,
    )

    iters = getattr(args, "iters", 100)
    am_mean, obs = am_roundtrip_observed(1, iters)
    entries = [("raw ping-pong", 47.0, raw_roundtrip(iters)),
               ("SP AM one word", 51.0, am_mean),
               ("IBM MPL", 88.0, mpl_roundtrip(iters))]
    print(paper_vs_measured("S2.3 round-trip latency (us)", entries))
    att = stage_attribution(obs)
    if getattr(args, "stats", False):
        rows = []
        for kind in ("REQUEST", "REPLY"):
            for stage, mean in att["stages"].get(kind, {}).items():
                rows.append((kind.lower(), stage, round(mean, 2)))
        rows.append(("sum", "request+reply", round(att["stage_sum_us"], 2)))
        rows.append(("measured", "mean rtt", round(am_mean, 2)))
        print(fmt_table("AM stage attribution (us)",
                        ["kind", "stage", "mean"], rows))
        print(fmt_table("am.rtt_us histogram",
                        ["stat", "value"],
                        [(k, round(v, 2)) for k, v in
                         obs.hist("am.rtt_us").snapshot().items()]))
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.obs import write_chrome_trace, write_jsonl

        fmt = getattr(args, "trace_format", "chrome")
        try:
            if fmt == "jsonl":
                write_jsonl(obs, trace_out)
            else:
                write_chrome_trace(obs, trace_out)
        except OSError as e:
            raise SystemExit(f"spam-bench: cannot write trace: {e}")
        print(f"trace: {trace_out} ({fmt})")
    _write_report(args, "roundtrip", entries, obs=obs,
                  extra={"iterations": iters, "stage_attribution": att})


def cmd_table2(args) -> None:
    from repro.bench.callcosts import (
        PAPER_REPLY,
        PAPER_REQUEST,
        reply_call_cost,
        request_call_cost,
    )

    rows = []
    entries = []
    for n in (1, 2, 3, 4):
        for name, paper, measured in (
            (f"am_request_{n}", PAPER_REQUEST[n], request_call_cost(n)),
            (f"am_reply_{n}", PAPER_REPLY[n], reply_call_cost(n)),
        ):
            rows.append((name, paper, round(measured, 2)))
            entries.append((name, paper, measured))
    print(fmt_table("Table 2: AM call costs (us)",
                    ["call", "paper", "measured"], rows))
    _write_report(args, "table2", entries)


def cmd_table3(args) -> None:
    from repro.bench.bandwidth import n_half, r_inf, sweep
    from repro.bench.pingpong import am_roundtrip, mpl_roundtrip

    sizes = [128, 256, 512, 1024, 4096, 16384, 262144, 1048576]
    am = sweep("am_store_async", sizes)
    mpl = sweep("mpl_send", sizes)
    entries = [("AM round trip (us)", 51.0, am_roundtrip(1, 100)),
               ("MPL round trip (us)", 88.0, mpl_roundtrip(100)),
               ("AM r_inf (MB/s)", 34.3, r_inf(am)),
               ("MPL r_inf (MB/s)", 34.6, r_inf(mpl)),
               ("AM n1/2 async (B)", 260, n_half(am, 34.3)),
               ("MPL n1/2 async (B)", 2040, n_half(mpl, 34.6))]
    print(paper_vs_measured("Table 3: SP AM vs IBM MPL", entries))
    _write_report(args, "table3", entries)


def cmd_table4(args) -> None:
    from repro.bench.machines import TABLE4_PAPER, table4_rows

    rows = []
    entries = []
    for r in table4_rows():
        p = TABLE4_PAPER[r.name]
        rows.append((p["label"], p["rtt"], round(r.rtt_us, 1),
                     p["bw"], round(r.bandwidth_mbs, 1)))
        entries.append((f"{p['label']} rtt (us)", p["rtt"], r.rtt_us))
        entries.append((f"{p['label']} bw (MB/s)", p["bw"], r.bandwidth_mbs))
    print(fmt_table("Table 4 (paper/measured)",
                    ["machine", "rtt(p)", "rtt(m)", "bw(p)", "bw(m)"], rows))
    _write_report(args, "table4", entries)


def cmd_fig3(_args) -> None:
    from repro.bench.bandwidth import MODES, sweep

    sizes = [64, 256, 1024, 8064, 65536, 1048576]
    print(fmt_series("Figure 3: bulk-transfer bandwidth",
                     {m: sweep(m, sizes) for m in MODES}))


def cmd_fig7(_args) -> None:
    from repro.bench.figures import PROTOCOL_CONFIGS, protocol_bandwidth

    sizes = [512, 1024, 2048, 4096, 8192, 16384]
    print(fmt_series(
        "Figure 7: protocol bandwidth",
        {p: [(n, protocol_bandwidth(p, n)) for n in sizes]
         for p in PROTOCOL_CONFIGS}))


def _fig_mpi(kind: str, what: str) -> None:
    from repro.bench.figures import MPI_VARIANTS, mpi_bandwidth, mpi_ring_latency

    if what == "latency":
        sizes = [4, 64, 256, 1024, 4096, 16384]
        fn = lambda v, n: mpi_ring_latency(v, n, kind)  # noqa: E731
        unit = "us/hop"
    else:
        sizes = [1024, 4096, 8192, 16384, 65536, 262144]
        fn = lambda v, n: mpi_bandwidth(v, n, kind)  # noqa: E731
        unit = "MB/s"
    print(fmt_series(f"MPI {what}, {kind}",
                     {v: [(n, fn(v, n)) for n in sizes]
                      for v in MPI_VARIANTS}, ylabel=unit))


def cmd_table5(args) -> None:
    from repro.apps.matmul import run_matmul
    from repro.apps.radix_sort import run_radix_sort
    from repro.apps.sample_sort import run_sample_sort
    from repro.apps.workloads import STACKS

    keys = args.keys
    rows = []
    for stack in ("sp-am", "sp-mpl"):
        for tag, (n, b) in (("mm128", (4, 128)), ("mm16", (16, 16))):
            r = run_matmul(stack, nprocs=8, n=n, b=b)
            rows.append((tag, stack, round(r.elapsed_s, 3),
                         round(r.cpu_s, 3), round(r.net_s, 3)))
    for variant in ("small", "bulk"):
        for stack in STACKS:
            r = run_sample_sort(stack, nprocs=8, keys_per_proc=keys,
                                variant=variant)
            rows.append((f"smpsort-{variant}", stack,
                         round(r.elapsed_s, 3), round(r.cpu_s, 3),
                         round(r.net_s, 3)))
    for variant in ("small", "large"):
        for stack in ("sp-am", "sp-mpl"):
            r = run_radix_sort(stack, nprocs=8, keys_per_proc=keys,
                               variant=variant)
            rows.append((f"rdxsort-{variant}", stack,
                         round(r.elapsed_s, 3), round(r.cpu_s, 3),
                         round(r.net_s, 3)))
    print(fmt_table(f"Table 5 / Fig 4 ({keys} keys/proc; seconds)",
                    ["bench", "stack", "total", "cpu", "net"], rows))


def cmd_nas(args) -> None:
    from repro.apps.nas import NAS_KERNELS

    kernels = [args.kernel.upper()] if args.kernel else sorted(NAS_KERNELS)
    rows = []
    for name in kernels:
        am = NAS_KERNELS[name]("mpi-am")
        f = NAS_KERNELS[name]("mpi-f")
        rows.append((name, round(f.elapsed_s, 4), round(am.elapsed_s, 4),
                     round(am.elapsed_s / f.elapsed_s, 2),
                     am.verified and f.verified))
    print(fmt_table("Table 6: NAS kernels (16 thin nodes; seconds)",
                    ["bench", "MPI-F", "MPI-AM", "ratio", "ok"], rows))


def cmd_profile(args) -> int:
    from repro.bench.profile import (
        COVERAGE_FLOOR,
        render_dashboard,
        run_profile,
    )

    data = run_profile(quick=args.quick, period_us=args.period_us,
                       topk=args.topk)
    print(render_dashboard(data))
    if args.trace_out:
        from repro.obs import write_chrome_trace

        try:
            write_chrome_trace(data["obs"], args.trace_out)
        except OSError as e:
            raise SystemExit(f"spam-bench: cannot write trace: {e}")
        print(f"trace: {args.trace_out} (chrome, with counter tracks)")
    _write_report(args, "obsprofile", data["entries"], obs=data["obs"],
                  extra={"profile": data["profile"]})
    if not data["ok"]:
        cov = data["profile"]["workloads"]["pingpong"]["coverage"]
        print(f"FAIL: attribution coverage "
              f"{cov['coverage'] * 100.0:.1f}% below the "
              f"{COVERAGE_FLOOR * 100.0:.0f}% floor, or the soak leg "
              f"saw violations")
        return 1
    return 0


def cmd_validate(args) -> int:
    from repro.obs.validate import main as validate_main

    return validate_main(args.files)


def cmd_soak(args) -> int:
    from repro.faults import run_soak
    from repro.obs.critpath import bottleneck_verdict, critpath_rollup

    # the gauge sampler reads machine-wide state, so worker-mode runs
    # disable it regardless of --sample-period-us
    sample = (args.sample_period_us
              if args.sample_period_us > 0 and args.workers == 1 else None)
    try:
        result = run_soak(
            seed=args.seed, loss=args.loss, nodes=args.nodes,
            pingpong=args.pingpong, chaos=args.chaos,
            compare_clean=not args.no_clean,
            sample_period_us=sample,
            xfer_mode=args.xfer_mode,
            workers=args.workers,
        )
    except ValueError as e:
        # e.g. --chaos with --workers: adapter-site fault kinds draw RNG
        # inside the workers and cannot replay deterministically
        raise SystemExit(f"spam-bench: {e}")
    print("\n".join(result.summary_lines()))
    critpath = critpath_rollup(result.obs)
    verdict = bottleneck_verdict(critpath, result.obs.metrics)
    if verdict["stage"] is not None:
        line = (f"  critical path: {verdict['stage']} dominates "
                f"({verdict['share'] * 100.0:.1f}% of attributed time)")
        if verdict.get("gauge"):
            line += f", gauge {verdict['gauge']} p95={verdict['gauge_p95']:.3g}"
        print(line)
    if args.trace_out:
        from repro.obs import write_jsonl

        try:
            write_jsonl(result.obs, args.trace_out)
        except OSError as e:
            raise SystemExit(f"spam-bench: cannot write trace: {e}")
        print(f"trace: {args.trace_out} (jsonl)")
    entries = [
        ("faults injected", None, float(result.total_injected)),
        ("retransmissions", None, result.counters.get("retransmissions", 0.0)),
        ("nacks sent", None, result.counters.get("nacks_sent", 0.0)),
        ("stall nacks sent", None,
         result.counters.get("stall_nacks_sent", 0.0)),
        ("keepalives sent", None,
         result.counters.get("keepalives_sent", 0.0)),
        ("elapsed (us)", None, result.elapsed_us),
        ("violations", None, float(len(result.violations))),
    ]
    if result.clean_elapsed_us is not None:
        entries.append(("clean elapsed (us)", None, result.clean_elapsed_us))
    _write_report(args, "soak", entries, obs=result.obs, extra={
        "seed": result.seed, "loss": result.loss, "nodes": result.nodes,
        "chaos": result.chaos, "xfer_mode": result.xfer_mode,
        "injected_counts": result.injected_counts,
        "violations": result.violations,
        "critpath": critpath, "bottleneck": verdict,
    })
    return 1 if result.violations else 0


def cmd_check(args) -> int:
    from repro.check import run_campaign, shrink_failure

    failures = []
    results = []
    for k in range(args.seeds):
        seed = args.seed_base + k
        # every third campaign runs under packet loss so the sanitizer
        # also sees the retransmission/go-back-N paths
        loss = args.loss if k % 3 == 2 else 0.0
        r = run_campaign(seed, nodes=args.nodes, nops=args.ops, loss=loss,
                         xfer_mode=args.xfer_mode, workers=args.workers)
        results.append(r)
        print(r.summary())
        for v in r.violations:
            print(f"  violation: {v}")
        if not r.ok:
            failures.append(r)
            if args.shrink:
                s = shrink_failure(seed, nodes=args.nodes, nops=args.ops,
                                   loss=loss, xfer_mode=args.xfer_mode)
                if s.reproduced:
                    print(f"  shrunk to {len(s.minimal)}/{s.original_nops} "
                          f"ops in {s.runs} runs:")
                    for op in s.minimal:
                        print(f"    {op}")
                else:
                    print("  (failure did not reproduce during shrinking)")
    total_checks = sum(sum(r.checks.values()) for r in results)
    print(f"{len(results)} campaigns, {len(failures)} failing, "
          f"{total_checks} invariant checks")
    entries = [
        ("campaigns", None, float(len(results))),
        ("failing campaigns", None, float(len(failures))),
        ("invariant checks", None, float(total_checks)),
        ("delivered units", None,
         float(sum(r.delivered_units for r in results))),
    ]
    _write_report(args, "check", entries, extra={
        "seed_base": args.seed_base, "seeds": args.seeds,
        "nodes": args.nodes, "ops": args.ops, "loss": args.loss,
        "xfer_mode": args.xfer_mode,
        "campaigns": [{
            "seed": r.seed, "loss": r.loss, "ok": r.ok,
            "checks": r.checks, "delivered_units": r.delivered_units,
            "digest": r.digest, "violations": r.violations,
            "critpath": r.critpath,
        } for r in results],
    })
    return 1 if failures else 0


def cmd_perf(args) -> int:
    from repro.bench.perf import check_regression, report_entries, run_perf

    data = run_perf(quick=args.quick, repeat=args.repeat,
                    xfer_mode=args.xfer_mode, scaling_nodes=args.nodes,
                    workers=args.workers)
    rows = []
    for name, per in data["workloads"].items():
        w = per["wheel"]
        rows.append((name, w["events"], w["stale_skipped"], w["wall_s"],
                     w["adj_eps"], per.get("ratio_wheel_over_heap", "-")))
    print(fmt_table("simulator core (wheel scheduler)",
                    ["workload", "events", "stale", "wall(s)",
                     "adj ev/s", "w/h ratio"], rows))
    det = data["determinism"]
    for name, d in det.items():
        if name == "identical":
            continue
        verdict = "identical" if d["identical"] else "MISMATCH"
        if name == "soak":
            print(f"determinism soak: sequential==sharded {verdict} "
                  f"(digest {d['sequential_digest'][:12]}.., "
                  f"t={d['sequential_sim_us']:.3f}us)")
        else:
            print(f"determinism {name}: wheel==heap==sharded {verdict} "
                  f"(digest {d['wheel_digest'][:12]}.., "
                  f"t={d['wheel_sim_us']:.3f}us)")
    rc = 0
    if not det["identical"]:
        print("FAIL: the schedulers executed different event orders")
        rc = 1
    dw = data.get("determinism_workers")
    if dw is not None:
        verdict = "identical" if dw["identical"] else "MISMATCH"
        print(f"determinism workers={dw['workers']}: "
              f"workers==sharded==heap {verdict}")
        if not dw["identical"]:
            print("FAIL: the worker backend executed a different "
                  "event order")
            rc = 1
    scaling = data.get("scaling")
    if scaling is not None:
        rows = []
        for key, per in scaling.items():
            if key == "identical":
                continue
            sh = per["sharded"]
            rows.append((per["nodes"], per["iterations"], sh["events"],
                         sh["rounds"], sh["adj_eps"],
                         per["ratio_sharded_over_sequential"],
                         "yes" if per["identical"] else "NO"))
        print(fmt_table("sharded scaling (ring all-to-neighbor)",
                        ["nodes", "iters", "events", "rounds",
                         "sharded ev/s", "sh/seq ratio", "identical"],
                        rows))
        wrows = []
        for key, per in scaling.items():
            if key == "identical":
                continue
            for p, wper in sorted(per.get("workers", {}).items(),
                                  key=lambda kv: int(kv[0])):
                wrows.append((per["nodes"], p, wper["adj_eps"],
                              wper["ratio_workers_over_sharded"],
                              "yes" if wper["identical"] else "NO"))
        if wrows:
            print(fmt_table("worker-process scaling (same ring)",
                            ["nodes", "workers", "adj ev/s",
                             "w/sh ratio", "identical"], wrows))
        if not scaling["identical"]:
            print("FAIL: sharded scaling run diverged from the "
                  "sequential reference")
            rc = 1
    _write_report(args, "simperf", report_entries(data), extra=data)
    if args.check:
        import json

        with open(args.check) as f:
            committed = json.load(f)
        problems = check_regression(data, committed, tolerance=args.tolerance)
        for p in problems:
            print(f"regression: {p}")
        if problems:
            rc = 1
        else:
            print(f"regression check vs {args.check}: OK")
    return rc


def cmd_protocols(args) -> int:
    from repro.bench.protocols import report_entries, run_protocols

    data = run_protocols(quick=args.quick)
    print(fmt_series("protocol bandwidth (eager vs rendezvous vs MPL "
                     "vs MPI-F)", data["curves"]))
    eager = dict(data["latency_us"]["eager"])
    rows = [(n, eager[n], us, round(us / eager[n], 2))
            for n, us in data["latency_us"]["rendezvous"]]
    print(fmt_table("single-transfer latency (us)",
                    ["bytes", "eager", "rendezvous", "ratio"], rows))
    for p in data["crossover_problems"]:
        print(f"crossover: {p}")
    verdict = "OK" if data["crossover_ok"] else "FAIL"
    print(f"crossover gate (rendezvous >= eager from "
          f"{data['crossover_factor']}x {data['crossover_bytes']} B): "
          f"{verdict}")
    _write_report(args, "protocols", report_entries(data), extra=data)
    return 0 if data["crossover_ok"] else 1


def _inspect_chrome(path: str) -> None:
    import json

    from repro.obs.hist import Histogram

    with open(path) as f:
        obj = json.load(f)
    hists = {}
    for ev in obj["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        h = hists.get(ev["name"])
        if h is None:
            h = hists[ev["name"]] = Histogram(ev["name"])
        h.observe(ev["dur"])
    rows = [(name, h.count, round(h.mean(), 2),
             round(h.percentile(95), 2), round(h.max(), 2))
            for name, h in sorted(hists.items())]
    print(fmt_table("trace events (dur, us)",
                    ["event", "count", "mean", "p95", "max"], rows))


def _inspect_jsonl(path: str) -> None:
    from repro.obs import read_jsonl
    from repro.obs.hist import Histogram

    meta, spans = read_jsonl(path)
    print(f"  {len(spans)} spans, {len(meta['phases'])} phase spans, "
          f"{meta.get('dropped_spans', 0)} dropped")
    hists = {}
    for s in spans:
        for stage, dur in s.stage_durations().items():
            key = f"{stage}:{s.kind}"
            h = hists.get(key)
            if h is None:
                h = hists[key] = Histogram(key)
            h.observe(dur)
    rows = [(name, h.count, round(h.mean(), 2),
             round(h.percentile(95), 2), round(h.max(), 2))
            for name, h in sorted(hists.items())]
    print(fmt_table("span stages (us)",
                    ["stage", "count", "mean", "p95", "max"], rows))


def _inspect_report(path: str) -> None:
    import json

    with open(path) as f:
        obj = json.load(f)
    rows = [(r["name"],
             "-" if r.get("paper") is None else r["paper"],
             r["measured"],
             "-" if r.get("dev_pct") is None else f"{r['dev_pct']}%")
            for r in obj["results"]]
    print(fmt_table(f"{obj['experiment']} ({obj.get('generated', '?')})",
                    ["name", "paper", "measured", "dev"], rows))


def cmd_inspect(args) -> int:
    from repro.obs.schema import sniff_and_validate

    failures = 0
    for path in args.files:
        try:
            res = sniff_and_validate(path)
        except OSError as e:
            print(f"{path}: [FAIL] {e}")
            failures += 1
            continue
        ok = not res["problems"]
        print(f"{path}: {res['format']} [{'OK' if ok else 'FAIL'}]")
        for problem in res["problems"]:
            print(f"  - {problem}")
        if not ok:
            failures += 1
            continue
        {"chrome-trace": _inspect_chrome,
         "jsonl": _inspect_jsonl,
         "bench-report": _inspect_report}[res["format"]](path)
    return 1 if failures else 0


def _positive_int(s: str) -> int:
    v = int(s)
    if v < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return v


def _add_xfer_mode(p) -> None:
    from repro.am.constants import XFER_MODES

    p.add_argument("--xfer-mode", choices=XFER_MODES, default="eager",
                   help="AM large-message strategy: eager chunks, "
                        "RTS/CTS rendezvous, or auto crossover "
                        "(default eager)")


def _add_report_opts(p) -> None:
    p.add_argument("--report-dir", default=".", metavar="DIR",
                   help="where to write BENCH_<experiment>.json")
    p.add_argument("--no-report", action="store_true",
                   help="skip the JSON report")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="spam-bench",
        description="Reproduction experiments for 'Low-Latency "
                    "Communication on the IBM RISC System/6000 SP'")
    sub = parser.add_subparsers(dest="cmd")
    for name in ("list", "fig3", "fig7", "fig8", "fig9", "fig10", "fig11"):
        sub.add_parser(name)
    pr = sub.add_parser("roundtrip")
    pr.add_argument("--iters", type=_positive_int, default=100)
    pr.add_argument("--stats", action="store_true",
                    help="print stage attribution + rtt histogram")
    pr.add_argument("--trace-out", metavar="FILE", default=None,
                    help="dump the AM ping-pong message trace")
    pr.add_argument("--trace-format", choices=("chrome", "jsonl"),
                    default="chrome")
    _add_report_opts(pr)
    for name in ("table2", "table3", "table4"):
        _add_report_opts(sub.add_parser(name))
    p5 = sub.add_parser("table5")
    p5.add_argument("--keys", type=int, default=2048)
    sub.add_parser("table6")
    pn = sub.add_parser("nas")
    pn.add_argument("kernel", nargs="?", default=None)
    pi = sub.add_parser("inspect")
    pi.add_argument("files", nargs="+", metavar="FILE")
    pv = sub.add_parser(
        "validate", help="schema-validate traces/reports (exit 1 on any "
                         "failure; the CI gate)")
    pv.add_argument("files", nargs="+", metavar="FILE")
    pf = sub.add_parser(
        "profile", help="metrics sampler + critical-path attribution "
                        "over pingpong/bulk/soak workloads")
    pf.add_argument("--quick", action="store_true",
                    help="reduced workloads (CI smoke)")
    pf.add_argument("--period-us", type=float, default=50.0,
                    help="gauge sampling period in simulated us "
                         "(default 50)")
    pf.add_argument("--topk", type=_positive_int, default=5,
                    help="slowest-message exemplars per workload")
    pf.add_argument("--trace-out", metavar="FILE", default=None,
                    help="dump the ping-pong Chrome trace with counter "
                         "tracks")
    _add_report_opts(pf)
    pp = sub.add_parser(
        "perf", help="simulator-core events/sec suite + "
                     "wheel/heap/sharded determinism check")
    pp.add_argument("--quick", action="store_true",
                    help="reduced workloads (CI smoke)")
    pp.add_argument("--repeat", type=_positive_int, default=None,
                    help="best-of-N timing (default: 3 quick, 1 full)")
    pp.add_argument("--check", metavar="FILE", default=None,
                    help="fail if the wheel/heap eps ratio regresses vs "
                         "this committed BENCH_simperf.json")
    pp.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed ratio drop for --check (default 0.2)")
    pp.add_argument("--nodes", type=_positive_int, nargs="+", default=None,
                    metavar="N",
                    help="sharded scaling section: ring workload at these "
                         "node counts, sharded vs sequential (e.g. "
                         "--nodes 64 256 1024)")
    pp.add_argument("--workers", type=_positive_int, nargs="+", default=None,
                    metavar="P",
                    help="worker-process counts: adds workers=P columns "
                         "to the scaling section and runs the workers "
                         "digest gate at the first count (e.g. "
                         "--workers 2 4)")
    _add_xfer_mode(pp)
    _add_report_opts(pp)
    ps = sub.add_parser(
        "soak", help="chaos soak: full AM workload under injected faults")
    ps.add_argument("--seed", type=int, default=7,
                    help="fault-plan seed (campaigns replay exactly)")
    ps.add_argument("--loss", type=float, default=0.05,
                    help="fault rate per packet (0..1)")
    ps.add_argument("--nodes", type=_positive_int, default=2)
    ps.add_argument("--pingpong", type=_positive_int, default=24,
                    help="ping-pong messages per rank")
    ps.add_argument("--chaos", action="store_true",
                    help="all six fault kinds, not just drops")
    ps.add_argument("--no-clean", action="store_true",
                    help="skip the fault-free reference run "
                         "(disables the recovery-time bound)")
    ps.add_argument("--trace-out", metavar="FILE", default=None,
                    help="dump the message-span trace (JSONL)")
    ps.add_argument("--sample-period-us", type=float, default=50.0,
                    metavar="US",
                    help="periodic gauge sampler on the lossy run; the "
                         "unsequenced lane keeps it digest-neutral "
                         "(default 50, 0 disables; forced off when "
                         "--workers > 1)")
    ps.add_argument("--workers", type=_positive_int, default=1, metavar="P",
                    help="run the lossy campaign on the sharded engine "
                         "with P worker processes (bit-identical to "
                         "sequential; drop-family faults only)")
    _add_xfer_mode(ps)
    _add_report_opts(ps)
    pc = sub.add_parser(
        "check", help="seeded randomized MPI/AM campaigns under the "
                      "protocol invariant sanitizer")
    pc.add_argument("--seeds", type=_positive_int, default=20,
                    help="number of campaigns (default 20)")
    pc.add_argument("--seed-base", type=int, default=100,
                    help="first campaign seed (default 100)")
    pc.add_argument("--nodes", type=_positive_int, default=4)
    pc.add_argument("--ops", type=_positive_int, default=24,
                    help="random ops per campaign")
    pc.add_argument("--loss", type=float, default=0.01,
                    help="packet-loss rate applied to every third "
                         "campaign (default 0.01)")
    pc.add_argument("--shrink", action="store_true",
                    help="minimize any failing campaign to its smallest "
                         "failing op list")
    pc.add_argument("--workers", type=_positive_int, default=1, metavar="P",
                    help="run each campaign on the sharded engine with P "
                         "worker processes (verdicts and digests are "
                         "engine-independent; shrinking stays sequential)")
    _add_xfer_mode(pc)
    _add_report_opts(pc)
    pb = sub.add_parser(
        "protocols", help="eager vs rendezvous vs MPL vs MPI-F bandwidth "
                          "curves + the rendezvous crossover gate")
    pb.add_argument("--quick", action="store_true",
                    help="reduced size sweep (CI smoke)")
    _add_report_opts(pb)
    args = parser.parse_args(argv)

    if args.cmd in (None, "list"):
        parser.print_help()
        return 0
    if args.cmd == "inspect":
        return cmd_inspect(args)
    if args.cmd == "validate":
        return cmd_validate(args)
    if args.cmd == "profile":
        return cmd_profile(args)
    if args.cmd == "soak":
        return cmd_soak(args)
    if args.cmd == "perf":
        return cmd_perf(args)
    if args.cmd == "check":
        return cmd_check(args)
    if args.cmd == "protocols":
        return cmd_protocols(args)
    dispatch = {
        "roundtrip": cmd_roundtrip,
        "table2": cmd_table2,
        "table3": cmd_table3,
        "table4": cmd_table4,
        "table5": cmd_table5,
        "table6": lambda a: cmd_nas(argparse.Namespace(kernel=None)),
        "nas": cmd_nas,
        "fig3": cmd_fig3,
        "fig7": cmd_fig7,
        "fig8": lambda a: _fig_mpi("sp-thin", "latency"),
        "fig9": lambda a: _fig_mpi("sp-thin", "bandwidth"),
        "fig10": lambda a: _fig_mpi("sp-wide", "latency"),
        "fig11": lambda a: _fig_mpi("sp-wide", "bandwidth"),
    }
    dispatch[args.cmd](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
