"""``spam-bench`` — command-line driver for the reproduction experiments.

Usage::

    spam-bench list                     # what can be run
    spam-bench roundtrip                # §2.3 latencies
    spam-bench table2|table3|table4|table6
    spam-bench fig3|fig7|fig8|fig9|fig10|fig11
    spam-bench table5 [--keys 2048]
    spam-bench nas [BT|FT|LU|MG|SP] [--variant mpi-am|mpi-f]

Everything is also runnable through pytest (``pytest benchmarks/``); this
driver is for quick interactive looks at single experiments.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.report import fmt_series, fmt_table, paper_vs_measured


def cmd_roundtrip(_args) -> None:
    from repro.bench.pingpong import am_roundtrip, mpl_roundtrip, raw_roundtrip

    print(paper_vs_measured(
        "S2.3 round-trip latency (us)",
        [("raw ping-pong", 47.0, raw_roundtrip(100)),
         ("SP AM one word", 51.0, am_roundtrip(1, 100)),
         ("IBM MPL", 88.0, mpl_roundtrip(100))]))


def cmd_table2(_args) -> None:
    from repro.bench.callcosts import (
        PAPER_REPLY,
        PAPER_REQUEST,
        reply_call_cost,
        request_call_cost,
    )

    rows = []
    for n in (1, 2, 3, 4):
        rows.append((f"am_request_{n}", PAPER_REQUEST[n],
                     round(request_call_cost(n), 2)))
        rows.append((f"am_reply_{n}", PAPER_REPLY[n],
                     round(reply_call_cost(n), 2)))
    print(fmt_table("Table 2: AM call costs (us)",
                    ["call", "paper", "measured"], rows))


def cmd_table3(_args) -> None:
    from repro.bench.bandwidth import n_half, r_inf, sweep
    from repro.bench.pingpong import am_roundtrip, mpl_roundtrip

    sizes = [128, 256, 512, 1024, 4096, 16384, 262144, 1048576]
    am = sweep("am_store_async", sizes)
    mpl = sweep("mpl_send", sizes)
    print(paper_vs_measured(
        "Table 3: SP AM vs IBM MPL",
        [("AM round trip (us)", 51.0, am_roundtrip(1, 100)),
         ("MPL round trip (us)", 88.0, mpl_roundtrip(100)),
         ("AM r_inf (MB/s)", 34.3, r_inf(am)),
         ("MPL r_inf (MB/s)", 34.6, r_inf(mpl)),
         ("AM n1/2 async (B)", 260, n_half(am, 34.3)),
         ("MPL n1/2 async (B)", 2040, n_half(mpl, 34.6))]))


def cmd_table4(_args) -> None:
    from repro.bench.machines import TABLE4_PAPER, table4_rows

    rows = []
    for r in table4_rows():
        p = TABLE4_PAPER[r.name]
        rows.append((p["label"], p["rtt"], round(r.rtt_us, 1),
                     p["bw"], round(r.bandwidth_mbs, 1)))
    print(fmt_table("Table 4 (paper/measured)",
                    ["machine", "rtt(p)", "rtt(m)", "bw(p)", "bw(m)"], rows))


def cmd_fig3(_args) -> None:
    from repro.bench.bandwidth import MODES, sweep

    sizes = [64, 256, 1024, 8064, 65536, 1048576]
    print(fmt_series("Figure 3: bulk-transfer bandwidth",
                     {m: sweep(m, sizes) for m in MODES}))


def cmd_fig7(_args) -> None:
    from repro.bench.figures import PROTOCOL_CONFIGS, protocol_bandwidth

    sizes = [512, 1024, 2048, 4096, 8192, 16384]
    print(fmt_series(
        "Figure 7: protocol bandwidth",
        {p: [(n, protocol_bandwidth(p, n)) for n in sizes]
         for p in PROTOCOL_CONFIGS}))


def _fig_mpi(kind: str, what: str) -> None:
    from repro.bench.figures import MPI_VARIANTS, mpi_bandwidth, mpi_ring_latency

    if what == "latency":
        sizes = [4, 64, 256, 1024, 4096, 16384]
        fn = lambda v, n: mpi_ring_latency(v, n, kind)  # noqa: E731
        unit = "us/hop"
    else:
        sizes = [1024, 4096, 8192, 16384, 65536, 262144]
        fn = lambda v, n: mpi_bandwidth(v, n, kind)  # noqa: E731
        unit = "MB/s"
    print(fmt_series(f"MPI {what}, {kind}",
                     {v: [(n, fn(v, n)) for n in sizes]
                      for v in MPI_VARIANTS}, ylabel=unit))


def cmd_table5(args) -> None:
    from repro.apps.matmul import run_matmul
    from repro.apps.radix_sort import run_radix_sort
    from repro.apps.sample_sort import run_sample_sort
    from repro.apps.workloads import STACKS

    keys = args.keys
    rows = []
    for stack in ("sp-am", "sp-mpl"):
        for tag, (n, b) in (("mm128", (4, 128)), ("mm16", (16, 16))):
            r = run_matmul(stack, nprocs=8, n=n, b=b)
            rows.append((tag, stack, round(r.elapsed_s, 3),
                         round(r.cpu_s, 3), round(r.net_s, 3)))
    for variant in ("small", "bulk"):
        for stack in STACKS:
            r = run_sample_sort(stack, nprocs=8, keys_per_proc=keys,
                                variant=variant)
            rows.append((f"smpsort-{variant}", stack,
                         round(r.elapsed_s, 3), round(r.cpu_s, 3),
                         round(r.net_s, 3)))
    for variant in ("small", "large"):
        for stack in ("sp-am", "sp-mpl"):
            r = run_radix_sort(stack, nprocs=8, keys_per_proc=keys,
                               variant=variant)
            rows.append((f"rdxsort-{variant}", stack,
                         round(r.elapsed_s, 3), round(r.cpu_s, 3),
                         round(r.net_s, 3)))
    print(fmt_table(f"Table 5 / Fig 4 ({keys} keys/proc; seconds)",
                    ["bench", "stack", "total", "cpu", "net"], rows))


def cmd_nas(args) -> None:
    from repro.apps.nas import NAS_KERNELS

    kernels = [args.kernel.upper()] if args.kernel else sorted(NAS_KERNELS)
    rows = []
    for name in kernels:
        am = NAS_KERNELS[name]("mpi-am")
        f = NAS_KERNELS[name]("mpi-f")
        rows.append((name, round(f.elapsed_s, 4), round(am.elapsed_s, 4),
                     round(am.elapsed_s / f.elapsed_s, 2),
                     am.verified and f.verified))
    print(fmt_table("Table 6: NAS kernels (16 thin nodes; seconds)",
                    ["bench", "MPI-F", "MPI-AM", "ratio", "ok"], rows))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="spam-bench",
        description="Reproduction experiments for 'Low-Latency "
                    "Communication on the IBM RISC System/6000 SP'")
    sub = parser.add_subparsers(dest="cmd")
    for name in ("list", "roundtrip", "table2", "table3", "table4",
                 "fig3", "fig7", "fig8", "fig9", "fig10", "fig11"):
        sub.add_parser(name)
    p5 = sub.add_parser("table5")
    p5.add_argument("--keys", type=int, default=2048)
    p6 = sub.add_parser("table6")
    pn = sub.add_parser("nas")
    pn.add_argument("kernel", nargs="?", default=None)
    args = parser.parse_args(argv)

    if args.cmd in (None, "list"):
        parser.print_help()
        return 0
    dispatch = {
        "roundtrip": cmd_roundtrip,
        "table2": cmd_table2,
        "table3": cmd_table3,
        "table4": cmd_table4,
        "table5": cmd_table5,
        "table6": lambda a: cmd_nas(argparse.Namespace(kernel=None)),
        "nas": cmd_nas,
        "fig3": cmd_fig3,
        "fig7": cmd_fig7,
        "fig8": lambda a: _fig_mpi("sp-thin", "latency"),
        "fig9": lambda a: _fig_mpi("sp-thin", "bandwidth"),
        "fig10": lambda a: _fig_mpi("sp-wide", "latency"),
        "fig11": lambda a: _fig_mpi("sp-wide", "bandwidth"),
    }
    dispatch[args.cmd](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
