"""Deterministic fault injection: seeded chaos for the reliability layer.

§2.2 claims SP AM is reliable over a lossy fabric — sliding windows,
cumulative acks, NACK-triggered go-back-N, keep-alive probes.  This
package exists to *prove* it under sustained, adversarial conditions:

* :class:`FaultPlan` / :class:`FaultRule` — a declarative, seeded
  description of what to break: drops, duplicates, reorders, payload
  corruption in the switch fabric, forced receive-FIFO overflow, and
  send-DMA stalls, each with per-kind rates, sequence- or trace_id-
  targeted triggers, and bounded budgets;
* :class:`FaultInjector` — the deterministic executor the hardware
  models consult (``switch.faults`` / ``adapter.faults``), which also
  records every injection so tests can reconcile them against the
  observability layer's fault events;
* :func:`install_faults` — wire a plan into a built machine;
* :func:`run_soak` — the chaos soak harness behind ``spam-bench soak``
  and ``tests/integration/test_chaos_soak.py``: ping-pong, bulk
  transfer, and a Split-C workload under loss, asserting exactly-once
  in-order delivery, window invariants, bounded recovery time, and
  clean fault accounting.

See ``docs/faults.md`` for usage and ``docs/protocol.md`` for the
failure model each fault kind exercises.
"""

from repro.faults.injector import FaultAction, FaultInjector, InjectedFault, install_faults
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultRule
from repro.faults.soak import SoakResult, run_soak

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "FaultAction",
    "FaultInjector",
    "InjectedFault",
    "install_faults",
    "SoakResult",
    "run_soak",
]
