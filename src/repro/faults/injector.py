"""The deterministic fault executor the hardware models consult.

The :class:`FaultInjector` is planted on the switch (``switch.faults``)
and every adapter (``adapter.faults``) by :func:`install_faults`.  The
hardware asks it, per packet:

* :meth:`at_switch` — should the fabric drop / duplicate / reorder /
  corrupt this packet?  Returns a :class:`FaultAction` (duck-typed, so
  the hardware imports nothing from this package);
* :meth:`at_rx` — should the receive FIFO pretend to be full?
* :meth:`tx_stall_us` — how long should the send-DMA service stall?

Every injection is appended to :attr:`FaultInjector.injected` *and*
reported to the observability hub (``obs.fault``), so a campaign can be
reconciled event-for-event: the soak harness asserts that each injected
fault shows up in the obs log with the victim packet's trace_id.

Randomness comes from one ``random.Random(plan.seed)`` consumed in
packet-arrival order; since the simulator is deterministic, so is every
campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults.plan import SWITCH_KINDS, FaultPlan, FaultRule
from repro.hardware.packet import Packet


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired (the injector's own ledger)."""

    kind: str
    t: float
    packet_kind: str
    trace_id: int
    seq: int
    src: int
    dst: int


@dataclass(frozen=True)
class FaultAction:
    """What the switch should do to the current packet.

    ``packet`` carries the replacement clone for ``corrupt`` and the
    extra copy for ``duplicate``; ``delay_us`` the reorder hold.
    """

    kind: str
    delay_us: float = 0.0
    packet: Optional[Packet] = None


def _corrupted(pkt: Packet) -> Packet:
    """A clone with bits flipped but the original checksum — the receive
    adapter's CRC check must reject it."""
    bad = pkt.clone()
    if bad.payload:
        flipped = bytearray(bad.payload)
        flipped[0] ^= 0x40
        bad.payload = bytes(flipped)
    else:
        # header corruption: flip a handler bit (covered by the CRC)
        bad.handler ^= 0x1
    return bad


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically; records firings."""

    def __init__(self, plan: FaultPlan, obs=None):
        self.plan = plan
        self.obs = obs
        self._rng = random.Random(plan.seed)
        self.injected: List[InjectedFault] = []
        #: matching packets seen per rule (drives ``after``)
        self._seen: Dict[int, int] = {i: 0 for i in range(len(plan.rules))}
        #: firings per rule (drives per-rule budgets)
        self._fired: Dict[int, int] = {i: 0 for i in range(len(plan.rules))}
        #: rules pre-split by injection site (FaultPlan is frozen, so the
        #: split can't go stale); the sites run per packet and most plans
        #: use one or two kinds, so scanning the full rule list each time
        #: would mostly be skips
        rules = list(enumerate(plan.rules))
        self._switch_rules = [(i, r) for i, r in rules
                              if r.kind in SWITCH_KINDS]
        self._rx_rules = [(i, r) for i, r in rules if r.kind == "rx_overflow"]
        self._tx_rules = [(i, r) for i, r in rules if r.kind == "tx_stall"]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return len(self.injected)

    @property
    def budget_left(self) -> Optional[int]:
        if self.plan.budget is None:
            return None
        return self.plan.budget - self.total_injected

    def counts(self) -> Dict[str, int]:
        """Injections per fault kind."""
        out: Dict[str, int] = {}
        for f in self.injected:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def _record(self, rule_idx: int, rule: FaultRule, pkt: Packet,
                now: float) -> None:
        self._fired[rule_idx] += 1
        self.injected.append(InjectedFault(
            kind=rule.kind, t=now,
            packet_kind=getattr(pkt.kind, "name", str(pkt.kind)),
            trace_id=pkt.trace_id, seq=pkt.seq, src=pkt.src, dst=pkt.dst))
        if self.obs is not None:
            self.obs.fault(pkt, rule.kind, now)

    # ------------------------------------------------------------------
    # rule evaluation
    # ------------------------------------------------------------------

    def _matches(self, rule: FaultRule, pkt: Packet) -> bool:
        if rule.packet_kinds is not None and pkt.kind not in rule.packet_kinds:
            return False
        if rule.seqs is not None and pkt.seq not in rule.seqs:
            return False
        if rule.trace_ids is not None and pkt.trace_id not in rule.trace_ids:
            return False
        return True

    def _try_fire(self, rule_idx: int, rule: FaultRule, pkt: Packet,
                  now: float) -> bool:
        """Match → after-skip → budget → rate draw; True if it fires."""
        if not self._matches(rule, pkt):
            return False
        self._seen[rule_idx] += 1
        if self._seen[rule_idx] <= rule.after:
            return False
        if rule.budget is not None and self._fired[rule_idx] >= rule.budget:
            return False
        if self.budget_left is not None and self.budget_left <= 0:
            return False
        if rule.rate >= 1.0:
            fire = True
        elif rule.rate <= 0.0:
            fire = False
        else:
            fire = self._rng.random() < rule.rate
        if fire:
            self._record(rule_idx, rule, pkt, now)
        return fire

    # ------------------------------------------------------------------
    # injection sites
    # ------------------------------------------------------------------

    def at_switch(self, pkt: Packet, now: float) -> Optional[FaultAction]:
        """Fabric faults; at most one per packet, first firing rule wins."""
        for i, rule in self._switch_rules:
            if not self._try_fire(i, rule, pkt, now):
                continue
            if rule.kind == "drop":
                return FaultAction("drop")
            if rule.kind == "reorder":
                # jitter the hold so two held packets don't re-collide
                hold = rule.delay_us * (0.5 + self._rng.random())
                return FaultAction("reorder", delay_us=hold)
            if rule.kind == "duplicate":
                return FaultAction("duplicate", delay_us=rule.delay_us,
                                   packet=pkt.clone())
            return FaultAction("corrupt", packet=_corrupted(pkt))
        return None

    def at_rx(self, pkt: Packet, now: float) -> bool:
        """Forced receive-FIFO overflow on the destination adapter."""
        for i, rule in self._rx_rules:
            if self._try_fire(i, rule, pkt, now):
                return True
        return False

    def tx_stall_us(self, pkt: Packet, now: float) -> float:
        """Extra send-DMA service time on the source adapter."""
        for i, rule in self._tx_rules:
            if self._try_fire(i, rule, pkt, now):
                return rule.delay_us
        return 0.0


def install_faults(machine, plan: FaultPlan) -> FaultInjector:
    """Wire ``plan`` into a built machine (switch + every adapter).

    Uses the machine's observability hub if one is attached, so every
    injection doubles as an obs fault event.
    """
    if machine.switch is None:
        raise ValueError("fault injection needs an SP machine (switch fabric)")
    inj = FaultInjector(plan, obs=machine.obs)
    machine.switch.faults = inj
    for node in machine.nodes:
        if node.adapter is not None:
            node.adapter.faults = inj
    return inj
