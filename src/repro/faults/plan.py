"""Declarative fault plans: *what* to break, seeded so runs replay.

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultRule`.  Each rule names one fault kind, where it applies,
how often it fires, and how many times it may fire; the plan may also
carry a global budget across all rules.  Plans are frozen dataclasses:
the same plan against the same (deterministic) simulation injects the
same faults at the same packets, which is what makes chaos campaigns
debuggable and CI-able.

Fault kinds and their injection sites:

=============  ==========================  =====================================
kind           site                        effect
=============  ==========================  =====================================
``drop``       switch fabric               packet vanishes
``duplicate``  switch fabric               a clone is delivered as well
``reorder``    switch fabric               delivery held ``delay_us`` so later
                                           packets overtake
``corrupt``    switch fabric               payload/header bits flipped on a
                                           clone; the receive adapter's CRC
                                           check drops it (like the TB2's
                                           hardware CRC)
``rx_overflow``  adapter receive path      forced receive-FIFO overflow drop
``tx_stall``   adapter send-DMA path       TX service stalls ``delay_us``
=============  ==========================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

#: every fault kind a rule may name, in documentation order
FAULT_KINDS: Tuple[str, ...] = (
    "drop", "duplicate", "reorder", "corrupt", "rx_overflow", "tx_stall",
)

#: kinds evaluated in the switch fabric
SWITCH_KINDS: FrozenSet[str] = frozenset(
    {"drop", "duplicate", "reorder", "corrupt"})


@dataclass(frozen=True)
class FaultRule:
    """One kind of fault with its trigger and bounds.

    A rule *matches* a packet when every given filter passes
    (``packet_kinds`` by :class:`~repro.hardware.packet.PacketKind`,
    ``seqs`` by sequence number, ``trace_ids`` by observability id) and
    at least ``after`` earlier matching packets have been seen.  A
    matching packet then *fires* with probability ``rate`` (1.0 =
    always, making seq/trace-targeted rules deterministic triggers),
    until the rule's ``budget`` — and the plan's — is spent.
    """

    kind: str
    rate: float = 1.0
    budget: Optional[int] = None
    packet_kinds: Optional[frozenset] = None
    seqs: Optional[frozenset] = None
    trace_ids: Optional[frozenset] = None
    #: skip the first ``after`` matching packets (count-targeted faults:
    #: "drop the 5th STORE_DATA" = after=4, budget=1)
    after: int = 0
    #: reorder hold / TX stall length, microseconds
    delay_us: float = 80.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"negative budget {self.budget}")
        if self.after < 0:
            raise ValueError(f"negative after {self.after}")
        if self.delay_us < 0:
            raise ValueError(f"negative delay_us {self.delay_us}")


@dataclass(frozen=True)
class FaultPlan:
    """A seed, an ordered rule set, and an overall fault budget."""

    seed: int
    rules: Tuple[FaultRule, ...] = ()
    #: cap on total injections across every rule (None = unbounded)
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"negative plan budget {self.budget}")
        object.__setattr__(self, "rules", tuple(self.rules))

    @staticmethod
    def loss(seed: int, rate: float, budget: Optional[int] = None,
             packet_kinds: Optional[frozenset] = None) -> "FaultPlan":
        """Uniform fabric loss at ``rate`` — the classic campaign."""
        return FaultPlan(seed=seed, budget=budget, rules=(
            FaultRule(kind="drop", rate=rate, packet_kinds=packet_kinds),))

    @staticmethod
    def chaos(seed: int, rate: float, budget: Optional[int] = None,
              delay_us: float = 80.0) -> "FaultPlan":
        """Every fault kind at once, each at ``rate`` — the soak's
        adversarial mix (corruption slightly rarer: each corrupt costs a
        full go-back-N round)."""
        return FaultPlan(seed=seed, budget=budget, rules=(
            FaultRule(kind="drop", rate=rate),
            FaultRule(kind="duplicate", rate=rate),
            FaultRule(kind="reorder", rate=rate, delay_us=delay_us),
            FaultRule(kind="corrupt", rate=rate / 2),
            FaultRule(kind="rx_overflow", rate=rate / 2),
            FaultRule(kind="tx_stall", rate=rate / 2, delay_us=delay_us),
        ))
