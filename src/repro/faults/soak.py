"""The chaos soak harness: a full AM workload under injected faults.

``run_soak`` builds a fresh SP machine, attaches the observability hub,
SP AM, and the Split-C runtime, installs a :class:`FaultPlan`, and drives
three workload phases on every node:

1. **ping-pong** — sequenced request/reply traffic (every message number
   is recorded on both sides, so exactly-once in-order delivery is
   checked literally, not statistically);
2. **bulk transfer** — a blocking ``am_store`` spanning multiple chunks
   plus a partial tail, read back with ``am_get`` and compared
   byte-for-byte;
3. **Split-C** — barrier, allreduce, and a split-phase ``put_bulk`` +
   ``sync``, exercising the runtime's handler traffic under loss.

After the phases, every rank serves the network until the whole machine
quiesces: all send windows drained, no partial chunk assemblies, no
deferred replies, nothing host-visible left unread.  The run then
reconciles three ledgers against each other:

* the workload's own records (delivery order, memory contents),
* the protocol state machines (window invariants fail loudly via
  :class:`~repro.am.window.MidChunkAckError` and friends),
* the fault ledgers: every fault the injector fired must appear in the
  observability hub's fault-event log with the victim's trace_id, and
  every lossy kind must have a matching ``packet_dropped`` event.

Recovery time is bounded by running the identical workload once with no
faults installed and requiring the lossy run to finish within a fixed
multiple of the clean run plus a per-fault allowance.

Everything — the simulator, the workload, and the injector — is
deterministic, so a failing ``(seed, loss)`` pair is a reproducer, not a
flake.  ``spam-bench soak`` and ``tests/integration/test_chaos_soak.py``
are thin wrappers over :func:`run_soak`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional

from repro.am import attach_spam
from repro.am.constants import CHUNK_BYTES
from repro.faults.injector import InjectedFault, install_faults
from repro.faults.plan import FaultPlan
from repro.hardware.machine import build_sp_machine
from repro.obs.core import Observatory
from repro.sim import ShardedSimulator, Simulator
from repro.sim.errors import SimulationError
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import attach_splitc

#: fault kinds that destroy the packet and must therefore also show up
#: as a ``packet_dropped`` observability event
_LOSSY_KINDS = frozenset({"drop", "corrupt", "rx_overflow"})

#: Split-C put_bulk payload in phase 3 (small on purpose: the phase
#: exercises handler traffic, not bandwidth)
_SPLITC_BYTES = 1024


# ---------------------------------------------------------------------------
# workload handlers (one shared HandlerTable per machine keeps ids aligned)
# ---------------------------------------------------------------------------

def _h_ping(token, src, i):
    node = token.am.node
    node.soak_pings.setdefault(src, []).append(i)
    yield from token.reply_2(_h_pong, node.id, i)


def _h_pong(token, src, i):
    token.am.node.soak_pongs.setdefault(src, []).append(i)


@lru_cache(maxsize=64)
def _pattern_period(rank: int) -> bytes:
    # (17*rank + 3*j + 7) % 251 depends only on j % 251 (gcd(3, 251) = 1),
    # so one 251-byte period per rank covers any length by repetition
    return bytes((17 * rank + 3 * j + 7) % 251 for j in range(251))


def _pattern(rank: int, nbytes: int) -> bytes:
    """Deterministic per-rank payload (verifiable byte-for-byte)."""
    return (_pattern_period(rank) * (nbytes // 251 + 1))[:nbytes]


# ---------------------------------------------------------------------------
# result
# ---------------------------------------------------------------------------

@dataclass
class SoakResult:
    """Everything one soak campaign produced."""

    seed: int
    loss: float
    nodes: int
    chaos: bool
    #: AM large-message strategy the workload's bulk phase used
    xfer_mode: str
    pingpong: int
    bulk_bytes: int
    #: simulated microseconds the lossy run took
    elapsed_us: float
    #: the identical workload with no faults installed (None if skipped)
    clean_elapsed_us: Optional[float]
    #: elapsed_us must stay below this (None when no clean run)
    recovery_bound_us: Optional[float]
    #: the injector's ledger, in firing order
    injected: List[InjectedFault]
    #: injections per fault kind
    injected_counts: Dict[str, int]
    #: every broken promise, human-readable; empty means the run passed
    violations: List[str]
    #: merged counter snapshot of the lossy run
    counters: Dict[str, float]
    #: the lossy run's observability hub (for trace/report export)
    obs: Observatory = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_injected(self) -> int:
        return len(self.injected)

    def summary_lines(self) -> List[str]:
        """The ``spam-bench soak`` console summary."""
        c = self.counters
        lines = [
            f"soak seed={self.seed} loss={self.loss} nodes={self.nodes}"
            f" chaos={self.chaos} mode={self.xfer_mode}",
            f"  workload: {self.pingpong} ping-pongs/rank,"
            f" {self.bulk_bytes}B bulk/rank, Split-C phase",
            f"  injected: {self.total_injected} faults "
            + (str(dict(sorted(self.injected_counts.items())))
               if self.injected_counts else "{}"),
            f"  recovery: retransmissions={c.get('retransmissions', 0):.0f}"
            f" nacks={c.get('nacks_sent', 0):.0f}"
            f" stall_nacks={c.get('stall_nacks_sent', 0):.0f}"
            f" keepalives={c.get('keepalives_sent', 0):.0f}",
            f"  drops: fabric={c.get('packets_dropped_fault', 0):.0f}"
            f" crc={c.get('rx_dropped_corrupt', 0):.0f}"
            f" overflow={c.get('rx_dropped_overflow', 0):.0f}"
            f" duplicates={c.get('duplicates_dropped', 0):.0f}",
        ]
        if self.clean_elapsed_us is not None:
            lines.append(
                f"  elapsed: {self.elapsed_us:.0f} us"
                f" (clean {self.clean_elapsed_us:.0f} us,"
                f" bound {self.recovery_bound_us:.0f} us)")
        else:
            lines.append(f"  elapsed: {self.elapsed_us:.0f} us")
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  violations: none")
        return lines


# ---------------------------------------------------------------------------
# one campaign (shared by the clean and lossy runs)
# ---------------------------------------------------------------------------

class _Campaign:
    """One machine + workload execution, with or without faults."""

    def __init__(self, nodes: int, pingpong: int, bulk_bytes: int,
                 plan: Optional[FaultPlan], limit: float,
                 idle_fast_forward: bool = True,
                 sample_period_us: Optional[float] = None,
                 xfer_mode: str = "eager", sharding: bool = False):
        self.nodes = nodes
        self.pingpong = pingpong
        self.bulk_bytes = bulk_bytes
        self.limit = limit
        self.violations: List[str] = []
        if sharding:
            self.sim = ShardedSimulator(idle_fast_forward=idle_fast_forward)
        else:
            self.sim = Simulator(idle_fast_forward=idle_fast_forward)
        self.machine = build_sp_machine(self.sim, nodes)
        self.obs = Observatory().attach(self.machine)
        if sample_period_us is not None:
            # gauge sampler for critical-path reports; its timers run on
            # the unsequenced lane so the event-order digests don't see
            # them, but as live entries they still defeat _quiesced's
            # live_pending_count()==0 shortcut — the explicit per-layer
            # drain checks below still decide quiescence correctly
            self.obs.start_sampler(period_us=sample_period_us)
        self.ams = attach_spam(self.machine, xfer_mode=xfer_mode)
        self.rts = attach_splitc(self.machine)
        self.injector = (install_faults(self.machine, plan)
                         if plan is not None else None)
        self._finished = [0]
        # per-rank buffer addresses, decided up front so every rank knows
        # its peer's layout
        self.addrs: List[Dict[str, int]] = []
        for node in self.machine.nodes:
            node.soak_pings = {}
            node.soak_pongs = {}
            self.addrs.append({
                "bulk_src": node.memory.alloc(bulk_bytes),
                "bulk_dst": node.memory.alloc(bulk_bytes),
                "bulk_back": node.memory.alloc(bulk_bytes),
                "sc_src": node.memory.alloc(_SPLITC_BYTES),
                "sc_dst": node.memory.alloc(_SPLITC_BYTES),
            })

    # -- the per-rank program ------------------------------------------------

    def _quiesced(self) -> bool:
        """Global drain predicate: nothing anywhere awaits recovery."""
        if self.sim.live_pending_count() == 0:
            # nothing will ever run again: tombstoned keep-alive timers
            # may still sit in the queue, but they represent no recovery
            # work — the raw pending count would keep this drain loop
            # spinning on a machine that can no longer change
            return True
        if self.machine.switch.in_flight > 0:
            # the fabric still holds traffic no FIFO shows yet; a rank
            # exiting its drain loop now would strand the arrival unread
            return False
        for am in self.ams:
            if am._active_sends or am._deferred_replies:
                return False
            if am._rdma_grants or am._deferred_cts or am._rdma_ack_due:
                return False
            adapter = am.adapter
            if adapter.send_fifo.occupied > 0:
                return False
            rf = adapter.recv_fifo
            visible = len(rf.visible)
            if visible > 0:
                return False
            if rf.occupied != visible + rf.pending_pop:
                return False  # a packet is mid-RX-DMA
            # unacked/partial-assembly checks open-coded: this predicate
            # runs on every idle poll, and the window properties just wrap
            # these two fields
            for peer in am._peers.values():
                s_req, s_rep = peer.send
                if s_req._saved or s_rep._saved:
                    return False
                r_req, r_rep = peer.recv
                if r_req._assembly is not None or r_rep._assembly is not None:
                    return False
        return True

    def _program(self, rank: int):
        am = self.ams[rank]
        rt = self.rts[rank]
        node = self.machine.nodes[rank]
        peer = (rank + 1) % self.nodes

        # phase 1: ping-pong around the ring, one in flight per rank
        for i in range(self.pingpong):
            yield from am.request_2(peer, _h_ping, rank, i)
            while len(node.soak_pongs.get(peer, ())) < i + 1:
                yield from am._wait_progress()

        # phase 2: multi-chunk blocking store, then read it back
        node.memory.write(self.addrs[rank]["bulk_src"],
                          _pattern(rank, self.bulk_bytes))
        yield from am.store(peer, self.addrs[rank]["bulk_src"],
                            self.addrs[peer]["bulk_dst"], self.bulk_bytes)
        yield from am.get(peer, self.addrs[peer]["bulk_dst"],
                          self.addrs[rank]["bulk_back"], self.bulk_bytes)

        # phase 3: Split-C — barrier, allreduce, split-phase put
        yield from rt.barrier()
        total = yield from rt.allreduce_int(rank + 1)
        expect = self.nodes * (self.nodes + 1) // 2
        if total != expect:
            self.violations.append(
                f"rank {rank}: allreduce returned {total}, expected {expect}")
        node.memory.write(self.addrs[rank]["sc_src"],
                          _pattern(rank + 100, _SPLITC_BYTES))
        yield from rt.put_bulk(GlobalPtr(peer, self.addrs[peer]["sc_dst"]),
                               self.addrs[rank]["sc_src"], _SPLITC_BYTES)
        yield from rt.sync()
        yield from rt.barrier()

        # drain: serve the network until the whole machine is quiet (the
        # keep-alive machinery inside _wait_progress keeps recovery going)
        self._finished[0] += 1
        while self._finished[0] < self.nodes or not self._quiesced():
            yield from am._wait_progress()

    # -- execution + checks ---------------------------------------------------

    def run(self) -> float:
        procs = [self.sim.spawn(self._program(r), name=f"soak{r}", shard=r)
                 for r in range(self.nodes)]
        try:
            self.sim.run_until_processes_done(procs, limit=self.limit)
        except SimulationError as exc:
            # includes SimTimeoutError (unbounded recovery → deadlock)
            self.violations.append(f"{type(exc).__name__}: {exc}")
        except (ValueError, AssertionError) as exc:
            # window invariant violations (MidChunkAckError &c.) and
            # accounting assertions surface here
            self.violations.append(f"{type(exc).__name__}: {exc}")
        self._check_delivery()
        self._check_final_state()
        return self.sim.now

    def _check_delivery(self) -> None:
        expect = list(range(self.pingpong))
        for rank in range(self.nodes):
            node = self.machine.nodes[rank]
            peer = (rank + 1) % self.nodes
            prev = (rank - 1) % self.nodes
            got = node.soak_pings.get(prev, [])
            if got != expect:
                self.violations.append(
                    f"rank {rank}: pings from {prev} delivered as "
                    f"{_abbrev(got)}, expected 0..{self.pingpong - 1} "
                    f"exactly once in order")
            got = node.soak_pongs.get(peer, [])
            if got != expect:
                self.violations.append(
                    f"rank {rank}: pongs from {peer} delivered as "
                    f"{_abbrev(got)}, expected 0..{self.pingpong - 1} "
                    f"exactly once in order")
            want = _pattern(rank, self.bulk_bytes)
            peer_mem = self.machine.nodes[peer].memory
            if peer_mem.read(self.addrs[peer]["bulk_dst"],
                             self.bulk_bytes) != want:
                self.violations.append(
                    f"rank {rank}: bulk store to {peer} corrupted")
            if node.memory.read(self.addrs[rank]["bulk_back"],
                                self.bulk_bytes) != want:
                self.violations.append(
                    f"rank {rank}: bulk get readback from {peer} corrupted")
            sc_want = _pattern(rank + 100, _SPLITC_BYTES)
            if peer_mem.read(self.addrs[peer]["sc_dst"],
                             _SPLITC_BYTES) != sc_want:
                self.violations.append(
                    f"rank {rank}: Split-C put_bulk to {peer} corrupted")

    def _check_final_state(self) -> None:
        for rank, am in enumerate(self.ams):
            for dst, peer in am._peers.items():
                for ch, win in enumerate(peer.send):
                    if win.has_unacked:
                        self.violations.append(
                            f"rank {rank}: send window to {dst} ch{ch} "
                            f"still holds {win.in_flight} unacked packets")
                for ch, rwin in enumerate(peer.recv):
                    if rwin.has_partial_assembly:
                        self.violations.append(
                            f"rank {rank}: chunk from {dst} ch{ch} "
                            f"never completed reassembly")
            if am._active_sends:
                self.violations.append(
                    f"rank {rank}: {len(am._active_sends)} bulk ops "
                    f"never completed")

    def reconcile_faults(self) -> None:
        """Every injected fault must be visible in the obs ledger."""
        if self.injector is None:
            return
        events = self.obs.fault_events
        by_kind: Dict[str, List[Dict]] = {}
        for ev in events:
            by_kind.setdefault(ev["kind"], []).append(ev)
        for f in self.injector.injected:
            if f.trace_id <= 0:
                self.violations.append(
                    f"injected {f.kind} at t={f.t:.1f} hit an untraced "
                    f"packet (no trace_id)")
                continue
            if not any(ev["trace_id"] == f.trace_id and ev["t"] == f.t
                       for ev in by_kind.get(f.kind, ())):
                self.violations.append(
                    f"injected {f.kind} on trace {f.trace_id} at "
                    f"t={f.t:.1f} missing from obs fault events")
            if f.kind in _LOSSY_KINDS and not any(
                    ev["trace_id"] == f.trace_id
                    for ev in by_kind.get("packet_dropped", ())):
                self.violations.append(
                    f"injected {f.kind} on trace {f.trace_id} has no "
                    f"matching packet_dropped event")


def _merge_counters(snapshot_counters: Dict[str, float]) -> Dict[str, float]:
    """Sum per-registry counters (``am[0].retransmissions`` …) by name."""
    merged: Dict[str, float] = {}
    for key, value in snapshot_counters.items():
        name = key.rsplit(".", 1)[-1]
        merged[name] = merged.get(name, 0.0) + value
    return merged


def _abbrev(seq: List[int], limit: int = 12) -> str:
    if len(seq) <= limit:
        return str(seq)
    return f"[{', '.join(map(str, seq[:limit]))}, ...] ({len(seq)} items)"


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run_soak(
    seed: int = 7,
    loss: float = 0.01,
    nodes: int = 2,
    pingpong: int = 24,
    bulk_bytes: int = 2 * CHUNK_BYTES + 123,
    chaos: bool = False,
    plan: Optional[FaultPlan] = None,
    compare_clean: bool = True,
    limit: float = 5e7,
    idle_fast_forward: bool = True,
    sim_check: Optional[object] = None,
    sample_period_us: Optional[float] = 50.0,
    xfer_mode: str = "eager",
    sharding: bool = False,
) -> SoakResult:
    """Run the soak workload under a fault plan; return the evidence.

    ``plan`` overrides the generated one; otherwise ``chaos`` selects
    :meth:`FaultPlan.chaos` (all six kinds) over :meth:`FaultPlan.loss`
    (uniform fabric drops) at rate ``loss`` with seed ``seed``.  With
    ``compare_clean`` the identical workload also runs fault-free to
    bound recovery time.  ``idle_fast_forward`` and ``sim_check`` reach
    the lossy campaign's engine — the perf suite uses them to compare
    fast-forward on/off walls and event-order digests on this workload.
    ``sample_period_us`` starts the periodic gauge sampler on the lossy
    campaign (default on at 50 us: the sampler's timers run on the
    unsequenced lane, so they no longer perturb the perf suite's
    event-order digests; pass ``None`` to disable).  ``xfer_mode``
    selects the AM large-message strategy for the bulk phase.
    ``sharding`` runs the lossy campaign on the
    :class:`~repro.sim.shard.ShardedSimulator` (one shard per node,
    round barriers at the switch latency) — digest-identical to the
    sequential engine by construction, and checked by the perf suite.
    """
    if plan is None:
        plan = (FaultPlan.chaos(seed, loss) if chaos
                else FaultPlan.loss(seed, loss))

    clean_elapsed = None
    recovery_bound = None
    if compare_clean:
        clean = _Campaign(nodes, pingpong, bulk_bytes, plan=None, limit=limit,
                          xfer_mode=xfer_mode)
        clean_elapsed = clean.run()
        if clean.violations:
            # the workload must be sound before faults mean anything
            raise AssertionError(
                "fault-free soak run failed: " + "; ".join(clean.violations))

    lossy = _Campaign(nodes, pingpong, bulk_bytes, plan=plan, limit=limit,
                      idle_fast_forward=idle_fast_forward,
                      sample_period_us=sample_period_us,
                      xfer_mode=xfer_mode, sharding=sharding)
    if sim_check is not None:
        lossy.sim.check = sim_check
    elapsed = lossy.run()
    lossy.reconcile_faults()

    injected = list(lossy.injector.injected)
    counts = lossy.injector.counts()
    if clean_elapsed is not None:
        # bounded recovery: a generous but real bound — each fault may
        # cost a few keep-alive/stall-NACK rounds, and compounding losses
        # stretch the whole run, never past a fixed multiple
        recovery_bound = clean_elapsed * 4.0 + 3_000.0 * len(injected) + 200_000.0
        if elapsed > recovery_bound:
            lossy.violations.append(
                f"recovery unbounded: lossy run took {elapsed:.0f} us, "
                f"bound was {recovery_bound:.0f} us "
                f"(clean {clean_elapsed:.0f} us, {len(injected)} faults)")

    return SoakResult(
        seed=seed, loss=loss, nodes=nodes, chaos=chaos,
        xfer_mode=xfer_mode,
        pingpong=pingpong, bulk_bytes=bulk_bytes,
        elapsed_us=elapsed, clean_elapsed_us=clean_elapsed,
        recovery_bound_us=recovery_bound,
        injected=injected, injected_counts=counts,
        violations=lossy.violations,
        counters=_merge_counters(lossy.obs.snapshot()["counters"]),
        obs=lossy.obs,
    )
