"""The chaos soak harness: a full AM workload under injected faults.

``run_soak`` builds a fresh SP machine, attaches the observability hub,
SP AM, and the Split-C runtime, installs a :class:`FaultPlan`, and drives
three workload phases on every node:

1. **ping-pong** — sequenced request/reply traffic (every message number
   is recorded on both sides, so exactly-once in-order delivery is
   checked literally, not statistically);
2. **bulk transfer** — a blocking ``am_store`` spanning multiple chunks
   plus a partial tail, read back with ``am_get`` and compared
   byte-for-byte;
3. **Split-C** — barrier, allreduce, and a split-phase ``put_bulk`` +
   ``sync``, exercising the runtime's handler traffic under loss.

After the phases, every rank broadcasts a done marker, then serves the
network until every rank has announced done and its *own* state has been
quiet for a grace window that outlasts the keep-alive machinery: send
windows drained, no partial chunk assemblies, no deferred replies,
nothing host-visible left unread, no packet arrivals.  The predicate is
deliberately node-local, so the identical drain logic runs inside shard
worker processes (``workers > 1``).  The run then
reconciles three ledgers against each other:

* the workload's own records (delivery order, memory contents),
* the protocol state machines (window invariants fail loudly via
  :class:`~repro.am.window.MidChunkAckError` and friends),
* the fault ledgers: every fault the injector fired must appear in the
  observability hub's fault-event log with the victim's trace_id, and
  every lossy kind must have a matching ``packet_dropped`` event.

Recovery time is bounded by running the identical workload once with no
faults installed and requiring the lossy run to finish within a fixed
multiple of the clean run plus a per-fault allowance.

Everything — the simulator, the workload, and the injector — is
deterministic, so a failing ``(seed, loss)`` pair is a reproducer, not a
flake.  ``spam-bench soak`` and ``tests/integration/test_chaos_soak.py``
are thin wrappers over :func:`run_soak`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional

from repro.am import attach_spam
from repro.am.constants import CHUNK_BYTES
from repro.faults.injector import InjectedFault, install_faults
from repro.faults.plan import FaultPlan
from repro.hardware.machine import build_sp_machine
from repro.obs.core import Observatory
from repro.sim import ShardedSimulator, Simulator
from repro.sim.errors import SimulationError
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import attach_splitc

#: fault kinds that destroy the packet and must therefore also show up
#: as a ``packet_dropped`` observability event
_LOSSY_KINDS = frozenset({"drop", "corrupt", "rx_overflow"})

#: fault kinds whose injection point is the *adapter* (per-node code that
#: runs worker-side under ``workers > 1``); their RNG draws and ledger
#: writes would land in worker processes instead of the parent sequencer,
#: so the multiprocessing backend rejects plans containing them
_ADAPTER_SITE_KINDS = frozenset({"rx_overflow", "tx_stall"})

#: how long a rank must stay *locally* quiet (all peers announced done,
#: windows drained, FIFOs empty, no packet arrivals) before it leaves its
#: drain loop.  Must exceed the longest silence the recovery machinery
#: can produce while a peer still needs this rank: keep-alives back off
#: up to ``keepalive_idle * 64`` = 25.6 ms between sends, so anything a
#: peer still wants re-served interrupts a 30 ms window
_DRAIN_GRACE_US = 30_000.0

#: Split-C put_bulk payload in phase 3 (small on purpose: the phase
#: exercises handler traffic, not bandwidth)
_SPLITC_BYTES = 1024


# ---------------------------------------------------------------------------
# workload handlers (one shared HandlerTable per machine keeps ids aligned)
# ---------------------------------------------------------------------------

def _h_ping(token, src, i):
    node = token.am.node
    node.soak_pings.setdefault(src, []).append(i)
    yield from token.reply_2(_h_pong, node.id, i)


def _h_pong(token, src, i):
    token.am.node.soak_pongs.setdefault(src, []).append(i)


def _h_done(token, src):
    # done-broadcast marker: ``src`` has finished its workload phases.
    # State is node-local (the handler runs on the receiving node's
    # shard), so the drain protocol works unchanged in worker processes.
    token.am.node.soak_done_from.add(src)


@lru_cache(maxsize=64)
def _pattern_period(rank: int) -> bytes:
    # (17*rank + 3*j + 7) % 251 depends only on j % 251 (gcd(3, 251) = 1),
    # so one 251-byte period per rank covers any length by repetition
    return bytes((17 * rank + 3 * j + 7) % 251 for j in range(251))


def _pattern(rank: int, nbytes: int) -> bytes:
    """Deterministic per-rank payload (verifiable byte-for-byte)."""
    return (_pattern_period(rank) * (nbytes // 251 + 1))[:nbytes]


# ---------------------------------------------------------------------------
# result
# ---------------------------------------------------------------------------

@dataclass
class SoakResult:
    """Everything one soak campaign produced."""

    seed: int
    loss: float
    nodes: int
    chaos: bool
    #: AM large-message strategy the workload's bulk phase used
    xfer_mode: str
    pingpong: int
    bulk_bytes: int
    #: simulated microseconds the lossy run took
    elapsed_us: float
    #: the identical workload with no faults installed (None if skipped)
    clean_elapsed_us: Optional[float]
    #: elapsed_us must stay below this (None when no clean run)
    recovery_bound_us: Optional[float]
    #: the injector's ledger, in firing order
    injected: List[InjectedFault]
    #: injections per fault kind
    injected_counts: Dict[str, int]
    #: every broken promise, human-readable; empty means the run passed
    violations: List[str]
    #: merged counter snapshot of the lossy run
    counters: Dict[str, float]
    #: the lossy run's observability hub (for trace/report export)
    obs: Observatory = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_injected(self) -> int:
        return len(self.injected)

    def summary_lines(self) -> List[str]:
        """The ``spam-bench soak`` console summary."""
        c = self.counters
        lines = [
            f"soak seed={self.seed} loss={self.loss} nodes={self.nodes}"
            f" chaos={self.chaos} mode={self.xfer_mode}",
            f"  workload: {self.pingpong} ping-pongs/rank,"
            f" {self.bulk_bytes}B bulk/rank, Split-C phase",
            f"  injected: {self.total_injected} faults "
            + (str(dict(sorted(self.injected_counts.items())))
               if self.injected_counts else "{}"),
            f"  recovery: retransmissions={c.get('retransmissions', 0):.0f}"
            f" nacks={c.get('nacks_sent', 0):.0f}"
            f" stall_nacks={c.get('stall_nacks_sent', 0):.0f}"
            f" keepalives={c.get('keepalives_sent', 0):.0f}",
            f"  drops: fabric={c.get('packets_dropped_fault', 0):.0f}"
            f" crc={c.get('rx_dropped_corrupt', 0):.0f}"
            f" overflow={c.get('rx_dropped_overflow', 0):.0f}"
            f" duplicates={c.get('duplicates_dropped', 0):.0f}",
        ]
        if self.clean_elapsed_us is not None:
            lines.append(
                f"  elapsed: {self.elapsed_us:.0f} us"
                f" (clean {self.clean_elapsed_us:.0f} us,"
                f" bound {self.recovery_bound_us:.0f} us)")
        else:
            lines.append(f"  elapsed: {self.elapsed_us:.0f} us")
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  violations: none")
        return lines


# ---------------------------------------------------------------------------
# one campaign (shared by the clean and lossy runs)
# ---------------------------------------------------------------------------

class _Campaign:
    """One machine + workload execution, with or without faults."""

    def __init__(self, nodes: int, pingpong: int, bulk_bytes: int,
                 plan: Optional[FaultPlan], limit: float,
                 idle_fast_forward: bool = True,
                 sample_period_us: Optional[float] = None,
                 xfer_mode: str = "eager", sharding: bool = False,
                 workers: int = 1):
        self.nodes = nodes
        self.pingpong = pingpong
        self.bulk_bytes = bulk_bytes
        self.limit = limit
        self.workers = workers
        self.violations: List[str] = []
        if workers > 1 and not sharding:
            raise ValueError("workers > 1 requires the sharded engine")
        if workers > 1 and sample_period_us is not None:
            raise ValueError(
                "the gauge sampler reads machine-wide state and cannot run "
                "inside shard workers; pass sample_period_us=None with "
                "workers > 1")
        if workers > 1 and plan is not None:
            bad = sorted({r.kind for r in plan.rules}
                         & _ADAPTER_SITE_KINDS)
            if bad:
                raise ValueError(
                    f"fault kinds {bad} inject at the adapter (worker-side "
                    f"code); only switch-site kinds (drop/corrupt/reorder/"
                    f"duplicate) replay deterministically with workers > 1")
        if sharding:
            self.sim = ShardedSimulator(idle_fast_forward=idle_fast_forward,
                                        workers=workers)
        else:
            self.sim = Simulator(idle_fast_forward=idle_fast_forward)
        self.machine = build_sp_machine(self.sim, nodes)
        self.obs = Observatory().attach(self.machine)
        if sample_period_us is not None:
            # gauge sampler for critical-path reports; its timers run on
            # the unsequenced lane so the event-order digests don't see
            # them, and the per-rank drain predicates below never consult
            # the raw pending count, so live sampler timers can't stall
            # quiescence either
            self.obs.start_sampler(period_us=sample_period_us)
        self.ams = attach_spam(self.machine, xfer_mode=xfer_mode)
        self.rts = attach_splitc(self.machine)
        # pre-register the workload handlers (SPMD discipline): requests
        # normally register handlers lazily at first send, but with shard
        # workers a registration made inside one worker is invisible to
        # the worker that must look the id up on receive
        for h in (_h_ping, _h_pong, _h_done):
            self.ams[0].register(h)
        self.injector = (install_faults(self.machine, plan)
                         if plan is not None else None)
        # per-rank buffer addresses, decided up front so every rank knows
        # its peer's layout
        self.addrs: List[Dict[str, int]] = []
        for node in self.machine.nodes:
            node.soak_pings = {}
            node.soak_pongs = {}
            node.soak_done_from = set()
            node.soak_violations = []
            self.addrs.append({
                "bulk_src": node.memory.alloc(bulk_bytes),
                "bulk_dst": node.memory.alloc(bulk_bytes),
                "bulk_back": node.memory.alloc(bulk_bytes),
                "sc_src": node.memory.alloc(_SPLITC_BYTES),
                "sc_dst": node.memory.alloc(_SPLITC_BYTES),
            })

    # -- the per-rank program ------------------------------------------------

    def _rank_quiet(self, rank: int) -> bool:
        """Node-local drain predicate: nothing *on this rank* awaits
        recovery.  Deliberately reads only rank-owned state (its endpoint,
        its adapter, its windows), so it evaluates identically inside a
        shard worker — the old global predicate walked every node and the
        switch, which only the parent sequencer can see."""
        am = self.ams[rank]
        if am._active_sends or am._deferred_replies:
            return False
        if am._rdma_grants or am._deferred_cts or am._rdma_ack_due:
            return False
        adapter = am.adapter
        if adapter.send_fifo.occupied > 0:
            return False
        rf = adapter.recv_fifo
        visible = len(rf.visible)
        if visible > 0:
            return False
        if rf.occupied != visible + rf.pending_pop:
            return False  # a packet is mid-RX-DMA
        # unacked/partial-assembly checks open-coded: this predicate
        # runs on every idle poll, and the window properties just wrap
        # these two fields
        for peer in am._peers.values():
            s_req, s_rep = peer.send
            if s_req._saved or s_rep._saved:
                return False
            r_req, r_rep = peer.recv
            if r_req._assembly is not None or r_rep._assembly is not None:
                return False
        return True

    def _program(self, rank: int):
        am = self.ams[rank]
        rt = self.rts[rank]
        node = self.machine.nodes[rank]
        peer = (rank + 1) % self.nodes

        # phase 1: ping-pong around the ring, one in flight per rank
        for i in range(self.pingpong):
            yield from am.request_2(peer, _h_ping, rank, i)
            while len(node.soak_pongs.get(peer, ())) < i + 1:
                yield from am._wait_progress()

        # phase 2: multi-chunk blocking store, then read it back
        node.memory.write(self.addrs[rank]["bulk_src"],
                          _pattern(rank, self.bulk_bytes))
        yield from am.store(peer, self.addrs[rank]["bulk_src"],
                            self.addrs[peer]["bulk_dst"], self.bulk_bytes)
        yield from am.get(peer, self.addrs[peer]["bulk_dst"],
                          self.addrs[rank]["bulk_back"], self.bulk_bytes)

        # phase 3: Split-C — barrier, allreduce, split-phase put
        yield from rt.barrier()
        total = yield from rt.allreduce_int(rank + 1)
        expect = self.nodes * (self.nodes + 1) // 2
        if total != expect:
            # recorded node-locally: with shard workers this line runs in
            # a worker process, and only per-node state ships back
            node.soak_violations.append(
                f"rank {rank}: allreduce returned {total}, expected {expect}")
        node.memory.write(self.addrs[rank]["sc_src"],
                          _pattern(rank + 100, _SPLITC_BYTES))
        yield from rt.put_bulk(GlobalPtr(peer, self.addrs[peer]["sc_dst"]),
                               self.addrs[rank]["sc_src"], _SPLITC_BYTES)
        yield from rt.sync()
        yield from rt.barrier()

        # done-broadcast: announce this rank's phases are over.  The
        # markers ride the same reliable AM channel as the workload, so a
        # dropped marker is retransmitted like any other request.
        for off in range(1, self.nodes):
            yield from am.request_1((rank + off) % self.nodes, _h_done, rank)
        node.soak_done_from.add(rank)

        # drain: serve the network until every rank has announced done
        # and this rank has been locally quiet — windows drained, FIFOs
        # empty, not a single packet arrival — for a full grace window.
        # Recovery traffic a peer still needs from this rank (NACK
        # service, re-acks for retransmissions) interrupts the silence,
        # so outlasting the keep-alive machinery's longest backoff means
        # nobody needs this rank anymore.
        rx = am.adapter._c_rx_packets
        quiet_since = None
        last_rx = rx.value
        while True:
            if (rx.value == last_rx
                    and len(node.soak_done_from) == self.nodes
                    and self._rank_quiet(rank)):
                if quiet_since is None:
                    quiet_since = self.sim.now
                elif self.sim.now - quiet_since >= _DRAIN_GRACE_US:
                    break
            else:
                quiet_since = None
                last_rx = rx.value
            yield from am._wait_progress()

    # -- execution + checks ---------------------------------------------------

    def run(self) -> float:
        self._fault_baseline = len(self.obs.fault_events)
        if self.workers > 1:
            self.sim.worker_finalize = self._finalize_span
        procs = [self.sim.spawn(self._program(r), name=f"soak{r}", shard=r)
                 for r in range(self.nodes)]
        try:
            self.sim.run_until_processes_done(procs, limit=self.limit)
        except SimulationError as exc:
            # includes SimTimeoutError (unbounded recovery → deadlock)
            # and worker-failure errors from the multiprocessing backend
            self.violations.append(f"{type(exc).__name__}: {exc}")
        except (ValueError, AssertionError) as exc:
            # window invariant violations (MidChunkAckError &c.) and
            # accounting assertions surface here
            self.violations.append(f"{type(exc).__name__}: {exc}")
        self._collect_finalizers()
        return self.sim.now

    # -- per-rank evidence (runs worker-side under ``workers > 1``) ----------

    def _finalize_span(self, lo: int, hi: int) -> Dict:
        """Everything the parent needs from ranks ``lo..hi-1``: the
        delivery/final-state checks run *here*, against live node state
        (the parent's copies go stale at fork), and node-owned counters
        plus adapter-site fault events ship back for the merged ledgers."""
        violations: List[str] = []
        counters: Dict[str, float] = {}
        for rank in range(lo, hi):
            violations.extend(self.machine.nodes[rank].soak_violations)
            violations.extend(self._check_rank(rank))
            node = self.machine.nodes[rank]
            for holder in (node, getattr(node, "adapter", None),
                           node.am, getattr(node, "splitc", None)):
                st = getattr(holder, "stats", None)
                if st is not None:
                    counters.update(st.snapshot())
        return {
            "lo": lo,
            "hi": hi,
            "violations": violations,
            "counters": counters,
            "fault_events": self.obs.fault_events[self._fault_baseline:],
        }

    def _collect_finalizers(self) -> None:
        """Merge per-span evidence — worker payloads under ``workers >
        1``, one parent-side span otherwise — into the campaign ledgers."""
        if self.workers > 1:
            payloads = getattr(self.sim, "worker_results", None)
            if payloads is None:
                # the run died before finalizers could ship (the error is
                # already in self.violations); nothing to merge
                self._span_counters = {}
                return
            payloads = sorted(payloads, key=lambda p: p["lo"])
        else:
            payloads = [self._finalize_span(0, self.nodes)]
        merged_counters: Dict[str, float] = {}
        for p in payloads:
            self.violations.extend(p["violations"])
            merged_counters.update(p["counters"])
            if self.workers > 1:
                # adapter-site events (CRC rejects of corrupted clones,
                # their packet_dropped records) happened worker-side;
                # fold them into the parent ledger for reconcile_faults
                self.obs.fault_events.extend(p["fault_events"])
        self._span_counters = merged_counters

    def merged_counters(self) -> Dict[str, float]:
        """The run's counter snapshot with worker-side registries folded
        in (per-node keys are unique, so the overlay is exact)."""
        counters = dict(self.obs.snapshot()["counters"])
        counters.update(self._span_counters)
        return counters

    def _check_rank(self, rank: int) -> List[str]:
        """Delivery + final-state checks that touch only ``rank``'s node.

        Cross-node assertions are phrased from the writer's perspective
        but *verified* on the node that owns the memory: checking rank
        ``r`` validates the bulk store and Split-C put that ``r-1``
        landed here, so the union over all ranks covers every transfer
        with the same messages the old global walk produced.
        """
        out: List[str] = []
        expect = list(range(self.pingpong))
        node = self.machine.nodes[rank]
        peer = (rank + 1) % self.nodes
        prev = (rank - 1) % self.nodes
        got = node.soak_pings.get(prev, [])
        if got != expect:
            out.append(
                f"rank {rank}: pings from {prev} delivered as "
                f"{_abbrev(got)}, expected 0..{self.pingpong - 1} "
                f"exactly once in order")
        got = node.soak_pongs.get(peer, [])
        if got != expect:
            out.append(
                f"rank {rank}: pongs from {peer} delivered as "
                f"{_abbrev(got)}, expected 0..{self.pingpong - 1} "
                f"exactly once in order")
        if node.memory.read(self.addrs[rank]["bulk_dst"],
                            self.bulk_bytes) != _pattern(prev,
                                                         self.bulk_bytes):
            out.append(f"rank {prev}: bulk store to {rank} corrupted")
        if node.memory.read(self.addrs[rank]["bulk_back"],
                            self.bulk_bytes) != _pattern(rank,
                                                         self.bulk_bytes):
            out.append(f"rank {rank}: bulk get readback from {peer} corrupted")
        if node.memory.read(self.addrs[rank]["sc_dst"],
                            _SPLITC_BYTES) != _pattern(prev + 100,
                                                       _SPLITC_BYTES):
            out.append(f"rank {prev}: Split-C put_bulk to {rank} corrupted")
        am = self.ams[rank]
        for dst, peer_state in am._peers.items():
            for ch, win in enumerate(peer_state.send):
                if win.has_unacked:
                    out.append(
                        f"rank {rank}: send window to {dst} ch{ch} "
                        f"still holds {win.in_flight} unacked packets")
            for ch, rwin in enumerate(peer_state.recv):
                if rwin.has_partial_assembly:
                    out.append(
                        f"rank {rank}: chunk from {dst} ch{ch} "
                        f"never completed reassembly")
        if am._active_sends:
            out.append(
                f"rank {rank}: {len(am._active_sends)} bulk ops "
                f"never completed")
        return out

    def reconcile_faults(self) -> None:
        """Every injected fault must be visible in the obs ledger."""
        if self.injector is None:
            return
        events = self.obs.fault_events
        by_kind: Dict[str, List[Dict]] = {}
        for ev in events:
            by_kind.setdefault(ev["kind"], []).append(ev)
        for f in self.injector.injected:
            if f.trace_id <= 0:
                self.violations.append(
                    f"injected {f.kind} at t={f.t:.1f} hit an untraced "
                    f"packet (no trace_id)")
                continue
            if not any(ev["trace_id"] == f.trace_id and ev["t"] == f.t
                       for ev in by_kind.get(f.kind, ())):
                self.violations.append(
                    f"injected {f.kind} on trace {f.trace_id} at "
                    f"t={f.t:.1f} missing from obs fault events")
            if f.kind in _LOSSY_KINDS and not any(
                    ev["trace_id"] == f.trace_id
                    for ev in by_kind.get("packet_dropped", ())):
                self.violations.append(
                    f"injected {f.kind} on trace {f.trace_id} has no "
                    f"matching packet_dropped event")


def _merge_counters(snapshot_counters: Dict[str, float]) -> Dict[str, float]:
    """Sum per-registry counters (``am[0].retransmissions`` …) by name."""
    merged: Dict[str, float] = {}
    for key, value in snapshot_counters.items():
        name = key.rsplit(".", 1)[-1]
        merged[name] = merged.get(name, 0.0) + value
    return merged


def _abbrev(seq: List[int], limit: int = 12) -> str:
    if len(seq) <= limit:
        return str(seq)
    return f"[{', '.join(map(str, seq[:limit]))}, ...] ({len(seq)} items)"


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

#: sentinel: "sampler period not chosen by the caller" — resolves to
#: 50 us sequentially and to None (sampler off) with ``workers > 1``,
#: where the sampler's machine-wide gauge reads are unavailable
_SAMPLE_DEFAULT = object()


def run_soak(
    seed: int = 7,
    loss: float = 0.01,
    nodes: int = 2,
    pingpong: int = 24,
    bulk_bytes: int = 2 * CHUNK_BYTES + 123,
    chaos: bool = False,
    plan: Optional[FaultPlan] = None,
    compare_clean: bool = True,
    limit: float = 5e7,
    idle_fast_forward: bool = True,
    sim_check: Optional[object] = None,
    sample_period_us: object = _SAMPLE_DEFAULT,
    xfer_mode: str = "eager",
    sharding: bool = False,
    workers: int = 1,
) -> SoakResult:
    """Run the soak workload under a fault plan; return the evidence.

    ``plan`` overrides the generated one; otherwise ``chaos`` selects
    :meth:`FaultPlan.chaos` (all six kinds) over :meth:`FaultPlan.loss`
    (uniform fabric drops) at rate ``loss`` with seed ``seed``.  With
    ``compare_clean`` the identical workload also runs fault-free to
    bound recovery time.  ``idle_fast_forward`` and ``sim_check`` reach
    the lossy campaign's engine — the perf suite uses them to compare
    fast-forward on/off walls and event-order digests on this workload.
    ``sample_period_us`` starts the periodic gauge sampler on the lossy
    campaign (default on at 50 us: the sampler's timers run on the
    unsequenced lane, so they no longer perturb the perf suite's
    event-order digests; pass ``None`` to disable).  ``xfer_mode``
    selects the AM large-message strategy for the bulk phase.
    ``sharding`` runs the lossy campaign on the
    :class:`~repro.sim.shard.ShardedSimulator` (one shard per node,
    round barriers at the switch latency) — digest-identical to the
    sequential engine by construction, and checked by the perf suite.
    ``workers`` > 1 additionally executes the sharded campaign in that
    many OS worker processes (implies ``sharding``); the result is still
    bit-identical, but the gauge sampler must be off and the fault plan
    restricted to switch-site kinds (drop/corrupt/reorder/duplicate).
    """
    if workers > 1:
        sharding = True
    if sample_period_us is _SAMPLE_DEFAULT:
        sample_period_us = None if workers > 1 else 50.0
    if plan is None:
        plan = (FaultPlan.chaos(seed, loss) if chaos
                else FaultPlan.loss(seed, loss))

    clean_elapsed = None
    recovery_bound = None
    if compare_clean:
        clean = _Campaign(nodes, pingpong, bulk_bytes, plan=None, limit=limit,
                          xfer_mode=xfer_mode)
        clean_elapsed = clean.run()
        if clean.violations:
            # the workload must be sound before faults mean anything
            raise AssertionError(
                "fault-free soak run failed: " + "; ".join(clean.violations))

    lossy = _Campaign(nodes, pingpong, bulk_bytes, plan=plan, limit=limit,
                      idle_fast_forward=idle_fast_forward,
                      sample_period_us=sample_period_us,
                      xfer_mode=xfer_mode, sharding=sharding,
                      workers=workers)
    if sim_check is not None:
        lossy.sim.check = sim_check
    elapsed = lossy.run()
    lossy.reconcile_faults()

    injected = list(lossy.injector.injected)
    counts = lossy.injector.counts()
    if clean_elapsed is not None:
        # bounded recovery: a generous but real bound — each fault may
        # cost a few keep-alive/stall-NACK rounds, and compounding losses
        # stretch the whole run, never past a fixed multiple
        recovery_bound = clean_elapsed * 4.0 + 3_000.0 * len(injected) + 200_000.0
        if elapsed > recovery_bound:
            lossy.violations.append(
                f"recovery unbounded: lossy run took {elapsed:.0f} us, "
                f"bound was {recovery_bound:.0f} us "
                f"(clean {clean_elapsed:.0f} us, {len(injected)} faults)")

    return SoakResult(
        seed=seed, loss=loss, nodes=nodes, chaos=chaos,
        xfer_mode=xfer_mode,
        pingpong=pingpong, bulk_bytes=bulk_bytes,
        elapsed_us=elapsed, clean_elapsed_us=clean_elapsed,
        recovery_bound_us=recovery_bound,
        injected=injected, injected_counts=counts,
        violations=lossy.violations,
        counters=_merge_counters(lossy.merged_counters()),
        obs=lossy.obs,
    )
