"""Hardware models of the IBM SP communication stack (and peer machines).

The SP path reproduced here, following Figure 1 of the paper::

    CPU -- memory bus -- DRAM (send/recv queues, length array mirror)
                |
          MicroChannel (80 MB/s DMA, ~1 us per PIO access)
                |
    TB2 adapter: i860 + 8 MB DRAM + two DMA engines + MSMU + 4 KB FIFOs
                |
    switch link (40 MB/s, ~0.5 us hardware latency, 4 routes/pair)

Each adapter stage is modelled LogP-style with separate *occupancy*
(throughput cost: how soon the next packet may enter the stage) and
*latency* (pipeline depth: when this packet exits), so the model
simultaneously reproduces the paper's ~16.5 us small-packet one-way
latency and its 34.3 MB/s asymptotic payload bandwidth.

Peer machines (CM-5, Meiko CS-2, U-Net/ATM) use the simpler
:mod:`repro.hardware.generic_nic` parameterized from Table 4.
"""

from repro.hardware.machine import Machine, build_generic_machine, build_sp_machine
from repro.hardware.node import Memory, Node
from repro.hardware.packet import PACKET_HEADER_BYTES, PACKET_PAYLOAD_BYTES, Packet
from repro.hardware.params import (
    MACHINES,
    AdapterParams,
    GenericNICParams,
    HostParams,
    MachineParams,
    SwitchParams,
    sp_thin_params,
    sp_wide_params,
)

__all__ = [
    "Machine",
    "build_sp_machine",
    "build_generic_machine",
    "Node",
    "Memory",
    "Packet",
    "PACKET_HEADER_BYTES",
    "PACKET_PAYLOAD_BYTES",
    "MachineParams",
    "HostParams",
    "AdapterParams",
    "SwitchParams",
    "GenericNICParams",
    "MACHINES",
    "sp_thin_params",
    "sp_wide_params",
]
