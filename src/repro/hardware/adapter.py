"""The TB2 communication adapter (§1.2, §2.1).

Transmit path: the host stages packets into the send FIFO (host DRAM),
flushes their cache lines, and arms them by storing lengths into the packet
length array across the MicroChannel.  The i860's scan loop notices armed
slots and services packets one at a time: DMA the entry across the
MicroChannel into adapter RAM, push it through the MSMU onto the switch
link.  Each service is modelled with an *occupancy* (pacing the next
packet — set by the larger of DMA time, i860 per-packet work, and wire
serialization) and a *latency* (this packet's transit).

Receive path: the MSMU accepts a packet from the switch; if the receive
FIFO is full the packet is **dropped** (input-buffer overflow — the loss
case §2.2's flow control exists for).  Otherwise the adapter DMAs it into
the host-resident receive queue, where it becomes visible to polling
software after the RX latency.

Software above charges its own CPU costs (cache flushes, PIO stores,
polling); this module charges only adapter-side time.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.hardware.fifo import RecvFIFO, SendFIFO
from repro.hardware.packet import Packet, PacketKind
from repro.hardware.params import AdapterParams, SwitchParams
from repro.sim import Simulator
from repro.sim.primitives import Event
from repro.sim.stats import StatRegistry

#: module constant: the RX path identity-compares every arrival's kind
_RDMA_DATA = PacketKind.RDMA_DATA


class TB2Adapter:
    """One node's network adapter, attached to a :class:`Switch`."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: AdapterParams,
        switch_params: SwitchParams,
        active_nodes: int,
        lazy_pop_batch: int = 16,
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.switch_params = switch_params
        self.send_fifo = SendFIFO(params.send_fifo_entries)
        self.recv_fifo = RecvFIFO(
            capacity=params.recv_fifo_entries_per_node * max(1, active_nodes),
            lazy_pop_batch=lazy_pop_batch,
        )
        self.switch = None  # set by Machine
        self.stats = StatRegistry(f"tb2[{node_id}].")
        # per-packet counters resolved once (hot path)
        self._c_tx_staged = self.stats.counter("tx_staged")
        self._c_tx_packets = self.stats.counter("tx_packets")
        self._c_tx_bytes = self.stats.counter("tx_bytes")
        self._c_rx_packets = self.stats.counter("rx_packets")
        #: observability hub (set by Observatory.attach; None = untraced)
        self.obs = None
        #: optional :class:`~repro.faults.injector.FaultInjector` (set by
        #: ``install_faults``; duck-typed): forced receive-FIFO overflow
        #: and send-DMA stalls
        self.faults = None
        # TX service bookkeeping
        self._tx_free = 0.0
        self._tx_scheduled = False
        #: cumulative TX occupancy (µs the TX engine was busy); only
        #: accumulated under an attached Observatory — the metrics
        #: sampler differences it into per-period utilization
        self.tx_busy_us = 0.0
        # RX service bookkeeping
        self._rx_free = 0.0
        # per-packet constants hoisted out of the service loops (the
        # params dataclasses are frozen, so these can never go stale)
        self._mc_dma_rate = params.mc_dma_rate
        self._i860_tx_occupancy = params.i860_tx_occupancy
        self._i860_tx_latency = params.i860_tx_latency
        self._msmu_gap = params.msmu_gap
        self._i860_rx_occupancy = params.i860_rx_occupancy
        self._i860_rx_latency = params.i860_rx_latency
        self._link_rate = switch_params.link_rate
        #: callbacks run (at packet-visible time) on every delivery; the AM
        #: layer uses this to wake blocked processes instead of spin-polling
        self._arrival_listeners: List[Callable[[Packet], None]] = []
        #: callbacks run as each packet leaves the adapter, with the wire-
        #: exit time (tracing: ``tx`` events)
        self._departure_listeners: List[Callable[[Packet, float], None]] = []
        self._arrival_event: Optional[Event] = None
        # precomputed once: arrival_event() runs per blocked-wait cycle
        self._arrival_event_name = f"tb2[{node_id}].arrival"
        #: rendezvous landing callback (set by the AM layer): RDMA_DATA
        #: packets bypass the receive FIFO / host poll path and are handed
        #: straight to this sink at visible time, modelling the DMA engine
        #: writing the granted region without host involvement
        self.rdma_sink: Optional[Callable[[Packet], None]] = None
        # bound once: these are scheduled per packet
        self._tx_service_cb = self._tx_service
        self._deliver_cb = self._deliver
        self._rdma_deliver_cb = self._rdma_deliver

    # ------------------------------------------------------------------
    # Host-facing API (costs are charged by the calling software layer)
    # ------------------------------------------------------------------

    def host_can_stage(self, n: int = 1) -> bool:
        """Whether the send FIFO has ``n`` free entries."""
        return self.send_fifo.free_entries >= n

    def host_stage(self, packet: Packet) -> None:
        """Write one packet into the next send-FIFO entry.

        Stamps the packet CRC (the TB2 computes it in hardware on the way
        out) so fabric corruption is detectable at the receiving adapter.
        """
        packet.checksum = packet.compute_checksum()
        self.send_fifo.stage(packet)
        self._c_tx_staged.value += 1
        if self.obs is not None:
            self.obs.packet_staged(packet, self.sim.now)

    def host_arm(self, count: Optional[int] = None) -> int:
        """Store length(s) into the packet length array — one MicroChannel
        PIO for the whole batch (the bulk-transfer optimization of §2.1)."""
        armed = self.send_fifo.arm(count)
        if armed and not self._tx_scheduled:
            self._tx_scheduled = True
            self.sim.schedule(self.params.length_scan, self._tx_service_cb)
        return armed

    def host_recv_peek(self) -> Optional[Packet]:
        """Head of the receive queue without consuming it."""
        return self.recv_fifo.peek()

    def host_recv_consume(self) -> Packet:
        """Read the head packet out of the receive queue (host copy cost is
        charged by the poller)."""
        pkt = self.recv_fifo.consume()
        if self.obs is not None:
            span = self.obs.spans.get(pkt.trace_id)  # inlined mark_packet
            if span is not None:
                span.marks["consume"] = self.sim.now
        return pkt

    def host_recv_should_pop(self) -> bool:
        """Whether enough entries are consumed to justify a pop PIO."""
        return self.recv_fifo.should_pop()

    def host_recv_pop_batch(self) -> int:
        """Return consumed entries to the adapter (caller charges ~1 us PIO)."""
        freed = self.recv_fifo.pop_batch()
        self.stats.count("rx_pop_pio")
        return freed

    def host_recv_available(self) -> int:
        """Packets visible to the host right now."""
        return len(self.recv_fifo.visible)

    def add_arrival_listener(self, fn: Callable[[Packet], None]) -> None:
        """Run ``fn(packet)`` at every delivery (tracing/wakeups)."""
        self._arrival_listeners.append(fn)

    def add_departure_listener(
        self, fn: Callable[[Packet, float], None]
    ) -> None:
        """Run ``fn(packet, wire_exit_time)`` as each packet leaves."""
        self._departure_listeners.append(fn)

    def arrival_event(self) -> Event:
        """A one-shot event that fires at the next packet delivery.

        Blocking software (e.g. a store waiting for its ack) waits on this
        instead of burning simulated poll cycles; the timing is identical
        because nothing else runs on the node's CPU meanwhile.
        """
        if self._arrival_event is None or self._arrival_event.triggered:
            self._arrival_event = self.sim.event(self._arrival_event_name)
        return self._arrival_event

    # ------------------------------------------------------------------
    # TX service loop (adapter side)
    # ------------------------------------------------------------------

    def _tx_service(self) -> None:
        fifo = self.send_fifo
        pkt = fifo.take_armed()
        if pkt is None:
            self._tx_scheduled = False
            return
        sim = self.sim
        now = sim.now
        tx_free = self._tx_free
        start = now if now > tx_free else tx_free
        wire_bytes = pkt.wire_bytes
        dma = wire_bytes / self._mc_dma_rate
        wire = wire_bytes / self._link_rate
        gapped = wire + self._msmu_gap
        occupancy = dma if dma > gapped else gapped
        if occupancy < self._i860_tx_occupancy:
            occupancy = self._i860_tx_occupancy
        latency = dma + self._i860_tx_latency + wire
        if self.faults is not None:
            stall = self.faults.tx_stall_us(pkt, now)
            if stall > 0.0:
                # injected send-DMA stall: the i860 holds this packet (and
                # everything behind it) for ``stall`` microseconds
                occupancy += stall
                latency += stall
                self.stats.count("tx_stalled_fault")
        tx_free = start + occupancy
        self._tx_free = tx_free
        self._c_tx_packets.value += 1
        self._c_tx_bytes.value += wire_bytes
        exit_at = start + latency
        if self.obs is not None:
            #: cumulative TX-engine occupancy; the metrics sampler turns
            #: deltas of this into per-period adapter utilization
            self.tx_busy_us += occupancy
            # inlined mark_packet x2: one span lookup for both marks
            span = self.obs.spans.get(pkt.trace_id)
            if span is not None:
                marks = span.marks
                if "wire_exit" in marks:
                    span.retransmits += 1  # go-back-N re-entering TX
                    # recovery wait: last wire exit -> this DMA start is
                    # the NACK/keep-alive backoff the sender sat through
                    gap = start - marks["wire_exit"]
                    if gap > 0.0:
                        span.backoff_us += gap
                marks["dma_start"] = start
                marks["wire_exit"] = exit_at
        for fn in self._departure_listeners:
            fn(pkt, exit_at)
        self.switch.inject(pkt, exit_at)
        if fifo._armed:
            delay = tx_free - now
            sim.schedule(delay if delay > 0.0 else 0.0, self._tx_service_cb)
        else:
            self._tx_scheduled = False

    # ------------------------------------------------------------------
    # RX path (called by the switch)
    # ------------------------------------------------------------------

    def on_wire_arrival(self, packet: Packet) -> None:
        """Switch-facing: accept or drop (CRC failure, FIFO overflow)."""
        cs = packet.checksum  # inlined checksum_ok (per-arrival path)
        if cs >= 0 and cs != packet.compute_checksum():
            # Hardware CRC check: a packet corrupted in the fabric is
            # discarded here, indistinguishable from a loss to the layers
            # above — §2.2's go-back-N recovers it.
            self.stats.count("rx_dropped_corrupt")
            if self.obs is not None:
                self.obs.packet_dropped(packet, "crc")
            return
        sim = self.sim
        if packet.kind is _RDMA_DATA and self.rdma_sink is not None:
            # simulated RDMA write: no receive-FIFO entry is consumed (the
            # DMA engine targets the granted region directly), so overflow
            # cannot drop it — only injected faults and CRC rejects can
            if self.faults is not None and self.faults.at_rx(packet, sim.now):
                self.stats.count("rx_dropped_overflow")
                if self.obs is not None:
                    self.obs.packet_dropped(packet, "overflow")
                return
            dma = packet.wire_bytes / self._mc_dma_rate
            now = sim.now
            rx_free = self._rx_free
            start = now if now > rx_free else rx_free
            occ = self._i860_rx_occupancy
            self._rx_free = start + (dma if dma > occ else occ)
            visible_at = start + dma + self._i860_rx_latency
            self._c_rx_packets.value += 1
            self.stats.count("rx_rdma_packets")
            if self.obs is not None:
                span = self.obs.spans.get(packet.trace_id)
                if span is not None:
                    span.marks["visible"] = visible_at
            sim.at(visible_at, self._rdma_deliver_cb, packet)
            return
        forced = (self.faults is not None
                  and self.faults.at_rx(packet, sim.now))
        if forced or not self.recv_fifo.reserve():
            # Input-buffer overflow (real or injected): the packet is
            # lost; §2.2's sequence numbers + NACK machinery must
            # recover it.
            self.stats.count("rx_dropped_overflow")
            if self.obs is not None:
                self.obs.packet_dropped(packet, "overflow")
            return
        dma = packet.wire_bytes / self._mc_dma_rate
        now = sim.now
        rx_free = self._rx_free
        start = now if now > rx_free else rx_free
        occ = self._i860_rx_occupancy
        self._rx_free = start + (dma if dma > occ else occ)
        visible_at = start + dma + self._i860_rx_latency
        self._c_rx_packets.value += 1
        if self.obs is not None:
            span = self.obs.spans.get(packet.trace_id)  # inlined mark_packet
            if span is not None:
                span.marks["visible"] = visible_at
        sim.at(visible_at, self._deliver_cb, packet)

    def _deliver(self, packet: Packet) -> None:
        self.recv_fifo.deliver(packet)
        for fn in self._arrival_listeners:
            fn(packet)
        if self._arrival_event is not None and not self._arrival_event.triggered:
            self._arrival_event.succeed(packet)

    def _rdma_deliver(self, packet: Packet) -> None:
        """RDMA landing: hand the packet to the AM sink (which writes the
        granted region with zero host CPU) and wake any blocked waiter —
        the completion/ack duties still run from the host's poll loop."""
        self.rdma_sink(packet)
        for fn in self._arrival_listeners:
            fn(packet)
        if self._arrival_event is not None and not self._arrival_event.triggered:
            self._arrival_event.succeed(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TB2Adapter(node={self.node_id}, "
            f"tx_staged={self.send_fifo.occupied}, "
            f"rx_visible={len(self.recv_fifo.visible)})"
        )
