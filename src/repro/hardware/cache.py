"""Cache-flush cost model (§2.1).

The RS/6000 memory bus is not coherent with MicroChannel DMA, so before the
adapter may DMA a send-FIFO entry out of host DRAM the host must flush the
relevant data-cache lines explicitly.  Thin nodes (model 390) have 64-byte
lines; wide nodes (model 590) 256-byte lines.  The same flush is needed
before a receive-FIFO entry is reused after wrap-around, which the software
folds into its lazy pop.
"""

from __future__ import annotations

from repro.hardware.params import HostParams


def lines_covering(nbytes: int, line_size: int) -> int:
    """Number of cache lines a flush of ``nbytes`` must touch (worst-case
    aligned: we assume buffers are line-aligned, which the SP AM layer
    arranges)."""
    if nbytes <= 0:
        return 0
    return -(-nbytes // line_size)  # ceil


def flush_cost(nbytes: int, host: HostParams) -> float:
    """Microseconds to flush ``nbytes`` of line-aligned data to DRAM."""
    # lines_covering inlined: this runs per staged packet
    if nbytes <= 0:
        return 0.0
    return -(-nbytes // host.cache_line) * host.flush_line


def copy_cost(nbytes: int, host: HostParams) -> float:
    """Microseconds for a host memory-to-memory copy of ``nbytes``."""
    if nbytes <= 0:
        return 0.0
    return host.copy_fixed + nbytes / host.copy_rate
