"""Send and receive FIFO bookkeeping for the TB2 adapter (§2.1).

The send FIFO lives in host DRAM: the host writes packets into successive
entries, then *arms* them by storing their transfer lengths into the packet
length array in adapter memory (one MicroChannel PIO store, which may cover
several packets at once during bulk transfers).  The adapter transmits
armed packets in order.

The receive FIFO is filled by the adapter via DMA and drained by the host;
the host *pops* entries lazily — it tells the adapter that slots are free
only every ``lazy_pop_batch`` consumed packets, because each pop is a ~1 us
MicroChannel access.  Capacity accounting therefore distinguishes
*occupied* (delivered or in flight, not yet returned to the adapter) from
*consumed* (read by the host but not yet popped).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.hardware.packet import Packet


class SendFIFO:
    """Host-side send queue + adapter-side length array."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("send FIFO needs at least one entry")
        self.entries = entries
        self._staged: Deque[Packet] = deque()  # written, not yet armed
        self._armed: Deque[Packet] = deque()   # length slot set, awaiting TX
        #: len(_staged) + len(_armed), maintained on stage/take: software
        #: polls for free entries far more often than packets move, so
        #: occupancy is an int read, not two deque measurements
        self.occupied = 0
        #: slot-conservation checker (repro.check), None when unchecked
        self.check = None

    @property
    def free_entries(self) -> int:
        return self.entries - self.occupied

    @property
    def armed_count(self) -> int:
        return len(self._armed)

    @property
    def staged_count(self) -> int:
        return len(self._staged)

    def stage(self, packet: Packet) -> None:
        """Write a packet into the next entry (not yet visible to the TB2)."""
        if self.free_entries <= 0:
            raise OverflowError("send FIFO full; caller must back off first")
        self._staged.append(packet)
        self.occupied += 1
        if self.check is not None:
            self.check.on_stage(self)

    def arm(self, count: Optional[int] = None) -> int:
        """Set length-array slots for the next ``count`` staged packets
        (all of them if None).  Returns how many were armed.  The caller
        charges one MicroChannel PIO for the whole batch."""
        if count is not None and count < 0:
            raise ValueError(f"cannot arm a negative packet count ({count})")
        n = len(self._staged) if count is None else min(count, len(self._staged))
        for _ in range(n):
            self._armed.append(self._staged.popleft())
        if self.check is not None:
            self.check.on_arm(self, n)
        return n

    def take_armed(self) -> Optional[Packet]:
        """Adapter side: consume the next armed packet (frees its entry)."""
        if not self._armed:
            return None
        pkt = self._armed.popleft()
        self.occupied -= 1
        if self.check is not None:
            self.check.on_take(self)
        return pkt


class RecvFIFO:
    """Adapter-filled receive queue with lazy host-side popping."""

    def __init__(self, capacity: int, lazy_pop_batch: int = 16):
        if capacity <= 0:
            raise ValueError("receive FIFO needs capacity > 0")
        if lazy_pop_batch <= 0:
            raise ValueError("lazy_pop_batch must be positive")
        self.capacity = capacity
        self.lazy_pop_batch = lazy_pop_batch
        #: slots charged against capacity (in-flight through RX DMA or
        #: delivered-but-not-popped)
        self.occupied = 0
        #: packets visible to the host, in delivery order
        self.visible: Deque[Packet] = deque()
        #: consumed by the host but not yet popped back to the adapter
        self.pending_pop = 0
        #: slot-conservation checker (repro.check), None when unchecked
        self.check = None

    @property
    def free_slots(self) -> int:
        return self.capacity - self.occupied

    def reserve(self) -> bool:
        """Adapter side, at wire arrival: claim a slot or report overflow."""
        if self.occupied >= self.capacity:
            return False
        self.occupied += 1
        if self.check is not None:
            self.check.on_reserve(self)
        return True

    def deliver(self, packet: Packet) -> None:
        """Adapter side, at RX-DMA completion: make the packet host-visible."""
        self.visible.append(packet)
        if self.check is not None:
            self.check.on_deliver(self)

    def peek(self) -> Optional[Packet]:
        return self.visible[0] if self.visible else None

    def consume(self) -> Packet:
        """Host side: read the head packet out of the queue.

        Returns the packet; the slot stays occupied until :meth:`should_pop`
        triggers a batched pop.
        """
        if not self.visible:
            raise IndexError("receive FIFO empty")
        self.pending_pop += 1
        pkt = self.visible.popleft()
        if self.check is not None:
            self.check.on_consume(self)
        return pkt

    @property
    def has_pending_pop(self) -> bool:
        """Whether consumed slots are still charged against capacity.

        Pollers must flush these (``pop_batch``) before going idle even
        below the lazy batch: a near-full FIFO whose free space is all
        consumed-but-unpopped slots would otherwise drop every incoming
        retransmission — the exact packets that would drain it.
        """
        return self.pending_pop > 0

    def should_pop(self) -> bool:
        """True when enough entries have been consumed to justify the ~1 us
        MicroChannel access that returns them to the adapter."""
        return self.pending_pop >= self.lazy_pop_batch

    def pop_batch(self) -> int:
        """Host side: return all consumed entries to the adapter.  The
        caller charges one MicroChannel PIO.  Returns slots freed."""
        freed = self.pending_pop
        self.pending_pop = 0
        self.occupied -= freed
        if self.occupied < 0:
            raise AssertionError("receive FIFO accounting went negative")
        if self.check is not None:
            self.check.on_pop(self, freed)
        return freed
