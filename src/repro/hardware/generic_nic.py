"""LogP-style NIC for the Table-4 peer machines (CM-5, Meiko CS-2, U-Net).

The paper characterizes these machines by three numbers — per-message host
overhead, one-way latency, and link bandwidth — which is exactly a LogP
model.  The NIC therefore: (a) serializes outgoing packets at the link
rate, (b) delivers them after the configured latency, and (c) leaves the
per-message host overheads to the software layer (the per-machine AM
implementation charges them).  Delivery is reliable and ordered.

The same :class:`~repro.hardware.packet.Packet` type is used so the AM API
above is machine-independent, exactly as Generic Active Messages intends.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.hardware.packet import Packet
from repro.hardware.params import GenericNICParams
from repro.sim import Simulator
from repro.sim.primitives import Event
from repro.sim.stats import StatRegistry


class GenericFabric:
    """The shared interconnect: routes between GenericNIC endpoints."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._nics: Dict[int, "GenericNIC"] = {}
        self.stats = StatRegistry("fabric.")

    def attach(self, node_id: int, nic: "GenericNIC") -> None:
        """Register a NIC endpoint on the fabric."""
        if node_id in self._nics:
            raise ValueError(f"node {node_id} already attached")
        self._nics[node_id] = nic

    def deliver(self, packet: Packet, when: float) -> None:
        """Schedule a packet's arrival at its destination NIC."""
        self.stats.count("packets_routed")
        self.sim.at(when, self._nics[packet.dst].on_arrival, packet)


class GenericNIC:
    """One node's interface on a :class:`GenericFabric`."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: GenericNICParams,
        fabric: GenericFabric,
    ):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.fabric = fabric
        fabric.attach(node_id, self)
        self._tx_free = 0.0
        self._rx_queue: Deque[Packet] = deque()
        self._arrival_listeners: List[Callable[[Packet], None]] = []
        self._departure_listeners: List[Callable[[Packet, float], None]] = []
        self._arrival_event: Optional[Event] = None
        self.stats = StatRegistry(f"nic[{node_id}].")
        #: observability hub (set by Observatory.attach; None = untraced)
        self.obs = None

    # -- host-facing -------------------------------------------------------

    def host_send(self, packet) -> None:
        """Hand a packet to the NIC.  The calling software layer has already
        charged its ``o_send``; the NIC adds serialization + latency.

        LogP-style accounting: small control messages cost only ``o`` and
        ``L`` (their handling is folded into the overheads, as in the
        machines' own AM papers); link serialization is charged for bulk
        payload bytes only.
        """
        payload = getattr(packet, "payload", b"")
        wire = len(payload) / self.params.rate
        start = max(self.sim.now, self._tx_free)
        self._tx_free = start + wire
        self.stats.count("tx_packets")
        self.stats.count("tx_bytes", packet.wire_bytes)
        arrive_at = start + wire + self.params.latency
        if self.obs is not None:
            self.obs.packet_staged(packet, self.sim.now)
            self.obs.mark_packet(packet, "wire_exit", start + wire)
            # the LogP fabric has no separate switch stage: deliver time
            # doubles as the switch hand-off
            self.obs.mark_packet(packet, "sw_deliver", arrive_at)
            self.obs.mark_packet(packet, "visible", arrive_at)
        for fn in self._departure_listeners:
            fn(packet, start + wire)
        self.fabric.deliver(packet, arrive_at)

    def host_recv_peek(self) -> Optional[Packet]:
        """Head of the receive queue without consuming it."""
        return self._rx_queue[0] if self._rx_queue else None

    def host_recv_consume(self) -> Packet:
        """Pop the head of the receive queue."""
        pkt = self._rx_queue.popleft()
        if self.obs is not None:
            self.obs.mark_packet(pkt, "consume", self.sim.now)
        return pkt

    def host_recv_available(self) -> int:
        """Messages awaiting the host."""
        return len(self._rx_queue)

    def add_arrival_listener(self, fn: Callable[[Packet], None]) -> None:
        """Run ``fn(msg)`` at every delivery."""
        self._arrival_listeners.append(fn)

    def add_departure_listener(
        self, fn: Callable[[Packet, float], None]
    ) -> None:
        """Run ``fn(msg, wire_exit_time)`` as each message leaves."""
        self._departure_listeners.append(fn)

    def arrival_event(self) -> Event:
        """One-shot event firing at the next delivery."""
        if self._arrival_event is None or self._arrival_event.triggered:
            self._arrival_event = self.sim.event(f"nic[{self.node_id}].arrival")
        return self._arrival_event

    # -- fabric-facing -----------------------------------------------------

    def on_arrival(self, packet: Packet) -> None:
        """Fabric-facing delivery into the receive queue."""
        self._rx_queue.append(packet)
        self.stats.count("rx_packets")
        for fn in self._arrival_listeners:
            fn(packet)
        if self._arrival_event is not None and not self._arrival_event.triggered:
            self._arrival_event.succeed(packet)
