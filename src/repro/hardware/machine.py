"""Machine builders: assemble nodes + interconnect into a runnable system.

``build_sp_machine(sim, n)`` gives the full SP stack (TB2 adapters on a
switch); ``build_generic_machine(sim, n, params)`` gives a LogP cluster for
the Table-4 peers.  Software layers (AM, MPL, MPI, Split-C) attach
themselves on top via their own ``attach`` constructors, so the same
machine can carry different stacks in different experiments.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hardware.adapter import TB2Adapter
from repro.hardware.generic_nic import GenericFabric, GenericNIC
from repro.hardware.node import Node
from repro.hardware.params import MachineParams, machine_params
from repro.hardware.switch import Switch
from repro.sim import Simulator


class Machine:
    """A built machine: the simulator, nodes, and interconnect."""

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams,
        nodes: List[Node],
        switch: Optional[Switch] = None,
        fabric: Optional[GenericFabric] = None,
    ):
        self.sim = sim
        self.params = params
        self.nodes = nodes
        self.switch = switch
        self.fabric = fabric
        #: observability hub (set by Observatory.attach; None = untraced)
        self.obs = None

    @property
    def nprocs(self) -> int:
        return len(self.nodes)

    def node(self, i: int) -> Node:
        return self.nodes[i]

    @property
    def is_sp(self) -> bool:
        return self.switch is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Machine({self.params.name!r}, {self.nprocs} nodes)"


def build_sp_machine(
    sim: Simulator,
    nprocs: int,
    params: Optional[MachineParams] = None,
    lazy_pop_batch: int = 16,
) -> Machine:
    """Build an ``nprocs``-node SP (thin nodes unless told otherwise)."""
    if nprocs < 1:
        raise ValueError("need at least one node")
    p = params if params is not None else machine_params("sp-thin")
    if p.nodes_kind != "sp":
        raise ValueError(f"{p.name!r} is not an SP parameter set")
    if sim.sharded:
        # one shard per node; the switch latency is the conservative
        # lookahead (cross-node traffic cannot arrive sooner)
        sim.configure_shards(nprocs, p.switch.latency)
    switch = Switch(sim, p.switch)
    nodes: List[Node] = []
    for i in range(nprocs):
        node = Node(sim, i, p)
        adapter = TB2Adapter(
            sim,
            i,
            p.adapter,
            p.switch,
            active_nodes=nprocs,
            lazy_pop_batch=lazy_pop_batch,
        )
        adapter.switch = switch
        switch.attach(i, adapter)
        node.adapter = adapter
        nodes.append(node)
    return Machine(sim, p, nodes, switch=switch)


def build_generic_machine(
    sim: Simulator, nprocs: int, params: MachineParams
) -> Machine:
    """Build an ``nprocs``-node LogP cluster (CM-5 / Meiko / U-Net)."""
    if nprocs < 1:
        raise ValueError("need at least one node")
    if params.nodes_kind != "generic":
        raise ValueError(f"{params.name!r} is not a generic-NIC parameter set")
    fabric = GenericFabric(sim)
    nodes: List[Node] = []
    for i in range(nprocs):
        node = Node(sim, i, params)
        node.nic = GenericNIC(sim, i, params.nic, fabric)
        nodes.append(node)
    return Machine(sim, params, nodes, fabric=fabric)


def build_machine(sim: Simulator, nprocs: int, name: str) -> Machine:
    """Build any registered machine by name (``sp-thin``, ``sp-wide``,
    ``cm5``, ``meiko``, ``unet``)."""
    p = machine_params(name)
    if p.nodes_kind == "sp":
        return build_sp_machine(sim, nprocs, p)
    return build_generic_machine(sim, nprocs, p)
