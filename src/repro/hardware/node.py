"""A processing node: CPU cost helpers + addressable memory + its NIC.

Software layers (AM, MPL, Split-C, MPI) are attached to nodes by the
machine builder and address each other's memory through :class:`Memory` —
a flat, growable byte space with a bump allocator, so bulk transfers move
real bytes between real addresses exactly as ``am_store``/``am_get``
require ("transfer data between blocks of memory specified by the node
initiating the transfer", §1.1).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Optional

import numpy as np

from repro.hardware.params import HostParams, MachineParams
from repro.sim import Delay, Simulator
from repro.sim.stats import StatRegistry


class Memory:
    """Per-node memory: a segmented bump allocator over fixed buffers.

    Addresses are plain ints, so Split-C global pointers are ``(proc,
    addr)`` pairs with ordinary arithmetic, and ``am_store`` writes to a
    remote ``addr`` exactly as on the real machine.

    Segments are never resized once created — numpy arrays returned by
    :meth:`alloc_array` alias the backing store for the lifetime of the
    simulation (resizing a ``bytearray`` with exported buffers would raise
    ``BufferError``).  An allocation always lives inside one segment, so
    in-allocation reads/writes/views are contiguous.
    """

    _ALIGN = 64        # keep buffers cache-line aligned (flush model)
    _SEGMENT = 1 << 20  # default segment size

    def __init__(self, initial: int = 1 << 16):
        self._seg_bases: list[int] = []   # sorted segment base addresses
        self._segments: list[bytearray] = []
        self._brk = 0                     # high-water address
        self._cur_free = 0                # free bytes in the last segment
        self._new_segment(max(initial, self._ALIGN))

    def _new_segment(self, nbytes: int) -> None:
        size = max(self._SEGMENT, nbytes)
        # segments start at aligned addresses, contiguous address space
        base = (self._brk + self._ALIGN - 1) // self._ALIGN * self._ALIGN
        self._seg_bases.append(base)
        self._segments.append(bytearray(size))
        self._brk = base
        self._cur_free = size

    def _locate(self, addr: int, nbytes: int):
        """(segment, offset) containing [addr, addr+nbytes)."""
        i = bisect_right(self._seg_bases, addr) - 1
        if i < 0:
            raise IndexError(f"address {addr:#x} below memory start")
        base = self._seg_bases[i]
        seg = self._segments[i]
        off = addr - base
        if off + nbytes > len(seg):
            raise IndexError(
                f"access [{addr:#x}, {addr + nbytes:#x}) crosses a segment "
                f"boundary or exceeds memory (segment of {len(seg)} bytes "
                f"at {base:#x}) — access within a single allocation"
            )
        return seg, off

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` and return the base address."""
        if nbytes < 0:
            raise ValueError("negative allocation")
        rounded = (nbytes + self._ALIGN - 1) // self._ALIGN * self._ALIGN
        if rounded > self._cur_free:
            self._new_segment(rounded)
        addr = self._brk
        self._brk += rounded
        self._cur_free -= rounded
        return addr

    def write(self, addr: int, data: bytes) -> None:
        seg, off = self._locate(addr, len(data))
        seg[off: off + len(data)] = data

    def read(self, addr: int, nbytes: int) -> bytes:
        seg, off = self._locate(addr, nbytes)
        return bytes(seg[off: off + nbytes])

    def view(self, addr: int, nbytes: int) -> memoryview:
        seg, off = self._locate(addr, nbytes)
        return memoryview(seg)[off: off + nbytes]

    def alloc_array(self, count: int, dtype=np.float64) -> tuple[int, np.ndarray]:
        """Allocate space for ``count`` items of ``dtype``; return (addr,
        ndarray view aliasing this memory)."""
        dt = np.dtype(dtype)
        addr = self.alloc(count * dt.itemsize)
        arr = np.frombuffer(self.view(addr, count * dt.itemsize), dtype=dt)
        return addr, arr

    @property
    def brk(self) -> int:
        return self._brk


class Node:
    """One SP node (or a node of a Table-4 peer machine)."""

    def __init__(self, sim: Simulator, node_id: int, machine_params: MachineParams):
        self.sim = sim
        self.id = node_id
        self.machine_params = machine_params
        self.host: HostParams = machine_params.host
        self.memory = Memory()
        self.stats = StatRegistry(f"node[{node_id}].")
        #: observability hub (set by Observatory.attach; None = untraced)
        self.obs = None
        #: the TB2 adapter (SP machines) or GenericNIC (peer machines)
        self.adapter: Optional[Any] = None
        self.nic: Optional[Any] = None
        #: software layers, attached by their constructors
        self.am: Optional[Any] = None
        self.mpl: Optional[Any] = None
        self.mpi: Optional[Any] = None
        self.splitc: Optional[Any] = None
        #: cumulative CPU time charged through compute()/charge_* helpers,
        #: used by the Split-C profiler to split cpu vs net phases
        self.cpu_busy_us = 0.0

    # -- CPU cost helpers (all are generators: `yield from node.compute(x)`)

    def compute(self, us: float):
        """Charge ``us`` microseconds of pure computation."""
        self.cpu_busy_us += us
        yield Delay(us)

    def charge_flops(self, n: float):
        """Charge ``n`` double-precision flops of work."""
        yield from self.compute(n * self.host.flop_us)

    def charge_intops(self, n: float):
        """Charge ``n`` integer/pointer operations of work."""
        yield from self.compute(n * self.host.intop_us)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.id} on {self.machine_params.name})"
