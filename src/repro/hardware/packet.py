"""The 256-byte network packet: 32-byte header + up to 224 bytes of payload.

The header layout follows §2.2 of the paper: destination/route, packet
kind, sequence number, piggybacked acknowledgement, AM handler id, up to
four word arguments, and — for bulk-transfer packets — the destination
address offset used to order packets within a chunk.

We keep the header as typed fields (not serialized bytes); the *wire size*
charged by the hardware model is ``header + len(payload)`` which is what
the TB2 length array expresses ("the number of bytes to be transferred for
each packet").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from struct import Struct
from typing import Optional, Tuple
from zlib import crc32 as _crc32

from repro.hardware.params import PACKET_HEADER_BYTES, PACKET_PAYLOAD_BYTES

#: one packer per argument count (0-4 word args): 13 header fields + args,
#: each a little-endian signed 64-bit int — the exact byte stream the
#: original per-field ``int.to_bytes(8, "little", signed=True)`` loop fed
#: to the CRC, so stamped checksums are unchanged
_CRC_PACKERS = tuple(Struct(f"<{13 + n}q").pack for n in range(5))


class PacketKind(IntEnum):
    """What the flow-control layer should do with a packet."""

    REQUEST = 1       # am_request_M
    REPLY = 2         # am_reply_M
    STORE_DATA = 3    # one packet of an am_store / am_store_async chunk
    GET_REQUEST = 4   # am_get's initial request
    GET_DATA = 5      # one packet of the data coming back from a get
    ACK = 6           # explicit acknowledgement
    NACK = 7          # negative acknowledgement (go-back-N trigger)
    RAW = 8           # flow-control-free path (the 47 us baseline)
    KEEPALIVE = 9     # keep-alive probe (§2.2)
    MPL_DATA = 10     # IBM MPL data traffic (independent protocol stack)
    MPL_ACK = 11      # MPL credit return
    RTS = 12          # rendezvous request-to-send (length + source region)
    CTS = 13          # rendezvous clear-to-send (granted region + credit)
    RDMA_DATA = 14    # rendezvous payload streamed by the DMA engine;
                      # lands directly in the granted region, bypassing
                      # the host handler/poll path
    RDMA_FIN = 15     # rendezvous completion notification (sequenced
                      # after the last RDMA_DATA packet)


#: kinds that consume a slot in the sender's sliding window / need acking
SEQUENCED_KINDS = frozenset(
    {
        PacketKind.REQUEST,
        PacketKind.REPLY,
        PacketKind.STORE_DATA,
        PacketKind.GET_REQUEST,
        PacketKind.GET_DATA,
        PacketKind.RTS,
        PacketKind.CTS,
        PacketKind.RDMA_DATA,
        PacketKind.RDMA_FIN,
    }
)


@dataclass
class Packet:
    """One packet as it exists in a FIFO entry and on the wire."""

    src: int
    dst: int
    kind: PacketKind
    #: sliding-window sequence number (packets of one chunk share the
    #: chunk's base sequence number, §2.2)
    seq: int = 0
    #: piggybacked cumulative acks: "every request-channel (resp.
    #: reply-channel) sequence number below this value has been received
    #: from you".  -1 = no information (control/raw packets).
    ack_req: int = -1
    ack_rep: int = -1
    #: which traffic class this packet's own seq belongs to (requests and
    #: replies use separate windows, §2.2): 0 = request, 1 = reply
    channel: int = 0
    #: AM handler id (index into the receiver's handler table)
    handler: int = 0
    #: up to four 32-bit word arguments (§1.1)
    args: Tuple[int, ...] = ()
    #: payload bytes for bulk transfers (<= 224)
    payload: bytes = b""
    #: destination base address of the bulk transfer
    addr: int = 0
    #: destination byte offset within the bulk transfer (orders packets
    #: within a chunk, §2.2)
    offset: int = 0
    #: total bulk-transfer length (receiver-side completion detection)
    total_len: int = 0
    #: how many window sequence numbers this packet's transfer unit
    #: consumes (36 for a full chunk, 1 for a plain request/reply)
    chunk_packets: int = 1
    #: opaque token identifying the bulk operation at its initiator
    op_token: int = 0
    #: on-wire header size; AM uses the full 32 bytes, MPL's leaner data
    #: framing (30 bytes) is what gives it the marginally higher 34.6 MB/s
    #: asymptote of Table 3
    header_bytes: int = PACKET_HEADER_BYTES
    #: observability correlation id (0 = untracked); assigned once by the
    #: :class:`~repro.obs.core.Observatory` and carried end-to-end so every
    #: layer's marks land on the same message-lifecycle span.  Not a wire
    #: field: contributes nothing to ``wire_bytes``.
    trace_id: int = 0
    #: header/payload CRC, modelling the TB2's hardware packet CRC: stamped
    #: by the adapter at send-FIFO staging, verified at wire arrival, and a
    #: mismatch (payload corruption in the fabric) drops the packet exactly
    #: like a loss so §2.2's go-back-N recovers it.  -1 = unstamped.  Part
    #: of the 32-byte header, so it adds nothing to ``wire_bytes``.
    checksum: int = -1

    def __post_init__(self) -> None:
        if len(self.payload) > PACKET_PAYLOAD_BYTES:
            raise ValueError(
                f"payload {len(self.payload)} exceeds {PACKET_PAYLOAD_BYTES} bytes"
            )
        if len(self.args) > 4:
            raise ValueError("AM packets carry at most four word arguments")
        # wire size and sequencing never change after staging (the corrupt
        # fault flips payload bytes but preserves length), so both are
        # computed once here instead of per property access on the hot path
        self.wire_bytes = (
            self.header_bytes + len(self.payload) + 4 * len(self.args)
        )
        self.is_sequenced = self.kind in SEQUENCED_KINDS

    def compute_checksum(self) -> int:
        """CRC32 over every field the receiver acts on (the TB2 CRC)."""
        return _crc32(
            _CRC_PACKERS[len(self.args)](
                self.kind, self.src, self.dst, self.seq,
                self.channel, self.handler, self.addr, self.offset,
                self.total_len, self.chunk_packets, self.op_token,
                self.ack_req, self.ack_rep, *self.args,
            ),
            _crc32(self.payload),
        )

    def checksum_ok(self) -> bool:
        """Whether the stamped checksum still matches the contents
        (unstamped packets vacuously pass)."""
        return self.checksum < 0 or self.checksum == self.compute_checksum()

    def clone(self) -> "Packet":
        """An independent copy sharing no mutable state with this packet.

        The retransmission buffer saves clones and go-back-N re-stages
        clones, so a copy still in flight (duplicated, reordered, or held
        in a ``sim.at`` callback) can never alias a packet whose ack
        fields are being re-stamped.  ``payload``/``args`` are immutable
        and shared; ``trace_id`` is kept so every copy lands on the same
        observability span.
        """
        new = object.__new__(Packet)
        new.__dict__.update(self.__dict__)
        return new

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = f" +{len(self.payload)}B@{self.offset}" if self.payload else ""
        return (
            f"Packet({self.kind.name} {self.src}->{self.dst} "
            f"ch{self.channel} seq={self.seq} "
            f"ack=({self.ack_req},{self.ack_rep}){extra})"
        )
