"""All machine parameters, in one calibrated place.

Times are **microseconds**, rates are **bytes per microsecond** (= MB/s),
sizes are bytes.  The SP numbers are calibrated so that the simulated
primitives land on the paper's measurements:

===============================  ==========  =================
quantity                          paper       calibration anchor
===============================  ==========  =================
raw 1-word round trip             47 us       §2.3
SP AM 1-word round trip           51.0 us     §2.3 / Table 3
per extra 32-bit word             +0.5 us     §2.3
MPL round trip                    88 us       §2.3 / Table 3
AM asymptotic bandwidth           34.3 MB/s   Table 3
MPL asymptotic bandwidth          34.6 MB/s   Table 3
am_request_1..4 call cost         7.7-8.2 us  Table 2
am_reply_1..4 call cost           4.0-4.4 us  Table 2
empty poll                        1.3 us      §2.5
per received message in poll      1.8 us      §2.5
chunk send overhead               172 us      §2.2
MicroChannel access               ~1 us       §2.1
switch hardware latency           ~0.5 us     §1.2
switch link bandwidth             ~40 MB/s    §1.2
MicroChannel peak DMA             80 MB/s     §1.2
===============================  ==========  =================

Garbled-OCR reconstructions are documented in DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

# ---------------------------------------------------------------------------
# Packet geometry (§2.2): a FIFO entry is 256 bytes -> 32 B header + 224 B
# payload; a bulk-transfer chunk is 36 packets = 8064 payload bytes.
# ---------------------------------------------------------------------------
PACKET_SLOT_BYTES = 256
PACKET_HEADER_BYTES = 32
PACKET_PAYLOAD_BYTES = PACKET_SLOT_BYTES - PACKET_HEADER_BYTES  # 224
CHUNK_PACKETS = 36
CHUNK_BYTES = CHUNK_PACKETS * PACKET_PAYLOAD_BYTES  # 8064


@dataclass(frozen=True)
class HostParams:
    """Costs paid by the Power2 host CPU."""

    #: model 390 "thin" vs model 590 "wide" node
    kind: str = "thin"
    #: data-cache line size: 64 B thin, 256 B wide (§1.2)
    cache_line: int = 64
    #: cost to flush one cache line to DRAM (memory bus write-back)
    flush_line: float = 0.18
    #: one programmed-I/O access across the MicroChannel (§2.1: ~1 us)
    mc_pio: float = 1.0
    #: memory-to-memory copy rate for host copies (buffered MPI protocol);
    #: Power2 streaming copy ~150 MB/s
    copy_rate: float = 150.0  # MB/s
    #: fixed cost of a host memcpy call (loop setup, cache misses)
    copy_fixed: float = 0.35
    #: checking the receive-queue tail pointer when nothing has arrived
    poll_empty: float = 1.3
    #: pulling one packet out of the receive queue and dispatching it
    poll_per_packet: float = 1.8
    #: sustained double-precision flop cost (for charged compute phases)
    flop_us: float = 1.0 / 40.0  # ~40 Mflops sustained out of 66 peak
    #: sustained integer/pointer op cost
    intop_us: float = 1.0 / 50.0


@dataclass(frozen=True)
class AdapterParams:
    """The TB2 adapter, modelled as a pipeline of (occupancy, latency) stages.

    *Occupancy* is the stage's per-packet throughput cost: the stage can
    admit the next packet ``occ`` after the previous one.  *Latency* is the
    packet's transit time through the stage.  Bandwidth is set by the
    largest occupancy; small-message latency by the sum of latencies.
    """

    #: send FIFO entries (OCR "18" -> 128)
    send_fifo_entries: int = 128
    #: receive FIFO entries *per active processing node* (§2.1)
    recv_fifo_entries_per_node: int = 64
    #: delay before the i860's scan loop notices a nonzero length slot
    length_scan: float = 0.5
    #: MicroChannel DMA rate (80 MB/s peak, §1.2)
    mc_dma_rate: float = 80.0
    #: i860 TX firmware: fixed per-packet latency beyond the DMA itself
    i860_tx_latency: float = 9.0
    #: i860 TX firmware: per-packet occupancy (pipelined with the wire)
    i860_tx_occupancy: float = 3.0
    #: i860 RX firmware: fixed per-packet latency beyond the DMA
    i860_rx_latency: float = 5.8
    #: i860 RX firmware: per-packet occupancy
    i860_rx_occupancy: float = 3.0
    #: MSMU inter-packet gap on the wire (tunes r_inf to 34.3 MB/s)
    msmu_gap: float = 0.13


@dataclass(frozen=True)
class SwitchParams:
    """The high-performance switch (§1.2)."""

    #: hardware latency per traversal (OCR "00ns" -> 500 ns)
    latency: float = 0.5
    #: link bandwidth, bytes/us (=MB/s)
    link_rate: float = 40.0


@dataclass(frozen=True)
class GenericNICParams:
    """LogP-style NIC for the Table 4 peer machines.

    ``o_send``/``o_recv`` are per-message host overheads charged by the
    software layer; ``latency`` is the one-way network latency; ``rate``
    the link bandwidth in MB/s.  These machines are modelled reliable (the
    paper's AM ports on them do not need the SP's NACK machinery for the
    benchmarks shown).
    """

    o_send: float
    o_recv: float
    latency: float
    rate: float


@dataclass(frozen=True)
class MachineParams:
    """A complete machine description."""

    name: str
    nodes_kind: str  # "sp" or "generic"
    host: HostParams = field(default_factory=HostParams)
    adapter: Optional[AdapterParams] = None
    switch: Optional[SwitchParams] = None
    nic: Optional[GenericNICParams] = None

    def __post_init__(self) -> None:
        if self.nodes_kind == "sp" and (self.adapter is None or self.switch is None):
            raise ValueError("SP machine needs adapter and switch params")
        if self.nodes_kind == "generic" and self.nic is None:
            raise ValueError("generic machine needs NIC params")


# ---------------------------------------------------------------------------
# The SP itself
# ---------------------------------------------------------------------------

def sp_thin_params() -> MachineParams:
    """A model-390 thin-node SP — the configuration of §2 and Figs 8/9."""
    return MachineParams(
        name="IBM SP (thin nodes)",
        nodes_kind="sp",
        host=HostParams(kind="thin", cache_line=64),
        adapter=AdapterParams(),
        switch=SwitchParams(),
    )


def sp_wide_params() -> MachineParams:
    """A model-590 wide-node SP (Figs 10/11).

    Wide nodes have 256-byte cache lines and a faster memory system (fewer
    flushes per packet, faster copies) but the paper shows MPI-AM's
    small-message latency slightly *higher* on wide nodes (MPI-AM was
    developed on thin ones, §4.3): PIO stores post slightly slower through
    the wide node's deeper store path.
    """
    return MachineParams(
        name="IBM SP (wide nodes)",
        nodes_kind="sp",
        host=HostParams(
            kind="wide",
            cache_line=256,
            flush_line=0.42,
            copy_rate=200.0,
            mc_pio=1.15,
        ),
        adapter=AdapterParams(),
        switch=SwitchParams(),
    )


# ---------------------------------------------------------------------------
# Table 4 peer machines.  (CPU columns: CM-5 = 33 MHz Sparc-2; Meiko and
# U-Net cluster = 40-60 MHz Sparc-20; flop/intop costs calibrated so the
# Split-C compute phases land near Table 5.)
# ---------------------------------------------------------------------------

def cm5_params() -> MachineParams:
    """TMC CM-5: 3 us overhead, 12 us round trip, 10 MB/s."""
    return MachineParams(
        name="TMC CM-5",
        nodes_kind="generic",
        host=HostParams(
            kind="cm5",
            poll_empty=0.6,
            poll_per_packet=0.9,
            copy_rate=25.0,
            flop_us=1.0 / 5.0,
            intop_us=1.0 / 14.0,
        ),
        nic=GenericNICParams(o_send=1.6, o_recv=1.4, latency=2.3, rate=10.0),
    )


def meiko_params() -> MachineParams:
    """Meiko CS-2: 11 us overhead, 25 us round trip, 39 MB/s."""
    return MachineParams(
        name="Meiko CS-2",
        nodes_kind="generic",
        host=HostParams(
            kind="meiko",
            poll_empty=0.8,
            poll_per_packet=1.2,
            copy_rate=40.0,
            flop_us=1.0 / 10.0,
            intop_us=1.0 / 25.0,
        ),
        nic=GenericNICParams(o_send=5.5, o_recv=4.7, latency=1.5, rate=39.0),
    )


def unet_params() -> MachineParams:
    """U-Net over ATM, SS20 cluster: 3.5 us overhead, 66 us RTT, 14 MB/s."""
    return MachineParams(
        name="U-Net ATM cluster",
        nodes_kind="generic",
        host=HostParams(
            kind="unet",
            poll_empty=0.7,
            poll_per_packet=1.0,
            copy_rate=38.0,
            flop_us=1.0 / 10.0,
            intop_us=1.0 / 25.0,
        ),
        nic=GenericNICParams(o_send=1.9, o_recv=1.6, latency=29.5, rate=14.0),
    )


MACHINES: Dict[str, "MachineParams"] = {}


def _register_defaults() -> None:
    MACHINES["sp-thin"] = sp_thin_params()
    MACHINES["sp-wide"] = sp_wide_params()
    MACHINES["cm5"] = cm5_params()
    MACHINES["meiko"] = meiko_params()
    MACHINES["unet"] = unet_params()


_register_defaults()


def machine_params(name: str) -> MachineParams:
    """Look up a registered machine configuration by name."""
    try:
        return MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None


def with_overrides(base: MachineParams, **adapter_overrides) -> MachineParams:
    """Copy a machine config with adapter fields replaced (ablation helper)."""
    if base.adapter is None:
        raise ValueError("machine has no adapter to override")
    return replace(base, adapter=replace(base.adapter, **adapter_overrides))
