"""The SP's high-performance switch (§1.2).

A cut-through multistage network: ~0.5 us hardware latency per traversal,
40 MB/s links, four routes between every pair of nodes.  The sending
adapter already paces packets at input-link rate (its TX occupancy), so the
switch model adds (a) the fixed hardware latency and (b) serialization on
the *destination* link when several senders converge on one receiver —
which is exactly the situation the paper calls out for MPICH's generic
``MPI_Alltoall`` in the FT benchmark (§4.4).

A fault-injection hook supports the test suite's packet-loss campaigns
(the flow-control layer must recover via NACK/go-back-N).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.hardware.packet import Packet
from repro.hardware.params import SwitchParams
from repro.sim import Simulator
from repro.sim.shard import OP_CROSS
from repro.sim.stats import StatRegistry


class Switch:
    """Routes packets between adapters registered with :meth:`attach`."""

    def __init__(self, sim: Simulator, params: SwitchParams):
        self.sim = sim
        self.params = params
        self._adapters: Dict[int, "TB2Adapter"] = {}  # noqa: F821
        #: when each destination's output link next frees up
        self._dest_link_free: Dict[int, float] = {}
        self.stats = StatRegistry("switch.")
        # per-packet counter resolved once (hot path)
        self._c_packets_routed = self.stats.counter("packets_routed")
        # per-packet constants (SwitchParams is frozen, so never stale)
        self._latency = params.latency
        self._link_rate = params.link_rate
        # cross-shard delivery seam, resolved once (hot path): on a
        # ShardedSimulator this routes the event into the destination
        # node's shard; the sequential engine ignores the shard id
        self._post = sim.post_cross
        self._sharded = sim.sharded
        if self._sharded:
            # the parallel (workers > 1) backend replays deferred
            # injections through the machine's switch — register it
            sim._switch = self
        #: observability hub (set by Observatory.attach; None = untraced)
        self.obs = None
        #: queue-wait histogram resolved once per hub (hot path)
        self._queue_hist = None
        #: optional hook: return True to drop this packet in the fabric
        self.fault_injector: Optional[Callable[[Packet], bool]] = None
        #: optional :class:`~repro.faults.injector.FaultInjector` (set by
        #: ``install_faults``; duck-typed so the hardware stays
        #: independent of ``repro.faults``): richer fabric faults —
        #: drop, duplicate, reorder, corrupt
        self.faults = None
        #: packets accepted but not yet handed to a destination adapter;
        #: quiesce predicates need this — a machine is not drained while
        #: the fabric still holds traffic nobody's FIFO shows yet
        self.in_flight = 0
        #: cumulative wire time serialized onto each destination link
        #: (µs); only accumulated under an attached Observatory — the
        #: metrics sampler differences it into per-link utilization
        self.link_busy_us: Dict[int, float] = {}

    def attach(self, node_id: int, adapter: "TB2Adapter") -> None:  # noqa: F821
        if node_id in self._adapters:
            raise ValueError(f"node {node_id} already attached")
        self._adapters[node_id] = adapter
        self._dest_link_free[node_id] = 0.0
        self.link_busy_us[node_id] = 0.0

    @property
    def node_count(self) -> int:
        return len(self._adapters)

    def inject(self, packet: Packet, wire_exit_time: float) -> None:
        """Accept a packet whose input-link serialization completes at
        ``wire_exit_time`` (sender adapter computed it); deliver it to the
        destination adapter after switch latency plus any destination-link
        queueing."""
        adapters = self._adapters
        if packet.dst not in adapters:
            raise KeyError(f"packet addressed to unattached node {packet.dst}")
        if self._sharded and self.sim._op_log is not None:
            # shard-worker mode: every fabric decision (fault RNG draw,
            # destination-link queueing, observability accounting) must
            # happen exactly once, in global packet order, on the parent
            # sequencer's authoritative switch — defer the whole
            # injection into the replay op stream
            self.sim._op_log.append((OP_CROSS, wire_exit_time, packet))
            self.sim._op_entries.append(None)
            return
        self._c_packets_routed.value += 1
        if self.fault_injector is not None and self.fault_injector(packet):
            self.stats.count("packets_dropped_fault")
            if self.obs is not None:
                self.obs.packet_dropped(packet, "fault_injector")
            return
        reorder_hold = 0.0
        duplicate: Optional[Packet] = None
        dup_delay = 0.0
        if self.faults is not None:
            act = self.faults.at_switch(packet, self.sim.now)
            if act is not None:
                # ``at_switch`` returns a single action or a list of them
                # (stock FaultInjector fires at most one rule per packet;
                # custom injectors may combine, e.g. reorder + duplicate).
                acts = act if isinstance(act, (list, tuple)) else (act,)
                for act in acts:
                    if act.kind == "drop":
                        self.stats.count("packets_dropped_fault")
                        if self.obs is not None:
                            self.obs.packet_dropped(packet, "fault_drop")
                        return
                    if act.kind == "corrupt":
                        # the corrupted clone travels instead of the
                        # original; the receive adapter's CRC check will
                        # reject it
                        packet = act.packet
                        self.stats.count("packets_corrupted_fault")
                    elif act.kind == "reorder":
                        reorder_hold = act.delay_us
                        self.stats.count("packets_reordered_fault")
                    elif act.kind == "duplicate":
                        duplicate = act.packet
                        dup_delay = act.delay_us
                        self.stats.count("packets_duplicated_fault")
        dst = packet.dst
        dlf = self._dest_link_free
        wire_time = packet.wire_bytes / self._link_rate
        link_free = dlf[dst]
        start = wire_exit_time if wire_exit_time > link_free else link_free
        queueing = start - wire_exit_time
        if queueing > 0:
            self.stats.count("dest_link_queued")
        dlf[dst] = start + wire_time
        deliver_at = start + self._latency + reorder_hold
        if self.obs is not None:
            self.link_busy_us[dst] += wire_time
            h = self._queue_hist
            if h is None:
                h = self._queue_hist = self.obs.hist("switch.queue_us")
            h.observe(queueing)
            span = self.obs.spans.get(packet.trace_id)  # inlined mark_packet
            if span is not None:
                span.marks["sw_deliver"] = deliver_at
                span.queued_us += queueing
        self.in_flight += 1
        self._post(dst, deliver_at, self._hand_off, adapters[dst], packet)
        if duplicate is not None:
            # The fabric's stray copy trails the original by the rule's
            # delay, but it still occupies the destination link for its own
            # wire time — otherwise the duplicate overlaps the next
            # packet's serialization and the link briefly carries two
            # packets at once.  A reorder rule targets the *original*
            # packet, so the copy is delivered without its hold; queueing
            # behind earlier traffic counts toward ``dest_link_queued``
            # like any other packet.
            dup_dst = duplicate.dst
            dup_ready = start + dup_delay
            dup_link_free = dlf[dup_dst]
            dup_start = dup_link_free if dup_link_free > dup_ready else dup_ready
            if dup_start > dup_ready:
                self.stats.count("dest_link_queued")
            dlf[dup_dst] = dup_start + wire_time
            self.stats.count("dup_link_charged")
            if self.obs is not None:
                self.link_busy_us[dup_dst] += wire_time
            self.in_flight += 1
            self._post(dup_dst, dup_start + self._latency,
                       self._hand_off, adapters[dup_dst],
                       duplicate)

    def _hand_off(self, adapter, packet: Packet) -> None:
        self.in_flight -= 1
        adapter.on_wire_arrival(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Switch({self.node_count} nodes)"
