"""MPI over Active Messages — MPICH architecture (§4).

The implementation mirrors the paper's MPICH port:

* an **abstract device interface** (:mod:`repro.mpi.adi`) whose basic
  point-to-point primitives run over SP AM;
* a **buffered protocol** for small messages: each receiver dedicates a
  16 KB region per peer; senders allocate space in it *locally* (no
  communication), ``am_store`` the envelope + payload, and get the space
  back through free replies (:mod:`repro.mpi.protocol`);
* a **rendez-vous protocol** for large messages, with the AM-rule-imposed
  deferral of the data store to the progress engine;
* the paper's §4.2 optimizations, each independently switchable for the
  ablation benchmarks: binned receive-buffer allocation, combined free
  replies, and the **hybrid** buffered/rendez-vous protocol that ships a
  4 KB prefix while waiting for the receive address;
* MPICH's **generic collectives** built on point-to-point — including the
  naive ``Alltoall`` whose hot-spotting the paper blames for FT's gap;
* **MPI-F** (:mod:`repro.mpi.mpif`), IBM's native MPI, modelled over the
  same transport substrate MPL uses, with its published protocol shape
  (eager/rendez-vous switch and the §4.3 bandwidth dip).
"""

from repro.mpi.comm import Communicator
from repro.mpi.config import MPIConfig, OPTIMIZED, UNOPTIMIZED
from repro.mpi.mpif import attach_mpif
from repro.mpi.mpi import MPI, attach_mpi
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status

__all__ = [
    "MPI",
    "attach_mpi",
    "attach_mpif",
    "MPIConfig",
    "OPTIMIZED",
    "UNOPTIMIZED",
    "Communicator",
    "Request",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
]
