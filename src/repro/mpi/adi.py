"""The abstract device interface: MPICH's machine layer over SP AM (§4).

One :class:`ADI` per node owns:

* the per-peer receive regions (16 KB each) and the sender-side
  allocators of the *remote* regions,
* the posted-receive queue and the unexpected-message list,
* the rendez-vous machinery — including the AM-rule-imposed deferral:
  "the handler for the receive buffer address message is not allowed to
  do the actual data transfer...  Instead, it places the information in a
  list, and the store is performed by ... any MPI communication function
  that explicitly polls the network" (§4.1),
* the free-reply plumbing, combined or per-message (§4.2),
* the hybrid prefix path (§4.2).

All handlers are module-level so their ids agree across nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.hardware.cache import copy_cost
from repro.mpi.allocator import BinnedAllocator, FirstFitAllocator
from repro.mpi.config import MPIConfig
from repro.mpi.protocol import (
    KIND_EAGER,
    KIND_PREFIX,
    pack_free,
    pack_rts_len,
    unpack_free,
    unpack_rts_len,
)
from repro.mpi.request import Request
from repro.mpi.status import matches
from repro.sim.stats import StatRegistry


# ---------------------------------------------------------------------------
# module-level AM handlers
# ---------------------------------------------------------------------------

def _adi(token) -> "ADI":
    return token.am.node.mpi.adi


def _h_eager_arrived(token, addr, nbytes, tag, context, op_token, kind):
    """Store-completion handler for a buffered-protocol message.

    The MPI envelope travels in the store's handler arguments, so the
    data is stored straight from the user buffer into the region — no
    staging copy and no envelope bytes on the wire (§4.1).
    """
    adi = _adi(token)
    yield from adi._on_eager(token, token.src, addr, nbytes,
                             tag, context, op_token, kind)


def _h_eager0(token, tag, context, op_token):
    """Zero-byte eager message (am_store cannot carry empty transfers)."""
    adi = _adi(token)
    yield from adi._on_eager(token, token.src, None, 0,
                             tag, context, op_token, KIND_EAGER)


def _h_free(token, *words):
    """Frees for my region at the peer (packed offset/len words)."""
    adi = _adi(token)
    adi._on_frees(token.src, words)


def _h_rts(token, tag, context, len_word, op_token):
    """Rendez-vous request-to-send (len_word packs total + prefix length)."""
    adi = _adi(token)
    total_len, prefix_len = unpack_rts_len(len_word)
    yield from adi._on_rts(token, token.src, tag, context, total_len,
                           prefix_len, op_token)


def _h_rv_addr(token, op_token, addr):
    """Receive-buffer address arriving at the sender (reply or request)."""
    adi = _adi(token)
    adi._on_rv_addr(token.src, op_token, addr)


def _h_rdvz_done(token, addr, nbytes, op_token):
    """Completion of the rendez-vous data store, at the receiver."""
    adi = _adi(token)
    yield from adi._on_rdvz_done(token.src, op_token)


_HANDLERS = (_h_eager_arrived, _h_eager0, _h_free, _h_rts, _h_rv_addr,
             _h_rdvz_done)


class _UnexpectedEager:
    __slots__ = ("src", "tag", "context", "total_len", "region_offset",
                 "prefix_token")

    def __init__(self, src, tag, context, total_len, region_offset,
                 prefix_token=None):
        self.src = src
        self.tag = tag
        self.context = context
        self.total_len = total_len
        self.region_offset = region_offset
        self.prefix_token = prefix_token


class _UnexpectedRts:
    __slots__ = ("src", "tag", "context", "total_len", "prefix_len",
                 "op_token")

    def __init__(self, src, tag, context, total_len, prefix_len, op_token):
        self.src = src
        self.tag = tag
        self.context = context
        self.total_len = total_len
        self.prefix_len = prefix_len
        self.op_token = op_token


class _SendState:
    """Sender-side state of one rendez-vous transfer."""

    __slots__ = ("dst", "data_addr", "total_len", "prefix_len", "request",
                 "remote_addr", "store_issued")

    def __init__(self, dst, data_addr, total_len, prefix_len, request):
        self.dst = dst
        self.data_addr = data_addr
        self.total_len = total_len
        self.prefix_len = prefix_len
        self.request = request
        self.remote_addr: Optional[int] = None
        self.store_issued = False


class _RecvState:
    """Receiver-side state of one in-progress rendez-vous."""

    __slots__ = ("request", "src", "need_prefix", "main_done")

    def __init__(self, request, src, need_prefix=0, main_done=False):
        self.request = request
        self.src = src
        #: bytes of hybrid prefix still expected (0 = none/already placed)
        self.need_prefix = need_prefix
        self.main_done = main_done


class ADI:
    """MPICH abstract device interface over Active Messages, one per node."""

    def __init__(self, node, nprocs: int, config: MPIConfig,
                 region_addrs: Dict[Tuple[int, int], int]):
        """``region_addrs[(receiver, sender)]`` is the base address, in the
        receiver's memory, of the region dedicated to that sender (the
        startup address exchange)."""
        self.node = node
        self.am = node.am
        self.rank = node.id
        self.nprocs = nprocs
        self.cfg = config
        self.stats = StatRegistry(f"adi[{node.id}].")
        self.region_addrs = region_addrs
        # sender-side allocators for MY region at each peer
        self._alloc: Dict[int, object] = {}
        for peer in range(nprocs):
            if peer == self.rank:
                continue
            if config.binned_allocator:
                self._alloc[peer] = BinnedAllocator(
                    config.buffer_per_peer, config.bin_size, config.bin_count)
            else:
                self._alloc[peer] = FirstFitAllocator(config.buffer_per_peer)
        self.posted: List[Request] = []
        self.unexpected: Deque[object] = deque()
        #: frees I owe each sender (offset, len) of their region here
        self._frees_owed: Dict[int, List[Tuple[int, int]]] = {}
        #: rendez-vous state
        self._send_states: Dict[int, _SendState] = {}
        self._recv_states: Dict[Tuple[int, int], _RecvState] = {}
        #: hybrid prefixes that arrived before their rts matched a recv,
        #: keyed (src, op_token) -> (region_offset, length)
        self._prefixes: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._next_token = 1
        #: scratch staging area for sends given as bytes
        self._scratch = node.memory
        #: request-lifecycle checker (repro.check), None when unchecked
        self.check = None
        for h in _HANDLERS:
            self.am.register(h)

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------

    def start_send(self, dst_world: int, data_addr: int, nbytes: int,
                   tag: int, context: int, request: Request):
        """Begin a send; the request completes via progress()."""
        if dst_world == self.rank:
            raise ValueError("self-sends go through the loopback in mpi.py")
        yield from self.node.compute(self.cfg.send_fixed)
        if nbytes <= self.cfg.eager_max:
            yield from self._send_buffered(dst_world, data_addr, nbytes,
                                           tag, context, request)
        else:
            yield from self._send_rendezvous(dst_world, data_addr, nbytes,
                                             tag, context, request)

    def _alloc_remote(self, dst: int, nbytes: int):
        """Allocate in my region at dst, charging the walk cost."""
        alloc = self._alloc[dst]
        cost = (self.cfg.binned_cost
                if self.cfg.binned_allocator and nbytes <= self.cfg.bin_size
                else self.cfg.first_fit_cost
                + 0.15 * getattr(alloc, "walk_length", 1))
        yield from self.node.compute(cost)
        off = alloc.alloc(nbytes)
        return off

    def _send_buffered(self, dst, data_addr, nbytes, tag, context, request):
        token = self._take_token()
        if nbytes == 0:
            yield from self.am.request_3(dst, _h_eager0, tag, context, token)
            request.complete()
            self.stats.count("eager_sends")
            return
        off = yield from self._alloc_remote(dst, nbytes)
        attempts = 0
        while off is None and attempts < 4:
            # receiver's region exhausted: give frees a chance to arrive
            self.stats.count("eager_stalls")
            yield from self._wait_progress()
            off = yield from self._alloc_remote(dst, nbytes)
            attempts += 1
        if off is None:
            # Progress guarantee: the receiver may be sitting on our
            # region's space as unconsumed unexpected messages while it
            # waits for THIS message — spinning here would deadlock.
            # Like the hybrid prefix ("if no buffer space can be
            # allocated ... simply reverts to a regular rendez-vous
            # protocol"), fall back to rendez-vous, which needs no space.
            self.stats.count("eager_fallback_rendezvous")
            yield from self._send_rendezvous(dst, data_addr, nbytes,
                                             tag, context, request)
            return
        remote = self.region_addrs[(dst, self.rank)] + off
        # the envelope rides in the handler args; the store reads the
        # user buffer directly — zero staging copies (§4.1)
        yield from self.am.store_async(
            dst, data_addr, remote, nbytes, handler=_h_eager_arrived,
            arg=(tag, context, token, KIND_EAGER),
            completion_fn=lambda _op: request.complete())
        # eager sends complete when the store is acknowledged
        self.stats.count("eager_sends")

    def _send_rendezvous(self, dst, data_addr, nbytes, tag, context, request):
        token = self._take_token()
        prefix_len = 0
        prefix_off = None
        if self.cfg.hybrid:
            # §4.2: ship a prefix into the buffered region while waiting
            # for the rendez-vous reply; fall back silently if no space
            want = min(self.cfg.prefix_bytes, nbytes)
            prefix_off = yield from self._alloc_remote(dst, want)
            if prefix_off is not None:
                prefix_len = want
        st = _SendState(dst, data_addr, nbytes, prefix_len, request)
        self._send_states[token] = st
        # the rts goes first — it is one packet and must not queue behind
        # the prefix data on the (ordered) request channel
        yield from self.am.request_4(dst, _h_rts, tag, context,
                                     pack_rts_len(nbytes, prefix_len), token)
        if prefix_len:
            remote = self.region_addrs[(dst, self.rank)] + prefix_off
            yield from self.am.store_async(
                dst, data_addr, remote, prefix_len,
                handler=_h_eager_arrived,
                arg=(tag, context, token, KIND_PREFIX))
            self.stats.count("hybrid_prefixes")
        self.stats.count("rendezvous_sends")

    def _take_token(self) -> int:
        t = self._next_token
        self._next_token += 1
        return t

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def post_recv(self, request: Request):
        """Post a receive; match unexpected traffic first."""
        yield from self.node.compute(self.cfg.recv_fixed)
        ck = self.check
        if ck is not None:
            ck.on_posted(request)
        hit = self._match_unexpected(request)
        if hit is None:
            self.posted.append(request)
            return
        if ck is not None:
            ck.on_matched(request)
        if isinstance(hit, _UnexpectedEager):
            yield from self._consume_eager(hit, request)
        else:
            yield from self._accept_rts(hit, request, in_handler=False)

    def _match_unexpected(self, request: Request):
        for i, entry in enumerate(self.unexpected):
            if entry.context == request.comm.context and matches(
                    request.peer, request.tag, entry.src, entry.tag):
                del self.unexpected[i]
                return entry
        return None

    def _find_posted(self, src: int, tag: int, context: int):
        for i, req in enumerate(self.posted):
            if req.comm.context == context and matches(
                    req.peer, req.tag, src, tag):
                req = self.posted.pop(i)
                if self.check is not None:
                    self.check.on_matched(req)
                return req
        return None

    # -- buffered arrivals ---------------------------------------------------

    def _on_eager(self, token, src, addr, nbytes,
                  tag, context, op_token, kind):
        """A store into my region from ``src`` completed (eager or prefix)."""
        total_len = nbytes
        if addr is not None:
            region_base = self.region_addrs[(self.rank, src)]
            region_offset = addr - region_base
        else:
            region_offset = None  # zero-byte message: nothing to free
        if kind == KIND_PREFIX:
            yield from self._on_prefix(token, src, region_offset,
                                       nbytes, op_token)
            return
        req = self._find_posted(src, tag, context)
        if req is None:
            yield from self.node.compute(self.cfg.unexpected_cost)
            self.unexpected.append(_UnexpectedEager(
                src, tag, context, total_len, region_offset))
            self.stats.count("eager_unexpected")
            return
        data = (self.node.memory.read(addr, total_len)
                if total_len else b"")
        yield from self.node.compute(copy_cost(total_len, self.node.host)
                                     + self.cfg.completion_cost)
        self._place(req, data, src, tag)
        req.complete(data, source=src, tag=tag)
        self.stats.count("eager_matched")
        if region_offset is not None:
            yield from self._reply_frees(token, src,
                                         (region_offset, total_len))

    def _reply_frees(self, token, src, new_free):
        """Free buffer space via the store reply, combining if configured."""
        owed = self._frees_owed.setdefault(src, [])
        owed.append(new_free)
        if self.cfg.combined_frees and not self._frees_due(src):
            return  # batch until a combined reply is worthwhile (§4.2)
        words = [pack_free(o, l) for o, l in owed[: self.cfg.frees_per_reply]]
        del owed[: len(words)]
        reply = getattr(token, f"reply_{len(words)}")
        yield from reply(_h_free, *words)
        self.stats.count("free_replies")

    def _on_frees(self, src, words):
        for w in words:
            if w == 0:
                continue
            off, length = unpack_free(w)
            self._alloc[src].free(off, length)
            self.stats.count("frees_received")

    def _consume_eager(self, entry: _UnexpectedEager, request: Request):
        """A posted receive matched a queued unexpected eager message."""
        data = b""
        if entry.total_len:
            base = (self.region_addrs[(self.rank, entry.src)]
                    + entry.region_offset)
            data = self.node.memory.read(base, entry.total_len)
        yield from self.node.compute(copy_cost(entry.total_len, self.node.host)
                                     + self.cfg.completion_cost)
        self._place(request, data, entry.src, entry.tag)
        request.complete(data, source=entry.src, tag=entry.tag)
        # queue the free; it goes back batched (reply piggyback or an
        # explicit free request under pressure)
        if entry.region_offset is not None:
            self._frees_owed.setdefault(entry.src, []).append(
                (entry.region_offset, entry.total_len))
            yield from self._flush_due_frees(entry.src)

    def _frees_due(self, peer: int) -> bool:
        """Frees are flushed when enough have batched up — or when the
        bytes held would let the sender's region run dry (without this,
        a sender stalled on allocation and a receiver batting frees by
        count would deadlock)."""
        owed = self._frees_owed.get(peer, [])
        if not owed:
            return False
        if not self.cfg.combined_frees:
            return True
        if len(owed) >= self.cfg.frees_per_reply:
            return True
        return (sum(l for _o, l in owed)
                >= self.cfg.buffer_per_peer // 4)

    def _flush_due_frees(self, peer: int):
        while self._frees_due(peer):
            owed = self._frees_owed[peer]
            words = [pack_free(o, l) for o, l in owed[:4]]
            del owed[:4]
            req = getattr(self.am, f"request_{len(words)}")
            yield from req(peer, _h_free, *words)
            self.stats.count("free_requests")

    # -- rendez-vous --------------------------------------------------------

    def _on_prefix(self, token, src, region_offset, length, op_token):
        """A hybrid prefix landed (always after its rts, in-order).

        If the rts already matched a posted receive, copy the prefix into
        place now; otherwise stash it for the eventual match."""
        self.stats.count("prefixes_received")
        rs = self._recv_states.get((src, op_token))
        if rs is None:
            self._prefixes[(src, op_token)] = (region_offset, length)
            return
        yield from self._place_prefix(rs, src, region_offset, length)
        yield from self._maybe_finish_recv(src, op_token)

    def _on_rts(self, token, src, tag, context, total_len, prefix_len,
                op_token):
        req = self._find_posted(src, tag, context)
        if req is None:
            yield from self.node.compute(self.cfg.unexpected_cost)
            self.unexpected.append(_UnexpectedRts(
                src, tag, context, total_len, prefix_len, op_token))
            self.stats.count("rts_unexpected")
            return
        yield from self._accept_rts(
            _UnexpectedRts(src, tag, context, total_len, prefix_len,
                           op_token),
            req, in_handler=True, token=token)

    def _accept_rts(self, entry: _UnexpectedRts, request: Request,
                    in_handler: bool, token=None):
        """Provide the receive address to the sender; handle the prefix."""
        if request.recv_addr is None:
            request.recv_addr = self.node.memory.alloc(entry.total_len)
        request.nbytes = entry.total_len
        key = (entry.src, entry.op_token)
        rs = _RecvState(request, entry.src, need_prefix=entry.prefix_len)
        self._recv_states[key] = rs
        stashed = self._prefixes.pop(key, None)
        if stashed is not None:
            # unposted-receive case: the prefix landed before this match
            yield from self._place_prefix(rs, entry.src, *stashed)
        if entry.total_len == entry.prefix_len:
            rs.main_done = True  # nothing left for the sender to store
            yield from self._maybe_finish_recv(entry.src, entry.op_token)
        if in_handler:
            yield from token.reply_2(_h_rv_addr, entry.op_token,
                                     request.recv_addr + entry.prefix_len)
        else:
            yield from self.am.request_2(entry.src, _h_rv_addr,
                                         entry.op_token,
                                         request.recv_addr + entry.prefix_len)

    def _place_prefix(self, rs: _RecvState, src, region_offset, plen):
        base = self.region_addrs[(self.rank, src)] + region_offset
        data = self.node.memory.read(base, plen)
        self.node.memory.write(rs.request.recv_addr, data)
        yield from self.node.compute(copy_cost(plen, self.node.host))
        self._frees_owed.setdefault(src, []).append((region_offset, plen))
        rs.need_prefix = 0

    def _on_rv_addr(self, src, op_token, addr):
        st = self._send_states.get(op_token)
        if st is None:
            raise AssertionError(f"rv_addr for unknown token {op_token}")
        st.remote_addr = addr
        self.stats.count("rv_addrs")

    def _pump_rendezvous(self):
        """Issue deferred rendez-vous stores (the §4.1 restriction)."""
        for tok, st in list(self._send_states.items()):
            if st.remote_addr is None or st.store_issued:
                continue
            st.store_issued = True
            remaining = st.total_len - st.prefix_len
            if remaining == 0:
                del self._send_states[tok]
                st.request.complete()
                continue
            def _finish(_op, st=st, tok=tok):
                self._send_states.pop(tok, None)
                st.request.complete()
            yield from self.am.store_async(
                st.dst, st.data_addr + st.prefix_len, st.remote_addr,
                remaining, handler=_h_rdvz_done, arg=tok,
                completion_fn=_finish)
            self.stats.count("rendezvous_stores")

    def _on_rdvz_done(self, src, op_token):
        rs = self._recv_states.get((src, op_token))
        if rs is None:
            raise AssertionError(
                f"rendezvous completion for unknown ({src}, {op_token})")
        rs.main_done = True
        yield from self._maybe_finish_recv(src, op_token)

    def _maybe_finish_recv(self, src, op_token):
        key = (src, op_token)
        rs = self._recv_states.get(key)
        if rs is None or not rs.main_done or rs.need_prefix:
            return
        del self._recv_states[key]
        req = rs.request
        data = self.node.memory.read(req.recv_addr, req.nbytes)
        yield from self.node.compute(self.cfg.completion_cost)
        req.complete(data, source=src, tag=req.tag if req.tag >= 0 else 0)
        self.stats.count("rendezvous_recvs")

    # ------------------------------------------------------------------
    # data placement + progress
    # ------------------------------------------------------------------

    def _place(self, request: Request, data: bytes, src: int, tag: int):
        if request.recv_addr is not None and data:
            self.node.memory.write(request.recv_addr, data)

    def progress(self):
        """One progress cycle: poll AM, pump deferred stores and frees."""
        yield from self.am.poll()
        if self._send_states:
            yield from self._pump_rendezvous()
        if self._frees_owed:
            for peer in list(self._frees_owed):
                yield from self._flush_due_frees(peer)

    def _wait_progress(self):
        """Blocked progress: no simulated spin-poll here — the AM layer's
        ``_wait_progress`` sleeps on the adapter arrival event under a
        cancellable keep-alive timer, which is what makes the engine's
        idle fast-forward safe to take through this path.  The rendezvous
        pump and free flush are gated on having work: an idle spin would
        otherwise build two no-op generators and a list per call."""
        yield from self.am._wait_progress()
        if self._send_states:
            yield from self._pump_rendezvous()
        if self._frees_owed:
            for peer in list(self._frees_owed):
                yield from self._flush_due_frees(peer)
