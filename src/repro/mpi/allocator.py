"""Sender-side allocation of the receiver's per-peer buffer (§4.1–4.2).

"To send a message, the sender allocates space within its buffer at the
receiver (this allocation is done entirely at the sender side and involves
no communication)."  Frees arrive later in (possibly combined) replies.

Two strategies, matching the paper:

* **first-fit** over a free list — the basic implementation, whose walk
  "turned out to be a major cost in sending small messages";
* **binned**: eight 1 KB bins for small messages, falling back to
  first-fit for intermediate sizes — the §4.2 optimization.

Invariants (property-tested): allocations never overlap, never exceed the
region, and freeing returns the exact capacity.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class FirstFitAllocator:
    """Classic address-ordered first-fit with coalescing free list."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: sorted list of (offset, length) free extents
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        #: conservation checker (repro.check), None when unchecked
        self.check = None

    def alloc(self, nbytes: int) -> Optional[int]:
        """Allocate ``nbytes``; returns the offset or None when full."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        for i, (off, length) in enumerate(self._free):
            if length >= nbytes:
                if length == nbytes:
                    del self._free[i]
                else:
                    self._free[i] = (off + nbytes, length - nbytes)
                if self.check is not None:
                    self.check.on_alloc(self, off, nbytes)
                return off
        return None

    def free(self, offset: int, nbytes: int) -> None:
        """Return an allocation to the region (coalescing)."""
        if self.check is not None:
            # before the structural guards, so a bad free is named by the
            # checker rather than surfacing as a bare ValueError
            self.check.on_free(self, offset, nbytes)
        if nbytes <= 0:
            raise ValueError("free of non-positive size")
        if offset < 0 or offset + nbytes > self.capacity:
            raise ValueError("free outside the region")
        # insert sorted, coalescing with neighbours
        import bisect

        i = bisect.bisect_left(self._free, (offset, 0))
        # guard against overlapping frees (double-free corruption)
        if i > 0:
            poff, plen = self._free[i - 1]
            if poff + plen > offset:
                raise ValueError("overlapping free (double free?)")
        if i < len(self._free) and offset + nbytes > self._free[i][0]:
            raise ValueError("overlapping free (double free?)")
        self._free.insert(i, (offset, nbytes))
        self._coalesce(i)

    def _coalesce(self, i: int) -> None:
        # merge with next
        if i + 1 < len(self._free):
            off, length = self._free[i]
            noff, nlen = self._free[i + 1]
            if off + length == noff:
                self._free[i] = (off, length + nlen)
                del self._free[i + 1]
        # merge with previous
        if i > 0:
            poff, plen = self._free[i - 1]
            off, length = self._free[i]
            if poff + plen == off:
                self._free[i - 1] = (poff, plen + length)
                del self._free[i]

    @property
    def free_bytes(self) -> int:
        """Total bytes currently free."""
        return sum(length for _, length in self._free)

    @property
    def walk_length(self) -> int:
        """Free-list extent count (cost model: the first-fit walk)."""
        return len(self._free)


class BinnedAllocator:
    """§4.2: 1 KB bins for small messages over a unified first-fit arena.

    Bins are ordinary 1 KB first-fit allocations kept in a small cache
    (up to ``bin_count``): a small message pops a cached bin without
    walking the free list — the paper's fast path — while large messages
    first-fit over the *whole* region, so an 8 KB eager message is never
    squeezed out by idle bin reservations.  Under pressure (a large
    allocation failing) the cache is flushed back to the free list.
    """

    def __init__(self, capacity: int, bin_size: int = 1024, bin_count: int = 8):
        if bin_size * bin_count >= capacity:
            raise ValueError("bins would consume the whole region")
        self.bin_size = bin_size
        self.bin_count = bin_count
        self.capacity = capacity
        self._arena = FirstFitAllocator(capacity)
        self._cached_bins: List[int] = []
        #: offsets of bin allocations currently handed out
        self._live_bins: set = set()
        #: conservation checker (repro.check), None when unchecked; the
        #: internal arena stays unchecked (its extents are bookkeeping,
        #: not live allocations — bins would double-count)
        self.check = None

    def alloc(self, nbytes: int) -> Optional[int]:
        off = self._alloc_impl(nbytes)
        if off is not None and self.check is not None:
            self.check.on_alloc(self, off, nbytes)
        return off

    def _alloc_impl(self, nbytes: int) -> Optional[int]:
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        if nbytes <= self.bin_size:
            if self._cached_bins:
                off = self._cached_bins.pop()
            else:
                off = self._arena.alloc(self.bin_size)
                if off is None:
                    return self._arena.alloc(nbytes)  # fragmented tail
            if off is not None:
                self._live_bins.add(off)
            return off
        off = self._arena.alloc(nbytes)
        if off is None and self._cached_bins:
            self._flush_cache()
            off = self._arena.alloc(nbytes)
        return off

    def _flush_cache(self) -> None:
        while self._cached_bins:
            self._arena.free(self._cached_bins.pop(), self.bin_size)

    def free(self, offset: int, nbytes: int) -> None:
        if self.check is not None:
            self.check.on_free(self, offset, nbytes)
        if offset in self._cached_bins:
            raise ValueError("double free of bin")
        if offset in self._live_bins:
            self._live_bins.discard(offset)
            if len(self._cached_bins) < self.bin_count:
                self._cached_bins.append(offset)
            else:
                self._arena.free(offset, self.bin_size)
        else:
            self._arena.free(offset, nbytes)

    @property
    def free_bytes(self) -> int:
        return (self._arena.free_bytes
                + len(self._cached_bins) * self.bin_size)

    @property
    def walk_length(self) -> int:
        return self._arena.walk_length

    def used_bin(self, offset: int) -> bool:
        """Whether this offset was served from the bin fast path."""
        return offset in self._live_bins or offset in self._cached_bins
