"""Collectives implemented directly over Active Messages — the §5 future work.

"Streamlining nonblocking communication routines and implementing
collective communication functions directly over AM (rather than using
the default MPICH functions built over MPI sends) would improve
performance."

This module implements that suggestion for the two collectives the paper
discusses:

* :func:`am_bcast` — binomial broadcast whose hops are bare ``am_store``\\ s
  into pre-registered buffers: no MPI envelopes, no matching, no
  unexpected-queue bookkeeping on any hop;
* :func:`am_alltoall` — the FT transpose as a staggered schedule of
  direct stores into a pre-exchanged buffer matrix: no per-message MPI
  protocol at all, and no §4.4 hot spot.

Both need a one-time setup collective (:class:`AMCollectiveContext`) that
registers per-node buffer addresses — the kind of persistent collective
state MPICH's generic layer cannot assume, which is exactly why the paper
calls this a specialization.

The ablation benchmark ``bench_ablations.py::test_ablation_am_direct_
collectives`` measures the win over the generic MPICH versions.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence

from repro.mpi.mpi import MPI

_LEN = struct.Struct("<q")


class AMCollectiveContext:
    """Pre-registered buffer space for AM-direct collectives on one node.

    Created collectively by :func:`setup_am_collectives`: every node
    allocates its receive areas and the addresses are exchanged once
    (over MPI) at setup time, after which collectives touch only AM.
    """

    def __init__(self, mpi: MPI, max_bytes: int):
        self.mpi = mpi
        self.am = mpi.node.am
        self.node = mpi.node
        self.rank = mpi.rank
        self.nprocs = mpi.nprocs
        self.max_bytes = max_bytes
        #: bcast landing area on this node (length word + payload)
        self.bcast_addr = self.node.memory.alloc(8 + max_bytes)
        #: alltoall landing area: one slot per source rank
        self.a2a_addr = self.node.memory.alloc(
            self.nprocs * (8 + max_bytes))
        #: remote addresses, filled by setup: rank -> (bcast, a2a)
        self.remote: Dict[int, tuple] = {}
        #: per-collective-call sequence (stamps completion counters)
        self._bcast_seq = 0
        self._a2a_seq = 0
        self._bcast_arrived: Dict[int, bool] = {}
        self._a2a_arrived: Dict[int, int] = {}
        self.node.am_coll = self

    # -- completion handlers (module-level would also do; bound through
    #    the node, mirroring the other layers' pattern) -------------------


def _ctx(token) -> AMCollectiveContext:
    return token.am.node.am_coll


def _h_bcast_arrived(token, addr, nbytes, seq):
    _ctx(token)._bcast_arrived[seq] = True


def _h_a2a_arrived(token, addr, nbytes, seq):
    ctx = _ctx(token)
    ctx._a2a_arrived[seq] = ctx._a2a_arrived.get(seq, 0) + 1


def setup_am_collectives(mpis: Sequence[MPI],
                         max_bytes: int = 65536) -> List[AMCollectiveContext]:
    """Build a context per node and exchange buffer addresses.

    Call once before spawning the node programs (the address exchange is
    done directly — it stands in for a one-time setup collective).
    """
    ctxs = [AMCollectiveContext(mpi, max_bytes) for mpi in mpis]
    for me in ctxs:
        me.am.register(_h_bcast_arrived)
        me.am.register(_h_a2a_arrived)
        for other in ctxs:
            me.remote[other.rank] = (other.bcast_addr, other.a2a_addr)
    return ctxs


def am_bcast(ctx: AMCollectiveContext, data: Optional[bytes],
             root: int = 0) -> bytes:
    """Binomial broadcast over bare am_store hops."""
    size, rank = ctx.nprocs, ctx.rank
    seq = ctx._bcast_seq
    ctx._bcast_seq += 1
    vrank = (rank - root) % size
    if vrank == 0:
        if data is None:
            raise ValueError("root must supply the payload")
        if len(data) > ctx.max_bytes:
            raise ValueError("payload exceeds the registered buffer")
        ctx.node.memory.write(ctx.bcast_addr,
                              _LEN.pack(len(data)) + data)
    else:
        while not ctx._bcast_arrived.pop(seq, False):
            yield from ctx.am._wait_progress()
        raw = ctx.node.memory.read(ctx.bcast_addr, 8)
        nbytes = _LEN.unpack(raw)[0]
        data = ctx.node.memory.read(ctx.bcast_addr + 8, nbytes)
    # forward to binomial children: one am_store each, no MPI envelope
    mask = 1
    while mask < size and not (vrank & mask):
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = ((vrank + mask) + root) % size
            yield from ctx.am.store(
                child, ctx.bcast_addr, ctx.remote[child][0],
                8 + len(data), handler=_h_bcast_arrived, arg=seq)
        mask >>= 1
    return data


def am_alltoall(ctx: AMCollectiveContext,
                chunks: Sequence[bytes]) -> List[bytes]:
    """All-to-all as staggered direct stores (no MPI layer, no hot spot).

    Every rank stores chunk ``dst`` straight into its slot in ``dst``'s
    landing area, starting at ``rank+1`` so no destination is hit by all
    senders at once (the §4.4 fix, below the MPI layer entirely).
    """
    size, rank = ctx.nprocs, ctx.rank
    if len(chunks) != size:
        raise ValueError("need one chunk per destination")
    if any(len(c) > ctx.max_bytes for c in chunks):
        raise ValueError("chunk exceeds the registered slot size")
    seq = ctx._a2a_seq
    ctx._a2a_seq += 1
    slot = 8 + ctx.max_bytes
    # my own chunk lands locally
    ctx.node.memory.write(ctx.a2a_addr + rank * slot,
                          _LEN.pack(len(chunks[rank])) + chunks[rank])
    # stage my outgoing chunks (length-prefixed) in scratch, send staggered
    ops = []
    for i in range(1, size):
        dst = (rank + i) % size
        payload = _LEN.pack(len(chunks[dst])) + chunks[dst]
        scratch = ctx.node.memory.alloc(len(payload))
        ctx.node.memory.write(scratch, payload)
        remote = ctx.remote[dst][1] + rank * slot
        op = yield from ctx.am.store_async(
            dst, scratch, remote, len(payload),
            handler=_h_a2a_arrived, arg=seq)
        ops.append(op)
    # completion: all my sends acked AND all peers' chunks arrived
    for op in ops:
        yield from ctx.am.wait_op(op)
    while ctx._a2a_arrived.get(seq, 0) < size - 1:
        yield from ctx.am._wait_progress()
    ctx._a2a_arrived.pop(seq, None)
    out: List[bytes] = []
    for src in range(size):
        base = ctx.a2a_addr + src * slot
        nbytes = _LEN.unpack(ctx.node.memory.read(base, 8))[0]
        out.append(ctx.node.memory.read(base + 8, nbytes))
    return out
