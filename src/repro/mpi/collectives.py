"""MPICH generic collectives, built on point-to-point (§4, §4.4).

These are deliberately the *generic* algorithms — binomial broadcast and
reduce, gather+broadcast allgather, and the naive rank-ordered
``Alltoall`` whose hot-spotting ("all processors try to send to the same
processor at the same time, rather than spreading out the communication
pattern") is exactly what the paper blames for MPI-AM's FT gap in
Table 6.  ``alltoall_staggered`` implements the fix the paper suggests,
for the ablation benchmark.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.mpi.comm import Communicator

#: reserved tag space for collective traffic
TAG_BARRIER = 1 << 20
TAG_BCAST = 2 << 20
TAG_REDUCE = 3 << 20
TAG_GATHER = 4 << 20
TAG_SCATTER = 5 << 20
TAG_ALLGATHER = 6 << 20
TAG_ALLTOALL = 7 << 20

REDUCE_OPS = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


class MPICollectives:
    """Mixin: collectives in terms of the point-to-point layer."""

    def barrier(self, comm: Optional[Communicator] = None):
        """Dissemination barrier (ceil(log2 P) rounds of sendrecv)."""
        comm = comm or self.comm_world
        size, rank = comm.size, comm.rank
        if size == 1:
            return
        seq = self._collseq(comm)
        k = 0
        while (1 << k) < size:
            dst = (rank + (1 << k)) % size
            src = (rank - (1 << k)) % size
            yield from self.sendrecv(b"", dst, TAG_BARRIER + seq * 32 + k,
                                     0, src, TAG_BARRIER + seq * 32 + k,
                                     comm)
            k += 1

    def bcast(self, data: Optional[bytes], root: int = 0,
              comm: Optional[Communicator] = None) -> bytes:
        """Binomial-tree broadcast; every rank returns the payload."""
        comm = comm or self.comm_world
        size, rank = comm.size, comm.rank
        if size == 1:
            return data
        seq = self._collseq(comm)
        tag = TAG_BCAST + seq
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = ((vrank - mask) + root) % size
                data, _ = yield from self.recv(1 << 26, parent, tag, comm)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < size:
                child = ((vrank + mask) + root) % size
                yield from self.send(data, child, tag, comm)
            mask >>= 1
        return data

    def reduce(self, array: np.ndarray, op: str = "sum", root: int = 0,
               comm: Optional[Communicator] = None) -> Optional[np.ndarray]:
        """Binomial-tree reduction of a numpy array; result at root."""
        comm = comm or self.comm_world
        size, rank = comm.size, comm.rank
        fn = REDUCE_OPS[op]
        acc = np.array(array, copy=True)
        if size == 1:
            return acc
        seq = self._collseq(comm)
        tag = TAG_REDUCE + seq
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = ((vrank & ~mask) + root) % size
                yield from self.send(acc.tobytes(), parent, tag, comm)
                break
            src_v = vrank | mask
            if src_v < size:
                src = (src_v + root) % size
                data, _ = yield from self.recv(acc.nbytes, src, tag, comm)
                incoming = np.frombuffer(data, dtype=acc.dtype).reshape(acc.shape)
                acc = fn(acc, incoming)
                yield from self.node.compute(
                    acc.size * self.node.host.flop_us)
            mask <<= 1
        return acc if rank == root else None

    def allreduce(self, array: np.ndarray, op: str = "sum",
                  comm: Optional[Communicator] = None) -> np.ndarray:
        """Generic MPICH allreduce: reduce to 0, then broadcast."""
        comm = comm or self.comm_world
        acc = yield from self.reduce(array, op, 0, comm)
        raw = yield from self.bcast(acc.tobytes() if comm.rank == 0 else None,
                                    0, comm)
        return np.frombuffer(raw, dtype=array.dtype).reshape(array.shape).copy()

    def gather(self, data: bytes, root: int = 0,
               comm: Optional[Communicator] = None) -> Optional[List[bytes]]:
        """Linear gather to root."""
        comm = comm or self.comm_world
        size, rank = comm.size, comm.rank
        seq = self._collseq(comm)
        tag = TAG_GATHER + seq
        if rank != root:
            yield from self.send(data, root, tag, comm)
            return None
        out: List[Optional[bytes]] = [None] * size
        out[rank] = data
        for _ in range(size - 1):
            d, st = yield from self.recv(1 << 26, -1, tag, comm)
            src_rank = comm.world_ranks.index(st.source)
            out[src_rank] = d
        return out  # type: ignore[return-value]

    def scatter(self, chunks: Optional[Sequence[bytes]], root: int = 0,
                comm: Optional[Communicator] = None) -> bytes:
        """Linear scatter from root."""
        comm = comm or self.comm_world
        size, rank = comm.size, comm.rank
        seq = self._collseq(comm)
        tag = TAG_SCATTER + seq
        if rank == root:
            if chunks is None or len(chunks) != size:
                raise ValueError("root must supply one chunk per rank")
            for r in range(size):
                if r != root:
                    yield from self.send(chunks[r], r, tag, comm)
            return chunks[root]
        data, _ = yield from self.recv(1 << 26, root, tag, comm)
        return data

    def allgather(self, data: bytes,
                  comm: Optional[Communicator] = None) -> List[bytes]:
        """Generic allgather: gather to 0 + broadcast (MPICH fallback)."""
        import pickle

        comm = comm or self.comm_world
        parts = yield from self.gather(data, 0, comm)
        blob = pickle.dumps(parts) if comm.rank == 0 else None
        raw = yield from self.bcast(blob, 0, comm)
        return pickle.loads(raw)

    def alltoall(self, chunks: Sequence[bytes],
                 comm: Optional[Communicator] = None,
                 staggered: bool = False) -> List[bytes]:
        """All-to-all personalized exchange.

        The default is MPICH's generic rank-ordered pattern: every rank
        sends to rank 0 first, then rank 1, ... — the §4.4 hot spot.  With
        ``staggered=True`` each rank starts at ``rank+1`` ("spreading out
        the communication pattern"), the fix the paper suggests.
        """
        comm = comm or self.comm_world
        size, rank = comm.size, comm.rank
        if len(chunks) != size:
            raise ValueError("need one chunk per destination")
        seq = self._collseq(comm)
        tag = TAG_ALLTOALL + seq
        out: List[Optional[bytes]] = [None] * size
        out[rank] = chunks[rank]
        reqs = []
        for r in range(size):
            if r == rank:
                continue
            req = yield from self.irecv(1 << 26, r, tag, comm)
            reqs.append((r, req))
        order = (range(size) if not staggered
                 else [(rank + 1 + i) % size for i in range(size)])
        for dst in order:
            if dst == rank:
                continue
            yield from self.send(chunks[dst], dst, tag, comm)
        for r, req in reqs:
            yield from self.wait(req)
            out[r] = req.data
        return out  # type: ignore[return-value]

    def scan(self, array: np.ndarray, op: str = "sum",
             comm: Optional[Communicator] = None) -> np.ndarray:
        """MPI_Scan (inclusive prefix): rank r gets op(ranks 0..r).

        The generic MPICH algorithm: receive the running prefix from
        rank-1, combine, forward to rank+1 — a linear pipeline.
        """
        comm = comm or self.comm_world
        size, rank = comm.size, comm.rank
        fn = REDUCE_OPS[op]
        acc = np.array(array, copy=True)
        if size == 1:
            return acc
        seq = self._collseq(comm)
        tag = TAG_REDUCE + (1 << 19) + seq
        if rank > 0:
            data, _ = yield from self.recv(acc.nbytes, rank - 1, tag, comm)
            prev = np.frombuffer(data, dtype=acc.dtype).reshape(acc.shape)
            acc = fn(prev, acc)
            yield from self.node.compute(acc.size * self.node.host.flop_us)
        if rank < size - 1:
            yield from self.send(acc.tobytes(), rank + 1, tag, comm)
        return acc

    def gatherv(self, data: bytes, root: int = 0,
                comm: Optional[Communicator] = None) -> Optional[List[bytes]]:
        """Variable-size gather (sizes need not match across ranks)."""
        # the fixed-size gather already transports per-rank lengths
        return (yield from self.gather(data, root, comm))

    def alltoallv(self, chunks: Sequence[bytes],
                  comm: Optional[Communicator] = None,
                  staggered: bool = False) -> List[bytes]:
        """Variable-size all-to-all (per-destination sizes may differ)."""
        return (yield from self.alltoall(chunks, comm, staggered))

    # -- helpers ----------------------------------------------------------------

    def _collseq(self, comm: Communicator) -> int:
        """Per-communicator collective sequence number (tag isolation)."""
        key = comm.context
        seq = self._coll_seq.get(key, 0)
        self._coll_seq[key] = (seq + 1) % 1024
        return seq
