"""Communicators: rank groups + context ids for matching isolation."""

from __future__ import annotations

from typing import List, Optional


class Communicator:
    """An MPI communicator: an ordered group of world ranks + context id.

    Point-to-point matching includes the context id, so traffic on a
    duplicated or split communicator never matches the parent's.
    """

    _next_context = 100

    def __init__(self, world_ranks: List[int], my_world_rank: int,
                 context: Optional[int] = None):
        if my_world_rank not in world_ranks:
            raise ValueError("this process is not in the communicator")
        self.world_ranks = list(world_ranks)
        self.my_world_rank = my_world_rank
        if context is None:
            context = Communicator._next_context
            Communicator._next_context += 1
        self.context = context

    @property
    def rank(self) -> int:
        return self.world_ranks.index(self.my_world_rank)

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def world_rank_of(self, rank: int) -> int:
        return self.world_ranks[rank]

    def dup(self, new_context: int) -> "Communicator":
        """Duplicate (all participants must pass the same new_context)."""
        return Communicator(self.world_ranks, self.my_world_rank, new_context)

    def split(self, color: int, key: int, all_colors: List[int],
              all_keys: List[int], new_context_base: int) -> "Communicator":
        """Split by color/key.  ``all_colors``/``all_keys`` are indexed by
        this communicator's ranks (collectively gathered by the caller)."""
        members = [
            (all_keys[r], r) for r in range(self.size)
            if all_colors[r] == color
        ]
        members.sort()
        ranks = [self.world_rank_of(r) for _, r in members]
        return Communicator(ranks, self.my_world_rank,
                            new_context_base + color)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Communicator(rank={self.rank}/{self.size}, "
                f"ctx={self.context})")
