"""Configuration of the MPI-AM protocol stack (§4.1–4.2).

Two named presets reproduce the paper's curves:

* ``UNOPTIMIZED`` — the basic implementation: first-fit receive-buffer
  allocation, one free reply per message, buffered→rendez-vous switch at
  16 KB, no hybrid prefix;
* ``OPTIMIZED`` — binned allocation for small messages, combined free
  replies, switch at 8 KB, hybrid protocol with a 4 KB prefix.

Every knob is independent so the ablation benchmarks can toggle one at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MPIConfig:
    #: receiver-side buffer dedicated to each peer ("currently 16 Kbytes")
    buffer_per_peer: int = 16384
    #: messages <= this go through the buffered protocol
    eager_max: int = 8192
    #: binned allocator for small messages ("currently 8 1K bins")
    binned_allocator: bool = True
    bin_size: int = 1024
    bin_count: int = 8
    #: pack several buffer frees into one reply
    combined_frees: bool = True
    #: frees packed per combined reply (one word each, 4 max per reply)
    frees_per_reply: int = 4
    #: hybrid buffered/rendez-vous: eagerly store a prefix while waiting
    #: for the receive address
    hybrid: bool = True
    prefix_bytes: int = 4096
    # -- software cost knobs (microseconds) --------------------------------
    #: envelope build + protocol selection on MPI_Send/Isend entry
    send_fixed: float = 1.6
    #: posting + matching attempt on MPI_Recv/Irecv entry
    recv_fixed: float = 1.5
    #: first-fit allocation / free-list walk
    first_fit_cost: float = 3.6
    #: binned allocation (pop a free bin)
    binned_cost: float = 0.4
    #: bookkeeping to queue an unexpected message
    unexpected_cost: float = 1.1
    #: request/handle management per completed operation
    completion_cost: float = 0.6


UNOPTIMIZED = MPIConfig(
    eager_max=16384,
    binned_allocator=False,
    combined_frees=False,
    hybrid=False,
)

OPTIMIZED = MPIConfig()


def variant(base: MPIConfig, **overrides) -> MPIConfig:
    """Ablation helper: copy a preset with selected knobs changed."""
    return replace(base, **overrides)
