"""MPI datatypes: basic types + derived layouts with pack/unpack (§4).

The paper's MPI "relies on the higher-level MPICH routines for collective
communication and non-contiguous sends": the device layer moves
contiguous bytes, and derived datatypes are packed/unpacked by the upper
layer before/after transport — exactly what this module provides.

Supported, mirroring what MPICH's upper layers use:

* basic types (``BYTE``, ``INT``, ``DOUBLE``, ``FLOAT``, ``COMPLEX``),
* ``Contiguous(count, base)``,
* ``Vector(count, blocklength, stride, base)`` — strided columns/planes,
* ``Indexed(blocklengths, displacements, base)`` — irregular layouts,
* ``Struct`` via ``Indexed`` over bytes.

Packing costs are charged by the caller at the host copy rate (the pack
is a real gather, so the NAS-style column exchange pays for it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


class Datatype:
    """Base: a datatype maps (memory bytes) <-> (packed wire bytes)."""

    #: bytes this type occupies on the wire when packed
    packed_size: int
    #: bytes of the memory footprint it spans (extent)
    extent: int

    def pack(self, raw: bytes) -> bytes:
        """Gather the type's bytes out of a memory image of `extent` bytes."""
        raise NotImplementedError

    def unpack(self, packed: bytes, into: bytearray) -> None:
        """Scatter packed bytes into a memory image (len >= extent)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Basic(Datatype):
    """A basic MPI type of fixed size (contiguous by definition)."""

    name: str
    size: int

    @property
    def packed_size(self) -> int:  # type: ignore[override]
        return self.size

    @property
    def extent(self) -> int:  # type: ignore[override]
        return self.size

    def pack(self, raw: bytes) -> bytes:
        if len(raw) < self.size:
            raise ValueError(f"{self.name}: need {self.size} bytes")
        return bytes(raw[: self.size])

    def unpack(self, packed: bytes, into: bytearray) -> None:
        into[: self.size] = packed[: self.size]


BYTE = Basic("MPI_BYTE", 1)
CHAR = Basic("MPI_CHAR", 1)
INT = Basic("MPI_INT", 4)
LONG = Basic("MPI_LONG", 8)
FLOAT = Basic("MPI_FLOAT", 4)
DOUBLE = Basic("MPI_DOUBLE", 8)
COMPLEX = Basic("MPI_COMPLEX", 8)
DOUBLE_COMPLEX = Basic("MPI_DOUBLE_COMPLEX", 16)


class Contiguous(Datatype):
    """``count`` repetitions of ``base``, back to back."""

    def __init__(self, count: int, base: Datatype):
        if count < 0:
            raise ValueError("negative count")
        self.count = count
        self.base = base
        self.packed_size = count * base.packed_size
        self.extent = count * base.extent

    def pack(self, raw: bytes) -> bytes:
        out = bytearray()
        for i in range(self.count):
            out += self.base.pack(raw[i * self.base.extent:
                                      (i + 1) * self.base.extent])
        return bytes(out)

    def unpack(self, packed: bytes, into: bytearray) -> None:
        ps = self.base.packed_size
        for i in range(self.count):
            chunk = bytearray(self.base.extent)
            chunk[:] = into[i * self.base.extent: (i + 1) * self.base.extent]
            self.base.unpack(packed[i * ps: (i + 1) * ps], chunk)
            into[i * self.base.extent: (i + 1) * self.base.extent] = chunk


class Vector(Datatype):
    """``count`` blocks of ``blocklength`` elements, ``stride`` apart
    (stride in elements, as MPI_Type_vector)."""

    def __init__(self, count: int, blocklength: int, stride: int,
                 base: Datatype):
        if count < 0 or blocklength < 0:
            raise ValueError("negative vector geometry")
        if stride < blocklength:
            raise ValueError("overlapping vector blocks (stride < blocklength)")
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base
        self.packed_size = count * blocklength * base.packed_size
        self.extent = (((count - 1) * stride + blocklength) * base.extent
                       if count else 0)

    def pack(self, raw: bytes) -> bytes:
        es = self.base.extent
        out = bytearray()
        for b in range(self.count):
            start = b * self.stride * es
            out += raw[start: start + self.blocklength * es]
        return bytes(out)

    def unpack(self, packed: bytes, into: bytearray) -> None:
        es = self.base.extent
        blk = self.blocklength * es
        for b in range(self.count):
            start = b * self.stride * es
            into[start: start + blk] = packed[b * blk: (b + 1) * blk]


class Indexed(Datatype):
    """Irregular blocks: (blocklengths[i] elements at displacements[i])."""

    def __init__(self, blocklengths: Sequence[int],
                 displacements: Sequence[int], base: Datatype):
        if len(blocklengths) != len(displacements):
            raise ValueError("blocklengths and displacements must pair up")
        if any(b < 0 for b in blocklengths) or any(
                d < 0 for d in displacements):
            raise ValueError("negative indexed geometry")
        # reject overlap: sort by displacement and check adjacency
        spans = sorted((d, d + b) for b, d in zip(blocklengths, displacements)
                       if b)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            if e1 > s2:
                raise ValueError("overlapping indexed blocks")
        self.blocklengths = list(blocklengths)
        self.displacements = list(displacements)
        self.base = base
        self.packed_size = sum(blocklengths) * base.packed_size
        self.extent = (max((d + b) for b, d in
                           zip(blocklengths, displacements)) * base.extent
                       if any(blocklengths) else 0)

    def pack(self, raw: bytes) -> bytes:
        es = self.base.extent
        out = bytearray()
        for b, d in zip(self.blocklengths, self.displacements):
            out += raw[d * es: (d + b) * es]
        return bytes(out)

    def unpack(self, packed: bytes, into: bytearray) -> None:
        es = self.base.extent
        pos = 0
        for b, d in zip(self.blocklengths, self.displacements):
            nbytes = b * es
            into[d * es: d * es + nbytes] = packed[pos: pos + nbytes]
            pos += nbytes


def pack_cost_us(dtype: Datatype, host) -> float:
    """Host time to pack/unpack one instance (a real gather/scatter copy;
    strided access costs a bit over the streaming rate)."""
    contiguous = isinstance(dtype, (Basic, Contiguous))
    rate = host.copy_rate if contiguous else host.copy_rate * 0.6
    return host.copy_fixed + dtype.packed_size / rate


def column_type(rows: int, cols: int, base: Datatype = DOUBLE) -> Vector:
    """One column of a row-major rows x cols matrix (the classic
    MPI_Type_vector example, used by the datatype example/tests)."""
    return Vector(count=rows, blocklength=1, stride=cols, base=base)
