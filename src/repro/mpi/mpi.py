"""The assembled MPI library over Active Messages (``node.mpi``)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hardware.machine import Machine
from repro.mpi.adi import ADI
from repro.mpi.collectives import MPICollectives
from repro.mpi.comm import Communicator
from repro.mpi.config import OPTIMIZED, MPIConfig
from repro.mpi.p2p import MPIPoint2Point


class MPI(MPIPoint2Point, MPICollectives):
    """MPI on one node: MPICH upper layers over the AM-based ADI (§4)."""

    def __init__(self, node, nprocs: int, config: MPIConfig,
                 region_addrs: Dict[Tuple[int, int], int]):
        if node.am is None:
            raise ValueError("attach an AM layer before MPI")
        self.node = node
        self.rank = node.id
        self.nprocs = nprocs
        self.comm_world = Communicator(list(range(nprocs)), node.id,
                                       context=1)
        self.adi = ADI(node, nprocs, config, region_addrs)
        self._loopback: List[Tuple[int, int, bytes]] = []
        self._coll_seq: Dict[int, int] = {}
        node.mpi = self

    @property
    def size(self) -> int:
        return self.nprocs


def attach_mpi(machine: Machine,
               config: Optional[MPIConfig] = None) -> List[MPI]:
    """Install MPI-AM on every node (AM must already be attached).

    Performs the startup exchange of per-peer receive-region addresses:
    each receiver dedicates ``buffer_per_peer`` bytes to every other
    process (§4.1).
    """
    cfg = config if config is not None else OPTIMIZED
    region_addrs: Dict[Tuple[int, int], int] = {}
    for receiver in machine.nodes:
        for sender in machine.nodes:
            if receiver.id == sender.id:
                continue
            region_addrs[(receiver.id, sender.id)] = receiver.memory.alloc(
                cfg.buffer_per_peer)
    return [MPI(node, machine.nprocs, cfg, region_addrs)
            for node in machine.nodes]
