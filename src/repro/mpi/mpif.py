"""MPI-F: IBM's native MPI, as a comparison model (§4.3, Figs 8–11).

MPI-F was built from scratch on the same user-space transport family as
MPL (EUI); the paper treats it as a measured black box.  We model it as an
MPI implementation over our MPL transport engine with *native-tuned*
software costs and MPI-F's published protocol shape:

* eager protocol up to a threshold — **4 KB on wide nodes** ("the switch
  from a buffered to a rendez-vous protocol occurs at a message size of
  4K bytes"), 8 KB on thin;
* rendez-vous above, paying an extra round trip — which produces the §4.2
  bandwidth discontinuity ("the bandwidth achieved using messages of
  8 Kbytes is actually lower than with 4 Kbyte messages");
* tuned for wide nodes: lower fixed overheads there ("Evidently MPI-F was
  optimized for the wide nodes while MPI-AM was developed on thin ones").

The public API matches :class:`repro.mpi.mpi.MPI`, so the NAS kernels run
unchanged on either.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.hardware.machine import Machine
from repro.mpi.collectives import MPICollectives
from repro.mpi.comm import Communicator
from repro.mpi.p2p import MPIPoint2Point
from repro.mpi.request import Request
from repro.mpi.status import matches
from repro.mpl.api import MPL, MPLCosts
from repro.mpl.engine import MPLEngine
from repro.sim.primitives import TIMED_OUT, Timeout
from repro.sim.stats import StatRegistry

#: MPL-tag space for MPI-F's own protocol traffic
TAG_F_EAGER = 0x6F01
TAG_F_RTS = 0x6F02
TAG_F_OK = 0x6F03
TAG_F_DATA = 0x6F04

_ENV = struct.Struct("<qqqq")  # tag, context, total_len, token


def thin_node_costs() -> MPLCosts:
    """MPI-F transport costs on thin nodes."""
    return MPLCosts(send_fixed=9.5, recv_fixed=5.5, per_packet=4.2,
                    per_packet_recv=2.2, match_cost=1.2,
                    eager_bytes=0, poll_cost=1.4, credit_cost=1.0)


def wide_node_costs() -> MPLCosts:
    """MPI-F is tuned for wide nodes: very low fixed costs, but a heavier
    per-packet path (it loses to MPI-AM above ~100-300 bytes, §4.3)."""
    return MPLCosts(send_fixed=3.2, recv_fixed=2.0, per_packet=6.0,
                    per_packet_recv=4.0, match_cost=0.9,
                    eager_bytes=0, poll_cost=1.2, credit_cost=1.0)


class _UnexpectedF:
    __slots__ = ("src", "tag", "context", "total_len", "data", "op_token",
                 "is_rts")

    def __init__(self, src, tag, context, total_len, data=None,
                 op_token=0, is_rts=False):
        self.src = src
        self.tag = tag
        self.context = context
        self.total_len = total_len
        self.data = data
        self.op_token = op_token
        self.is_rts = is_rts


class MPIFDevice:
    """MPI-F's device layer: eager/rendez-vous over the MPL engine."""

    #: protocol-processing cost on top of the transport, per message
    PROTO_SEND = 2.0
    PROTO_RECV = 1.6

    def __init__(self, node, nprocs: int, eager_max: int, costs: MPLCosts):
        self.node = node
        self.rank = node.id
        self.nprocs = nprocs
        self.eager_max = eager_max
        self.engine = MPLEngine(node, costs)
        self.stats = StatRegistry(f"mpif[{node.id}].")
        self.posted: List[Request] = []
        self.unexpected: List[_UnexpectedF] = []
        self._send_waiters: Dict[int, Request] = {}
        self._send_data: Dict[int, bytes] = {}
        self._pending_data_reqs: Dict[Tuple[int, int], Request] = {}
        self._next_token = 1
        #: request-lifecycle checker (repro.check), None when unchecked
        self.check = None

    # -- send ------------------------------------------------------------------

    def start_send(self, dst_world, data_addr, nbytes, tag, context, request):
        yield from self.node.compute(self.PROTO_SEND)
        data = (self.node.memory.read(data_addr, nbytes) if nbytes else b"")
        token = self._next_token
        self._next_token += 1
        env = _ENV.pack(tag, context, nbytes, token)
        if nbytes <= self.eager_max:
            yield from self.engine.send_message(dst_world, env + data,
                                                TAG_F_EAGER)
            request.complete()
            self.stats.count("eager_sends")
        else:
            self._send_waiters[token] = request
            self._send_data[token] = data
            yield from self.engine.send_message(dst_world, env, TAG_F_RTS)
            self.stats.count("rendezvous_sends")

    # -- receive ------------------------------------------------------------------

    def post_recv(self, request: Request):
        yield from self.node.compute(self.PROTO_RECV)
        ck = self.check
        if ck is not None:
            ck.on_posted(request)
        for i, entry in enumerate(self.unexpected):
            if entry.context == request.comm.context and matches(
                    request.peer, request.tag, entry.src, entry.tag):
                del self.unexpected[i]
                if ck is not None:
                    ck.on_matched(request)
                if entry.is_rts:
                    yield from self._accept_rts(entry, request)
                else:
                    self._deliver(request, entry)
                return
        self.posted.append(request)

    def _deliver(self, request: Request, entry: _UnexpectedF):
        if request.recv_addr is not None and entry.data:
            self.node.memory.write(request.recv_addr, entry.data)
        request.complete(entry.data, source=entry.src, tag=entry.tag)

    def _accept_rts(self, entry: _UnexpectedF, request: Request):
        request.nbytes = entry.total_len
        # pending completion arrives as TAG_F_DATA carrying the token
        self._pending_data_reqs[(entry.src, entry.op_token)] = request
        ok = _ENV.pack(entry.tag, entry.context, entry.total_len,
                       entry.op_token)
        yield from self.engine.send_message(entry.src, ok, TAG_F_OK)

    # -- progress -----------------------------------------------------------------

    def progress(self):
        yield from self.engine.poll()
        yield from self._drain()

    def _drain(self):
        moved = True
        while moved:
            moved = False
            for i, (src, mtag, data) in enumerate(self.engine._unexpected):
                if mtag in (TAG_F_EAGER, TAG_F_RTS, TAG_F_OK, TAG_F_DATA):
                    del self.engine._unexpected[i]
                    yield from self._handle(src, mtag, data)
                    moved = True
                    break

    def _handle(self, src, mtag, data):
        yield from self.node.compute(self.PROTO_RECV)
        tag, context, total_len, token = _ENV.unpack_from(data)
        payload = data[_ENV.size:]
        if mtag == TAG_F_EAGER:
            req = self._find_posted(src, tag, context)
            if req is None:
                self.unexpected.append(_UnexpectedF(
                    src, tag, context, total_len, data=payload))
            else:
                self._deliver(req, _UnexpectedF(src, tag, context,
                                                total_len, data=payload))
        elif mtag == TAG_F_RTS:
            req = self._find_posted(src, tag, context)
            entry = _UnexpectedF(src, tag, context, total_len,
                                 op_token=token, is_rts=True)
            if req is None:
                self.unexpected.append(entry)
            else:
                yield from self._accept_rts(entry, req)
        elif mtag == TAG_F_OK:
            sreq = self._send_waiters.pop(token)
            sdata = self._send_data.pop(token)
            env = _ENV.pack(tag, context, total_len, token)
            yield from self.engine.send_message(src, env + sdata, TAG_F_DATA)
            sreq.complete()
        elif mtag == TAG_F_DATA:
            req = self._pending_data_reqs.pop((src, token))
            if req.recv_addr is not None and payload:
                self.node.memory.write(req.recv_addr, payload)
            req.complete(payload, source=src, tag=tag)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(hex(mtag))

    def _find_posted(self, src, tag, context):
        for i, req in enumerate(self.posted):
            if req.comm.context == context and matches(
                    req.peer, req.tag, src, tag):
                req = self.posted.pop(i)
                if self.check is not None:
                    self.check.on_matched(req)
                return req
        return None

    def _wait_progress(self):
        if self.node.adapter.host_recv_available() == 0:
            ev = self.node.adapter.arrival_event()
            res = yield Timeout(ev, 1_000_000.0)
            if res is TIMED_OUT:
                raise RuntimeError(
                    f"MPI-F on node {self.node.id} stalled 1 s")
        yield from self.progress()


class MPIF(MPIPoint2Point, MPICollectives):
    """MPI-F on one node (same public API as MPI-AM)."""

    def __init__(self, node, nprocs: int, eager_max: int, costs: MPLCosts):
        self.node = node
        self.rank = node.id
        self.nprocs = nprocs
        self.comm_world = Communicator(list(range(nprocs)), node.id,
                                       context=1)
        self.adi = MPIFDevice(node, nprocs, eager_max, costs)
        self._loopback: List[Tuple[int, int, bytes]] = []
        self._coll_seq: Dict[int, int] = {}
        node.mpi = self

    @property
    def size(self) -> int:
        return self.nprocs


def attach_mpif(machine: Machine,
                eager_max: Optional[int] = None) -> List[MPIF]:
    """Install MPI-F on an SP machine (no AM layer needed — it has its
    own transport).  Eager/rendez-vous switch: 4 KB on wide nodes, 8 KB
    on thin, unless overridden."""
    if not machine.is_sp:
        raise ValueError("MPI-F exists only on the SP")
    wide = machine.params.host.kind == "wide"
    costs = wide_node_costs() if wide else thin_node_costs()
    if eager_max is None:
        eager_max = 4096
    return [MPIF(node, machine.nprocs, eager_max, costs)
            for node in machine.nodes]
