"""Point-to-point MPI operations over the ADI (§4.1).

The subset MPICH's upper layers and the NAS kernels need: blocking and
non-blocking send/receive, wait/test families, sendrecv, and probe.
Payloads are bytes; ``(addr, nbytes)`` tuples give placement into node
memory without staging copies (used by the NAS kernels).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.mpi.comm import Communicator
from repro.mpi.request import Request
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status, matches

Buffer = Union[bytes, bytearray, Tuple[int, int]]


class MPIPoint2Point:
    """Mixin providing the point-to-point API (state lives on MPI)."""

    # -- buffers -------------------------------------------------------------

    def _as_addr(self, buf: Buffer) -> Tuple[int, int]:
        """Resolve a payload to (addr, nbytes) in this node's memory."""
        if isinstance(buf, tuple):
            return buf
        data = bytes(buf)
        addr = self.node.memory.alloc(max(len(data), 1))
        if data:
            self.node.memory.write(addr, data)
        return addr, len(data)

    # -- non-blocking ----------------------------------------------------------

    def isend(self, buf: Buffer, dst: int, tag: int = 0,
              comm: Optional[Communicator] = None):
        """MPI_Isend: start a send, return its Request."""
        comm = comm or self.comm_world
        dst_world = comm.world_rank_of(dst)
        addr, nbytes = self._as_addr(buf)
        req = Request("send", comm, dst, tag, nbytes)
        ck = self.adi.check
        if ck is not None:
            ck.on_new(req)
        if dst_world == self.rank:
            data = self.node.memory.read(addr, nbytes) if nbytes else b""
            req.complete()
            # a matching receive may already be posted; otherwise queue
            # the message for a future irecv to claim
            rreq = self.adi._find_posted(self.rank, tag, comm.context)
            if rreq is not None:
                if rreq.recv_addr is not None and data:
                    self.node.memory.write(rreq.recv_addr, data)
                rreq.complete(data, source=self.rank, tag=tag)
            else:
                self._loopback.append((comm.context, tag, data))
            return req
        yield from self.adi.start_send(dst_world, addr, nbytes, tag,
                                       comm.context, req)
        return req

    def irecv(self, nbytes: int, src: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Optional[Communicator] = None,
              addr: Optional[int] = None):
        """MPI_Irecv: post a receive, return its Request."""
        comm = comm or self.comm_world
        src_world = (comm.world_rank_of(src) if src != ANY_SOURCE
                     else ANY_SOURCE)
        req = Request("recv", comm, src_world, tag, nbytes)
        req.recv_addr = addr
        ck = self.adi.check
        if ck is not None:
            ck.on_new(req)
        # self-delivery first
        hit = self._match_loopback(comm.context, tag)
        if hit is not None:
            mtag, data = hit
            if addr is not None and data:
                self.node.memory.write(addr, data)
            # like the ADI paths, the status carries the *world* rank
            # (communicator-local ranks broke subcommunicator consumers
            # doing world_ranks.index(status.source))
            req.complete(data, source=self.rank, tag=mtag)
            return req
        yield from self.adi.post_recv(req)
        return req

    def wait(self, req: Request) -> Status:
        """MPI_Wait: block until the request completes."""
        ck = self.adi.check
        if ck is not None:
            ck.on_progress(req)
        while not req.done:
            yield from self.adi._wait_progress()
        yield from self.adi.progress()
        return req.status

    def waitall(self, reqs: Sequence[Request]):
        """MPI_Waitall: complete every request; returns their statuses."""
        for r in reqs:
            yield from self.wait(r)
        return [r.status for r in reqs]

    def test(self, req: Request) -> bool:
        """MPI_Test: advance progress; report whether ``req`` is done."""
        ck = self.adi.check
        if ck is not None:
            ck.on_progress(req)
        yield from self.adi.progress()
        return req.done

    def testall(self, reqs: Sequence[Request]) -> bool:
        """MPI_Testall: progress once; True if every request is done."""
        ck = self.adi.check
        if ck is not None:
            for r in reqs:
                ck.on_progress(r)
        yield from self.adi.progress()
        return all(r.done for r in reqs)

    def waitany(self, reqs: Sequence[Request]):
        """MPI_Waitany: block until one request completes; returns its
        index and status."""
        if not reqs:
            raise ValueError("waitany of an empty request list")
        ck = self.adi.check
        if ck is not None:
            for r in reqs:
                ck.on_progress(r)
        while True:
            for i, r in enumerate(reqs):
                if r.done:
                    return i, r.status
            yield from self.adi._wait_progress()

    def waitsome(self, reqs: Sequence[Request]):
        """MPI_Waitsome: block until >= 1 completes; returns the indices."""
        if not reqs:
            return []  # MPI_Waitsome with incount 0 completes nothing
        ck = self.adi.check
        if ck is not None:
            for r in reqs:
                ck.on_progress(r)
        while True:
            done = [i for i, r in enumerate(reqs) if r.done]
            if done:
                return done
            yield from self.adi._wait_progress()

    # -- blocking ---------------------------------------------------------------

    def send(self, buf: Buffer, dst: int, tag: int = 0,
             comm: Optional[Communicator] = None):
        """MPI_Send: returns when the buffer is reusable (buffered) or the
        transfer is complete (rendez-vous)."""
        req = yield from self.isend(buf, dst, tag, comm)
        yield from self.wait(req)

    def recv(self, nbytes: int, src: int = ANY_SOURCE, tag: int = ANY_TAG,
             comm: Optional[Communicator] = None,
             addr: Optional[int] = None):
        """MPI_Recv: returns (data, status)."""
        req = yield from self.irecv(nbytes, src, tag, comm, addr)
        status = yield from self.wait(req)
        return req.data if req.data is not None else b"", status

    def sendrecv(self, buf: Buffer, dst: int, sendtag: int,
                 recv_nbytes: int, src: int, recvtag: int,
                 comm: Optional[Communicator] = None):
        """MPI_Sendrecv (deadlock-free by construction)."""
        rreq = yield from self.irecv(recv_nbytes, src, recvtag, comm)
        sreq = yield from self.isend(buf, dst, sendtag, comm)
        yield from self.wait(sreq)
        status = yield from self.wait(rreq)
        return rreq.data if rreq.data is not None else b"", status

    def iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
               comm: Optional[Communicator] = None):
        """Non-blocking probe of the unexpected queue."""
        comm = comm or self.comm_world
        yield from self.adi.progress()
        for entry in self.adi.unexpected:
            if entry.context == comm.context and matches(
                    src if src == ANY_SOURCE else comm.world_rank_of(src),
                    tag, entry.src, entry.tag):
                return Status(source=entry.src, tag=entry.tag,
                              count=entry.total_len)
        return None

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
              comm: Optional[Communicator] = None) -> Status:
        """MPI_Probe: block until a matching message is pending."""
        while True:
            st = yield from self.iprobe(src, tag, comm)
            if st is not None:
                return st
            yield from self.adi._wait_progress()

    # -- derived datatypes (non-contiguous sends, §4's upper-layer duty) -------

    def send_typed(self, raw: bytes, dtype, dst: int, tag: int = 0,
                   comm: Optional[Communicator] = None):
        """Send one instance of a derived datatype: the upper layer packs
        (a real gather, charged at the host copy rate) and the device
        moves contiguous bytes — exactly MPICH's structure (§4)."""
        from repro.mpi.datatypes import pack_cost_us

        yield from self.node.compute(pack_cost_us(dtype, self.node.host))
        packed = dtype.pack(raw)
        yield from self.send(packed, dst, tag, comm)

    def recv_typed(self, dtype, src: int = ANY_SOURCE, tag: int = ANY_TAG,
                   comm: Optional[Communicator] = None):
        """Receive one instance of a derived datatype; returns the memory
        image (``dtype.extent`` bytes) with the data scattered in place."""
        from repro.mpi.datatypes import pack_cost_us

        data, status = yield from self.recv(dtype.packed_size, src, tag, comm)
        yield from self.node.compute(pack_cost_us(dtype, self.node.host))
        image = bytearray(dtype.extent)
        dtype.unpack(data, image)
        return bytes(image), status

    # -- loopback ----------------------------------------------------------------

    def _match_loopback(self, context: int,
                        tag: int) -> Optional[Tuple[int, bytes]]:
        """Claim a queued self-send; returns (matched tag, data)."""
        for i, (ctx, mtag, data) in enumerate(self._loopback):
            if ctx == context and (tag == ANY_TAG or tag == mtag):
                del self._loopback[i]
                return mtag, data
        return None
