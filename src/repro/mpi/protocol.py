"""Wire-format helpers for the MPI-AM protocols (§4.1–4.2).

The buffered protocol carries its envelope in the ``am_store`` handler
arguments — (tag, context, token, kind) — so the payload stored into the
receiver's region is the bare message bytes and the sender stores straight
from the user buffer (no staging copy).  ``kind`` distinguishes a
self-contained eager message from the 4 KB prefix the hybrid protocol
sends ahead of its rendez-vous.

Buffer frees travel packed one per 64-bit word: ``offset << 24 | length``
(regions are 16 KB, so both fit comfortably).
"""

from __future__ import annotations

from typing import Tuple

KIND_EAGER = 0
KIND_PREFIX = 1

_FREE_SHIFT = 24
_FREE_MASK = (1 << _FREE_SHIFT) - 1


def pack_free(offset: int, length: int) -> int:
    if not (0 <= offset < (1 << 39)) or not (0 < length <= _FREE_MASK):
        raise ValueError(f"free ({offset}, {length}) not encodable")
    return (offset << _FREE_SHIFT) | length


def unpack_free(word: int) -> Tuple[int, int]:
    return word >> _FREE_SHIFT, word & _FREE_MASK


#: prefix lengths fit in 13 bits (<= 4 KB prefixes)
_RTS_SHIFT = 13
_RTS_MASK = (1 << _RTS_SHIFT) - 1


def pack_rts_len(total_len: int, prefix_len: int) -> int:
    """The rendez-vous request carries total and prefix length in one word."""
    if total_len < 0 or prefix_len < 0:
        raise ValueError(
            f"rts lengths ({total_len}, {prefix_len}) must be non-negative")
    if prefix_len > _RTS_MASK:
        raise ValueError(f"prefix {prefix_len} exceeds 13-bit field")
    return (total_len << _RTS_SHIFT) | prefix_len


def unpack_rts_len(word: int) -> Tuple[int, int]:
    return word >> _RTS_SHIFT, word & _RTS_MASK
