"""MPI request handles for non-blocking operations."""

from __future__ import annotations

from typing import Optional

from repro.mpi.status import Status


class Request:
    """Handle for MPI_Isend / MPI_Irecv, completed by Wait/Test."""

    _next_id = 1

    def __init__(self, kind: str, comm, peer: int, tag: int, nbytes: int = 0):
        self.kind = kind  # "send" | "recv"
        self.comm = comm
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.done = False
        self.cancelled = False
        #: released via MPI_Request_free; the handle may no longer be
        #: waited on or tested
        self.freed = False
        self.status = Status()
        #: received payload (recv requests)
        self.data: Optional[bytes] = None
        #: destination address in node memory (recv requests with placement)
        self.recv_addr: Optional[int] = None
        #: lifecycle checker (repro.check), None when unchecked
        self.check = None
        self.id = Request._next_id
        Request._next_id += 1

    def complete(self, data: Optional[bytes] = None,
                 source: int = -1, tag: int = -1) -> None:
        ck = self.check
        if ck is not None:
            ck.on_complete(self)
        if self.done:
            raise AssertionError(f"request {self.id} completed twice")
        self.done = True
        if data is not None:
            self.data = data
            self.status.count = len(data)
        if source >= 0:
            self.status.source = source
        if tag >= 0:
            self.status.tag = tag

    def free(self) -> None:
        """MPI_Request_free: release the handle.  Waiting on or testing a
        freed request is erroneous (and flagged by ``repro.check``)."""
        ck = self.check
        if ck is not None:
            ck.on_free(self)
        self.freed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return (f"Request(#{self.id} {self.kind} peer={self.peer} "
                f"tag={self.tag} {state})")
