"""MPI status objects and matching wildcards."""

from __future__ import annotations

from dataclasses import dataclass

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Status:
    """Result of a completed receive (MPI_Status)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0

    def get_count(self) -> int:
        return self.count


def matches(want_src: int, want_tag: int, src: int, tag: int) -> bool:
    """MPI envelope matching with wildcards."""
    return ((want_src == ANY_SOURCE or want_src == src)
            and (want_tag == ANY_TAG or want_tag == tag))
