"""IBM MPL — the paper's message-passing baseline (§2.3–§2.6).

MPL is proprietary; the paper uses it as a measured black box.  This
package reproduces its *cost profile* with matching semantics over the
same simulated TB2 hardware path:

=========================  ==========
one-word round trip         88 us
asymptotic bandwidth        34.6 MB/s
n_1/2, pipelined send       ~2 KB
n_1/2, blocking send/reply  >3.2 KB
=========================  ==========

API (the subset the paper exercises)::

    mpl.mpc_bsend(data, dst, tag)     blocking send
    mpl.mpc_brecv(n, src, tag)        blocking receive -> bytes
    mpl.mpc_send(data, dst, tag)      non-blocking send -> handle
    mpl.mpc_recv(n, src, tag)         non-blocking receive -> handle
    mpl.mpc_wait(handle)              complete a non-blocking op
    mpl.mpc_status(handle)            poll a handle

The high per-message software overhead relative to SP AM — buffer
management, matching, and an internal copy for eager-size messages — is
exactly the overhead the paper's §3 shows dragging down fine-grain
Split-C applications.
"""

from repro.mpl.api import MPL, MPLCosts, attach_mpl
from repro.mpl.am_shim import MPLAM, attach_mpl_am

__all__ = ["MPL", "MPLCosts", "attach_mpl", "MPLAM", "attach_mpl_am"]
