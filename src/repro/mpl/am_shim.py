"""Active Messages emulated over MPL — the "Split-C over MPL" stack (§3).

The paper compares Split-C over SP AM with David Bader's Split-C port over
MPL.  That port funnels the Split-C runtime's communication through MPL
send/receive, so every fine-grain operation pays MPL's per-message
software overhead — the very effect Table 5 and Figure 4 quantify.

This shim exposes the same API surface as :class:`repro.am.endpoint.SPAM`
(request_M / reply via token / store / store_async / get / get_async /
poll / wait_op), implemented with MPL messages:

* requests/replies: one small MPL message carrying (handler, args);
* stores: one MPL message with a 16-byte header + payload; the receiver
  writes it at the addressed location and returns a tiny ack message;
* gets: a get-request message answered with the data.

Handlers, tokens, and restrictions behave identically, so the Split-C
runtime runs unmodified on top.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.am.handler import HandlerRestrictionError, HandlerTable, run_handler
from repro.mpl.api import MPL
from repro.mpl.engine import ANY
from repro.sim.primitives import TIMED_OUT, Timeout
from repro.sim.stats import StatRegistry

#: MPL tags reserved for the AM emulation
TAG_REQUEST = 0x5C01
TAG_REPLY = 0x5C02
TAG_STORE = 0x5C03
TAG_GET_REQ = 0x5C04
TAG_GET_DATA = 0x5C05
TAG_STORE_ACK = 0x5C06
TAG_REQ_ACK = 0x5C07

_HDR = struct.Struct("<qqqq")  # handler/addr/len/token — 32-byte header


class _OpHandle:
    __slots__ = ("done",)

    def __init__(self, done):
        self.done = done

    @property
    def complete(self) -> bool:
        """Whether the operation's done event has fired."""
        return self.done.triggered


class MPLReplyToken:
    """Reply capability inside a handler running over the MPL shim."""

    __slots__ = ("am", "src", "_used")

    def __init__(self, am: "MPLAM", src: int):
        self.am = am
        self.src = src
        self._used = False

    def _claim(self):
        if self._used:
            raise HandlerRestrictionError("handler already sent its one reply")
        self._used = True

    def reply_1(self, handler, a0):
        """Emulated 1-word reply (one MPL message)."""
        self._claim()
        return self.am._send_am(self.src, TAG_REPLY, handler, (a0,))

    def reply_2(self, handler, a0, a1):
        """Emulated 2-word reply (one MPL message)."""
        self._claim()
        return self.am._send_am(self.src, TAG_REPLY, handler, (a0, a1))

    def reply_3(self, handler, a0, a1, a2):
        """Emulated 3-word reply (one MPL message)."""
        self._claim()
        return self.am._send_am(self.src, TAG_REPLY, handler, (a0, a1, a2))

    def reply_4(self, handler, a0, a1, a2, a3):
        """Emulated 4-word reply (one MPL message)."""
        self._claim()
        return self.am._send_am(self.src, TAG_REPLY, handler, (a0, a1, a2, a3))


class MPLAM:
    """The AM-over-MPL shim on one node (installs itself as ``node.am``)."""

    def __init__(self, node, handlers: HandlerTable):
        if node.mpl is None:
            raise ValueError("attach MPL before the AM-over-MPL shim")
        self.node = node
        self.mpl: MPL = node.mpl
        self.engine = node.mpl.engine
        self.handlers = handlers
        self.sim = node.sim
        self.stats = StatRegistry(f"mplam[{node.id}].")
        self._in_handler = False
        self._next_token = 1
        self._store_waiters: Dict[int, Any] = {}
        self._get_waiters: Dict[int, Any] = {}
        self._req_ack_waiters: Dict[int, Any] = {}
        node.am = self

    # -- small messages ------------------------------------------------------

    def register(self, fn: Callable) -> int:
        """Register an AM handler (machine-wide id)."""
        return self.handlers.register(fn)

    def request_1(self, dst, handler, a0):
        """Emulated 1-word request (one MPL message + MPL-level ack)."""
        return self._request(dst, handler, (a0,))

    def request_2(self, dst, handler, a0, a1):
        """Emulated 2-word request (one MPL message + MPL-level ack)."""
        return self._request(dst, handler, (a0, a1))

    def request_3(self, dst, handler, a0, a1, a2):
        """Emulated 3-word request (one MPL message + MPL-level ack)."""
        return self._request(dst, handler, (a0, a1, a2))

    def request_4(self, dst, handler, a0, a1, a2, a3):
        """Emulated 4-word request (one MPL message + MPL-level ack)."""
        return self._request(dst, handler, (a0, a1, a2, a3))

    def _request(self, dst, handler, args):
        """Emulated requests are acknowledged at the MPL level: the port
        cannot let unexpected messages accumulate unboundedly in MPL's
        matching queues, so each request round-trips before the next —
        the dominant cost of Split-C-over-MPL's fine-grain traffic (§3).
        """
        if self._in_handler:
            raise HandlerRestrictionError("handlers may not issue requests")
        token = self._next_token
        self._next_token += 1
        ack = self.sim.event(f"mplam[{self.node.id}].reqack")
        self._req_ack_waiters[token] = ack
        yield from self._send_am(dst, TAG_REQUEST, handler, args, token)
        self.stats.count("requests_sent")
        yield from self.poll()
        while not ack.triggered:
            yield from self._wait_progress()

    def _send_am(self, dst, tag, handler, args, token=0):
        hid = self.handlers.register(handler)
        payload = struct.pack("<qq", hid, token) + struct.pack(
            f"<{len(args)}q", *args)
        yield from self.engine.send_message(dst, payload, tag)

    # -- bulk ----------------------------------------------------------------

    def store(self, dst, local_addr, remote_addr, nbytes,
              handler: Callable = None, arg: int = 0):
        """Blocking bulk store over one MPL message (+ack)."""
        op = yield from self.store_async(dst, local_addr, remote_addr,
                                         nbytes, handler, arg)
        yield from self.wait_op(op)
        return op

    def store_async(self, dst, local_addr, remote_addr, nbytes,
                    handler: Callable = None, arg: int = 0,
                    completion_fn: Optional[Callable] = None):
        """Non-blocking bulk store over MPL; handle completes on the ack."""
        if self._in_handler:
            raise HandlerRestrictionError("handlers may not start stores")
        hid = self.handlers.register(handler) if handler is not None else -1
        token = self._next_token
        self._next_token += 1
        done = self.sim.event(f"mplam[{self.node.id}].store")
        handle = _OpHandle(done)
        if completion_fn is not None:
            done.add_waiter(lambda _v: completion_fn(handle))
        if nbytes == 0:
            done.succeed(None)
            return handle
        self._store_waiters[token] = done
        data = self.node.memory.read(local_addr, nbytes)
        msg = _HDR.pack(hid, remote_addr, nbytes, token) + data
        yield from self.engine.send_message(dst, msg, TAG_STORE)
        self.stats.count("stores_sent")
        return handle

    def wait_op(self, op: _OpHandle):
        """Block until an async op's MPL-level ack arrives."""
        while not op.done.triggered:
            yield from self._wait_progress()

    def get(self, dst, remote_addr, local_addr, nbytes,
            handler: Callable = None, arg: int = 0):
        """Blocking bulk get over an MPL request/data exchange."""
        done = yield from self.get_async(dst, remote_addr, local_addr,
                                         nbytes, handler, arg)
        while not done.triggered:
            yield from self._wait_progress()
        return done

    def get_async(self, dst, remote_addr, local_addr, nbytes,
                  handler: Callable = None, arg: int = 0):
        if self._in_handler:
            raise HandlerRestrictionError("handlers may not start gets")
        if nbytes <= 0:
            raise ValueError("get size must be positive")
        hid = self.handlers.register(handler) if handler is not None else -1
        token = self._next_token
        self._next_token += 1
        done = self.sim.event(f"mplam[{self.node.id}].get")
        self._get_waiters[token] = (done, local_addr, hid, arg)
        msg = _HDR.pack(hid, remote_addr, nbytes, token) + struct.pack(
            "<q", local_addr)
        yield from self.engine.send_message(dst, msg, TAG_GET_REQ)
        self.stats.count("gets_sent")
        return done

    # -- progress ---------------------------------------------------------------

    def poll(self, limit: Optional[int] = None):
        """Service MPL traffic and dispatch emulated AM handlers."""
        if self._in_handler:
            raise HandlerRestrictionError("am_poll may not be called from a handler")
        yield from self.engine.poll()
        handled = 0
        while limit is None or handled < limit:
            progressed = yield from self._dispatch_one()
            if not progressed:
                break
            handled += 1
        return handled

    def _dispatch_one(self):
        for tag in (TAG_REQ_ACK, TAG_REPLY, TAG_STORE_ACK, TAG_STORE,
                    TAG_GET_DATA, TAG_GET_REQ, TAG_REQUEST):
            hit = None
            for i, (src, mtag, data) in enumerate(self.engine._unexpected):
                if mtag == tag:
                    hit = (i, src, data)
                    break
            if hit is None:
                continue
            i, src, data = hit
            del self.engine._unexpected[i]
            # every emulated AM is an MPL message: pay the mpc_recv-style
            # matching + descriptor hand-off on delivery
            yield from self.node.compute(self.mpl.costs.recv_fixed * 0.5
                                         + self.mpl.costs.match_cost)
            yield from self._handle(tag, src, data)
            return True
        return False

    def _handle(self, tag, src, data):
        if tag in (TAG_REQUEST, TAG_REPLY):
            hid, req_token = struct.unpack_from("<qq", data)
            nargs = (len(data) - 16) // 8
            args = struct.unpack_from(f"<{nargs}q", data, 16)
            if tag == TAG_REQUEST:
                yield from self.engine.send_message(
                    src, struct.pack("<q", req_token), TAG_REQ_ACK)
            fn = self.handlers.lookup(hid)
            token = MPLReplyToken(self, src)
            self._in_handler = True
            try:
                yield from run_handler(fn, token, *args)
            finally:
                self._in_handler = False
            self.stats.count("handlers_run")
        elif tag == TAG_REQ_ACK:
            req_token = struct.unpack("<q", data)[0]
            waiter = self._req_ack_waiters.pop(req_token, None)
            if waiter is not None:
                waiter.succeed(None)
        elif tag == TAG_STORE:
            hid, addr, nbytes, token_id = _HDR.unpack_from(data)
            self.node.memory.write(addr, data[_HDR.size:])
            yield from self.engine.send_message(
                src, struct.pack("<q", token_id), TAG_STORE_ACK)
            if hid >= 0:
                fn = self.handlers.lookup(hid)
                tok = MPLReplyToken(self, src)
                self._in_handler = True
                try:
                    yield from run_handler(fn, tok, addr, nbytes, 0)
                finally:
                    self._in_handler = False
        elif tag == TAG_STORE_ACK:
            token_id = struct.unpack("<q", data)[0]
            waiter = self._store_waiters.pop(token_id, None)
            if waiter is not None:
                waiter.succeed(None)
        elif tag == TAG_GET_REQ:
            hid, addr, nbytes, token_id = _HDR.unpack_from(data)
            local_addr = struct.unpack_from("<q", data, _HDR.size)[0]
            payload = self.node.memory.read(addr, nbytes)
            msg = _HDR.pack(hid, local_addr, nbytes, token_id) + payload
            yield from self.engine.send_message(src, msg, TAG_GET_DATA)
        elif tag == TAG_GET_DATA:
            hid, addr, nbytes, token_id = _HDR.unpack_from(data)
            entry = self._get_waiters.pop(token_id, None)
            self.node.memory.write(addr, data[_HDR.size:])
            if entry is not None:
                done, _local, hid2, arg = entry
                if hid2 >= 0:
                    fn = self.handlers.lookup(hid2)
                    tok = MPLReplyToken(self, src)
                    self._in_handler = True
                    try:
                        yield from run_handler(fn, tok, addr, nbytes, arg)
                    finally:
                        self._in_handler = False
                done.succeed(None)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(hex(tag))

    def _wait_progress(self):
        if self.node.adapter.host_recv_available() == 0:
            ev = self.node.adapter.arrival_event()
            # long guard: peers may be deep in a charged compute phase
            # (a 128x128 dgemm costs ~100 ms of simulated time)
            res = yield Timeout(ev, 5_000_000.0)
            if res is TIMED_OUT:
                raise RuntimeError(
                    f"AM-over-MPL on node {self.node.id} stalled 5 s"
                )
        yield from self.poll()


def attach_mpl_am(machine) -> List[MPLAM]:
    """Install MPL + the AM shim on every node of an SP machine."""
    from repro.mpl.api import attach_mpl

    if any(node.mpl is None for node in machine.nodes):
        attach_mpl(machine)
    table = HandlerTable()
    return [MPLAM(node, table) for node in machine.nodes]
