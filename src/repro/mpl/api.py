"""Public MPL API: mpc_* calls with IBM MPL's measured cost profile.

Calibration targets (Table 3 and §2.3):

* ``mpc_bsend``/``mpc_recv`` one-word ping-pong: **88 us** round trip —
  roughly 50 us of per-round software against SP AM's ~18 us;
* asymptotic pipelined bandwidth **34.6 MB/s** (30-byte data header);
* pipelined half-power point around **2 KB** — per-message costs are
  dominated by buffer management and the eager-copy;
* blocking (send + 0-byte reply) half-power point **> 3.2 KB**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hardware.machine import Machine
from repro.mpl.engine import ANY, MPLEngine


@dataclass(frozen=True)
class MPLCosts:
    """Host software costs of the MPL library, microseconds."""

    #: fixed cost of an mpc_bsend / mpc_send call (envelope construction,
    #: buffer management, protocol selection)
    send_fixed: float = 15.6
    #: fixed cost of an mpc_brecv / mpc_recv call (posting + matching)
    recv_fixed: float = 8.4
    #: per-data-packet injection cost (below the 6.47 us wire occupancy,
    #: so large transfers stay wire-bound at 34.6 MB/s)
    per_packet: float = 4.2
    #: per-packet receive/dispatch cost (excluding the incremental copy
    #: into the destination buffer, charged at HostParams.copy_rate)
    per_packet_recv: float = 2.2
    #: matching + descriptor hand-off when a receive finds its message
    match_cost: float = 1.4
    #: messages up to this size are copied into an internal send buffer
    eager_bytes: int = 16384
    #: rate of that internal copy (slower than a plain memcpy: it walks
    #: the message descriptor chain)
    buffer_copy_rate: float = 45.0
    #: cost of checking for arrivals when blocked
    poll_cost: float = 1.6
    #: building a credit-return packet
    credit_cost: float = 1.0


class Handle:
    """A non-blocking operation handle for mpc_send/mpc_recv + mpc_wait."""

    __slots__ = ("kind", "done", "data", "src", "tag", "nbytes")

    def __init__(self, kind: str, src: int = ANY, tag: int = ANY, nbytes: int = 0):
        self.kind = kind
        self.done = False
        self.data: Optional[bytes] = None
        self.src = src
        self.tag = tag
        self.nbytes = nbytes


class MPL:
    """The MPL library instance on one node (``node.mpl``)."""

    def __init__(self, node, costs: Optional[MPLCosts] = None):
        if node.adapter is None:
            raise ValueError("MPL runs only on SP nodes")
        self.node = node
        self.costs = costs if costs is not None else MPLCosts()
        self.engine = MPLEngine(node, self.costs)
        self._numtask = 1  # fixed up by attach_mpl
        self._sync_epoch = 0
        node.mpl = self

    # -- blocking ----------------------------------------------------------

    def mpc_bsend(self, data: bytes, dst: int, tag: int = 0):
        """Blocking send: returns when the source buffer is reusable."""
        if dst == self.node.id:
            raise ValueError("MPL send must address a remote task")
        yield from self.engine.send_message(dst, bytes(data), tag)

    def mpc_brecv(self, nbytes: int, src: int = ANY, tag: int = ANY):
        """Blocking receive: returns the message bytes (must fit nbytes)."""
        data = yield from self.engine.recv_message(src, tag)
        if len(data) > nbytes:
            raise ValueError(
                f"message of {len(data)} bytes truncated by {nbytes}-byte recv"
            )
        return data

    # -- non-blocking --------------------------------------------------------

    def mpc_send(self, data: bytes, dst: int, tag: int = 0):
        """Non-blocking send.

        MPL's asynchronous send still performs its injection on the calling
        thread (there is no comm processor on the Power2 side); what it
        does *not* do is wait for any acknowledgement, which is exactly the
        pipelined-bandwidth configuration of Figure 3.
        """
        yield from self.engine.send_message(dst, bytes(data), tag)
        h = Handle("send")
        h.done = True
        return h

    def mpc_recv(self, nbytes: int, src: int = ANY, tag: int = ANY):
        """Non-blocking receive: returns a handle for mpc_wait."""
        yield from self.node.compute(self.costs.recv_fixed)
        h = Handle("recv", src, tag, nbytes)
        data = self.engine.match_unexpected(src, tag)
        if data is not None:
            h.done = True
            h.data = data
        return h

    def mpc_wait(self, handle: Handle):
        """Complete a non-blocking operation."""
        if handle.kind == "recv" and not handle.done:
            data = yield from self.engine.recv_message(handle.src, handle.tag)
            handle.data = data
            handle.done = True
        elif not handle.done:  # pragma: no cover - sends complete eagerly
            raise AssertionError("unfinished send handle")
        return handle.data

    def mpc_status(self, handle: Handle):
        """Poll a handle without blocking (services the network once)."""
        yield from self.engine.poll()
        if handle.kind == "recv" and not handle.done:
            data = self.engine.match_unexpected(handle.src, handle.tag)
            if data is not None:
                handle.data = data
                handle.done = True
        return handle.done

    # -- queries -------------------------------------------------------------

    def mpc_probe(self, src: int = ANY, tag: int = ANY):
        """Non-blocking probe: (source, tag, nbytes) of the first matching
        arrived message, or None."""
        yield from self.engine.poll()
        for msrc, mtag, data in self.engine._unexpected:
            if (src == ANY or msrc == src) and (tag == ANY or mtag == tag):
                return (msrc, mtag, len(data))
        return None

    def mpc_environ(self):
        """(numtask, taskid) — MPL's job-environment query."""
        return self._numtask, self.node.id

    def mpc_sync(self):
        """Barrier across all MPL tasks (dissemination over 0-byte
        messages on a reserved tag space)."""
        size, rank = self._numtask, self.node.id
        if size <= 1:
            return
        self._sync_epoch += 1
        base = 0x3B00000 + self._sync_epoch * 64
        k = 0
        while (1 << k) < size:
            dst = (rank + (1 << k)) % size
            src = (rank - (1 << k)) % size
            yield from self.engine.send_message(dst, b"", base + k)
            yield from self.engine.recv_message(src, base + k)
            k += 1


def attach_mpl(machine: Machine, costs: Optional[MPLCosts] = None) -> List[MPL]:
    """Install MPL on every node of an SP machine."""
    if not machine.is_sp:
        raise ValueError("MPL exists only on the SP")
    mpls = [MPL(node, costs) for node in machine.nodes]
    for mpl in mpls:
        mpl._numtask = machine.nprocs
    return mpls
