"""MPL transport engine: message framing, matching, credit flow control.

Messages are fragmented into TB2 packets (30-byte MPL header, up to 224
payload bytes) and sent through the same adapter/switch path as AM; a
simple credit window with batched credit returns keeps the receive FIFO
from overflowing.  Matching is MPL-style: (source, tag) with -1 as the
"don't care" wildcard, in-order per (source, tag) pair.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.hardware.cache import flush_cost
from repro.hardware.packet import Packet, PacketKind
from repro.sim.primitives import TIMED_OUT, Delay, Timeout
from repro.sim.stats import StatRegistry

#: MPL's leaner data-packet framing: 22 bytes of header + the 8-byte
#: (tag, msg_id) envelope carried as two word args = 30 bytes on the wire,
#: which calibrates r_inf to 34.6 MB/s
MPL_HEADER_BYTES = 22
MPL_MTU = 224

#: credit window per destination, and how often the receiver returns credit
CREDIT_WINDOW = 96
CREDIT_BATCH = 16

ANY = -1  # wildcard source / tag


class _InMessage:
    """A message being reassembled at the receiver."""

    __slots__ = ("src", "tag", "total_len", "chunks", "received")

    def __init__(self, src: int, tag: int, total_len: int):
        self.src = src
        self.tag = tag
        self.total_len = total_len
        self.chunks: List[Tuple[int, bytes]] = []
        self.received = 0

    def add(self, offset: int, payload: bytes) -> bool:
        self.chunks.append((offset, payload))
        self.received += len(payload)
        return self.received >= self.total_len

    def assemble(self) -> bytes:
        out = bytearray(self.total_len)
        for off, chunk in self.chunks:
            out[off: off + len(chunk)] = chunk
        return bytes(out)


class MPLEngine:
    """Per-node MPL transport state (used by repro.mpl.api.MPL)."""

    def __init__(self, node, costs):
        self.node = node
        self.adapter = node.adapter
        self.sim = node.sim
        self.host = node.host
        self.costs = costs
        self.stats = StatRegistry(f"mpl[{node.id}].")
        self._next_msg_id = 1
        #: per-destination outstanding (un-credited) packets
        self._credits_used: Dict[int, int] = {}
        #: per-source packets received since last credit return
        self._credit_debt: Dict[int, int] = {}
        #: messages fully received but not yet matched by a receive
        self._unexpected: Deque[Tuple[int, int, bytes]] = deque()
        #: in-flight reassembly, keyed by (src, msg_id)
        self._assembly: Dict[Tuple[int, int], _InMessage] = {}

    # -- sending -----------------------------------------------------------

    def send_message(self, dst: int, data: bytes, tag: int):
        """Fragment + inject one message; returns when the source buffer is
        reusable (MPL copies eager-size messages internally)."""
        c = self.costs
        yield from self.node.compute(c.send_fixed)
        if len(data) <= c.eager_bytes:
            # internal copy into MPL's send buffer
            yield from self.node.compute(len(data) / c.buffer_copy_rate)
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        offsets = range(0, max(len(data), 1), MPL_MTU)
        npackets = len(offsets)
        staged = 0
        for off in offsets:
            payload = data[off: off + MPL_MTU]
            yield from self._credit_gate(dst)
            pkt = Packet(
                src=self.node.id, dst=dst, kind=PacketKind.MPL_DATA,
                args=(tag, msg_id), payload=payload, offset=off,
                total_len=len(data), header_bytes=MPL_HEADER_BYTES,
            )
            if self.adapter.obs is not None:
                self.adapter.obs.begin_message(pkt, self.sim.now)
            yield from self.node.compute(
                c.per_packet + flush_cost(pkt.wire_bytes, self.host)
            )
            while not self.adapter.host_can_stage(1):
                yield Delay(6.6)
            self.adapter.host_stage(pkt)
            self._credits_used[dst] = self._credits_used.get(dst, 0) + 1
            staged += 1
            if staged % 4 == 0 or staged == npackets:
                yield from self.node.compute(self.host.mc_pio)
                self.adapter.host_arm()
        self.stats.count("messages_sent")
        self.stats.count("packets_sent", npackets)

    def _credit_gate(self, dst: int):
        while self._credits_used.get(dst, 0) >= CREDIT_WINDOW:
            yield from self._wait_progress()

    # -- receiving ---------------------------------------------------------

    def match_unexpected(self, src: int, tag: int) -> Optional[bytes]:
        """Pop the first already-arrived message matching (src, tag)."""
        for i, (msrc, mtag, data) in enumerate(self._unexpected):
            if (src == ANY or msrc == src) and (tag == ANY or mtag == tag):
                del self._unexpected[i]
                return data
        return None

    def recv_message(self, src: int, tag: int):
        """Block until a matching message has fully arrived; returns bytes."""
        c = self.costs
        yield from self.node.compute(c.recv_fixed)
        while True:
            data = self.match_unexpected(src, tag)
            if data is not None:
                # data was placed incrementally as packets arrived; only
                # the descriptor hand-off remains
                yield from self.node.compute(c.match_cost)
                self.stats.count("messages_received")
                return data
            yield from self._wait_progress()

    # -- progress engine -----------------------------------------------------

    def poll(self):
        """Drain arrived packets (called from blocking MPL calls)."""
        yield from self.node.compute(self.costs.poll_cost)
        while self.adapter.host_recv_available() > 0:
            pkt = self.adapter.host_recv_consume()
            yield from self.node.compute(self.costs.per_packet_recv)
            yield from self._process(pkt)
            if self.adapter.host_recv_should_pop():
                yield from self.node.compute(self.host.mc_pio)
                self.adapter.host_recv_pop_batch()

    def _process(self, pkt: Packet):
        if pkt.kind == PacketKind.MPL_ACK:
            self._credits_used[pkt.src] = max(
                0, self._credits_used.get(pkt.src, 0) - pkt.args[0]
            )
            return
        if pkt.kind != PacketKind.MPL_DATA:
            raise AssertionError(
                f"MPL engine received foreign packet kind {pkt.kind}"
            )
        tag, msg_id = pkt.args
        key = (pkt.src, msg_id)
        msg = self._assembly.get(key)
        if msg is None:
            msg = self._assembly[key] = _InMessage(pkt.src, tag, pkt.total_len)
        # incremental placement into the destination buffer
        yield from self.node.compute(len(pkt.payload) / self.host.copy_rate)
        if msg.add(pkt.offset, pkt.payload):
            del self._assembly[key]
            self._unexpected.append((msg.src, msg.tag, msg.assemble()))
        # credit accounting (the return packet itself is cheap)
        debt = self._credit_debt.get(pkt.src, 0) + 1
        if debt >= CREDIT_BATCH:
            self._credit_debt[pkt.src] = 0
            yield from self._send_credit(pkt.src, debt)
        else:
            self._credit_debt[pkt.src] = debt

    def _send_credit(self, dst: int, n: int):
        ack = Packet(src=self.node.id, dst=dst, kind=PacketKind.MPL_ACK,
                     args=(n,), header_bytes=MPL_HEADER_BYTES)
        yield from self.node.compute(
            self.costs.credit_cost + self.host.mc_pio
        )
        while not self.adapter.host_can_stage(1):
            yield Delay(6.6)
        self.adapter.host_stage(ack)
        self.adapter.host_arm()
        self.stats.count("credits_returned", n)

    def _wait_progress(self):
        if self.adapter.host_recv_available() == 0:
            ev = self.adapter.arrival_event()
            res = yield Timeout(ev, 1_000_000.0)
            if res is TIMED_OUT:
                raise RuntimeError(
                    f"MPL on node {self.node.id} stalled 1 s; "
                    "credit deadlock?"
                )
        yield from self.poll()

    def flush_credits(self):
        """Return any outstanding credit debt (used at teardown/barrier)."""
        for src, debt in list(self._credit_debt.items()):
            if debt:
                self._credit_debt[src] = 0
                yield from self._send_credit(src, debt)
