"""Unified observability: message-lifecycle spans, histograms, exporters.

Every layer of the stack — TB2 adapter, switch, generic NIC, AM, MPL,
Split-C's profiler — reports into one :class:`Observatory`:

* **spans** follow a single packet end-to-end (injection → MicroChannel
  DMA → send FIFO → switch → receive FIFO → handler), correlated by the
  ``trace_id`` carried on :class:`~repro.hardware.packet.Packet`, with
  per-stage latency attribution that reconstructs the paper's Table 2 /
  §2.3 breakdowns from a live run;
* **histograms** answer p50/p95/p99/max queries for round-trip latency,
  handler run time, window occupancy, and switch queueing;
* **metrics** (:mod:`repro.obs.metrics`) sample gauges across every layer
  on a simulated-time timer — FIFO occupancy, window credit, link and TX
  utilization, scheduler depth, retransmit rates — into bounded ring
  buffers that also render as Chrome-trace counter tracks;
* **critical path** (:mod:`repro.obs.critpath`) decomposes each span into
  staging / queueing / DMA+wire / switch / poll / dispatch / handler /
  retransmit-backoff time, rolls it up per kind, surfaces the slowest
  exemplars, and names the bottleneck stage plus its saturated gauge;
* **exporters** emit Chrome trace-event JSON (open in Perfetto), JSONL
  span dumps (lossless round trip), and counter/histogram snapshots.

Usage::

    obs = Observatory().attach(machine)     # before running the workload
    ... run ...
    write_chrome_trace(obs, "trace.json")
    obs.hist("am.rtt_us").percentile(99)

See ``docs/observability.md`` for the span model and formats.
"""

from repro.obs.core import Observatory
from repro.obs.critpath import (
    CRIT_STAGES,
    attribution_coverage,
    bottleneck_verdict,
    critpath_rollup,
    critpath_stages,
    slowest_exemplars,
)
from repro.obs.events import EventLog, TraceEvent
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hist import Histogram, percentile
from repro.obs.metrics import MetricsSampler
from repro.obs.schema import (
    validate_bench_report,
    validate_chrome_trace,
    validate_jsonl_trace,
)
from repro.obs.span import STAGE_NAMES, STAGES, MessageSpan, span_from_dict

__all__ = [
    "Observatory",
    "MetricsSampler",
    "CRIT_STAGES",
    "critpath_stages",
    "critpath_rollup",
    "slowest_exemplars",
    "bottleneck_verdict",
    "attribution_coverage",
    "EventLog",
    "TraceEvent",
    "Histogram",
    "percentile",
    "MessageSpan",
    "span_from_dict",
    "STAGES",
    "STAGE_NAMES",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "validate_chrome_trace",
    "validate_jsonl_trace",
    "validate_bench_report",
]
