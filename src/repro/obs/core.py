"""The :class:`Observatory`: one hub every layer reports into.

``Observatory().attach(machine)`` walks the machine and plants itself on
every device, node, and the switch; from then on the hardware models
deposit span marks, the software layers record handler/occupancy
histograms, and the Split-C profiler contributes phase spans — all into
one object that the exporters (:mod:`repro.obs.export`) and the bench
harness read back out.

The hub deliberately imports nothing from ``repro.sim`` or
``repro.hardware``: components reference *it* (via their ``obs``
attribute, ``None`` when unobserved), never the other way around, so an
uninstrumented run pays only a ``None`` check per hook.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.hist import Histogram
from repro.obs.span import STAGES, MessageSpan


class Observatory:
    """Collects message spans, histograms, phase spans, and stat registries."""

    def __init__(self, span_limit: int = 200_000, sample_every: int = 1):
        #: trace_id -> span, in creation order
        self.spans: Dict[int, MessageSpan] = {}
        self.span_limit = span_limit
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        #: span sampling: open a lifecycle span for 1 message in N (the
        #: first of every N).  Unsampled packets are stamped with trace_id
        #: -1, so every later hook short-circuits on the span-table miss.
        #: N > 1 trades span completeness for tracing overhead — fault
        #: reconciliation (``repro.faults.soak``) needs N == 1.
        self.sample_every = sample_every
        self._sample_tick = 0
        #: messages skipped by sampling (distinct from ``dropped_spans``,
        #: which counts the span-limit safety valve)
        self.sampled_out = 0
        self.dropped_spans = 0
        self.histograms: Dict[str, Histogram] = {}
        #: (node, track, name, t0, t1) — e.g. Split-C compute phases
        self.phase_spans: List[Tuple[int, str, str, float, float]] = []
        #: every fault seen: injected faults (``fault``) and packet drops
        #: (``packet_dropped``), each tagged with the victim's trace_id so
        #: chaos campaigns can reconcile injections against observations
        self.fault_events: List[Dict] = []
        #: registries added by hand (machine registries are walked live)
        self._registries: List = []
        #: periodic gauge sampler (:class:`repro.obs.metrics.MetricsSampler`),
        #: None until :meth:`start_sampler` — the metrics side is opt-in
        #: even when spans are being traced
        self.metrics = None
        self.machine = None
        self._next_trace = 1
        #: kind object -> display name; enum ``.name`` is a descriptor
        #: lookup, too slow to repeat per message
        self._kind_names: Dict = {}

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach(self, machine) -> "Observatory":
        """Plant this hub on every device/node of ``machine``."""
        self.machine = machine
        machine.obs = self
        if getattr(machine, "switch", None) is not None:
            machine.switch.obs = self
        for node in machine.nodes:
            node.obs = self
            for dev in (node.adapter, node.nic):
                if dev is not None:
                    dev.obs = self
        return self

    def start_sampler(self, machine=None, period_us: float = 50.0,
                      capacity: Optional[int] = None,
                      max_samples: Optional[int] = None):
        """Start the periodic gauge sampler on ``machine`` (defaults to
        the attached one) and return it (also readable as ``metrics``).

        Plants a recurring ``call_later`` timer, so sampled runs must be
        driven with ``run_until_processes_done`` (or call
        ``metrics.stop()`` before draining the queue).  Idempotent while
        a sampler is running.
        """
        # deferred import: the hub stays importable without the sampler
        # and repro.obs.metrics is free to grow without cycles
        from repro.obs.metrics import DEFAULT_CAPACITY, MetricsSampler

        if self.metrics is not None and self.metrics.running:
            return self.metrics
        machine = machine if machine is not None else self.machine
        if machine is None:
            raise ValueError("start_sampler needs a machine "
                             "(none attached yet)")
        self.metrics = MetricsSampler(
            self, machine, period_us=period_us,
            capacity=DEFAULT_CAPACITY if capacity is None else capacity,
            max_samples=max_samples,
        ).start()
        return self.metrics

    def add_registry(self, registry) -> None:
        """Track a :class:`~repro.sim.stats.StatRegistry` not reachable
        from the machine walk (standalone components, tests)."""
        self._registries.append(registry)

    def _all_registries(self) -> List:
        """Machine-reachable registries (walked live, so software layers
        attached after :meth:`attach` are still found) + manual ones."""
        regs: List = []
        m = self.machine
        if m is not None:
            for holder in (getattr(m, "switch", None),
                           getattr(m, "fabric", None)):
                if holder is not None:
                    regs.append(holder.stats)
            for node in m.nodes:
                regs.append(node.stats)
                for attr in ("adapter", "nic", "am", "mpl", "mpi", "splitc"):
                    layer = getattr(node, attr, None)
                    st = getattr(layer, "stats", None)
                    if st is not None:
                        regs.append(st)
        regs.extend(self._registries)
        return regs

    # ------------------------------------------------------------------
    # span collection (called from hardware/protocol hooks)
    # ------------------------------------------------------------------

    def begin_message(self, pkt, t: float) -> Optional[MessageSpan]:
        """Open a span for ``pkt`` at time ``t`` and stamp its trace id.

        Idempotent: a packet that already carries a trace id keeps its
        span (retransmissions re-enter the TX path with the same id);
        sampled-out packets carry trace_id -1 and stay span-less.
        """
        # direct loads with AttributeError fallbacks: this runs per
        # message, and a 3-arg getattr costs ~2x a plain load (the except
        # paths only ever run for duck-typed message objects in tests)
        try:
            tid = pkt.trace_id
        except AttributeError:
            tid = 0
        if tid:
            return self.spans.get(tid)
        if self.sample_every > 1:
            self._sample_tick += 1
            if self._sample_tick % self.sample_every != 1:
                try:
                    pkt.trace_id = -1
                except AttributeError:
                    pass
                self.sampled_out += 1
                return None
        if len(self.spans) >= self.span_limit:
            self.dropped_spans += 1
            return None
        tid = self._next_trace
        self._next_trace += 1
        try:
            pkt.trace_id = tid
        except AttributeError:     # message type without a trace_id slot
            return None
        kind_obj = getattr(pkt, "kind", None)
        kind = self._kind_names.get(kind_obj) if kind_obj is not None else None
        if kind is None:
            kind = getattr(kind_obj, "name",
                           None) or str(getattr(pkt, "kind",
                                                type(pkt).__name__))
            if kind_obj is not None and getattr(kind_obj, "__hash__",
                                                None) is not None:
                self._kind_names[kind_obj] = kind
        try:
            span = MessageSpan(trace_id=tid, src=pkt.src, dst=pkt.dst,
                               kind=kind, seq=pkt.seq,
                               wire_bytes=pkt.wire_bytes)
        except AttributeError:
            span = MessageSpan(
                trace_id=tid, src=getattr(pkt, "src", -1),
                dst=getattr(pkt, "dst", -1), kind=kind,
                seq=getattr(pkt, "seq", 0),
                wire_bytes=getattr(pkt, "wire_bytes", 0),
            )
        span.marks["begin"] = t
        self.spans[tid] = span
        return span

    def mark_packet(self, pkt, mark: str, t: float) -> Optional[MessageSpan]:
        """Deposit an absolute-time mark on ``pkt``'s span (no-op when the
        packet is untracked)."""
        try:
            tid = pkt.trace_id
        except AttributeError:
            tid = 0
        span = self.spans.get(tid)
        if span is not None:
            span.marks[mark] = t
        return span

    def packet_staged(self, pkt, t: float) -> Optional[MessageSpan]:
        """Send-FIFO staging: open the span if the software layer above
        didn't (its ``begin`` then coincides with staging) and refresh the
        fields assigned after construction (seq, wire size)."""
        span = self.begin_message(pkt, t)
        if span is not None:
            try:
                span.seq = pkt.seq
                span.wire_bytes = pkt.wire_bytes
            except AttributeError:
                pass  # duck-typed message without the refreshed fields
            span.marks["stage"] = t
        return span

    def packet_dropped(self, pkt, reason: str = "") -> None:
        """A packet was lost (fabric fault, CRC reject, FIFO overflow)."""
        span = self.spans.get(getattr(pkt, "trace_id", 0))
        if span is not None:
            span.drops += 1
        self._fault_event("packet_dropped", pkt, None, reason)

    def fault(self, pkt, kind: str, t: float, detail: str = "") -> None:
        """An injected fault fired against ``pkt`` (called by the
        :class:`~repro.faults.injector.FaultInjector`)."""
        self._fault_event(kind, pkt, t, detail)

    def _fault_event(self, kind: str, pkt, t: Optional[float],
                     detail: str) -> None:
        if len(self.fault_events) >= self.span_limit:
            self.dropped_spans += 1
            return
        self.fault_events.append({
            "kind": kind,
            "t": t,
            "packet_kind": getattr(getattr(pkt, "kind", None), "name",
                                   str(getattr(pkt, "kind", "?"))),
            "trace_id": getattr(pkt, "trace_id", 0),
            "seq": getattr(pkt, "seq", 0),
            "src": getattr(pkt, "src", -1),
            "dst": getattr(pkt, "dst", -1),
            "detail": detail,
        })

    # ------------------------------------------------------------------
    # histograms + phase spans
    # ------------------------------------------------------------------

    def hist(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def phase(self, node: int, track: str, name: str,
              t0: float, t1: float) -> None:
        """Record a non-message span (compute phase, barrier, custom)."""
        if len(self.phase_spans) < self.span_limit:
            self.phase_spans.append((node, track, name, t0, t1))
        else:
            self.dropped_spans += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def spans_by_kind(self, kind: str) -> List[MessageSpan]:
        return [s for s in self.spans.values() if s.kind == kind]

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate per-stage latency over every span: stage name ->
        histogram snapshot (count/min/mean/p50/p95/p99/max)."""
        hists = {name: Histogram(name) for name, _a, _b in STAGES}
        for span in self.spans.values():
            for stage, dur in span.stage_durations().items():
                hists[stage].observe(dur)
        return {name: h.snapshot() for name, h in hists.items() if h.count}

    def snapshot(self) -> Dict:
        """One JSON-serializable snapshot: merged counters, time series,
        and histogram summaries (the exporters' ``stats`` section)."""
        counters: Dict[str, float] = {}
        series: Dict[str, Dict] = {}
        for reg in self._all_registries():
            counters.update(reg.snapshot())
            snap_series = getattr(reg, "snapshot_series", None)
            if snap_series is not None:
                series.update(snap_series())
        snap = {
            "counters": dict(sorted(counters.items())),
            "series": dict(sorted(series.items())),
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self.histograms.items())},
            "spans": {
                "recorded": len(self.spans),
                "dropped": self.dropped_spans,
                "sampled_out": self.sampled_out,
                "sample_every": self.sample_every,
            },
            "fault_events": len(self.fault_events),
        }
        if self.metrics is not None:
            snap["metrics"] = {
                "period_us": self.metrics.period_us,
                "samples_taken": self.metrics.samples_taken,
                "series": self.metrics.snapshot(),
            }
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Observatory(spans={len(self.spans)}, "
                f"hists={len(self.histograms)})")
