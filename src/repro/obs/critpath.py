"""Critical-path attribution: where did each message's microseconds go?

The span layer records absolute-time *marks*; this module turns them
into the paper's §2.3-style decomposition.  Each
:class:`~repro.obs.span.MessageSpan` is split into a finer-grained stage
vector than :data:`repro.obs.span.STAGES` — TX queueing is separated
from go-back-N recovery backoff, and the switch interval is separated
into destination-link queueing vs. hardware latency — so the rollup can
name the *resource* behind the dominant stage, not just the layer:

========================  ====================================================
stage                     what the time is
========================  ====================================================
``staging``               software builds + stages the packet (begin→stage)
``tx_queue``              length scan + send-FIFO wait, minus recovery backoff
``retransmit_backoff``    waiting for NACK/keep-alive go-back-N recovery
``dma_wire``              MC DMA + i860 TX + input-link serialization
``switch_queue``          destination-link serialization wait (``queued_us``)
``switch_hw``             switch hardware latency (remainder of the interval)
``rx_dma``                MC DMA + i860 RX on the receiving adapter
``poll_wait``             delivered but the host hasn't polled yet
``dispatch``              per-packet poll + handler-table lookup
``handler``               the AM handler body
========================  ====================================================

The stages tile ``begin → handler_end`` exactly (each boundary mark is
shared), so per-kind sums over a request/reply pair reproduce the
measured RTT — ``spam-bench profile`` asserts the attribution covers
>= 95% of the AM ping-pong round trip.

Pure functions over an :class:`~repro.obs.core.Observatory` (or a plain
span iterable); imports nothing from the simulator or hardware.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.span import MessageSpan

#: critical-path stage names, lifecycle order
CRIT_STAGES: Tuple[str, ...] = (
    "staging", "tx_queue", "retransmit_backoff", "dma_wire",
    "switch_queue", "switch_hw", "rx_dma", "poll_wait", "dispatch",
    "handler",
)

#: which sampler gauge explains pressure in each stage, as substring
#: patterns matched against :class:`~repro.obs.metrics.MetricsSampler`
#: series names (first pattern with a live series wins per stage)
STAGE_GAUGES: Dict[str, Tuple[str, ...]] = {
    "staging": (".send_fifo",),
    "tx_queue": (".send_fifo", ".win_inflight"),
    "retransmit_backoff": ("rate.retransmissions_per_s", ".win_credit"),
    "dma_wire": (".tx_util",),
    "switch_queue": (".util", "switch.in_flight"),
    "switch_hw": ("switch.in_flight",),
    "rx_dma": (".recv_fifo",),
    "poll_wait": (".recv_visible",),
    "dispatch": (".recv_visible",),
    "handler": (),     # explained by the handler histogram, not a gauge
}


def critpath_stages(span: MessageSpan) -> Dict[str, float]:
    """One span's critical-path vector (stages with both marks present).

    Negative intervals — stale marks overwritten mid-retransmission —
    are clamped out the same way :meth:`MessageSpan.stage_durations`
    skips them.
    """
    m = span.marks
    out: Dict[str, float] = {}

    def seg(name: str, a: str, b: str) -> Optional[float]:
        ta, tb = m.get(a), m.get(b)
        if ta is None or tb is None or tb < ta:
            return None
        out[name] = tb - ta
        return out[name]

    seg("staging", "begin", "stage")
    txq = seg("tx_queue", "stage", "dma_start")
    if span.backoff_us > 0.0:
        # recovery wait is its own stage, carved out of the TX-queue
        # interval it physically sits inside
        out["retransmit_backoff"] = span.backoff_us
        if txq is not None:
            out["tx_queue"] = max(0.0, txq - span.backoff_us)
    seg("dma_wire", "dma_start", "wire_exit")
    sw = seg("switch_hw", "wire_exit", "sw_deliver")
    if sw is not None and span.queued_us > 0.0:
        out["switch_queue"] = min(span.queued_us, sw)
        out["switch_hw"] = sw - out["switch_queue"]
    seg("rx_dma", "sw_deliver", "visible")
    seg("poll_wait", "visible", "consume")
    seg("dispatch", "consume", "handler_start")
    seg("handler", "handler_start", "handler_end")
    return out


def _spans(source) -> Iterable[MessageSpan]:
    spans = getattr(source, "spans", None)
    if spans is not None:          # an Observatory
        return spans.values()
    return source                  # already an iterable of spans


def critpath_rollup(source, by_kind: bool = True) -> Dict[str, Dict]:
    """Aggregate critical-path stages over every span.

    Returns ``{kind: {stage: {count,total_us,mean_us,max_us,share}}}``
    (plus the cross-kind ``"ALL"`` rollup); ``share`` is the stage's
    fraction of that kind's total attributed time — the number the
    bottleneck verdict ranks by.  With ``by_kind=False`` only ``"ALL"``
    is computed.
    """
    # {kind: {stage: [count, total, max]}}
    acc: Dict[str, Dict[str, List[float]]] = {"ALL": {}}
    for span in _spans(source):
        stages = critpath_stages(span)
        if not stages:
            continue
        targets = ["ALL", span.kind] if by_kind else ["ALL"]
        for key in targets:
            bucket = acc.get(key)
            if bucket is None:
                bucket = acc[key] = {}
            for stage, dur in stages.items():
                cell = bucket.get(stage)
                if cell is None:
                    bucket[stage] = [1, dur, dur]
                else:
                    cell[0] += 1
                    cell[1] += dur
                    if dur > cell[2]:
                        cell[2] = dur
    out: Dict[str, Dict] = {}
    for kind, bucket in sorted(acc.items()):
        if not bucket:
            continue
        grand = sum(cell[1] for cell in bucket.values())
        out[kind] = {
            stage: {
                "count": int(bucket[stage][0]),
                "total_us": bucket[stage][1],
                "mean_us": bucket[stage][1] / bucket[stage][0],
                "max_us": bucket[stage][2],
                "share": (bucket[stage][1] / grand) if grand > 0.0 else 0.0,
            }
            for stage in CRIT_STAGES if stage in bucket
        }
    return out


def slowest_exemplars(source, k: int = 5) -> List[Dict]:
    """The ``k`` slowest completed spans, each with its full mark
    timeline and critical-path decomposition — the "show me one bad
    message" view of the rollup."""
    ranked: List[Tuple[float, MessageSpan]] = []
    for span in _spans(source):
        total = span.total_us()
        if total is not None:
            ranked.append((total, span))
    ranked.sort(key=lambda pair: (-pair[0], pair[1].trace_id))
    out = []
    for total, span in ranked[:k]:
        out.append({
            "trace_id": span.trace_id,
            "kind": span.kind,
            "src": span.src,
            "dst": span.dst,
            "seq": span.seq,
            "wire_bytes": span.wire_bytes,
            "total_us": total,
            "retransmits": span.retransmits,
            "drops": span.drops,
            "marks": dict(sorted(span.marks.items(),
                                 key=lambda kv: kv[1])),
            "stages": critpath_stages(span),
        })
    return out


def bottleneck_verdict(rollup: Dict[str, Dict],
                       metrics=None,
                       kind: str = "ALL") -> Dict:
    """Name the dominant critical-path stage and the gauge behind it.

    ``rollup`` is :func:`critpath_rollup` output; ``metrics`` is an
    optional :class:`~repro.obs.metrics.MetricsSampler` whose series
    corroborate the verdict (the saturated gauge's p95/max are quoted).
    """
    bucket = rollup.get(kind, {})
    if not bucket:
        return {"stage": None, "share": 0.0, "gauge": None}
    stage = max(bucket, key=lambda s: bucket[s]["total_us"])
    verdict = {
        "stage": stage,
        "share": bucket[stage]["share"],
        "mean_us": bucket[stage]["mean_us"],
        "total_us": bucket[stage]["total_us"],
        "gauge": None,
    }
    if metrics is not None:
        # among the gauges that explain this stage, quote the most
        # loaded one (highest p95) as the saturated resource
        best_name, best_p95 = None, None
        for pattern in STAGE_GAUGES.get(stage, ()):
            for name, series in metrics.series.items():
                if pattern in name and len(series):
                    p95 = series.percentile(95)
                    if best_p95 is None or p95 > best_p95:
                        best_name, best_p95 = name, p95
        if best_name is not None:
            verdict["gauge"] = best_name
            verdict["gauge_p95"] = best_p95
            verdict["gauge_max"] = metrics.series[best_name].max()
    return verdict


def attribution_coverage(source, measured_rtt_us: float,
                         request_kind: str = "REQUEST",
                         reply_kind: str = "REPLY") -> Dict:
    """Fraction of a measured AM ping-pong RTT the critical path explains.

    §2.3 decomposes one round trip as request begin → request handler
    dispatch, then reply begin → reply handler end: the reply's whole
    lifecycle *rides inside* the request's handler, so the request's
    ``handler`` stage is excluded to avoid double-counting.  Stage means
    per kind are summed accordingly and compared against
    ``measured_rtt_us``.
    """
    rollup = critpath_rollup(source, by_kind=True)

    def kind_sum(kind: str, skip: Tuple[str, ...]) -> float:
        return sum(cell["mean_us"]
                   for stage, cell in rollup.get(kind, {}).items()
                   if stage not in skip)

    request_us = kind_sum(request_kind, skip=("handler",))
    reply_us = kind_sum(reply_kind, skip=())
    attributed = request_us + reply_us
    coverage = (attributed / measured_rtt_us
                if measured_rtt_us > 0.0 else 0.0)
    return {
        "measured_rtt_us": measured_rtt_us,
        "attributed_us": attributed,
        "request_us": request_us,
        "reply_us": reply_us,
        "coverage": coverage,
    }
