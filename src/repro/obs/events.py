"""The timestamped event log underlying :class:`repro.sim.tracing.Tracer`.

Historically the Tracer owned its own event list; the log now lives here
so the same machinery backs the debugging tracer, the JSONL exporter, and
``spam-bench inspect``.  The log is bounded (``limit``) and counts what it
had to drop, so a runaway protocol loop cannot eat the host's memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry."""

    t: float
    kind: str          # "tx", "rx", "drop", or a custom mark
    node: int
    detail: str

    def __str__(self) -> str:
        return f"{self.t:12.2f}us  n{self.node}  {self.kind:<6} {self.detail}"


class EventLog:
    """A bounded, append-only list of :class:`TraceEvent` with queries."""

    def __init__(self, limit: int = 1_000_000):
        self.events: List[TraceEvent] = []
        self.limit = limit
        self.dropped_events = 0

    # -- collection ------------------------------------------------------

    def record(self, t: float, kind: str, node: int, detail: str) -> None:
        if len(self.events) >= self.limit:
            self.dropped_events += 1
            return
        self.events.append(TraceEvent(t=t, kind=kind, node=node,
                                      detail=detail))

    # -- querying --------------------------------------------------------

    def filter(self, kind: Optional[str] = None, node: Optional[int] = None,
               contains: Optional[str] = None) -> List[TraceEvent]:
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if node is not None:
            out = [e for e in out if e.node == node]
        if contains is not None:
            out = [e for e in out if contains in e.detail]
        return list(out)

    def first(self, **kw) -> Optional[TraceEvent]:
        hits = self.filter(**kw)
        return hits[0] if hits else None

    def count(self, **kw) -> int:
        return len(self.filter(**kw))

    def spans(self, start_contains: str, end_contains: str) -> List[float]:
        """Durations between successive matching start/end marks.

        While a span is open, further start matches are ignored (the span
        closes at the *next* end match); an end mark with no open span is
        ignored.  Interleaved unrelated marks are skipped.
        """
        out = []
        start_t: Optional[float] = None
        for e in self.events:
            if start_contains in e.detail and start_t is None:
                start_t = e.t
            elif end_contains in e.detail and start_t is not None:
                out.append(e.t - start_t)
                start_t = None
        return out

    # -- rendering --------------------------------------------------------

    def render(self, last: Optional[int] = None) -> str:
        evs = self.events if last is None else self.events[-last:]
        body = "\n".join(str(e) for e in evs)
        if self.dropped_events:
            body += f"\n... ({self.dropped_events} events beyond limit)"
        return body

    def __len__(self) -> int:
        return len(self.events)
