"""Exporters: Chrome trace-event JSON, JSONL span dumps, snapshots.

Three machine-readable views of one :class:`~repro.obs.core.Observatory`:

* :func:`chrome_trace` — the Chrome trace-event format (the ``{
  "traceEvents": [...] }`` flavour), loadable in Perfetto / ``about:tracing``
  with one process row per node plus one for the switch, and thread rows
  for host / adapter / handler / phase activity.  When a
  :class:`~repro.obs.metrics.MetricsSampler` ran, every gauge series
  additionally renders as a counter track (``"ph": "C"``) under the
  process row its ``pid_of`` names.  Timestamps are already
  microseconds — the simulator's native unit — so no scaling happens.
* :func:`write_jsonl` / :func:`read_jsonl` — a line-per-span dump that
  round-trips losslessly back into :class:`~repro.obs.span.MessageSpan`
  objects (``spam-bench inspect`` consumes either format).
* :meth:`Observatory.snapshot` (re-exported here as :func:`snapshot`) —
  counters + series + histogram summaries for bench reports.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.core import Observatory
from repro.obs.span import STAGES, MessageSpan, span_from_dict

#: synthetic "process" holding the switch's per-destination-link rows
SWITCH_PID = 9999
#: synthetic "process" for machine-wide counter tracks (scheduler depth,
#: event rates) — matches repro.obs.metrics.GLOBAL_PID
GLOBAL_PID = 9998

#: thread ids within a node's process row
TID_HOST = 0
TID_ADAPTER = 1
TID_HANDLER = 2
TID_PHASE = 3

_TID_NAMES = {
    TID_HOST: "host",
    TID_ADAPTER: "adapter",
    TID_HANDLER: "am handler",
    TID_PHASE: "phases",
}

#: stage -> (which end of the span owns it, thread row)
_STAGE_TRACK: Dict[str, Tuple[str, int]] = {
    "send_sw": ("src", TID_HOST),
    "tx_queue": ("src", TID_ADAPTER),
    "tx_adapter": ("src", TID_ADAPTER),
    "switch": ("switch", 0),
    "rx_adapter": ("dst", TID_ADAPTER),
    "poll_wait": ("dst", TID_HOST),
    "dispatch": ("dst", TID_HOST),
    "handler": ("dst", TID_HANDLER),
}

JSONL_SCHEMA = "spam-trace-jsonl/1"


def _meta(pid: int, name: str, tid: int = None, tname: str = None) -> List[Dict]:
    out = [{"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name}}]
    if tid is not None:
        out.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": tname}})
    return out


def chrome_trace(obs: Observatory) -> Dict:
    """Render the observatory as a Chrome trace-event JSON object."""
    events: List[Dict] = []
    pids = set()
    switch_rows = set()
    for span in obs.spans.values():
        durations = span.stage_durations()
        for stage, start_mark, _end_mark in STAGES:
            if stage not in durations:
                continue
            side, tid = _STAGE_TRACK[stage]
            if side == "switch":
                pid, tid = SWITCH_PID, span.dst
                switch_rows.add(span.dst)
            else:
                pid = span.src if side == "src" else span.dst
                pids.add(pid)
            events.append({
                "name": f"{stage}:{span.kind}",
                "cat": span.kind,
                "ph": "X",
                "ts": span.marks[start_mark],
                "dur": durations[stage],
                "pid": pid,
                "tid": tid,
                "args": {"trace_id": span.trace_id, "seq": span.seq,
                         "src": span.src, "dst": span.dst,
                         "bytes": span.wire_bytes},
            })
    for node, track, name, t0, t1 in obs.phase_spans:
        pids.add(node)
        events.append({
            "name": name, "cat": track, "ph": "X", "ts": t0,
            "dur": max(0.0, t1 - t0), "pid": node, "tid": TID_PHASE,
            "args": {"track": track},
        })
    counter_pids = set()
    if obs.metrics is not None:
        for name, series in sorted(obs.metrics.series.items()):
            pid = obs.metrics.pid_of.get(name, GLOBAL_PID)
            counter_pids.add(pid)
            for t, v in series.samples:
                events.append({
                    "name": name, "ph": "C", "ts": t, "pid": pid,
                    "args": {name.rpartition(".")[2]: v},
                })
    meta: List[Dict] = []
    if GLOBAL_PID in counter_pids:
        meta.extend(_meta(GLOBAL_PID, "machine"))
    for pid in sorted(pids | (counter_pids - {GLOBAL_PID, SWITCH_PID})):
        meta.extend(_meta(pid, f"node {pid}"))
        for tid, tname in _TID_NAMES.items():
            meta.extend(_meta(pid, f"node {pid}", tid, tname)[1:])
    if switch_rows or SWITCH_PID in counter_pids:
        meta.extend(_meta(SWITCH_PID, "switch"))
        for dst in sorted(switch_rows):
            meta.extend(_meta(SWITCH_PID, "switch", dst, f"link to n{dst}")[1:])
    other = {
        "generator": "repro.obs",
        "spans": len(obs.spans),
        "dropped_spans": obs.dropped_spans,
    }
    if obs.metrics is not None:
        other["counter_series"] = len(obs.metrics.series)
        other["sampler_period_us"] = obs.metrics.period_us
    return {
        "traceEvents": meta + sorted(events, key=lambda e: e["ts"]),
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def write_chrome_trace(obs: Observatory, path: str) -> str:
    with open(path, "w") as f:
        json.dump(chrome_trace(obs), f, indent=1)
    return path


def write_jsonl(obs: Observatory, path: str) -> str:
    """Dump every message span (and phase span) as one JSON object per
    line; the first line is a schema header."""
    with open(path, "w") as f:
        header = {"type": "meta", "schema": JSONL_SCHEMA,
                  "spans": len(obs.spans),
                  "dropped_spans": obs.dropped_spans}
        f.write(json.dumps(header) + "\n")
        for span in obs.spans.values():
            f.write(json.dumps({"type": "span", **span.to_dict()}) + "\n")
        for node, track, name, t0, t1 in obs.phase_spans:
            f.write(json.dumps({"type": "phase", "node": node,
                                "track": track, "name": name,
                                "t0": t0, "t1": t1}) + "\n")
    return path


def read_jsonl(path: str) -> Tuple[Dict, List[MessageSpan]]:
    """Load a JSONL dump back: ``(meta, spans)``.

    Phase lines are returned inside ``meta["phases"]``.
    """
    meta: Dict = {}
    spans: List[MessageSpan] = []
    phases: List[Tuple] = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            t = obj.get("type")
            if t == "meta":
                meta = obj
            elif t == "span":
                spans.append(span_from_dict(obj))
            elif t == "phase":
                phases.append((obj["node"], obj["track"], obj["name"],
                               obj["t0"], obj["t1"]))
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown line type {t!r}")
    meta["phases"] = phases
    return meta, spans
