"""Latency histograms with percentile queries.

The paper's evaluation reports *distributions* only through their means
(51.0 us round trip, Table 2 call costs); a production system needs the
tail too.  :class:`Histogram` collects raw observations and answers
p50/p95/p99/max queries; :func:`percentile` is the shared nearest-rank
implementation that :meth:`repro.sim.stats.TimeSeries.percentile` also
delegates to.

Values are kept verbatim (a simulation produces at most a few hundred
thousand observations per run) so percentiles are exact, not bucketed
approximations; the sorted view is cached between observations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def percentile_sorted(vs: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of an **already sorted** sequence.

    The single selection implementation: both :func:`percentile` and
    :meth:`Histogram.percentile` delegate here, so the nearest-rank rule
    cannot drift between them.
    """
    if not vs:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile {p} outside [0, 100]")
    if p == 0.0:
        return vs[0]
    k = math.ceil(p / 100.0 * len(vs)) - 1
    return vs[min(max(k, 0), len(vs) - 1)]


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (``p`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    return percentile_sorted(sorted(values), p)


class Histogram:
    """A named distribution of float observations (times, depths, sizes)."""

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    def min(self) -> float:
        self._require_data()
        return self._ordered()[0]

    def max(self) -> float:
        self._require_data()
        return self._ordered()[-1]

    def mean(self) -> float:
        self._require_data()
        return sum(self._values) / len(self._values)

    def percentile(self, p: float) -> float:
        self._require_data()
        return percentile_sorted(self._ordered(), p)

    def _require_data(self) -> None:
        if not self._values:
            raise ValueError(f"histogram {self.name!r} is empty")

    def snapshot(self) -> Dict[str, float]:
        """JSON-serializable summary: count, min/mean/max, p50/p95/p99."""
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "min": self.min(),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max(),
        }

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count})"
