"""Flight-recorder metrics: periodic gauge sampling over simulated time.

The span layer answers *where did one message's microseconds go*; this
module answers *which resource was loaded when*.  A
:class:`MetricsSampler` — planted by
:meth:`Observatory.start_sampler(machine, period_us)
<repro.obs.core.Observatory.start_sampler>` — wakes on a recurring
cancellable timer and snapshots gauges across every layer into bounded
ring-buffer :class:`~repro.sim.stats.TimeSeries`:

* send/receive FIFO occupancy and host-visible backlog, per node;
* go-back-N window in-flight (and the tightest remaining credit), per
  node, summed over peers and channels;
* ``Switch.in_flight`` and the scheduler's ``live_pending_count()``;
* per-destination-link utilization and adapter TX utilization, computed
  as deltas of the busy-time accumulators the hardware maintains under
  an attached Observatory (``Switch.link_busy_us``,
  ``TB2Adapter.tx_busy_us``);
* counter-delta rates (retransmissions/s, packets/s, NACKs/s) from the
  layers' :class:`~repro.sim.stats.StatRegistry` counters.

Everything is duck-typed attribute access — this module imports nothing
from ``repro.sim.engine`` or ``repro.hardware``, keeping the obs layer's
one-way-reference rule.  Sampling is **opt-in**: without
``start_sampler`` no timer exists, no gauge is read, and the hardware's
busy-time accumulators are only maintained inside existing
``obs is not None`` blocks, so an unobserved run pays nothing.

The sampler keeps rescheduling itself until :meth:`MetricsSampler.stop`
is called (or ``max_samples`` hits), so drive sampled runs with
``run_until_processes_done`` — a drain-the-queue ``run()`` would never
terminate while the recurring timer lives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.stats import TimeSeries

#: Chrome-trace "process" rows for counter tracks that belong to no node
SWITCH_PID = 9999     # must match repro.obs.export.SWITCH_PID
GLOBAL_PID = 9998     # scheduler + machine-wide rates

#: counter names whose per-period deltas become ``rate.<name>_per_s``
#: series (summed across every registry that carries the counter)
RATE_COUNTERS: Tuple[str, ...] = (
    "retransmissions", "nacks_sent", "packets_routed", "tx_packets",
)

#: default ring-buffer bound per series (a long soak keeps the newest
#: ~4k samples per gauge instead of growing without limit)
DEFAULT_CAPACITY = 4096


class MetricsSampler:
    """Recurring gauge snapshots into bounded time series.

    Created by :meth:`Observatory.start_sampler`; readable as
    ``obs.metrics``.  ``series`` maps gauge name -> :class:`TimeSeries`
    and ``pid_of`` maps gauge name -> the Chrome-trace process row its
    counter track renders under (node id, :data:`SWITCH_PID`, or
    :data:`GLOBAL_PID`).
    """

    def __init__(self, obs, machine, period_us: float = 50.0,
                 capacity: Optional[int] = DEFAULT_CAPACITY,
                 max_samples: Optional[int] = None):
        if period_us <= 0.0:
            raise ValueError(f"period_us must be positive, got {period_us}")
        self.obs = obs
        self.machine = machine
        self.sim = machine.sim
        self.period_us = period_us
        self.capacity = capacity
        #: safety valve: stop sampling after this many ticks (None = run
        #: until :meth:`stop`)
        self.max_samples = max_samples
        self.samples_taken = 0
        self.series: Dict[str, TimeSeries] = {}
        self.pid_of: Dict[str, int] = {}
        self._timer = None
        # busy-time accumulators at the previous tick, for utilization
        # deltas: {series name: last cumulative value}
        self._last_busy: Dict[str, float] = {}
        # counter totals at the previous tick, for rate deltas
        self._last_counts: Dict[str, float] = {}
        # resolved per-node sample targets (adapter, am), fixed at start
        self._nodes: List[tuple] = [
            (node.id, getattr(node, "adapter", None), node)
            for node in machine.nodes
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "MetricsSampler":
        """Plant the recurring timer (first tick one period from now).

        The timer is *unsequenced* (negative engine seq): it reads gauges
        but schedules nothing sequenced, so planting it must not shift
        the (when, seq) identity of any protocol event — sampling on/off
        yields byte-identical event-order digests.
        """
        if self._timer is None:
            self._timer = self.sim.call_later_unsequenced(
                self.period_us, self._tick)
        return self

    def stop(self) -> None:
        """Cancel the pending tick; the sampler can be restarted."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def running(self) -> bool:
        return self._timer is not None

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def _series(self, name: str, pid: int) -> TimeSeries:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = TimeSeries(name, capacity=self.capacity)
            self.pid_of[name] = pid
        return s

    def _util(self, name: str, pid: int, t: float, busy: float) -> None:
        """Record the per-period utilization implied by a cumulative
        busy-time counter (delta busy / period; may exceed 1.0 briefly —
        wire time is charged at injection, ahead of serialization)."""
        last = self._last_busy.get(name, 0.0)
        self._last_busy[name] = busy
        self._series(name, pid).record(t, (busy - last) / self.period_us)

    def _tick(self) -> None:
        sim = self.sim
        t = sim.now
        self.samples_taken += 1
        self._series("sched.live_pending", GLOBAL_PID).record(
            t, sim.live_pending_count())
        switch = getattr(self.machine, "switch", None)
        if switch is not None:
            self._series("switch.in_flight", SWITCH_PID).record(
                t, switch.in_flight)
            for dst, busy in switch.link_busy_us.items():
                self._util(f"link{dst}.util", SWITCH_PID, t, busy)
        for nid, adapter, node in self._nodes:
            if adapter is not None:
                self._series(f"n{nid}.send_fifo", nid).record(
                    t, adapter.send_fifo.occupied)
                rf = adapter.recv_fifo
                self._series(f"n{nid}.recv_fifo", nid).record(t, rf.occupied)
                self._series(f"n{nid}.recv_visible", nid).record(
                    t, len(rf.visible))
                self._util(f"n{nid}.tx_util", nid, t, adapter.tx_busy_us)
            am = getattr(node, "am", None)
            if am is not None:
                in_flight = 0
                credit = None
                for peer in am._peers.values():
                    for win in peer.send:
                        in_flight += win.in_flight
                        c = win.window - win.in_flight
                        if credit is None or c < credit:
                            credit = c
                self._series(f"n{nid}.win_inflight", nid).record(t, in_flight)
                if credit is not None:
                    self._series(f"n{nid}.win_credit", nid).record(t, credit)
        self._sample_rates(t)
        if (self.max_samples is not None
                and self.samples_taken >= self.max_samples):
            self._timer = None
            return
        self._timer = self.sim.call_later_unsequenced(
            self.period_us, self._tick)

    def _sample_rates(self, t: float) -> None:
        """Counter-delta rates, in events per simulated **second**."""
        regs = self.obs._all_registries()
        scale = 1e6 / self.period_us  # per-period delta -> per-second
        for name in RATE_COUNTERS:
            total = 0
            for reg in regs:
                total += reg.get(name)
            last = self._last_counts.get(name, 0)
            self._last_counts[name] = total
            self._series(f"rate.{name}_per_s", GLOBAL_PID).record(
                t, (total - last) * scale)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Per-series summaries keyed by gauge name (sorted, JSON-safe)."""
        return {name: s.snapshot()
                for name, s in sorted(self.series.items())}

    def saturation(self) -> Dict[str, float]:
        """p95 of every gauge — the "how loaded was it" view the
        bottleneck verdict reads."""
        out: Dict[str, float] = {}
        for name, s in self.series.items():
            if len(s):
                out[name] = s.percentile(95)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "running" if self.running else "stopped"
        return (f"MetricsSampler({len(self.series)} series, "
                f"{self.samples_taken} ticks, {state})")
