"""Pure-python schema validation for the exporter formats.

The container has no ``jsonschema``, and the formats are small, so the
checks are hand-rolled: each validator returns a list of problem strings
(empty means valid).  CI's smoke job and ``spam-bench inspect`` run these
over freshly emitted files; tests assert on the problem lists directly.

Validated formats:

* Chrome trace-event JSON (object form with ``traceEvents``),
* the JSONL span dump (``spam-trace-jsonl/1``),
* ``BENCH_<experiment>.json`` reports (``spam-bench/1``) — with extra
  structural checks for the ``obsprofile`` experiment's ``profile``
  section (per-workload critical-path rollups, exemplars, verdicts).
"""

from __future__ import annotations

import json
from typing import Dict, List

BENCH_SCHEMA = "spam-bench/1"

_PHASE_REQUIRED = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
    "M": ("name", "pid"),
    "C": ("name", "ts", "pid"),
    "i": ("name", "ts", "pid"),
}


def _is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_chrome_trace(obj) -> List[str]:
    """Problems with a Chrome trace-event JSON object (empty = valid)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["top level must be an object with 'traceEvents'"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' missing or not a list"]
    if not events:
        problems.append("'traceEvents' is empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str):
            problems.append(f"event {i}: missing 'ph'")
            continue
        for key in _PHASE_REQUIRED.get(ph, ("ts", "pid")):
            if key not in ev:
                problems.append(f"event {i} (ph={ph}): missing {key!r}")
        for key in ("ts", "dur"):
            if key in ev and not _is_num(ev[key]):
                problems.append(f"event {i}: {key!r} not numeric")
        if ev.get("ph") == "X" and _is_num(ev.get("dur")) and ev["dur"] < 0:
            problems.append(f"event {i}: negative duration {ev['dur']}")
        if len(problems) > 20:
            problems.append("... further problems suppressed")
            break
    return problems


def validate_jsonl_trace(path: str) -> List[str]:
    """Problems with a JSONL span dump file (empty = valid)."""
    from repro.obs.export import JSONL_SCHEMA

    problems: List[str] = []
    saw_meta = saw_span = False
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError as e:
                problems.append(f"line {lineno}: not JSON ({e})")
                continue
            t = obj.get("type")
            if t == "meta":
                saw_meta = True
                if obj.get("schema") != JSONL_SCHEMA:
                    problems.append(
                        f"line {lineno}: schema {obj.get('schema')!r} != "
                        f"{JSONL_SCHEMA!r}")
            elif t == "span":
                saw_span = True
                for key in ("trace_id", "src", "dst", "kind", "marks"):
                    if key not in obj:
                        problems.append(f"line {lineno}: span missing {key!r}")
                marks = obj.get("marks", {})
                if not isinstance(marks, dict) or not all(
                        _is_num(v) for v in marks.values()):
                    problems.append(f"line {lineno}: bad marks")
            elif t == "phase":
                for key in ("node", "track", "name", "t0", "t1"):
                    if key not in obj:
                        problems.append(f"line {lineno}: phase missing {key!r}")
            else:
                problems.append(f"line {lineno}: unknown type {t!r}")
            if len(problems) > 20:
                problems.append("... further problems suppressed")
                break
    if not saw_meta:
        problems.append("no meta header line")
    if not saw_span:
        problems.append("no span lines")
    return problems


def validate_bench_report(obj) -> List[str]:
    """Problems with a BENCH_<experiment>.json report (empty = valid)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["top level must be an object"]
    if obj.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema {obj.get('schema')!r} != {BENCH_SCHEMA!r}")
    if not isinstance(obj.get("experiment"), str):
        problems.append("'experiment' missing or not a string")
    results = obj.get("results")
    if not isinstance(results, list) or not results:
        problems.append("'results' missing or empty")
        results = []
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            problems.append(f"result {i}: not an object")
            continue
        if not isinstance(row.get("name"), str):
            problems.append(f"result {i}: missing 'name'")
        if not _is_num(row.get("measured")):
            problems.append(f"result {i}: 'measured' not numeric")
        if "paper" in row and row["paper"] is not None \
                and not _is_num(row["paper"]):
            problems.append(f"result {i}: 'paper' not numeric/null")
    stats = obj.get("stats")
    if stats is not None:
        if not isinstance(stats, dict):
            problems.append("'stats' not an object")
        else:
            for section in ("counters", "histograms"):
                if section in stats and not isinstance(stats[section], dict):
                    problems.append(f"stats.{section} not an object")
    if obj.get("experiment") == "obsprofile":
        problems.extend(_validate_profile_section(obj.get("profile")))
    return problems


def _validate_profile_section(profile) -> List[str]:
    """Structural checks for the ``obsprofile`` report's ``profile``
    section: per-workload critical-path rollups, bottleneck verdicts,
    and slowest-message exemplars."""
    if not isinstance(profile, dict):
        return ["obsprofile report: 'profile' section missing or not "
                "an object"]
    problems: List[str] = []
    if not _is_num(profile.get("period_us")):
        problems.append("profile.period_us not numeric")
    workloads = profile.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        return problems + ["profile.workloads missing or empty"]
    for wname, w in workloads.items():
        where = f"profile.workloads.{wname}"
        if not isinstance(w, dict):
            problems.append(f"{where}: not an object")
            continue
        rollup = w.get("rollup")
        if not isinstance(rollup, dict) or "ALL" not in rollup:
            problems.append(f"{where}.rollup missing 'ALL' kind")
        else:
            for stage, cell in rollup["ALL"].items():
                for key in ("count", "total_us", "mean_us", "max_us",
                            "share"):
                    if not _is_num(cell.get(key)):
                        problems.append(
                            f"{where}.rollup.ALL.{stage}: {key!r} "
                            "not numeric")
                        break
        verdict = w.get("verdict")
        if not isinstance(verdict, dict) or "stage" not in verdict:
            problems.append(f"{where}.verdict missing 'stage'")
        exemplars = w.get("exemplars")
        if not isinstance(exemplars, list):
            problems.append(f"{where}.exemplars not a list")
        else:
            for i, ex in enumerate(exemplars):
                if (not isinstance(ex, dict)
                        or not _is_num(ex.get("total_us"))
                        or not isinstance(ex.get("marks"), dict)
                        or not isinstance(ex.get("stages"), dict)):
                    problems.append(f"{where}.exemplars[{i}] malformed")
                    break
        cov = w.get("coverage")
        if cov is not None and (not isinstance(cov, dict)
                                or not _is_num(cov.get("coverage"))):
            problems.append(f"{where}.coverage.coverage not numeric")
        if len(problems) > 20:
            problems.append("... further problems suppressed")
            break
    return problems


def sniff_and_validate(path: str) -> Dict:
    """Detect the format of ``path`` and validate it.

    Returns ``{"path", "format", "problems"}`` where format is one of
    ``chrome-trace``, ``jsonl``, ``bench-report``, or ``unknown``.
    """
    with open(path) as f:
        head = f.read(1)
    if head == "{":
        with open(path) as f:
            first_line = f.readline()
        # a JSONL file's first line is a complete JSON object; a pretty-
        # printed trace/report is not
        try:
            obj = json.loads(first_line)
            if isinstance(obj, dict) and obj.get("type") == "meta":
                return {"path": path, "format": "jsonl",
                        "problems": validate_jsonl_trace(path)}
        except ValueError:
            pass
        with open(path) as f:
            obj = json.load(f)
        if "traceEvents" in obj:
            return {"path": path, "format": "chrome-trace",
                    "problems": validate_chrome_trace(obj)}
        if obj.get("schema") == BENCH_SCHEMA:
            return {"path": path, "format": "bench-report",
                    "problems": validate_bench_report(obj)}
        return {"path": path, "format": "unknown",
                "problems": ["unrecognized JSON document"]}
    return {"path": path, "format": "unknown",
            "problems": ["not a JSON document"]}
