"""Message-lifecycle spans: one record per packet, end to end.

A :class:`MessageSpan` follows a single packet from the moment the sending
software starts building it through handler completion on the far side,
correlated across layers by the ``trace_id`` threaded through
:class:`repro.hardware.packet.Packet`.  Each layer deposits absolute
timestamps (*marks*); consecutive marks define the *stages* whose
durations reconstruct the paper's latency attributions (Table 2's call
cost pieces, §2.3's round-trip decomposition) from a live run.

Mark names, in lifecycle order::

    begin          sending software starts building the message
    stage          packet written into the send FIFO (host DRAM)
    dma_start      adapter TX service picks the armed entry up
    wire_exit      last byte leaves the sending adapter onto the link
    sw_deliver     switch hands the packet to the destination adapter
    visible        receive-FIFO entry becomes visible to the polling host
    consume        receiving software reads the packet out of the FIFO
    handler_start  AM handler dispatch begins
    handler_end    AM handler returns

Packets that never reach a stage (drops, control packets without
handlers) simply lack the later marks; stage queries skip missing pairs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: (stage name, start mark, end mark) in lifecycle order.  The stages tile
#: the packet's life: summing them over a request/reply pair reproduces
#: the measured round trip (see ``tests/obs/test_observatory.py``).
STAGES: Tuple[Tuple[str, str, str], ...] = (
    ("send_sw", "begin", "stage"),          # build + flush + length PIO
    ("tx_queue", "stage", "dma_start"),     # length scan + FIFO wait
    ("tx_adapter", "dma_start", "wire_exit"),  # MC DMA + i860 + wire
    ("switch", "wire_exit", "sw_deliver"),  # hw latency + dest-link queue
    ("rx_adapter", "sw_deliver", "visible"),   # MC DMA + i860 RX
    ("poll_wait", "visible", "consume"),    # waiting for the host to poll
    ("dispatch", "consume", "handler_start"),  # per-packet poll + lookup
    ("handler", "handler_start", "handler_end"),
)

STAGE_NAMES: Tuple[str, ...] = tuple(s[0] for s in STAGES)


class MessageSpan:
    """Everything observed about one packet's life.

    A plain ``__slots__`` class rather than a dataclass: tracing opens one
    span per packet, and the hand-written ``__init__`` skips the generated
    default/``default_factory`` machinery on that per-packet path.
    """

    __slots__ = ("trace_id", "src", "dst", "kind", "seq", "wire_bytes",
                 "marks", "retransmits", "drops", "queued_us", "backoff_us")

    def __init__(self, trace_id: int, src: int, dst: int, kind: str,
                 seq: int = 0, wire_bytes: int = 0,
                 marks: Optional[Dict[str, float]] = None,
                 retransmits: int = 0, drops: int = 0,
                 queued_us: float = 0.0, backoff_us: float = 0.0):
        self.trace_id = trace_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.seq = seq
        self.wire_bytes = wire_bytes
        #: absolute simulated times, keyed by mark name
        self.marks: Dict[str, float] = {} if marks is None else marks
        #: extra transits through the adapter TX path (go-back-N)
        self.retransmits = retransmits
        #: fabric fault-injection + receive-FIFO overflow losses
        self.drops = drops
        #: destination-link serialization wait accumulated in the switch
        self.queued_us = queued_us
        #: time spent waiting for go-back-N recovery: the gap between a
        #: lost transmission's wire exit and the retransmission's DMA
        #: start, summed over every re-entry into the TX path (the
        #: NACK round trip / keep-alive backoff the critical-path
        #: profiler reports as ``retransmit_backoff``)
        self.backoff_us = backoff_us

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MessageSpan(trace_id={self.trace_id}, "
                f"{self.kind} {self.src}->{self.dst} seq={self.seq}, "
                f"marks={len(self.marks)})")

    def mark(self, name: str, t: float) -> None:
        self.marks[name] = t

    def stage_durations(self) -> Dict[str, float]:
        """Per-stage latency for every stage whose two marks exist.

        Negative intervals (stale marks overwritten by a retransmission
        mid-flight) are skipped rather than reported.
        """
        out: Dict[str, float] = {}
        for name, a, b in STAGES:
            ta, tb = self.marks.get(a), self.marks.get(b)
            if ta is not None and tb is not None and tb >= ta:
                out[name] = tb - ta
        return out

    @property
    def begin(self) -> Optional[float]:
        return self.marks.get("begin")

    @property
    def end(self) -> Optional[float]:
        """The last mark present, in lifecycle order."""
        last = None
        for _name, _a, b in STAGES:
            if b in self.marks:
                last = self.marks[b]
        return last

    def total_us(self) -> Optional[float]:
        b, e = self.begin, self.end
        if b is None or e is None:
            return None
        return e - b

    def to_dict(self) -> Dict:
        """JSON-serializable form (inverse of :func:`span_from_dict`)."""
        return {
            "trace_id": self.trace_id,
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "seq": self.seq,
            "wire_bytes": self.wire_bytes,
            "marks": dict(self.marks),
            "retransmits": self.retransmits,
            "drops": self.drops,
            "queued_us": self.queued_us,
            "backoff_us": self.backoff_us,
        }


def span_from_dict(d: Dict) -> MessageSpan:
    """Rebuild a :class:`MessageSpan` from :meth:`MessageSpan.to_dict`."""
    return MessageSpan(
        trace_id=int(d["trace_id"]),
        src=int(d["src"]),
        dst=int(d["dst"]),
        kind=str(d["kind"]),
        seq=int(d.get("seq", 0)),
        wire_bytes=int(d.get("wire_bytes", 0)),
        marks={str(k): float(v) for k, v in d.get("marks", {}).items()},
        retransmits=int(d.get("retransmits", 0)),
        drops=int(d.get("drops", 0)),
        queued_us=float(d.get("queued_us", 0.0)),
        backoff_us=float(d.get("backoff_us", 0.0)),
    )
