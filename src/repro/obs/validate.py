"""``python -m repro.obs.validate FILE...`` — validate emitted artifacts.

Exit status 0 when every file passes its schema, 1 otherwise.  CI's smoke
job runs this over the trace and bench report a ``spam-bench roundtrip
--trace-out`` run just produced.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.obs.schema import sniff_and_validate


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.obs.validate FILE...", file=sys.stderr)
        return 2
    failed = False
    for path in args:
        try:
            result = sniff_and_validate(path)
        except OSError as e:
            print(f"FAIL  {path}: {e}")
            failed = True
            continue
        if result["problems"]:
            failed = True
            print(f"FAIL  {path} ({result['format']})")
            for p in result["problems"]:
                print(f"      - {p}")
        else:
            print(f"OK    {path} ({result['format']})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
