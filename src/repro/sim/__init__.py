"""Discrete-event simulation engine.

Everything in this reproduction runs on top of this package: the hardware
models are event-driven callbacks, and node software (Active Messages, MPL,
Split-C, MPI, applications) runs as coroutine *processes* whose ``yield``\\ s
advance a shared simulated clock measured in **microseconds**.

The engine is deliberately small and deterministic: a binary-heap event
queue with FIFO tie-breaking, generator-based processes, and ``Event``
objects for signalling.  Identical inputs produce identical simulated
timelines, which the test suite asserts.

Public surface::

    Simulator       the event loop and clock
    Process         a running coroutine registered with a simulator
    Event           one-shot or reusable signal processes can wait on
    Delay(t)        yield instruction: advance this process's clock by t
    WaitEvent(ev)   yield instruction: block until ``ev`` fires
"""

from repro.sim.engine import Simulator
from repro.sim.errors import DeadlockError, SimulationError, SimTimeoutError
from repro.sim.primitives import TIMED_OUT, Delay, Event, Timeout, WaitEvent
from repro.sim.process import Process
from repro.sim.shard import Shard, ShardedSimulator
from repro.sim.stats import Counter, StatRegistry, TimeSeries
from repro.sim.tracing import TraceEvent, Tracer

__all__ = [
    "Simulator",
    "ShardedSimulator",
    "Shard",
    "Process",
    "Event",
    "Delay",
    "WaitEvent",
    "Timeout",
    "TIMED_OUT",
    "Counter",
    "TimeSeries",
    "StatRegistry",
    "Tracer",
    "TraceEvent",
    "SimulationError",
    "DeadlockError",
    "SimTimeoutError",
]
