"""The event loop: a binary-heap event queue and a simulated clock.

Time is a float measured in **microseconds** — the natural unit for this
paper, whose primitive costs range from 0.13 µs (MSMU gap) to 88 µs (MPL
round trip).  Ties are broken by insertion order so the simulation is fully
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.errors import DeadlockError, SimTimeoutError
from repro.sim.primitives import Event


class Simulator:
    """Discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, callback, arg)          # plain event
        proc = sim.spawn(my_generator(...))        # coroutine process
        sim.run()                                  # drain the queue
        print(sim.now)

    ``run`` drains the queue or stops at ``until``.  If the queue drains
    while spawned processes are still blocked on events, a
    :class:`DeadlockError` is raised — silent hangs in protocol code become
    loud test failures.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._live_processes = 0
        self._blocked_processes = 0
        self.events_executed = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` microseconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, args))

    def at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        self.schedule(when - self.now, fn, *args)

    def event(self, name: str = "") -> Event:
        """Create a new one-shot :class:`Event` bound to this simulator."""
        return Event(self, name)

    # -- process bookkeeping (used by Process) ----------------------------

    def _process_started(self) -> None:
        self._live_processes += 1

    def _process_finished(self) -> None:
        self._live_processes -= 1

    def _process_blocked(self) -> None:
        self._blocked_processes += 1

    def _process_unblocked(self) -> None:
        self._blocked_processes -= 1

    # -- running ----------------------------------------------------------

    def spawn(self, gen, name: str = "") -> "Process":  # noqa: F821
        """Register a generator as a process starting at the current time."""
        from repro.sim.process import Process

        return Process(self, gen, name=name)

    def step(self) -> bool:
        """Execute one event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _seq, fn, args = heapq.heappop(self._queue)
        self.now = when
        self.events_executed += 1
        fn(*args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> float:
        """Drain the event queue.

        :param until: stop once simulated time would pass this point; events
            at exactly ``until`` still execute.
        :param max_events: safety valve against runaway protocol loops.
        :param check_deadlock: raise :class:`DeadlockError` if the queue
            drains while processes remain blocked on events.
        :returns: the final simulated time.
        """
        executed = 0
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            if max_events is not None and executed >= max_events:
                raise SimTimeoutError(
                    f"exceeded max_events={max_events} at t={self.now:.3f}us"
                )
            self.step()
            executed += 1
        if check_deadlock and self._blocked_processes > 0:
            raise DeadlockError(
                f"event queue drained at t={self.now:.3f}us with "
                f"{self._blocked_processes} process(es) still blocked"
            )
        return self.now

    def run_until_processes_done(
        self, procs, limit: float = 1e12, max_events: Optional[int] = None
    ) -> float:
        """Run until every process in ``procs`` has finished.

        Convenience for benchmarks: background processes (e.g. adapter
        service loops) may still have pending events when the measured
        programs complete.
        """
        executed = 0
        while self._queue and not all(p.finished for p in procs):
            if self._queue[0][0] > limit:
                raise SimTimeoutError(
                    f"simulated time limit {limit}us exceeded; "
                    f"{sum(not p.finished for p in procs)} process(es) unfinished"
                )
            if max_events is not None and executed >= max_events:
                raise SimTimeoutError(f"exceeded max_events={max_events}")
            self.step()
            executed += 1
        unfinished = [p for p in procs if not p.finished]
        if unfinished:
            raise DeadlockError(
                f"queue drained at t={self.now:.3f}us; unfinished: "
                + ", ".join(p.name or "<anon>" for p in unfinished)
            )
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(t={self.now:.3f}us, queued={len(self._queue)}, "
            f"live={self._live_processes}, blocked={self._blocked_processes})"
        )
