"""The event loop: a timing-wheel event core with a simulated clock.

Time is a float measured in **microseconds** — the natural unit for this
paper, whose primitive costs range from 0.13 µs (MSMU gap) to 88 µs (MPL
round trip).  Ties are broken by insertion order so the simulation is fully
deterministic.

The paper's whole argument is that per-message *software* overhead is what
limits communication performance (§3); the simulator applies the same
creed to its own hot path.  Two schedulers implement one contract:

* ``wheel`` (the default) — a timing-wheel fast lane for the dominant
  µs-scale events (MicroChannel DMA steps, MSMU gaps, wire serialization):
  the wheel's *active window* — the slot the clock currently turns through
  — is one sorted list; events landing inside it are placed by
  ``bisect.insort`` and consumed by advancing a cursor, so the common
  schedule→run path is two C-level list operations with no heap traffic.
  Far-future timers (keep-alive probes, second-scale protocol timeouts)
  overflow into a heap that is consulted only when the window turns over;
  draining it in heap order yields the next window already sorted.
* ``heap`` — the original single binary heap, kept verbatim as the
  differential-testing reference: both schedulers must execute the same
  events in exactly the same order (``tests/sim/test_timer_wheel.py``
  checks this property over randomized schedule/cancel sequences, and
  ``spam-bench perf`` checks it over the real protocol workloads).

Timers are cancellable: :meth:`Simulator.call_later` returns a
:class:`TimerHandle` whose ``cancel()`` is O(1) — it bumps the handle's
generation and tombstones the queue entry in place; the scheduler skips
tombstoned entries on pop without executing or counting them.  This is
what keeps ``Timeout`` yields (the AM keep-alive backoff, MPL's
second-scale receive timeouts) from churning the queue with stale wakeups.

**Idle fast-forward** (on by default, ``idle_fast_forward=False`` for the
reference path): because every blocking construct in the protocol stack is
either an event wait or a cancellable timer, a quiesced instant — all
runnable processes blocked on timers/events — leaves the queue front
holding only tombstones and the next live entry.  The fast drain therefore
(a) jumps the clock directly to the next live entry, consuming any run of
tombstones in one bulk skip instead of one loop iteration each, and
(b) batch-executes runs of same-timestamp events in a single dispatch
loop that settles the clock and the ``until``/``limit`` gates once per
timestamp instead of once per event.  Both halves are order-preserving by
construction — fast-forward on/off must produce byte-identical event-order
digests (``spam-bench perf`` checks this on all four workloads).
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from repro.sim.errors import DeadlockError, SimTimeoutError
from repro.sim.primitives import Event

#: absolute value (µs) below which a negative delay is treated as
#: accumulated float error and clamped to "now" rather than rejected.
#: ``Switch.inject`` sums serialization starts and wire times per hop;
#: after thousands of packets the sum can land an epsilon behind
#: ``sim.now`` even though the intent is "deliver immediately".
NEGATIVE_DELAY_EPSILON = 1e-9


class TimerHandle:
    """A cancellable scheduled callback (returned by ``call_later``).

    Cancellation is *lazy*: ``cancel()`` bumps the handle's generation and
    tombstones the live queue entry in place (O(1), no heap surgery); the
    scheduler discards the entry when it eventually reaches the front of
    the queue, without executing it or counting it as an event.  A handle
    may be rescheduled after firing or cancelling — each new entry carries
    the next generation, so at most one entry is ever live per handle.
    """

    __slots__ = ("_sim", "_entry", "gen")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._entry: Optional[list] = None
        #: generation stamp; bumped on every cancel/fire so stale queue
        #: entries (earlier generations) can never fire this handle again
        self.gen = 0

    @property
    def active(self) -> bool:
        """Whether the timer is scheduled and will still fire."""
        e = self._entry
        return e is not None and e[2] is not None

    def cancel(self) -> bool:
        """Cancel the pending firing; returns True if one was pending.

        Safe at any instant, including from a callback executing at the
        same ``(time, seq)`` batch as this timer's entry: the dispatch
        loops re-read the entry's callback slot at dispatch time, so the
        tombstone written here is honoured even for an entry later in the
        very batch that is currently executing.
        """
        e = self._entry
        if e is None or e[2] is None:
            return False
        e[2] = None        # tombstone: skipped (uncounted) on pop
        e[3] = ()          # drop callback-arg references immediately
        self._entry = None
        self.gen += 1
        sim = self._sim
        sim._stale_pending += 1
        ck = sim.check
        if ck is not None:
            ck.on_cancel(e)
        hook = sim._cancel_hook
        if hook is not None:
            # multiprocessing shard workers log cancels so the parent
            # sequencer can tombstone its mirror entry (repro.sim.parallel)
            hook(e)
        return True

    def _fire(self, gen: int, fn: Callable[..., None], args: tuple) -> None:
        if gen != self.gen:
            # The generation stamped into the entry at schedule time no
            # longer matches: the handle was cancelled or rescheduled and
            # the tombstone was somehow bypassed.  Firing would run a
            # callback the owner already disowned — fail loudly instead.
            raise RuntimeError(
                f"timer entry from generation {gen} fired on a handle at "
                f"generation {self.gen} (cancelled/rescheduled timer was "
                "not tombstoned)"
            )
        # the entry just popped is this handle's live one: retire it
        self._entry = None
        self.gen += 1
        fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "idle"
        return f"TimerHandle(gen={self.gen}, {state})"


class Simulator:
    """Discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, callback, arg)          # plain event
        h = sim.call_later(400.0, on_timeout)      # cancellable timer
        h.cancel()
        proc = sim.spawn(my_generator(...))        # coroutine process
        sim.run()                                  # drain the queue
        print(sim.now)

    ``run`` drains the queue or stops at ``until``.  If the queue drains
    while spawned processes are still blocked on events, a
    :class:`DeadlockError` is raised — silent hangs in protocol code become
    loud test failures.

    :param scheduler: ``"wheel"`` (timing-wheel fast lane, the default) or
        ``"heap"`` (pure binary heap, the differential-testing reference).
        Both execute identical event orders.
    :param wheel_window_us: width of the wheel's active window; events
        within the window are ordered exactly by (time, insertion seq), so
        this is a throughput knob only, never a correctness one.  The
        128 us default measured best-or-equal across all four perf
        workloads: wide enough that the ~100-400 us protocol timers
        (retransmit backoff, keep-alive) are born in-window — where a
        later cancel costs one bulk-skipped tombstone instead of a
        heappush/heappop round trip — yet narrow enough that insort's
        memmove stays cheap on the dense microsecond-scale workloads.
    :param idle_fast_forward: default for the run loops' fast drain (bulk
        tombstone skip + batched same-timestamp dispatch).  A throughput
        knob only: on/off execute identical event orders (the wheel's
        reference path and the heap scheduler ignore it).
    """

    __slots__ = (
        "scheduler", "_wheel", "idle_fast_forward", "now", "_seq", "_useq",
        "_live_processes", "_blocked_processes", "_finish_stamp",
        "events_executed", "stale_events_skipped", "_stale_pending",
        "_queue", "_window_us", "_window_end", "_cur_list", "_cur_idx",
        "_far", "check", "last_event", "_cancel_hook",
    )

    #: True on :class:`~repro.sim.shard.ShardedSimulator`; hardware
    #: builders consult this to wire per-node shards
    sharded = False

    def __init__(
        self,
        scheduler: str = "wheel",
        wheel_window_us: float = 128.0,
        idle_fast_forward: bool = True,
    ) -> None:
        if scheduler not in ("wheel", "heap"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if wheel_window_us <= 0.0:
            raise ValueError("wheel_window_us must be positive")
        self.scheduler = scheduler
        self._wheel = scheduler == "wheel"
        self.idle_fast_forward = bool(idle_fast_forward)
        self.now: float = 0.0
        self._seq = 0
        #: separate (decrementing) sequence counter for *unsequenced*
        #: entries — observers like the metrics sampler whose timers must
        #: not perturb the (when, seq) identity of ordinary events.  The
        #: negative seqs never collide with the positive ``_seq`` stream,
        #: sort deterministically (before ordinary events at an equal
        #: timestamp), and let digest recorders recognise observer events
        #: by ``entry[1] < 0``.
        self._useq = 0
        self._live_processes = 0
        self._blocked_processes = 0
        #: monotonically bumped every time a process finishes; lets run
        #: loops re-evaluate "are my processes done?" only when the answer
        #: can have changed instead of per event
        self._finish_stamp = 0
        self.events_executed = 0
        #: tombstoned (cancelled) entries discarded at the queue front
        self.stale_events_skipped = 0
        #: cancelled entries still buried in the queue
        self._stale_pending = 0
        # -- heap scheduler state
        self._queue: List[list] = []
        # -- wheel scheduler state
        self._window_us = wheel_window_us
        self._window_end = wheel_window_us  # first window covers [0, W)
        self._cur_list: List[list] = []  # sorted entries of active window
        self._cur_idx = 0                # consume cursor into _cur_list
        self._far: List[list] = []       # heap of entries past the window
        #: event-ordering checker (repro.check), None when unchecked
        self.check = None
        #: worker-side cancel logger (repro.sim.parallel), None otherwise
        self._cancel_hook = None
        #: (when, seq, callback) of the event :meth:`step` last executed
        self.last_event: Optional[tuple] = None

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> list:
        """Run ``fn(*args)`` after ``delay`` microseconds of simulated time.

        Returns the queue entry (an engine-internal list); treat it as
        opaque.  Use :meth:`call_later` when you need to cancel.
        """
        if delay < 0.0:
            if delay < -NEGATIVE_DELAY_EPSILON:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            delay = 0.0  # accumulated float error, not intent
        self._seq += 1
        when = self.now + delay
        entry = [when, self._seq, fn, args]
        if self._wheel:
            if when < self._window_end:
                # inside the active window: exact (time, seq) position
                # past the consume cursor — two C-level list operations
                insort(self._cur_list, entry, self._cur_idx)
            else:
                heappush(self._far, entry)
        else:
            heappush(self._queue, entry)
        return entry

    def at(self, when: float, fn: Callable[..., None], *args: Any) -> list:
        """Run ``fn(*args)`` at absolute simulated time ``when``.

        Body mirrors :meth:`schedule` (the switch calls this twice per
        packet hand-off) including the ``now + (when - now)`` round-trip,
        which is not a float identity — timestamps must stay bit-identical
        to the delegating form.
        """
        delay = when - self.now
        if delay < 0.0:
            if delay < -NEGATIVE_DELAY_EPSILON:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            delay = 0.0  # accumulated float error, not intent
        self._seq += 1
        when = self.now + delay
        entry = [when, self._seq, fn, args]
        if self._wheel:
            if when < self._window_end:
                insort(self._cur_list, entry, self._cur_idx)
            else:
                heappush(self._far, entry)
        else:
            heappush(self._queue, entry)
        return entry

    def schedule_into(self, shard: int, delay: float,
                      fn: Callable[..., None], *args: Any) -> list:
        """Shard-aware :meth:`schedule`: the sequential engine has a single
        event zone, so the shard id is accepted (for seam compatibility)
        and ignored.  :class:`~repro.sim.shard.ShardedSimulator` overrides
        this to place the entry in ``shard``'s local zone."""
        return self.schedule(delay, fn, *args)

    def post_cross(self, shard: int, when: float, fn: Callable[..., None],
                   *args: Any) -> list:
        """Shard-aware :meth:`at` — the cross-shard delivery seam used by
        the switch.  Sequentially this *is* ``at`` (shard id ignored);
        :class:`~repro.sim.shard.ShardedSimulator` overrides it to stamp
        the entry's ``(when, seq)`` immediately but defer queue insertion
        to the next round barrier, enforcing the conservative lookahead
        bound (``when >= now + lookahead``)."""
        return self.at(when, fn, *args)

    def call_later(self, delay: float, fn: Callable[..., None],
                   *args: Any) -> TimerHandle:
        """Schedule a cancellable timer; returns its :class:`TimerHandle`.

        The queue entry carries the handle's generation at schedule time;
        :meth:`TimerHandle._fire` refuses entries whose generation no
        longer matches, so even an entry that escapes tombstoning (an
        engine bug) cannot fire a cancelled timer.
        """
        handle = TimerHandle(self)
        handle._entry = self.schedule(delay, handle._fire, handle.gen,
                                      fn, args)
        return handle

    def schedule_unsequenced(self, delay: float, fn: Callable[..., None],
                             *args: Any) -> list:
        """Like :meth:`schedule`, but the entry draws from the separate
        negative sequence stream: it does not advance ``_seq``, so its
        presence or absence leaves every ordinary event's ``(when, seq)``
        identity — and therefore the event-order digests — untouched.
        Digest recorders skip entries with ``entry[1] < 0``.

        ``delay`` must be strictly positive: an unsequenced entry landing
        at the *current* timestamp could execute after same-instant
        ordinary events with larger (positive) seqs, breaking the
        scheduler's strict (time, seq) execution-order invariant.
        """
        if delay <= 0.0:
            raise ValueError(
                f"unsequenced delay must be positive, got {delay}")
        self._useq -= 1
        when = self.now + delay
        entry = [when, self._useq, fn, args]
        if self._wheel:
            if when < self._window_end:
                insort(self._cur_list, entry, self._cur_idx)
            else:
                heappush(self._far, entry)
        else:
            heappush(self._queue, entry)
        return entry

    def call_later_unsequenced(self, delay: float, fn: Callable[..., None],
                               *args: Any) -> TimerHandle:
        """Cancellable variant of :meth:`schedule_unsequenced` — the timer
        lane for observers (the metrics sampler) that must stay
        digest-neutral."""
        handle = TimerHandle(self)
        handle._entry = self.schedule_unsequenced(
            delay, handle._fire, handle.gen, fn, args)
        return handle

    def event(self, name: str = "") -> Event:
        """Create a new one-shot :class:`Event` bound to this simulator."""
        return Event(self, name)

    # -- process bookkeeping (used by Process) ----------------------------

    def _process_started(self) -> None:
        self._live_processes += 1

    def _process_finished(self) -> None:
        self._live_processes -= 1
        self._finish_stamp += 1

    def _process_blocked(self) -> None:
        self._blocked_processes += 1

    def _process_unblocked(self) -> None:
        self._blocked_processes -= 1

    # -- queue internals --------------------------------------------------

    def _advance(self) -> Optional[list]:
        """Wheel: turn to the next window.  Points the cursor at the
        globally next entry and returns it, or None when the queue is
        empty.  Does not consume and never executes anything, so it is
        safe to call as a peek."""
        if self._cur_idx < len(self._cur_list):
            return self._cur_list[self._cur_idx]
        far = self._far
        if not far:
            return None
        # next window starts at the earliest far timer; draining the heap
        # in pop order yields the next window's entries already sorted
        w_end = far[0][0] + self._window_us
        entries = [heappop(far)]
        while far and far[0][0] < w_end:
            entries.append(heappop(far))
        self._window_end = w_end
        self._cur_list = entries
        self._cur_idx = 0
        return entries[0]

    def _peek(self) -> Optional[list]:
        """The next queue entry without consuming it (either scheduler)."""
        if self._wheel:
            return self._advance()
        return self._queue[0] if self._queue else None

    def _consume(self, entry: list) -> None:
        """Remove the entry returned by :meth:`_peek` from the queue."""
        if self._wheel:
            self._cur_idx += 1
        else:
            heappop(self._queue)

    def _next_live(self) -> Optional[list]:
        """Position the queue at its next *live* entry and return it
        without consuming it; None when the queue is empty.

        Tombstoned (cancelled) entries in front of it are consumed here —
        counted in ``stale_events_skipped``, reported to the checker,
        never executed.  This is the single stale-entry-skip
        implementation shared by :meth:`step`, :meth:`run`, and
        :meth:`run_until_processes_done`; because the skip happens before
        any ``until``/``limit`` gate, those gates only ever see entries
        that will actually execute — a cancelled far-future keep-alive
        timer can neither stop a bounded run early nor trip its time
        limit.
        """
        check = self.check
        if self._wheel:
            while True:
                i = self._cur_idx
                cur = self._cur_list
                if i >= len(cur):
                    if self._advance() is None:
                        return None
                    continue  # cursor now points into the new window
                entry = cur[i]
                if entry[2] is not None:
                    return entry
                self._cur_idx = i + 1
                self.stale_events_skipped += 1
                self._stale_pending -= 1
                if check is not None:
                    check.on_stale(entry)
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[2] is not None:
                return entry
            heappop(queue)
            self.stale_events_skipped += 1
            self._stale_pending -= 1
            if check is not None:
                check.on_stale(entry)
        return None

    def _pending_count(self) -> int:
        """Queued entries **including tombstones** (debug/repr).  Use
        :meth:`live_pending_count` for "how much will actually run"."""
        if self._wheel:
            return len(self._cur_list) - self._cur_idx + len(self._far)
        return len(self._queue)

    def live_pending_count(self) -> int:
        """Queued entries that will actually execute — tombstoned
        (cancelled) timers excluded.  Quiesce predicates must use this:
        a cancelled long keep-alive timer still occupies a queue slot
        but represents no future work."""
        return self._pending_count() - self._stale_pending

    # -- running ----------------------------------------------------------

    def spawn(self, gen, name: str = "",
              shard: Optional[int] = None) -> "Process":  # noqa: F821
        """Register a generator as a process starting at the current time.

        ``shard`` pins the process's events to one node's shard zone on a
        :class:`~repro.sim.shard.ShardedSimulator`; the sequential engine
        accepts and ignores it, so workloads can pass node ids
        unconditionally.
        """
        from repro.sim.process import Process

        return Process(self, gen, name=name, shard=shard)

    def step(self) -> bool:
        """Execute one live event.  Returns False when the queue is empty.

        Tombstoned (cancelled) entries are discarded without executing;
        they neither count as the step nor appear in ``last_event``.
        """
        entry = self._next_live()
        if entry is None:
            return False
        self._consume(entry)
        fn = entry[2]
        self.now = entry[0]
        self.events_executed += 1
        check = self.check
        if check is not None:
            check.on_execute(entry)
        #: (when, seq, callback) of the event just executed — feeds
        #: the event-order digests of the differential tests
        self.last_event = (entry[0], entry[1], fn)
        fn(*entry[3])
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
        idle_fast_forward: Optional[bool] = None,
    ) -> float:
        """Drain the event queue.

        :param until: stop once simulated time would pass this point; events
            at exactly ``until`` still execute.
        :param max_events: safety valve against runaway protocol loops.
        :param check_deadlock: raise :class:`DeadlockError` if the queue
            drains while processes remain blocked on events.
        :param idle_fast_forward: override the simulator-wide default for
            this run; the fast drain and the reference path execute
            identical event orders.
        :returns: the final simulated time.
        """
        ff = (self.idle_fast_forward if idle_fast_forward is None
              else idle_fast_forward)
        if ff and self._wheel:
            if not self._drain_fast(until, max_events):
                return self.now  # stopped at `until`
        else:
            executed = 0
            while True:
                entry = self._next_live()
                if entry is None:
                    break
                when = entry[0]
                if until is not None and when > until:
                    self.now = until
                    return self.now
                if max_events is not None and executed >= max_events:
                    raise SimTimeoutError(
                        f"exceeded max_events={max_events} at t={self.now:.3f}us"
                    )
                self._consume(entry)
                self.now = when
                self.events_executed += 1
                executed += 1
                if self.check is not None:
                    self.check.on_execute(entry)
                entry[2](*entry[3])
        if check_deadlock and self._blocked_processes > 0:
            raise DeadlockError(
                f"event queue drained at t={self.now:.3f}us with "
                f"{self._blocked_processes} process(es) still blocked"
            )
        return self.now

    def _drain_fast(self, until: Optional[float],
                    max_events: Optional[int]) -> bool:
        """Idle-fast-forward drain (wheel scheduler): returns True when the
        queue is empty, False when stopped at ``until``.

        The loop positions on the next live entry — consuming any run of
        tombstones in one bulk skip — then batch-executes every live entry
        sharing that timestamp: the clock store and the ``until`` compare
        happen once per timestamp, and each dispatch re-reads the entry's
        callback slot so a cancel() issued earlier in the batch is still
        honoured (see :class:`TimerHandle`).
        """
        check = self.check
        event_cap = float("inf") if max_events is None else max_events
        plain = check is None and max_events is None
        executed = 0
        # ``executed`` is folded into the public counter on every exit
        # path (including callback exceptions) instead of per event
        try:
            while True:
                i = self._cur_idx
                cur = self._cur_list
                if i >= len(cur):
                    if self._advance() is None:
                        return True
                    i = self._cur_idx
                    cur = self._cur_list
                entry = cur[i]
                fn = entry[2]
                if fn is None:
                    # fast-forward: consume the tombstone run in one bulk skip
                    n = len(cur)
                    j = i + 1
                    while j < n and cur[j][2] is None:
                        j += 1
                    self._cur_idx = j
                    self.stale_events_skipped += j - i
                    self._stale_pending -= j - i
                    if check is not None:
                        for k in range(i, j):
                            check.on_stale(cur[k])
                    continue
                when = entry[0]
                if until is not None and when > until:
                    self.now = until
                    return False
                self.now = when
                # Batched same-timestamp dispatch.  Callbacks never consume
                # events (no reentrant step/run in this codebase), so the
                # cursor needs writing, not re-reading, per dispatch.  The
                # unchecked/uncapped variant drops two per-dispatch
                # branches — this loop body is the per-event floor of the
                # whole simulator.
                if plain:
                    while True:
                        self._cur_idx = i = i + 1
                        executed += 1
                        fn(*entry[3])
                        cur = self._cur_list
                        if i >= len(cur):
                            break
                        entry = cur[i]
                        if entry[0] != when:
                            break
                        fn = entry[2]
                        if fn is None:
                            break
                    continue
                while True:
                    if executed >= event_cap:
                        raise SimTimeoutError(
                            f"exceeded max_events={max_events} "
                            f"at t={self.now:.3f}us"
                        )
                    self._cur_idx = i = i + 1
                    executed += 1
                    if check is not None:
                        check.on_execute(entry)
                    fn(*entry[3])
                    cur = self._cur_list
                    if i >= len(cur):
                        break
                    entry = cur[i]
                    if entry[0] != when:
                        break
                    fn = entry[2]
                    if fn is None:
                        break
        finally:
            self.events_executed += executed

    def run_until_processes_done(
        self, procs, limit: float = 1e12, max_events: Optional[int] = None,
        idle_fast_forward: Optional[bool] = None,
    ) -> float:
        """Run until every process in ``procs`` has finished.

        Convenience for benchmarks: background processes (e.g. adapter
        service loops) may still have pending events when the measured
        programs complete.  ``limit`` bounds *live* simulated work — a
        cancelled timer beyond the limit is discarded, not misreported
        as a timeout.
        """
        ff = (self.idle_fast_forward if idle_fast_forward is None
              else idle_fast_forward)
        if ff and self._wheel:
            return self._drain_procs_fast(procs, limit, max_events)
        executed = 0
        # re-check "all done?" only when a process actually finished —
        # the stamp compare is one int per event instead of a scan
        seen_stamp = -1
        while True:
            if seen_stamp != self._finish_stamp:
                seen_stamp = self._finish_stamp
                if all(p.finished for p in procs):
                    return self.now
            entry = self._next_live()
            if entry is None:
                break
            if entry[0] > limit:
                raise SimTimeoutError(
                    f"simulated time limit {limit}us exceeded; "
                    f"{sum(not p.finished for p in procs)} process(es) unfinished"
                )
            if max_events is not None and executed >= max_events:
                raise SimTimeoutError(f"exceeded max_events={max_events}")
            self._consume(entry)
            self.now = entry[0]
            self.events_executed += 1
            executed += 1
            if self.check is not None:
                self.check.on_execute(entry)
            entry[2](*entry[3])
        unfinished = [p for p in procs if not p.finished]
        if unfinished:
            raise DeadlockError(
                f"queue drained at t={self.now:.3f}us; unfinished: "
                + ", ".join(p.name or "<anon>" for p in unfinished)
            )
        return self.now

    def _drain_procs_fast(self, procs, limit: float,
                          max_events: Optional[int]) -> float:
        """Idle-fast-forward body of :meth:`run_until_processes_done`
        (wheel scheduler).  Same batching as :meth:`_drain_fast`, plus the
        finish-stamp compare before every dispatch — a process finishing
        mid-batch stops the run at exactly the event the reference path
        would stop at."""
        check = self.check
        event_cap = float("inf") if max_events is None else max_events
        plain = check is None and max_events is None
        executed = 0
        seen_stamp = -1
        try:
            while True:
                stamp = self._finish_stamp
                if seen_stamp != stamp:
                    seen_stamp = stamp
                    if all(p.finished for p in procs):
                        return self.now
                i = self._cur_idx
                cur = self._cur_list
                if i >= len(cur):
                    if self._advance() is None:
                        break
                    i = self._cur_idx
                    cur = self._cur_list
                entry = cur[i]
                fn = entry[2]
                if fn is None:
                    n = len(cur)
                    j = i + 1
                    while j < n and cur[j][2] is None:
                        j += 1
                    self._cur_idx = j
                    self.stale_events_skipped += j - i
                    self._stale_pending -= j - i
                    if check is not None:
                        for k in range(i, j):
                            check.on_stale(cur[k])
                    continue
                when = entry[0]
                if when > limit:
                    raise SimTimeoutError(
                        f"simulated time limit {limit}us exceeded; "
                        f"{sum(not p.finished for p in procs)} "
                        "process(es) unfinished"
                    )
                self.now = when
                # batched same-timestamp dispatch (cursor discipline and
                # unchecked/uncapped specialization as in
                # :meth:`_drain_fast`)
                if plain:
                    while True:
                        self._cur_idx = i = i + 1
                        executed += 1
                        fn(*entry[3])
                        if stamp != self._finish_stamp:
                            break  # a process finished: re-run the done scan
                        cur = self._cur_list
                        if i >= len(cur):
                            break
                        entry = cur[i]
                        if entry[0] != when:
                            break
                        fn = entry[2]
                        if fn is None:
                            break
                    continue
                while True:
                    if executed >= event_cap:
                        raise SimTimeoutError(
                            f"exceeded max_events={max_events}")
                    self._cur_idx = i = i + 1
                    executed += 1
                    if check is not None:
                        check.on_execute(entry)
                    fn(*entry[3])
                    if stamp != self._finish_stamp:
                        break  # a process finished: re-run the done scan
                    cur = self._cur_list
                    if i >= len(cur):
                        break
                    entry = cur[i]
                    if entry[0] != when:
                        break
                    fn = entry[2]
                    if fn is None:
                        break
        finally:
            self.events_executed += executed
        unfinished = [p for p in procs if not p.finished]
        if unfinished:
            raise DeadlockError(
                f"queue drained at t={self.now:.3f}us; unfinished: "
                + ", ".join(p.name or "<anon>" for p in unfinished)
            )
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(t={self.now:.3f}us, {self.scheduler}, "
            f"queued={self._pending_count()} "
            f"({self.live_pending_count()} live), "
            f"live={self._live_processes}, blocked={self._blocked_processes})"
        )
