"""The event loop: a timing-wheel event core with a simulated clock.

Time is a float measured in **microseconds** — the natural unit for this
paper, whose primitive costs range from 0.13 µs (MSMU gap) to 88 µs (MPL
round trip).  Ties are broken by insertion order so the simulation is fully
deterministic.

The paper's whole argument is that per-message *software* overhead is what
limits communication performance (§3); the simulator applies the same
creed to its own hot path.  Two schedulers implement one contract:

* ``wheel`` (the default) — a timing-wheel fast lane for the dominant
  µs-scale events (MicroChannel DMA steps, MSMU gaps, wire serialization):
  the wheel's *active window* — the slot the clock currently turns through
  — is one sorted list; events landing inside it are placed by
  ``bisect.insort`` and consumed by advancing a cursor, so the common
  schedule→run path is two C-level list operations with no heap traffic.
  Far-future timers (keep-alive probes, second-scale protocol timeouts)
  overflow into a heap that is consulted only when the window turns over;
  draining it in heap order yields the next window already sorted.
* ``heap`` — the original single binary heap, kept verbatim as the
  differential-testing reference: both schedulers must execute the same
  events in exactly the same order (``tests/sim/test_timer_wheel.py``
  checks this property over randomized schedule/cancel sequences, and
  ``spam-bench perf`` checks it over the real protocol workloads).

Timers are cancellable: :meth:`Simulator.call_later` returns a
:class:`TimerHandle` whose ``cancel()`` is O(1) — it bumps the handle's
generation and tombstones the queue entry in place; the scheduler skips
tombstoned entries on pop without executing or counting them.  This is
what keeps ``Timeout`` yields (the AM keep-alive backoff, MPL's
second-scale receive timeouts) from churning the queue with stale wakeups.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from repro.sim.errors import DeadlockError, SimTimeoutError
from repro.sim.primitives import Event

#: absolute value (µs) below which a negative delay is treated as
#: accumulated float error and clamped to "now" rather than rejected.
#: ``Switch.inject`` sums serialization starts and wire times per hop;
#: after thousands of packets the sum can land an epsilon behind
#: ``sim.now`` even though the intent is "deliver immediately".
NEGATIVE_DELAY_EPSILON = 1e-9


class TimerHandle:
    """A cancellable scheduled callback (returned by ``call_later``).

    Cancellation is *lazy*: ``cancel()`` bumps the handle's generation and
    tombstones the live queue entry in place (O(1), no heap surgery); the
    scheduler discards the entry when it eventually reaches the front of
    the queue, without executing it or counting it as an event.  A handle
    may be rescheduled after firing or cancelling — each new entry carries
    the next generation, so at most one entry is ever live per handle.
    """

    __slots__ = ("_sim", "_entry", "gen")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._entry: Optional[list] = None
        #: generation stamp; bumped on every cancel/fire so stale queue
        #: entries (earlier generations) can never fire this handle again
        self.gen = 0

    @property
    def active(self) -> bool:
        """Whether the timer is scheduled and will still fire."""
        e = self._entry
        return e is not None and e[2] is not None

    def cancel(self) -> bool:
        """Cancel the pending firing; returns True if one was pending."""
        e = self._entry
        if e is None or e[2] is None:
            return False
        e[2] = None        # tombstone: skipped (uncounted) on pop
        e[3] = ()          # drop callback-arg references immediately
        self._entry = None
        self.gen += 1
        self._sim._stale_pending += 1
        ck = self._sim.check
        if ck is not None:
            ck.on_cancel(e)
        return True

    def _fire(self, fn: Callable[..., None], args: tuple) -> None:
        # the entry just popped is this handle's live one: retire it
        self._entry = None
        self.gen += 1
        fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "idle"
        return f"TimerHandle(gen={self.gen}, {state})"


class Simulator:
    """Discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, callback, arg)          # plain event
        h = sim.call_later(400.0, on_timeout)      # cancellable timer
        h.cancel()
        proc = sim.spawn(my_generator(...))        # coroutine process
        sim.run()                                  # drain the queue
        print(sim.now)

    ``run`` drains the queue or stops at ``until``.  If the queue drains
    while spawned processes are still blocked on events, a
    :class:`DeadlockError` is raised — silent hangs in protocol code become
    loud test failures.

    :param scheduler: ``"wheel"`` (timing-wheel fast lane, the default) or
        ``"heap"`` (pure binary heap, the differential-testing reference).
        Both execute identical event orders.
    :param wheel_window_us: width of the wheel's active window; events
        within the window are ordered exactly by (time, insertion seq), so
        this is a throughput knob only, never a correctness one.
    """

    def __init__(
        self,
        scheduler: str = "wheel",
        wheel_window_us: float = 64.0,
    ) -> None:
        if scheduler not in ("wheel", "heap"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if wheel_window_us <= 0.0:
            raise ValueError("wheel_window_us must be positive")
        self.scheduler = scheduler
        self.now: float = 0.0
        self._seq = 0
        self._live_processes = 0
        self._blocked_processes = 0
        #: monotonically bumped every time a process finishes; lets run
        #: loops re-evaluate "are my processes done?" only when the answer
        #: can have changed instead of per event
        self._finish_stamp = 0
        self.events_executed = 0
        #: tombstoned (cancelled) entries discarded at the queue front
        self.stale_events_skipped = 0
        #: cancelled entries still buried in the queue
        self._stale_pending = 0
        # -- heap scheduler state
        self._queue: List[list] = []
        # -- wheel scheduler state
        self._window_us = wheel_window_us
        self._window_end = wheel_window_us  # first window covers [0, W)
        self._cur_list: List[list] = []  # sorted entries of active window
        self._cur_idx = 0                # consume cursor into _cur_list
        self._far: List[list] = []       # heap of entries past the window
        #: event-ordering checker (repro.check), None when unchecked
        self.check = None

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> list:
        """Run ``fn(*args)`` after ``delay`` microseconds of simulated time.

        Returns the queue entry (an engine-internal list); treat it as
        opaque.  Use :meth:`call_later` when you need to cancel.
        """
        if delay < 0.0:
            if delay < -NEGATIVE_DELAY_EPSILON:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            delay = 0.0  # accumulated float error, not intent
        self._seq += 1
        when = self.now + delay
        entry = [when, self._seq, fn, args]
        if self.scheduler == "wheel":
            if when < self._window_end:
                # inside the active window: exact (time, seq) position
                # past the consume cursor — two C-level list operations
                insort(self._cur_list, entry, self._cur_idx)
            else:
                heappush(self._far, entry)
        else:
            heappush(self._queue, entry)
        return entry

    def at(self, when: float, fn: Callable[..., None], *args: Any) -> list:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        return self.schedule(when - self.now, fn, *args)

    def call_later(self, delay: float, fn: Callable[..., None],
                   *args: Any) -> TimerHandle:
        """Schedule a cancellable timer; returns its :class:`TimerHandle`."""
        handle = TimerHandle(self)
        handle._entry = self.schedule(delay, handle._fire, fn, args)
        return handle

    def event(self, name: str = "") -> Event:
        """Create a new one-shot :class:`Event` bound to this simulator."""
        return Event(self, name)

    # -- process bookkeeping (used by Process) ----------------------------

    def _process_started(self) -> None:
        self._live_processes += 1

    def _process_finished(self) -> None:
        self._live_processes -= 1
        self._finish_stamp += 1

    def _process_blocked(self) -> None:
        self._blocked_processes += 1

    def _process_unblocked(self) -> None:
        self._blocked_processes -= 1

    # -- queue internals --------------------------------------------------

    def _advance(self) -> Optional[list]:
        """Wheel: turn to the next window.  Points the cursor at the
        globally next entry and returns it, or None when the queue is
        empty.  Does not consume and never executes anything, so it is
        safe to call as a peek."""
        if self._cur_idx < len(self._cur_list):
            return self._cur_list[self._cur_idx]
        far = self._far
        if not far:
            return None
        # next window starts at the earliest far timer; draining the heap
        # in pop order yields the window's entries already sorted
        w_end = far[0][0] + self._window_us
        entries = [heappop(far)]
        while far and far[0][0] < w_end:
            entries.append(heappop(far))
        self._window_end = w_end
        self._cur_list = entries
        self._cur_idx = 0
        return entries[0]

    def _peek(self) -> Optional[list]:
        """The next queue entry without consuming it (either scheduler)."""
        if self.scheduler == "wheel":
            return self._advance()
        return self._queue[0] if self._queue else None

    def _consume(self, entry: list) -> None:
        """Remove the entry returned by :meth:`_peek` from the queue."""
        if self.scheduler == "wheel":
            self._cur_idx += 1
        else:
            heappop(self._queue)

    def _pending_count(self) -> int:
        """Live + tombstoned entries still queued (debug/repr)."""
        if self.scheduler == "wheel":
            return len(self._cur_list) - self._cur_idx + len(self._far)
        return len(self._queue)

    # -- running ----------------------------------------------------------

    def spawn(self, gen, name: str = "") -> "Process":  # noqa: F821
        """Register a generator as a process starting at the current time."""
        from repro.sim.process import Process

        return Process(self, gen, name=name)

    def step(self) -> bool:
        """Execute one live event.  Returns False when the queue is empty.

        Tombstoned (cancelled) entries are discarded without executing;
        they neither count as the step nor appear in ``last_event``.
        """
        check = self.check
        while True:
            entry = self._peek()
            if entry is None:
                return False
            self._consume(entry)
            fn = entry[2]
            if fn is None:
                self.stale_events_skipped += 1
                self._stale_pending -= 1
                if check is not None:
                    check.on_stale(entry)
                continue
            self.now = entry[0]
            self.events_executed += 1
            if check is not None:
                check.on_execute(entry)
            #: (when, seq, callback) of the event just executed — feeds
            #: the event-order digests of the differential tests
            self.last_event = (entry[0], entry[1], fn)
            fn(*entry[3])
            return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> float:
        """Drain the event queue.

        :param until: stop once simulated time would pass this point; events
            at exactly ``until`` still execute.
        :param max_events: safety valve against runaway protocol loops.
        :param check_deadlock: raise :class:`DeadlockError` if the queue
            drains while processes remain blocked on events.
        :returns: the final simulated time.
        """
        executed = 0
        wheel = self.scheduler == "wheel"
        queue = self._queue
        check = self.check
        while True:
            # inline peek: the current-slot fast path avoids a method call
            # per event (this loop is the simulator's hottest code)
            if wheel:
                i = self._cur_idx
                cur = self._cur_list
                if i < len(cur):
                    entry = cur[i]
                else:
                    entry = self._advance()
                    if entry is None:
                        break
                    i = 0
                    cur = self._cur_list
            else:
                if not queue:
                    break
                entry = queue[0]
            when = entry[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            if wheel:
                self._cur_idx = i + 1
            else:
                heappop(queue)
            fn = entry[2]
            if fn is None:
                self.stale_events_skipped += 1
                self._stale_pending -= 1
                if check is not None:
                    check.on_stale(entry)
                continue
            if max_events is not None and executed >= max_events:
                raise SimTimeoutError(
                    f"exceeded max_events={max_events} at t={self.now:.3f}us"
                )
            self.now = when
            self.events_executed += 1
            executed += 1
            if check is not None:
                check.on_execute(entry)
            fn(*entry[3])
        if check_deadlock and self._blocked_processes > 0:
            raise DeadlockError(
                f"event queue drained at t={self.now:.3f}us with "
                f"{self._blocked_processes} process(es) still blocked"
            )
        return self.now

    def run_until_processes_done(
        self, procs, limit: float = 1e12, max_events: Optional[int] = None
    ) -> float:
        """Run until every process in ``procs`` has finished.

        Convenience for benchmarks: background processes (e.g. adapter
        service loops) may still have pending events when the measured
        programs complete.
        """
        executed = 0
        wheel = self.scheduler == "wheel"
        queue = self._queue
        check = self.check
        # re-check "all done?" only when a process actually finished —
        # the stamp compare is one int per event instead of a scan
        seen_stamp = -1
        while True:
            if seen_stamp != self._finish_stamp:
                seen_stamp = self._finish_stamp
                if all(p.finished for p in procs):
                    return self.now
            if wheel:
                i = self._cur_idx
                cur = self._cur_list
                if i < len(cur):
                    entry = cur[i]
                else:
                    entry = self._advance()
                    if entry is None:
                        break
                    i = 0
                    cur = self._cur_list
            else:
                if not queue:
                    break
                entry = queue[0]
            if entry[0] > limit:
                raise SimTimeoutError(
                    f"simulated time limit {limit}us exceeded; "
                    f"{sum(not p.finished for p in procs)} process(es) unfinished"
                )
            if wheel:
                self._cur_idx = i + 1
            else:
                heappop(queue)
            fn = entry[2]
            if fn is None:
                self.stale_events_skipped += 1
                self._stale_pending -= 1
                if check is not None:
                    check.on_stale(entry)
                continue
            if max_events is not None and executed >= max_events:
                raise SimTimeoutError(f"exceeded max_events={max_events}")
            self.now = entry[0]
            self.events_executed += 1
            executed += 1
            if check is not None:
                check.on_execute(entry)
            fn(*entry[3])
        unfinished = [p for p in procs if not p.finished]
        if unfinished:
            raise DeadlockError(
                f"queue drained at t={self.now:.3f}us; unfinished: "
                + ", ".join(p.name or "<anon>" for p in unfinished)
            )
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(t={self.now:.3f}us, {self.scheduler}, "
            f"queued={self._pending_count()}, "
            f"live={self._live_processes}, blocked={self._blocked_processes})"
        )
