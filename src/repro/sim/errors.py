"""Exception hierarchy for the simulation engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator-raised errors."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still blocked.

    A drained queue with live-but-blocked processes means no future event can
    ever wake them: the simulated system has deadlocked (e.g. an ``MPI_Recv``
    whose matching send never happens).
    """


class SimTimeoutError(SimulationError):
    """Raised when ``Simulator.run`` exceeds its simulated-time budget."""


class ProcessKilled(SimulationError):
    """Injected into a coroutine when its process is killed externally."""
