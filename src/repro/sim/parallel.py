"""Multiprocessing shard workers (phase 2 of parallel sim).

``ShardedSimulator(workers=P)`` executes :meth:`run_until_processes_done`
across P forked worker processes while staying **bit-identical** to the
sequential engines.  The trick is a *replay-command protocol*: workers
execute callbacks, the parent re-executes the *scheduling decisions*.

Roles
-----

* **Workers** own contiguous shard blocks.  Each round, a worker drains
  its local k-way merge up to the round horizon, actually invoking the
  event callbacks against its forked copy of the machine.  Every
  schedule/cancel the callbacks perform is appended to a compact op log
  (``repro.sim.shard.OP_*``), and every ``Switch.inject`` is deferred
  into the same stream — the worker's fabric never runs.

* **The parent** is the sequencer: it keeps a stub entry for every
  pending event in its own merge structure (the same ``_next_live`` /
  ``_consume`` code path the single-process sharded engine uses), pops
  stubs in exact global ``(time, seq)`` order, and replays each popped
  event's ops against its authoritative state — assigning the real
  sequence numbers, running the real switch (destination-link queueing,
  fault-injector RNG in global packet order, observability counters),
  and feeding ``sim.check``.

Determinism argument
--------------------

Within a round a worker stamps *provisional* sequence numbers starting
from the global counter value broadcast at the barrier (the *rebase*).
Provisional order equals final order for every comparison a worker can
ever make:

* two same-round entries: the parent replays that worker's ops in log
  order, so final seqs are assigned in the worker's own allocation
  order — a monotone re-stamp;
* a same-round entry vs an older queued one: every pre-round final seq
  is <= the rebase, every provisional (and its final) is > it — the
  same inequality under both stampings (symmetrically for the negative
  unsequenced lane);
* entries from different workers never meet inside a round (separate
  address spaces).

Cross-shard deliveries always land at or past the *next* horizon (the
conservative lookahead bound that phase 1 already enforces), so shipping
them one barrier later — final-stamped by the parent — is exact.  The
parent's merge therefore pops stubs in exactly the order the
single-process engine pops real entries: ``sim.now``, event/stale
counters, and the event-order digest all come out identical.

Failure handling
----------------

A worker that dies or hangs mid-round surfaces as a
:class:`~repro.sim.errors.SimulationError` naming the round and the
worker's shard range (a watchdog bounds every barrier wait); remaining
workers are terminated, never left deadlocked on the barrier.
"""

from __future__ import annotations

import multiprocessing
import traceback
from heapq import heappop, heappush
from typing import List, Optional

from repro.sim.errors import DeadlockError, SimTimeoutError, SimulationError
from repro.sim.shard import OP_CANCEL, OP_CROSS, OP_INTO, OP_LOCAL, OP_UNSEQ


def _stub(*_args):  # pragma: no cover - never executed
    raise RuntimeError("parallel replay stub executed")


def _make_proxy(qname: str):
    """A callable whose ``__qualname__`` is the worker-reported one, so
    parent-side digest recorders hash the same callback name the
    sequential engine would."""

    def proxy(*_args):  # pragma: no cover - never executed
        raise RuntimeError("parallel replay proxy executed")

    proxy.__qualname__ = qname
    return proxy


def _shard_spans(nshards: int, nworkers: int) -> List[tuple]:
    """Contiguous ``[lo, hi)`` shard blocks, sizes differing by <= 1."""
    base, rem = divmod(nshards, nworkers)
    spans = []
    lo = 0
    for w in range(nworkers):
        hi = lo + base + (1 if w < rem else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _rebuild_merge(sim, lo: int, hi: int) -> None:
    """Rebuild the k-way merge over the owned shards from their zone
    heaps.  Required at every round start: merge items carry *copies* of
    entry ``(when, seq)``, and the barrier re-stamp just rewrote the
    sequence numbers underneath them."""
    sim._merge = []
    for shard in sim._shards[lo:hi]:
        cand = shard._cand
        if cand is not None:
            if cand[4] is not None:
                heappush(shard._heap, cand[4])
            shard._cand = None
        sim._refill(shard)


def _worker_init(sim, lo: int, hi: int, cid_start: int) -> None:
    """Turn the forked simulator copy into a pure shard executor."""
    sim.check = None
    sim._replay_deliveries = None
    sim.worker_finalize = None
    sim.workers = 1  # a worker never recurses into the parallel backend
    sim._cid_next = cid_start
    for i, shard in enumerate(sim._shards):
        if not lo <= i < hi:
            shard._heap = []
            shard._cand = None
    sim._exchange.clear()
    _rebuild_merge(sim, lo, hi)
    sim._pending_total = sim._pending_count_walk()

    def cancel_hook(entry):
        log = sim._op_log
        if log is None:
            return  # cancel outside a round drain (cannot reach a stub)
        if len(entry) < 5:
            raise SimulationError(
                "worker cancelled an entry with no replay id — the "
                "pre-fork id walk missed it")
        log.append((OP_CANCEL, entry[4]))
        sim._op_entries.append(None)

    sim._cancel_hook = cancel_hook


def _worker_main(conn, sim, lo: int, hi: int, watched, digest_mode: bool,
                 finalize, cid_start: int) -> None:
    try:
        _worker_init(sim, lo, hi, cid_start)
        switch = sim._switch
        shards = sim._shards
        qids: dict = {}
        prev_ents: list = []
        unfinished = [pair for pair in watched if not pair[1].finished]
        stamp = sim._finish_stamp
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                payload = None
                if finalize is not None:
                    payload = finalize(lo, hi)
                conn.send(("final", payload))
                conn.close()
                return
            _, horizon, seq_rebase, useq_rebase, finals, deliveries = msg
            # 1. re-stamp last round's entries with their final seqs
            for e, s in zip(prev_ents, finals):
                if e is not None and s:
                    e[1] = s
            sim._seq = seq_rebase
            sim._useq = useq_rebase
            # 2. rebuild the merge (its items hold stale seq copies),
            #    then insert this round's cross-shard deliveries
            #    (already final-stamped by the parent)
            _rebuild_merge(sim, lo, hi)
            if deliveries:
                adapters = switch._adapters
                hand_off = switch._hand_off
                for shard_id, when, seq, pkt in deliveries:
                    entry = [when, seq, hand_off,
                             (adapters[shard_id], pkt), -1]
                    sim._insert(entry, shards[shard_id])
                    sim._pending_total += 1
                    switch.in_flight += 1
            # 3. drain local events to the horizon, logging replay ops
            ops: list = []
            ents: list = []
            recs: list = []
            newq: list = []
            sim._op_log = ops
            sim._op_entries = ents
            merge = sim._merge
            while True:
                while merge and merge[0][4] is None:
                    heappop(merge)
                if not merge:
                    break
                item = merge[0]
                entry = item[4]
                if entry[2] is None:
                    # tombstoned: skip past the horizon too — the next
                    # live entry is no earlier, so the pop stays sound
                    heappop(merge)
                    sh = shards[item[3]]
                    sh._cand = None
                    sim.stale_events_skipped += 1
                    sim._stale_pending -= 1
                    sim._pending_total -= 1
                    sim._refill(sh)
                    continue
                if item[0] >= horizon:
                    break
                heappop(merge)
                sh = shards[item[3]]
                sh._cand = None
                sim._active_shard = item[3]
                sim._pending_total -= 1
                sim._refill(sh)
                fn = entry[2]
                sim.now = entry[0]
                sim.events_executed += 1
                fn(*entry[3])
                fins = ()
                st = sim._finish_stamp
                if st != stamp:
                    stamp = st
                    done = tuple(gi for gi, p in unfinished if p.finished)
                    if done:
                        unfinished = [(gi, p) for gi, p in unfinished
                                      if not p.finished]
                        fins = done
                qid = -1
                if digest_mode:
                    qn = getattr(fn, "__qualname__", None)
                    if qn is None:
                        qn = type(fn).__name__
                    qid = qids.get(qn)
                    if qid is None:
                        qid = len(qids)
                        qids[qn] = qid
                        newq.append(qn)
                recs.append((entry[0], len(ops), qid, fins))
            sim._op_log = None
            sim._op_entries = None
            prev_ents = ents
            conn.send(("log", recs, ops, newq))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class _Worker:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("idx", "lo", "hi", "proc", "conn", "cid_map", "cid_next",
                 "recs", "rec_i", "ops", "op_i", "finals", "deliveries",
                 "qnames")

    def __init__(self, idx: int, lo: int, hi: int):
        self.idx = idx
        self.lo = lo
        self.hi = hi
        self.proc = None
        self.conn = None
        #: replay id -> parent stub entry (cancel mirroring)
        self.cid_map: dict = {}
        self.cid_next = 0
        self.recs: list = []
        self.rec_i = 0
        self.ops: list = []
        self.op_i = 0
        #: final seqs for last round's ops, shipped at the next barrier
        self.finals: list = []
        #: (shard, when, seq, packet) deliveries for the next barrier
        self.deliveries: list = []
        #: qid -> qualname proxy callable (worker interning order)
        self.qnames: list = []

    def span(self) -> str:
        return f"worker {self.idx} (shards {self.lo}..{self.hi - 1})"


def _assign_cids(sim, owner, workers) -> int:
    """Stamp a replay id into every pre-fork queued entry (5th list
    slot) and register it with its owning worker — both sides inherit
    the stamped entries through the fork, so a worker's cancel of a
    pre-existing timer maps back to the parent's real entry.  Returns
    the first free id (the workers' counter start)."""
    cid = 0
    for shard in sim._shards:
        entries = list(shard._heap)
        cand = shard._cand
        if cand is not None and cand[4] is not None:
            entries.append(cand[4])
        w = workers[owner[shard.id]]
        for e in entries:
            if len(e) == 4:
                e.append(cid)
            else:
                e[4] = cid
            w.cid_map[cid] = e
            cid += 1
    return cid


def _recv(worker: "_Worker", timeout: float, where: str):
    """One watchdog-bounded message receive; raises a clean error naming
    the round and shard range on death, hang, or worker-reported
    failure."""
    if not worker.conn.poll(timeout):
        raise SimulationError(
            f"{worker.span()} unresponsive in {where} "
            f"(no barrier message within {timeout:.0f}s watchdog)")
    try:
        msg = worker.conn.recv()
    except EOFError:
        raise SimulationError(
            f"{worker.span()} died in {where} "
            "(pipe closed mid-protocol)") from None
    if msg[0] == "error":
        raise SimulationError(
            f"{worker.span()} failed in {where}:\n{msg[1]}")
    return msg


def run_parallel(sim, procs, limit: float = 1e12,
                 max_events: Optional[int] = None) -> float:
    """The parallel body of ``ShardedSimulator.run_until_processes_done``.

    Forks ``sim.workers`` worker processes over contiguous shard blocks
    and replays their per-round op streams in exact global order.
    Returns ``sim.now`` at the instant the last watched process
    finishes — identical to single-process execution, including
    ``events_executed``, ``stale_events_skipped``, ``rounds``, and every
    ``sim.check`` callback.
    """
    procs = list(procs)
    if all(p.finished for p in procs):
        return sim.now
    if sim._lookahead == float("inf"):
        raise RuntimeError(
            "workers > 1 requires configure_shards() — the parallel "
            "backend partitions the machine along shard boundaries")
    nshards = len(sim._shards)
    nworkers = min(sim.workers, nshards)
    if nworkers <= 1:
        from repro.sim.engine import Simulator

        return Simulator.run_until_processes_done(sim, procs, limit,
                                                  max_events)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        raise SimulationError(
            "workers > 1 requires the 'fork' multiprocessing start "
            "method (POSIX only): worker state is inherited through "
            "the fork, not pickled")

    sim._flush_exchange()
    spans = _shard_spans(nshards, nworkers)
    workers = [_Worker(i, lo, hi) for i, (lo, hi) in enumerate(spans)]
    owner: List[int] = []
    for w, (lo, hi) in enumerate(spans):
        owner.extend([w] * (hi - lo))
    cid_start = _assign_cids(sim, owner, workers)
    for w in workers:
        # mirror of the worker's _cid_next allocation (one id per
        # LOCAL/INTO/UNSEQ op, in replay order == worker log order)
        w.cid_next = cid_start

    digest_mode = sim.check is not None
    finalize = sim.worker_finalize
    watched: List[list] = [[] for _ in range(nworkers)]
    finished = set()
    for gi, p in enumerate(procs):
        if p.finished:
            finished.add(gi)
            continue
        shard = p.shard if p.shard is not None else 0
        watched[owner[shard]].append((gi, p))

    for w in workers:
        parent_conn, child_conn = ctx.Pipe()
        w.conn = parent_conn
        w.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, sim, w.lo, w.hi, watched[w.idx],
                  digest_mode, finalize, cid_start),
            daemon=True)
        w.proc.start()
        child_conn.close()

    watchdog = sim.worker_watchdog_s
    nprocs = len(procs)
    check = sim.check
    shards = sim._shards
    deliveries_buf: list = []
    broadcast_h = None
    executed = 0
    round_no = 0
    try:
        while True:
            entry = sim._next_live()
            if entry is None:
                names = ", ".join(
                    p.name or "<anon>" for gi, p in enumerate(procs)
                    if gi not in finished)
                raise DeadlockError(
                    f"queue drained at t={sim.now:.3f}us; unfinished: "
                    + names)
            if entry[0] > limit:
                raise SimTimeoutError(
                    f"simulated time limit {limit}us exceeded; "
                    f"{nprocs - len(finished)} process(es) unfinished")
            if max_events is not None and executed >= max_events:
                raise SimTimeoutError(f"exceeded max_events={max_events}")
            if broadcast_h is None or entry[0] >= broadcast_h:
                # round barrier: last round's logs must be exhausted
                for w in workers:
                    if w.rec_i != len(w.recs) or w.op_i != len(w.ops):
                        raise SimulationError(
                            f"{w.span()} desynchronized in round "
                            f"{round_no}: {len(w.recs) - w.rec_i} event "
                            f"record(s) and {len(w.ops) - w.op_i} op(s) "
                            "left after the parent drained the round")
                round_no += 1
                broadcast_h = sim._horizon
                for w in workers:
                    w.conn.send(("round", broadcast_h, sim._seq,
                                 sim._useq, w.finals, w.deliveries))
                    w.finals = []
                    w.deliveries = []
                for w in workers:
                    msg = _recv(w, watchdog, f"round {round_no}")
                    _, w.recs, w.ops, newq = msg
                    w.rec_i = 0
                    w.op_i = 0
                    for qn in newq:
                        w.qnames.append(_make_proxy(qn))
            sim._consume(entry)
            shard_id = sim._active_shard
            w = workers[owner[shard_id]]
            if w.rec_i >= len(w.recs):
                raise SimulationError(
                    f"{w.span()} desynchronized in round {round_no}: "
                    f"parent expects an event at t={entry[0]} in shard "
                    f"{shard_id}, but the worker's round log is "
                    "exhausted")
            when, op_end, qid, fins = w.recs[w.rec_i]
            w.rec_i += 1
            if when != entry[0]:
                raise SimulationError(
                    f"{w.span()} desynchronized in round {round_no}: "
                    f"worker executed t={when}, parent expected "
                    f"t={entry[0]} (shard {shard_id})")
            sim.now = entry[0]
            sim.events_executed += 1
            executed += 1
            if check is not None:
                entry[2] = w.qnames[qid]
                check.on_execute(entry)
            # replay this event's scheduling decisions
            ops = w.ops
            i = w.op_i
            while i < op_end:
                op = ops[i]
                i += 1
                tag = op[0]
                if tag == OP_LOCAL or tag == OP_INTO:
                    if tag == OP_LOCAL:
                        dest = shard_id
                    else:
                        dest = op[2]
                        if not w.lo <= dest < w.hi:
                            raise SimulationError(
                                f"{w.span()} desynchronized in round "
                                f"{round_no}: schedule_into(shard="
                                f"{dest}) targets a shard the worker "
                                "does not own")
                    sim._seq += 1
                    stub = [op[1], sim._seq, _stub, ()]
                    sim._insert(stub, shards[dest])
                    sim._pending_total += 1
                    w.finals.append(sim._seq)
                    w.cid_map[w.cid_next] = stub
                    w.cid_next += 1
                elif tag == OP_UNSEQ:
                    sim._useq -= 1
                    stub = [op[1], sim._useq, _stub, ()]
                    sim._insert(stub, shards[shard_id])
                    sim._pending_total += 1
                    w.finals.append(sim._useq)
                    w.cid_map[w.cid_next] = stub
                    w.cid_next += 1
                elif tag == OP_CANCEL:
                    stub = w.cid_map.get(op[1])
                    if stub is None:
                        raise SimulationError(
                            f"{w.span()} desynchronized in round "
                            f"{round_no}: cancel of unknown entry "
                            f"{op[1]}")
                    if stub[2] is not None:
                        stub[2] = None
                        stub[3] = ()
                        sim._stale_pending += 1
                        if check is not None:
                            check.on_cancel(stub)
                    w.finals.append(0)
                else:  # OP_CROSS: authoritative switch + fault replay
                    sim._replay_deliveries = deliveries_buf
                    try:
                        sim._switch.inject(op[2], op[1])
                    finally:
                        sim._replay_deliveries = None
                    for shard, d_entry, pkt in deliveries_buf:
                        workers[owner[shard]].deliveries.append(
                            (shard, d_entry[0], d_entry[1], pkt))
                    deliveries_buf.clear()
                    w.finals.append(0)
            w.op_i = i
            for gi in fins:
                finished.add(gi)
            if len(finished) == nprocs:
                _shutdown(sim, workers, watchdog,
                          strict=finalize is not None)
                return sim.now
    except (SimTimeoutError, DeadlockError):
        # aborted runs still get a best-effort graceful stop so
        # diagnostic finalize payloads (per-node check data) exist;
        # workers are parked at the barrier, so this is usually quick
        try:
            _shutdown(sim, workers, min(watchdog, 5.0), strict=False)
        except Exception:
            pass
        raise
    finally:
        for w in workers:
            if w.proc is not None and w.proc.is_alive():
                w.proc.terminate()
        for w in workers:
            if w.proc is not None:
                w.proc.join(timeout=5.0)


def _shutdown(sim, workers, watchdog: float, strict: bool) -> None:
    """Graceful stop: run finalizers worker-side, collect payloads.
    With ``strict`` a failed collection propagates; otherwise the
    payload slot is left None (best-effort diagnostics)."""
    results = [None] * len(workers)
    for w in workers:
        try:
            w.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    for w in workers:
        try:
            msg = _recv(w, watchdog, "finalize")
        except SimulationError:
            if strict:
                raise
            continue
        if msg[0] == "final":
            results[w.idx] = msg[1]
    sim.worker_results = results
    for w in workers:
        w.conn.close()
        w.proc.join(timeout=5.0)
