"""Yield instructions and signalling primitives for simulation processes.

A process is a generator.  It communicates with the engine by yielding
instances of the classes below:

* ``Delay(t)`` — suspend for ``t`` microseconds of simulated time.  ``t``
  may be zero (yield the CPU at the current instant; other events scheduled
  at the same time run first).
* ``WaitEvent(ev)`` — suspend until ``ev.succeed(...)`` is called.  The
  value passed to ``succeed`` becomes the value of the ``yield`` expression.

``Event`` is a one-shot signal.  Once succeeded it stays succeeded;
processes that wait on an already-succeeded event resume immediately (at
the current simulated instant) with the stored value.  This matches the
semantics needed for completion flags ("this store has been acked") where
the waiter may arrive before or after the signal.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Delay:
    """Advance the yielding process's clock by ``duration`` microseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.duration})"


class Event:
    """A one-shot signal with an optional payload.

    Hardware models call :meth:`succeed` from plain event callbacks;
    software processes block on the event with ``yield WaitEvent(ev)``.
    Multiple processes may wait on the same event; all are resumed at the
    instant the event fires, in wait order.
    """

    __slots__ = ("sim", "_value", "_ok", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):  # noqa: F821
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._ok = False
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._ok:
            raise RuntimeError(f"event {self.name!r} has not fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Fire the event, waking every waiter at the current sim time."""
        if self._ok:
            raise RuntimeError(f"event {self.name!r} fired twice")
        self._ok = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            # Wake at the current instant; scheduling through the queue
            # keeps resumption ordering deterministic.
            self.sim.schedule(0.0, resume, value)

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        """Register a resume callback (engine-internal)."""
        if self._ok:
            self.sim.schedule(0.0, resume, self._value)
        else:
            self._waiters.append(resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "ok" if self._ok else f"{len(self._waiters)} waiting"
        return f"Event({self.name!r}, {state})"


class WaitEvent:
    """Yield instruction: block the process until ``event`` fires."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WaitEvent({self.event!r})"


class Timeout:
    """Yield instruction: block until ``event`` fires OR ``duration`` passes.

    The yield expression evaluates to the event's value if it fired first,
    or to the ``TIMED_OUT`` sentinel otherwise.
    """

    __slots__ = ("event", "duration")

    def __init__(self, event: Event, duration: float):
        self.event = event
        self.duration = duration


TIMED_OUT = object()


def make_event(sim: "Simulator", name: str = "") -> Event:  # noqa: F821
    """Convenience constructor mirroring ``Simulator.event``."""
    return Event(sim, name)
