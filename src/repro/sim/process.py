"""Coroutine processes: node software running on simulated time.

A *process* wraps a generator.  The generator yields instructions
(:class:`~repro.sim.primitives.Delay`, ``WaitEvent``, ``Timeout``) and the
process object drives it from engine callbacks.  Sub-procedures compose
with ``yield from``, so protocol layers stack naturally::

    def app(node):
        yield Delay(2.0)                      # compute for 2 us
        value = yield from node.am.request_1(dst, h, 42)   # AM call
        ...

When the generator returns, the process's :attr:`done` event fires with the
return value (``StopIteration.value``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.errors import ProcessKilled, SimulationError
from repro.sim.primitives import TIMED_OUT, Delay, Event, Timeout, WaitEvent


class Process:
    """A generator registered with a :class:`~repro.sim.engine.Simulator`."""

    __slots__ = ("sim", "gen", "name", "done", "finished", "result", "error",
                 "shard", "_waiting", "_send", "_resume", "_schedule")

    def __init__(self, sim, gen: Generator, name: str = "",
                 shard: Optional[int] = None):
        self.sim = sim
        self.gen = gen
        self.name = name
        #: the shard zone this process's events live in (None on the
        #: sequential engine).  An unpinned spawn from a callback inherits
        #: the executing event's shard — recorded here so the parallel
        #: backend can partition watched processes across workers.
        self.shard = shard
        if shard is None and sim.sharded:
            self.shard = sim._active_shard
        self.done: Event = sim.event(name=f"{name}.done")
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._waiting = False
        # bound once: _step runs per event, and every schedule/add_waiter
        # callback would otherwise rebuild the bound method
        self._send = gen.send
        self._resume = self._step
        self._schedule = sim.schedule
        sim._process_started()
        # First step at the current instant, after already-queued events.
        # Pinning the first resume to ``shard`` is enough to pin the whole
        # process: every later schedule the process issues runs from one of
        # its own callbacks, and a ShardedSimulator's ``schedule`` inherits
        # the executing event's shard.
        if shard is None:
            sim.schedule(0.0, self._resume)
        else:
            sim.schedule_into(shard, 0.0, self._resume)

    # -- engine-facing ----------------------------------------------------

    def _step(self, send_value: Any = None) -> None:
        if self.finished:
            return  # stale wakeup after kill()
        if self._waiting:
            self._waiting = False
            self.sim._process_unblocked()
        try:
            instr = self._send(send_value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Exception as exc:  # propagate with context, fail loudly
            self._finish(None, exc)
            raise
        # dispatch, most frequent instruction first
        cls = instr.__class__
        if cls is Delay:
            # no args: a plain-Delay resume sends None, and skipping the
            # (None,) pack/unpack matters at one resume per event
            self._schedule(instr.duration, self._resume)
        elif cls is WaitEvent:
            self._waiting = True
            self.sim._process_blocked()
            instr.event.add_waiter(self._resume)
        elif cls is Timeout:
            self._wait_with_timeout(instr)
        else:
            self._dispatch_slow(instr)

    def _dispatch_slow(self, instr: Any) -> None:
        # duck-typed instruction objects (tests/extensions) still work
        if isinstance(instr, Delay):
            self.sim.schedule(instr.duration, self._resume, None)
        elif isinstance(instr, WaitEvent):
            self._waiting = True
            self.sim._process_blocked()
            instr.event.add_waiter(self._resume)
        elif isinstance(instr, Timeout):
            self._wait_with_timeout(instr)
        else:
            exc = SimulationError(
                f"process {self.name!r} yielded {instr!r}; expected "
                "Delay, WaitEvent, or Timeout"
            )
            self.gen.throw(exc)

    def _wait_with_timeout(self, instr: Timeout) -> None:
        self._waiting = True
        self.sim._process_blocked()
        fired = [False]
        handle: list = [None]

        def resume(value: Any) -> None:
            if fired[0]:
                return
            fired[0] = True
            if value is not TIMED_OUT:
                # event won the race: the timer must never fire
                handle[0].cancel()
            self._step(value)

        instr.event.add_waiter(resume)
        handle[0] = self.sim.call_later(instr.duration, resume, TIMED_OUT)

    def kill(self) -> None:
        """Terminate the process: ``ProcessKilled`` is raised inside the
        generator (cleanup ``finally`` blocks run); a process may also
        catch it to shut down gracefully.  No-op if already finished."""
        if self.finished:
            return
        if self._waiting:
            self._waiting = False
            self.sim._process_unblocked()
        try:
            self.gen.throw(ProcessKilled(f"process {self.name!r} killed"))
        except (ProcessKilled, StopIteration):
            pass
        finally:
            if not self.finished:
                self._finish(None, None)

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        self.finished = True
        self.result = result
        self.error = error
        self.sim._process_finished()
        if error is None:
            self.done.succeed(result)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else ("blocked" if self._waiting else "ready")
        return f"Process({self.name!r}, {state})"
