"""Deterministic round-based node sharding (phase 1 of parallel sim).

The machine decomposes naturally along node boundaries: every process,
timer, and adapter event is local to one node, and the *only* cross-node
interaction is a packet traversing the switch — which always pays at least
the ~0.5 µs hardware latency (§1.2).  That latency is therefore a sound
**conservative lookahead**: during the round ``[T, T + latency)`` no shard
can receive an event from another shard that lands inside the round,
because any packet injected at time ``t ≥ T`` delivers no earlier than
``t + latency ≥ T + latency``.

:class:`ShardedSimulator` realizes phase 1 of that plan *deterministically*:

* each node owns a :class:`Shard` — a private event zone (binary heap)
  holding its processes' and hardware's pending events;
* the switch is the sole cross-shard channel: deliveries go through
  :meth:`ShardedSimulator.post_cross`, which stamps the entry's
  ``(when, seq)`` immediately (identical to the sequential engine) but
  buffers it in a global *exchange* applied at the next round barrier,
  and rejects any post that would violate the lookahead bound;
* shards drain their local events up to the round horizon
  (``round start + lookahead``); when every shard is drained the round
  barrier flushes the exchange and opens the next round at the earliest
  pending event.

Within a round the engine still executes events in exact global
``(time, seq)`` order via a k-way merge over the shard zones — sequence
numbers are assigned at ``schedule()`` call time by the shared counter, so
any other intra-round order would change timer/tie-break identity.  This
makes sharded execution **digest-identical** to the sequential wheel and
heap schedulers (the PR 3/5 event-order digest machinery is the harness:
``spam-bench perf`` and ``tests/sim/test_sharded.py`` assert
``sharded == sequential == heap`` on the protocol workloads and the lossy
soak).

Phase 2 (``workers=P``) executes those rounds in parallel:
:mod:`repro.sim.parallel` forks P worker processes over contiguous shard
blocks, each worker drains its shards to the round horizon while logging a
compact replay op stream (schedules, cancels, deferred switch injections),
and the parent replays the merged streams through its own k-way merge —
re-stamping sequence numbers and executing the authoritative switch /
fault-injector state — so parallel execution stays bit-identical to the
sequential engines.  See ``docs/architecture.md`` for the protocol and the
determinism argument.

The merge keeps **one valid candidate per shard** in a single binary heap:
a shard's earliest entry is registered as a merge *item*; scheduling an
even-earlier entry into that shard lazily invalidates the item and
registers a replacement (the displaced entry returns to the shard heap).
Pops that surface an invalidated item discard it; pops that surface a
tombstoned (cancelled) entry count it as stale exactly like the sequential
schedulers.  Each barrier is O(changed shards · log S), not O(S), so tiny
0.5 µs rounds stay cheap even at 1024 nodes.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from repro.sim.engine import NEGATIVE_DELAY_EPSILON, Simulator

_INF = float("inf")

# Replay op tags (the worker -> parent protocol of repro.sim.parallel).
# A worker logs one op per schedule/cancel/deferred-injection it performs
# while draining a round; the parent sequencer mirrors each op against its
# own authoritative state in exact global event order.
OP_LOCAL = 0   # (OP_LOCAL, when): schedule/at into the executing shard
OP_INTO = 1    # (OP_INTO, when, shard): schedule_into an explicit shard
OP_UNSEQ = 2   # (OP_UNSEQ, when): schedule_unsequenced (negative seq lane)
OP_CANCEL = 3  # (OP_CANCEL, cid): TimerHandle.cancel of entry cid
OP_CROSS = 4   # (OP_CROSS, wire_exit, packet): deferred Switch.inject


class Shard:
    """One node's private event zone: a binary heap of queue entries plus
    the zone's current *candidate* — its earliest entry, registered in the
    simulator's k-way merge heap.  Invariant: ``_cand is None`` exactly
    when the zone heap is empty and no candidate is registered."""

    __slots__ = ("id", "_heap", "_cand")

    def __init__(self, shard_id: int):
        self.id = shard_id
        self._heap: List[list] = []
        #: the merge item currently representing this shard, or None
        self._cand: Optional[list] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n = len(self._heap) + (1 if self._cand is not None else 0)
        return f"Shard({self.id}, {n} queued)"


class ShardedSimulator(Simulator):
    """Drop-in :class:`Simulator` with per-node shard zones and
    round-barrier cross-shard exchange.

    Construction mirrors ``Simulator()``; call :meth:`configure_shards`
    (``build_sp_machine`` does this automatically when it sees
    ``sim.sharded``) to create one shard per node and set the lookahead.
    Events scheduled from a callback inherit the executing event's shard,
    so pinning a process's first resume (``spawn(..., shard=n)``) pins the
    whole process; unpinned work lands in shard 0.

    ``idle_fast_forward`` is accepted for signature compatibility but
    inert: the fast drains are a wheel-scheduler specialization, and the
    sharded engine always runs the reference dispatch loop.
    """

    __slots__ = (
        "_shards", "_active_shard", "_merge", "_exchange",
        "_lookahead", "_horizon", "_reg", "rounds", "cross_posts",
        "_pending_total", "workers", "worker_watchdog_s",
        "worker_finalize", "worker_results", "_switch",
        "_op_log", "_op_entries", "_replay_deliveries", "_cid_next",
    )

    sharded = True

    #: when True, :meth:`_pending_count` cross-checks the O(1) counter
    #: against the full zone walk (tests flip this on; the walk is the
    #: very cost the counter exists to avoid on quiesce-poll paths)
    _audit_pending = False

    def __init__(self, idle_fast_forward: bool = True, workers: int = 1,
                 worker_watchdog_s: float = 60.0) -> None:
        super().__init__(scheduler="heap",
                         idle_fast_forward=idle_fast_forward)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        #: reported in perf records / repr; "heap" internals are unused
        self.scheduler = "sharded"
        self._shards: List[Shard] = [Shard(0)]
        self._active_shard = 0
        #: k-way merge heap of items ``[when, seq, reg, shard_id, entry]``;
        #: ``reg`` is a unique registration stamp so comparisons never
        #: reach the (possibly invalidated) entry slot
        self._merge: List[list] = []
        #: cross-shard entries awaiting the round barrier:
        #: ``(shard_id, entry)`` in post order
        self._exchange: List[tuple] = []
        self._lookahead = _INF
        self._horizon = _INF
        self._reg = 0
        #: round barriers crossed (horizon advances)
        self.rounds = 0
        #: cross-shard posts buffered through the exchange
        self.cross_posts = 0
        #: incrementally-maintained queued-entry count (tombstones
        #: included, mirroring the base class): +1 on every schedule /
        #: post, -1 on every consume / stale skip.  Quiesce predicates
        #: poll ``live_pending_count()`` per idle event, so the O(shards)
        #: zone walk this replaces was a per-poll cost.
        self._pending_total = 0
        #: worker processes for :meth:`run_until_processes_done`; 1 =
        #: single-process (phase-1) execution.  ``run()``/``step()``
        #: always execute single-process — only the process-drain loop
        #: has the parallel backend.
        self.workers = int(workers)
        #: seconds a round barrier may wait on a worker before the run
        #: is aborted with an error naming the round and shard range
        self.worker_watchdog_s = float(worker_watchdog_s)
        #: optional callable run *inside each worker* after the last
        #: round; its picklable return value lands in ``worker_results``
        #: (campaign harnesses ship per-node verification data this way)
        self.worker_finalize = None
        #: list of per-worker finalize payloads after a parallel run
        self.worker_results = None
        #: the machine's Switch (set by Switch.__init__); the parallel
        #: backend replays deferred injections through it
        self._switch = None
        #: worker-mode replay op log (None = normal execution).  While a
        #: worker drains a round, every schedule/cancel appends a compact
        #: op here so the parent sequencer can mirror it; the switch
        #: defers injections into the same stream.
        self._op_log: Optional[list] = None
        #: entries created this round, 1:1 with ``_op_log`` (None for
        #: ops that create no local entry) — re-stamped with the
        #: parent's authoritative sequence numbers at the next barrier
        self._op_entries: Optional[list] = None
        #: parent-side replay state: when not None, post_cross records
        #: ``(shard, entry, packet)`` here so deliveries can be shipped
        #: to the owning worker at the next round barrier
        self._replay_deliveries: Optional[list] = None
        #: worker-side replay-id counter: every entry a worker creates
        #: gets the next id appended as its 5th slot, and the parent
        #: mirrors the allocation order so ``TimerHandle.cancel`` ops can
        #: name their target across the process boundary
        self._cid_next = 0

    # -- topology ---------------------------------------------------------

    def configure_shards(self, n: int, lookahead_us: float) -> None:
        """Create shards ``0..n-1`` (shard ids are node ids) and set the
        conservative lookahead — the minimum cross-shard latency, i.e.
        ``SwitchParams.latency``.  Safe to call again with a larger ``n``
        (shards are never destroyed)."""
        if n < 1:
            raise ValueError("need at least one shard")
        if lookahead_us <= 0.0:
            raise ValueError("lookahead_us must be positive")
        shards = self._shards
        while len(shards) < n:
            shards.append(Shard(len(shards)))
        self._lookahead = lookahead_us
        self._horizon = self.now + lookahead_us

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    # -- scheduling (shard-aware overrides) -------------------------------
    #
    # Bodies replicate the base validation exactly — including the
    # ``now + delay`` float round-trip in ``at`` — because scheduled
    # timestamps must stay bit-identical to the sequential engine's for
    # the digests to match.

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> list:
        if delay < 0.0:
            if delay < -NEGATIVE_DELAY_EPSILON:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            delay = 0.0  # accumulated float error, not intent
        self._seq += 1
        entry = [self.now + delay, self._seq, fn, args]
        self._insert(entry, self._shards[self._active_shard])
        self._pending_total += 1
        log = self._op_log
        if log is not None:
            entry.append(self._cid_next)
            self._cid_next += 1
            log.append((OP_LOCAL, entry[0]))
            self._op_entries.append(entry)
        return entry

    def at(self, when: float, fn: Callable[..., None], *args: Any) -> list:
        delay = when - self.now
        if delay < 0.0:
            if delay < -NEGATIVE_DELAY_EPSILON:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            delay = 0.0  # accumulated float error, not intent
        self._seq += 1
        entry = [self.now + delay, self._seq, fn, args]
        self._insert(entry, self._shards[self._active_shard])
        self._pending_total += 1
        log = self._op_log
        if log is not None:
            entry.append(self._cid_next)
            self._cid_next += 1
            log.append((OP_LOCAL, entry[0]))
            self._op_entries.append(entry)
        return entry

    def schedule_unsequenced(self, delay: float, fn: Callable[..., None],
                             *args: Any) -> list:
        # inherits _active_shard like schedule(): an unsequenced
        # (gauge-sampler) timer rescheduled from its own tick stays in the
        # shard — and therefore the worker — that executes it
        if delay <= 0.0:
            raise ValueError(
                f"unsequenced delay must be positive, got {delay}")
        self._useq -= 1
        entry = [self.now + delay, self._useq, fn, args]
        self._insert(entry, self._shards[self._active_shard])
        self._pending_total += 1
        log = self._op_log
        if log is not None:
            entry.append(self._cid_next)
            self._cid_next += 1
            log.append((OP_UNSEQ, entry[0]))
            self._op_entries.append(entry)
        return entry

    def schedule_into(self, shard: int, delay: float,
                      fn: Callable[..., None], *args: Any) -> list:
        """:meth:`schedule` into an explicit shard's zone (process
        pinning)."""
        if not 0 <= shard < len(self._shards):
            raise ValueError(f"no shard {shard} "
                             f"(have {len(self._shards)})")
        if delay < 0.0:
            if delay < -NEGATIVE_DELAY_EPSILON:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            delay = 0.0
        self._seq += 1
        entry = [self.now + delay, self._seq, fn, args]
        self._insert(entry, self._shards[shard])
        self._pending_total += 1
        log = self._op_log
        if log is not None:
            entry.append(self._cid_next)
            self._cid_next += 1
            # ownership is validated by the parent sequencer at replay:
            # a worker can only place entries in shards it owns
            log.append((OP_INTO, entry[0], shard))
            self._op_entries.append(entry)
        return entry

    def post_cross(self, shard: int, when: float, fn: Callable[..., None],
                   *args: Any) -> list:
        """Cross-shard post (the switch's delivery seam).

        The entry's ``(when, seq)`` is stamped *now* — call order is what
        the sequential engine would have used, so digests stay identical —
        but queue insertion is deferred to the round barrier via the
        exchange buffer.  Enforces the conservative bound
        ``when >= now + lookahead``: a violation means some cross-shard
        path is faster than the configured lookahead and the decomposition
        would be unsound.
        """
        if self._op_log is not None:
            raise RuntimeError(
                "post_cross inside a shard worker: cross-shard deliveries "
                "must come from the switch, whose injections are deferred "
                "to the parent sequencer")
        if not 0 <= shard < len(self._shards):
            raise ValueError(f"no shard {shard} "
                             f"(have {len(self._shards)})")
        lookahead = self._lookahead
        if lookahead is _INF:
            raise RuntimeError(
                "post_cross before configure_shards(): the conservative "
                "lookahead bound is not set")
        delay = when - self.now
        if delay < 0.0:
            if delay < -NEGATIVE_DELAY_EPSILON:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            delay = 0.0
        when = self.now + delay
        # The lookahead bound check must tolerate float drift that grows
        # with the magnitude of the clock: after many rounds an
        # exact-boundary post computed as a sum of wire times can land one
        # ulp short of ``now + lookahead``, and one ulp is already
        # ~2.4e-7 at t=1e9 us — far beyond the absolute epsilon.  Scale
        # the tolerance by ``now`` (the epsilon convention is per-unit
        # error); the timestamp itself is NOT clamped, as rewriting it
        # would change the digest vs the sequential engine.
        tol = NEGATIVE_DELAY_EPSILON * (self.now if self.now > 1.0 else 1.0)
        if (self.now + lookahead) - when > tol:
            raise ValueError(
                f"cross-shard post at t={when} violates the conservative "
                f"lookahead bound (now={self.now}, lookahead={lookahead})")
        self._seq += 1
        entry = [when, self._seq, fn, args]
        self._exchange.append((shard, entry))
        self.cross_posts += 1
        self._pending_total += 1
        if self._replay_deliveries is not None:
            # parent sequencer replaying a worker's deferred injection:
            # remember the delivery so the owning worker receives it at
            # the next round barrier (args = (adapter, packet))
            self._replay_deliveries.append((shard, entry, args[-1]))
        return entry

    # -- merge internals --------------------------------------------------

    def _insert(self, entry: list, shard: Shard) -> None:
        cand = shard._cand
        if cand is None:
            # invariant: zone heap is empty — register directly
            self._reg += 1
            item = [entry[0], entry[1], self._reg, shard.id, entry]
            shard._cand = item
            heappush(self._merge, item)
        elif (entry[0] < cand[0]
              or (entry[0] == cand[0] and entry[1] < cand[1])):
            # preempt: the new entry is the shard's earliest — displace
            # the candidate back into the zone and lazily invalidate its
            # merge item
            heappush(shard._heap, cand[4])
            cand[4] = None
            self._reg += 1
            item = [entry[0], entry[1], self._reg, shard.id, entry]
            shard._cand = item
            heappush(self._merge, item)
        else:
            heappush(shard._heap, entry)

    def _refill(self, shard: Shard) -> None:
        heap = shard._heap
        if heap:
            entry = heappop(heap)
            self._reg += 1
            item = [entry[0], entry[1], self._reg, shard.id, entry]
            shard._cand = item
            heappush(self._merge, item)

    def _flush_exchange(self) -> None:
        shards = self._shards
        for shard_id, entry in self._exchange:
            self._insert(entry, shards[shard_id])
        self._exchange.clear()

    # -- queue interface (overrides driven by the base run loops) ---------

    def _next_live(self) -> Optional[list]:
        check = self.check
        merge = self._merge
        shards = self._shards
        while True:
            # flushing early is sound: every exchanged entry lands at or
            # past the current horizon, so it cannot execute before the
            # barrier anyway — the buffer exists as the phase-2 seam and
            # to enforce the lookahead bound at post time
            if self._exchange:
                self._flush_exchange()
            while merge and merge[0][4] is None:
                heappop(merge)  # invalidated by a preempting _insert
            if not merge:
                return None
            item = merge[0]
            entry = item[4]
            if entry[2] is None:
                # tombstoned (cancelled) candidate: discard and count it
                # here — the single stale-skip site, like the base class
                heappop(merge)
                shard = shards[item[3]]
                shard._cand = None
                self.stale_events_skipped += 1
                self._stale_pending -= 1
                self._pending_total -= 1
                if check is not None:
                    check.on_stale(entry)
                self._refill(shard)
                continue
            if item[0] < self._horizon:
                return entry
            # round barrier: every shard is drained up to the horizon and
            # the exchange is empty — open the next round at the earliest
            # pending event (guard: at huge timestamps ``t + lookahead``
            # can round to ``t``; an unbounded final round is still exact)
            nh = item[0] + self._lookahead
            self._horizon = nh if nh > item[0] else _INF
            self.rounds += 1

    def _consume(self, entry: list) -> None:
        # the base loops consume exactly the entry _next_live returned,
        # which is still the merge head
        item = heappop(self._merge)
        shard_id = item[3]
        shard = self._shards[shard_id]
        shard._cand = None
        # shard affinity: events scheduled by this entry's callback land
        # in its shard (set before the base loop invokes the callback)
        self._active_shard = shard_id
        self._pending_total -= 1
        self._refill(shard)

    # -- running ----------------------------------------------------------

    def run_until_processes_done(self, procs, limit: float = 1e12,
                                 max_events=None,
                                 idle_fast_forward=None) -> float:
        """Drain until every process in ``procs`` finishes.

        With ``workers > 1`` this is the parallel entry point: shards are
        partitioned over forked worker processes and the parent replays
        their per-round op streams in exact global order (bit-identical
        to single-process execution).  ``run()``/``step()`` always stay
        single-process.
        """
        if self.workers > 1:
            from repro.sim.parallel import run_parallel

            return run_parallel(self, procs, limit=limit,
                                max_events=max_events)
        return super().run_until_processes_done(
            procs, limit=limit, max_events=max_events,
            idle_fast_forward=idle_fast_forward)

    def _peek(self) -> Optional[list]:
        if self._exchange:
            self._flush_exchange()
        merge = self._merge
        while merge and merge[0][4] is None:
            heappop(merge)
        return merge[0][4] if merge else None

    def _pending_count(self) -> int:
        # O(1): quiesce predicates call live_pending_count() on every
        # idle poll, and the zone walk was O(shards) per poll
        n = self._pending_total
        if self._audit_pending:
            walk = self._pending_count_walk()
            assert n == walk, (
                f"pending counter {n} disagrees with zone walk {walk}")
        return n

    def _pending_count_walk(self) -> int:
        """The authoritative O(shards) count (audit / debugging)."""
        return (len(self._exchange)
                + sum(1 for item in self._merge if item[4] is not None)
                + sum(len(s._heap) for s in self._shards))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedSimulator(t={self.now:.3f}us, "
            f"{len(self._shards)} shards, rounds={self.rounds}, "
            f"queued={self._pending_count()} "
            f"({self.live_pending_count()} live), "
            f"live={self._live_processes}, "
            f"blocked={self._blocked_processes})"
        )
