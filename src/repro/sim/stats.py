"""Statistics collection: counters and time series keyed by name.

Protocol layers record events ("packets_sent", "retransmissions",
"explicit_acks") into a :class:`StatRegistry`; tests and benchmarks read
them back to assert protocol behaviour (e.g. that a lossless run performs
zero retransmissions, or that lazy FIFO popping reduced MicroChannel
accesses).

Distribution queries (percentiles) delegate to :mod:`repro.obs.hist`, and
both counters and series snapshot to plain JSON-serializable dicts so the
observability exporters can embed any registry verbatim.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class TimeSeries:
    """(time, value) samples, e.g. instantaneous window occupancy.

    With ``capacity`` set the series is a ring buffer: once full, each
    new sample evicts the oldest one and bumps ``dropped_samples``.
    Long soaks with a periodic gauge sampler need the bound — an
    unbounded series would grow by one tuple per sample for the entire
    run — while short benchmark runs keep the default unbounded list.
    """

    __slots__ = ("name", "samples", "capacity", "dropped_samples")

    def __init__(self, name: str, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        #: a deque bounds the ring at C speed; the unbounded default stays
        #: a plain list (append is the hot operation either way)
        self.samples = (deque(maxlen=capacity) if capacity is not None
                        else [])
        #: samples evicted by the ring buffer (0 when unbounded)
        self.dropped_samples = 0

    def record(self, t: float, value: float) -> None:
        s = self.samples
        if self.capacity is not None and len(s) == self.capacity:
            self.dropped_samples += 1
        s.append((t, value))

    @property
    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def _require_data(self) -> List[float]:
        vals = self.values
        if not vals:
            raise ValueError(f"time series {self.name!r} is empty")
        return vals

    def mean(self) -> float:
        vals = self._require_data()
        return sum(vals) / len(vals)

    def max(self) -> float:
        return max(self._require_data())

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]) of the values."""
        from repro.obs.hist import percentile

        return percentile(self._require_data(), p)

    def snapshot(self) -> Dict[str, float]:
        """JSON-serializable summary of the series.

        The values are extracted and sorted **once**; every percentile
        reads the shared sorted copy (one ``sorted`` per snapshot, not
        one per quantile).
        """
        from repro.obs.hist import percentile_sorted

        if not self.samples:
            return {"count": 0}
        vs = sorted(v for _, v in self.samples)
        snap = {
            "count": len(vs),
            "mean": sum(vs) / len(vs),
            "max": vs[-1],
            "p50": percentile_sorted(vs, 50),
            "p95": percentile_sorted(vs, 95),
            "p99": percentile_sorted(vs, 99),
            "last": self.samples[-1][1],
        }
        if self.dropped_samples:
            snap["dropped_samples"] = self.dropped_samples
        return snap

    def __len__(self) -> int:
        return len(self.samples)


class StatRegistry:
    """Namespace of counters and time series for one component."""

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(self.prefix + name)
        return c

    def series(self, name: str,
               capacity: Optional[int] = None) -> TimeSeries:
        """Get-or-create a series.  ``capacity`` bounds a **new** series
        as a ring buffer; an existing series keeps its original bound."""
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = TimeSeries(self.prefix + name,
                                                capacity=capacity)
        return s

    def count(self, name: str, n: int = 1) -> None:
        # hot path: open-coded counter() + add() (called per packet)
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(self.prefix + name)
        c.value += n

    def get(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        c = self._counters.get(name)
        return 0 if c is None else c.value

    def snapshot(self) -> Dict[str, int]:
        """Counter values keyed by full (prefixed) name, sorted — stable
        and JSON-serializable (plain ints/floats only)."""
        return {c.name: c.value
                for _key, c in sorted(self._counters.items())}

    def snapshot_series(self) -> Dict[str, Dict[str, float]]:
        """Per-series summaries keyed by full name, sorted; the series
        counterpart of :meth:`snapshot` for the observability exporters."""
        return {s.name: s.snapshot()
                for _key, s in sorted(self._series.items())}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatRegistry({self.prefix!r}, {self.snapshot()})"
