"""Event tracing: packet-level timelines for protocol debugging.

A :class:`Tracer` attaches to a machine and records a timestamped event
stream — packet departures (``tx``), arrivals (``rx``), drops, and any
custom marks the software layers emit.  The stream can be filtered,
asserted against in tests (e.g. "the rts left before the prefix"), or
rendered as a text timeline for debugging protocol schedules like
Figure 2's chunk pipeline.

The collection/query machinery lives in :class:`repro.obs.events.EventLog`
(shared with the observability exporters); the Tracer is the thin facade
that knows how to hook a machine's devices.
"""

from __future__ import annotations

from repro.obs.events import EventLog, TraceEvent

__all__ = ["Tracer", "TraceEvent"]


def _kind_name(pkt) -> str:
    """Human-readable packet kind (PacketKind name, or the class name for
    generic-fabric fragments/requests)."""
    kind = getattr(pkt, "kind", None)
    name = getattr(kind, "name", None)
    if name is not None:
        return name
    return str(kind) if kind is not None else type(pkt).__name__


class Tracer(EventLog):
    """Records machine events; attach before running the workload."""

    def attach(self, machine) -> "Tracer":
        """Hook every adapter/NIC departure + arrival and the switch's
        drop path."""
        sim = machine.sim
        for node in machine.nodes:
            dev = node.adapter if node.adapter is not None else node.nic
            nid = node.id
            dev.add_departure_listener(
                lambda pkt, t, nid=nid: self.record(
                    t, "tx", nid,
                    f"{_kind_name(pkt)} to n{pkt.dst}"))
            dev.add_arrival_listener(
                lambda pkt, nid=nid, sim=sim: self.record(
                    sim.now, "rx", nid,
                    f"{_kind_name(pkt)} from n{pkt.src}"))
        if machine.switch is not None:
            inner = machine.switch.fault_injector

            def counting_injector(pkt):
                dropped = inner(pkt) if inner is not None else False
                if dropped:
                    self.record(machine.sim.now, "drop", pkt.dst,
                                f"{_kind_name(pkt)} seq={pkt.seq} "
                                f"from n{pkt.src}")
                return dropped

            machine.switch.fault_injector = counting_injector
        return self

    def mark(self, sim, node: int, detail: str) -> None:
        """Custom annotation from application/protocol code."""
        self.record(sim.now, "mark", node, detail)
