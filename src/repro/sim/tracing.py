"""Event tracing: packet-level timelines for protocol debugging.

A :class:`Tracer` attaches to a machine and records a timestamped event
stream — packet departures/arrivals, drops, and any custom marks the
software layers emit.  The stream can be filtered, asserted against in
tests (e.g. "the rts left before the prefix"), or rendered as a text
timeline for debugging protocol schedules like Figure 2's chunk pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


def _kind_name(pkt) -> str:
    """Human-readable packet kind (PacketKind name, or the class name for
    generic-fabric fragments/requests)."""
    kind = getattr(pkt, "kind", None)
    name = getattr(kind, "name", None)
    if name is not None:
        return name
    return str(kind) if kind is not None else type(pkt).__name__


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry."""

    t: float
    kind: str          # "tx", "rx", "drop", or a custom mark
    node: int
    detail: str

    def __str__(self) -> str:
        return f"{self.t:12.2f}us  n{self.node}  {self.kind:<6} {self.detail}"


class Tracer:
    """Records machine events; attach before running the workload."""

    def __init__(self, limit: int = 1_000_000):
        self.events: List[TraceEvent] = []
        self.limit = limit
        self.dropped_events = 0

    # -- collection ------------------------------------------------------

    def attach(self, machine) -> "Tracer":
        """Hook every adapter/NIC arrival and the switch's drop path."""
        sim = machine.sim
        for node in machine.nodes:
            dev = node.adapter if node.adapter is not None else node.nic
            nid = node.id
            dev.add_arrival_listener(
                lambda pkt, nid=nid, sim=sim: self.record(
                    sim.now, "rx", nid,
                    f"{_kind_name(pkt)} from n{pkt.src}"))
        if machine.switch is not None:
            inner = machine.switch.fault_injector

            def counting_injector(pkt):
                dropped = inner(pkt) if inner is not None else False
                if dropped:
                    self.record(machine.sim.now, "drop", pkt.dst,
                                f"{_kind_name(pkt)} seq={pkt.seq} "
                                f"from n{pkt.src}")
                return dropped

            machine.switch.fault_injector = counting_injector
        return self

    def record(self, t: float, kind: str, node: int, detail: str) -> None:
        if len(self.events) >= self.limit:
            self.dropped_events += 1
            return
        self.events.append(TraceEvent(t=t, kind=kind, node=node,
                                      detail=detail))

    def mark(self, sim, node: int, detail: str) -> None:
        """Custom annotation from application/protocol code."""
        self.record(sim.now, "mark", node, detail)

    # -- querying --------------------------------------------------------

    def filter(self, kind: Optional[str] = None, node: Optional[int] = None,
               contains: Optional[str] = None) -> List[TraceEvent]:
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if node is not None:
            out = [e for e in out if e.node == node]
        if contains is not None:
            out = [e for e in out if contains in e.detail]
        return list(out)

    def first(self, **kw) -> Optional[TraceEvent]:
        hits = self.filter(**kw)
        return hits[0] if hits else None

    def count(self, **kw) -> int:
        return len(self.filter(**kw))

    def spans(self, start_contains: str, end_contains: str) -> List[float]:
        """Durations between successive matching start/end marks."""
        out = []
        start_t: Optional[float] = None
        for e in self.events:
            if start_contains in e.detail and start_t is None:
                start_t = e.t
            elif end_contains in e.detail and start_t is not None:
                out.append(e.t - start_t)
                start_t = None
        return out

    # -- rendering --------------------------------------------------------

    def render(self, last: Optional[int] = None) -> str:
        evs = self.events if last is None else self.events[-last:]
        body = "\n".join(str(e) for e in evs)
        if self.dropped_events:
            body += f"\n... ({self.dropped_events} events beyond limit)"
        return body

    def __len__(self) -> int:
        return len(self.events)
