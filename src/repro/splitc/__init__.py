"""Split-C runtime over Active Messages (§3).

Split-C extends C with a global address space over distributed memory:
global pointers, split-phase assignments (``:=`` get/put), signaling
stores (``:-``), and bulk transfers.  The compiler front end is out of
scope; this package is the *runtime library* the generated code calls —
which is what the paper's benchmarks exercise — exposed as Python
generators for our simulated nodes.

The runtime is written against the Active-Messages API, so the same
benchmark code runs over SP AM, over the generic AM of the Table-4 peer
machines, and — via :class:`repro.mpl.am_shim.MPLAM` — over IBM MPL,
exactly the comparison of Table 5 / Figure 4.
"""

from repro.splitc.bulk import (
    bulk_read,
    bulk_write,
    exchange,
    read_double,
    write_double,
)
from repro.splitc.collective import all_gather_words, all_reduce_to_all, scan
from repro.splitc.gptr import GlobalPtr
from repro.splitc.profile import PhaseProfile
from repro.splitc.runtime import SplitC, attach_splitc

__all__ = [
    "GlobalPtr",
    "SplitC",
    "attach_splitc",
    "PhaseProfile",
    "bulk_read",
    "bulk_write",
    "read_double",
    "write_double",
    "exchange",
    "all_reduce_to_all",
    "all_gather_words",
    "scan",
]
