"""Blocking bulk operations and exchanges (Split-C library surface).

The split-phase primitives in :mod:`repro.splitc.runtime` are the
compiler's building blocks; the Split-C library also offers blocking
convenience forms (``bulk_read``/``bulk_write``) and the pairwise
``exchange`` the tech report benchmarks.  All are generators operating on
a :class:`~repro.splitc.runtime.SplitC` runtime.
"""

from __future__ import annotations

import struct

from repro.splitc.gptr import GlobalPtr

WORD = 8


def bulk_read(rt, local_addr: int, gp: GlobalPtr, nbytes: int):
    """Blocking bulk read: returns when the data is locally available."""
    yield from rt.get_bulk(local_addr, gp, nbytes)
    yield from rt.sync()


def bulk_write(rt, gp: GlobalPtr, local_addr: int, nbytes: int):
    """Blocking bulk write: returns when remotely complete (acked)."""
    yield from rt.put_bulk(gp, local_addr, nbytes)
    yield from rt.sync()


def read_double(rt, gp: GlobalPtr):
    """Blocking remote read of one IEEE double."""
    word = yield from rt.read_word(gp)
    return struct.unpack("<d", struct.pack("<q", word))[0]


def write_double(rt, gp: GlobalPtr, value: float):
    """Blocking remote write of one IEEE double."""
    word = struct.unpack("<q", struct.pack("<d", value))[0]
    yield from rt.write_word(gp, word)


def exchange(rt, peer: int, send_addr: int, recv_gp_at_peer: GlobalPtr,
             nbytes: int, expected_bytes: int):
    """Pairwise exchange: store ``nbytes`` to the peer while the peer
    stores to us; returns when both directions have completed.

    ``recv_gp_at_peer`` addresses OUR outgoing data's destination in the
    peer's memory; ``expected_bytes`` is the running store_sync target for
    what the peer sends us (caller accumulates across exchanges).
    """
    yield from rt.store_bulk(recv_gp_at_peer, send_addr, nbytes)
    yield from rt.store_sync(expected_bytes)
