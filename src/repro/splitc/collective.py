"""Split-C library collectives beyond the runtime's built-ins.

``all_reduce_to_all`` with min/max/sum, an exclusive prefix ``scan``, and
``all_gather_words`` — the small set the sort benchmarks and user code
lean on.  All are generators over a :class:`~repro.splitc.runtime.SplitC`
runtime and are built from the runtime's requests/collectives, so they
run over any AM implementation (SP AM, generic, or MPL-shimmed).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

OPS: Dict[str, Callable[[int, int], int]] = {
    "sum": lambda a, b: a + b,
    "min": min,
    "max": max,
}


def all_reduce_to_all(rt, value: int, op: str = "sum"):
    """Reduce an integer across all processors; everyone gets the result."""
    fn = OPS[op]
    values = yield from all_gather_words(rt, value)
    out = values[0]
    for v in values[1:]:
        out = fn(out, v)
    return out


def scan(rt, value: int, op: str = "sum"):
    """Exclusive prefix: rank r receives op(values of ranks 0..r-1);
    rank 0 receives the identity (0 for sum, the own value for min/max
    conventions are avoided by returning None at rank 0 for non-sum)."""
    values = yield from all_gather_words(rt, value)
    if op == "sum":
        return sum(values[: rt.rank])
    if rt.rank == 0:
        return None
    fn = OPS[op]
    out = values[0]
    for v in values[1: rt.rank]:
        out = fn(out, v)
    return out


def all_gather_words(rt, value: int) -> List[int]:
    """Every rank contributes one word; everyone gets the full vector.

    Gather via one-way word stores into rank 0's vector, then rank 0
    broadcasts each slot — linear, like the runtime's allreduce, which is
    faithful to the simple Split-C library collectives of the era.
    """
    from repro.splitc.gptr import GlobalPtr
    from repro.splitc.runtime import WORD

    key = "allgather_region"
    shared = rt._collective_scratch
    if key not in shared:
        # rank 0 allocates the staging vector lazily, announces via bcast
        if rt.rank == 0:
            addr = rt.node.memory.alloc(rt.nprocs * WORD)
        else:
            addr = None
        addr = yield from rt.broadcast_int(addr, root=0)
        shared[key] = addr
    base = shared[key]
    yield from rt.store_word(GlobalPtr(0, base + rt.rank * WORD), value)
    yield from rt.all_store_sync()
    out: List[Optional[int]] = [None] * rt.nprocs
    if rt.rank == 0:
        import struct

        raw = rt.node.memory.read(base, rt.nprocs * WORD)
        vec = list(struct.unpack(f"<{rt.nprocs}q", raw))
    else:
        vec = None
    # broadcast the vector one word at a time (requests carry words)
    result = []
    for i in range(rt.nprocs):
        v = yield from rt.broadcast_int(vec[i] if rt.rank == 0 else None,
                                        root=0)
        result.append(v)
    yield from rt.barrier()
    return result
