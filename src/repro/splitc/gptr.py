"""Global pointers: (processor, address) pairs with pointer arithmetic."""

from __future__ import annotations

from typing import NamedTuple


class GlobalPtr(NamedTuple):
    """A Split-C global pointer.

    Arithmetic moves the address on the same processor (Split-C's global
    pointer arithmetic; *spread* pointers that stripe across processors
    are built by the apps from plain index math).
    """

    proc: int
    addr: int

    def __add__(self, nbytes: int) -> "GlobalPtr":  # type: ignore[override]
        return GlobalPtr(self.proc, self.addr + nbytes)

    def __sub__(self, nbytes: int) -> "GlobalPtr":
        return GlobalPtr(self.proc, self.addr - nbytes)

    def is_local(self, my_rank: int) -> bool:
        return self.proc == my_rank

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GP({self.proc}:{self.addr:#x})"
