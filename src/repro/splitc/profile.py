"""Phase profiling: the cpu-vs-net split of Figure 4.

"All the benchmarks have been instrumented to account for the time spent
in local computation phases and in communication phases separately" (§3).
Benchmarks bracket their computation with :meth:`PhaseProfile.compute`
(or ``compute_span``); everything else in the measured region counts as
communication time — which includes message overhead, exactly as in the
paper (that is why SP MPL's *net* bars in Figure 4 balloon for the
small-message sorts even though the machine is identical).
"""

from __future__ import annotations

from typing import Optional


class PhaseProfile:
    """Per-node accounting of compute vs communication phases."""

    def __init__(self, node):
        self.node = node
        self.cpu_us = 0.0
        self._start: Optional[float] = None
        self._span_t0: Optional[float] = None

    # -- measured region -----------------------------------------------------

    def start(self) -> None:
        self._start = self.node.sim.now

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("profile not started")
        elapsed = self.node.sim.now - self._start
        self._start = None
        self.total_us = elapsed
        return elapsed

    # -- compute phases ---------------------------------------------------

    def compute(self, us: float):
        """Charge a computation phase of ``us`` microseconds."""
        self.cpu_us += us
        t0 = self.node.sim.now
        yield from self.node.compute(us)
        self._record_phase(t0, self.node.sim.now)

    def flops(self, n: float):
        yield from self.compute(n * self.node.host.flop_us)

    def intops(self, n: float):
        yield from self.compute(n * self.node.host.intop_us)

    def flops_polled(self, n: float, am, quantum_us: float = 1000.0):
        """A long compute phase with explicit am_poll checks sprinkled in
        ("explicit checks can be added using am_poll", §1.1) so this node
        keeps serving remote gets while it crunches.  Poll time counts as
        communication, compute time as cpu."""
        remaining = n * self.node.host.flop_us
        while remaining > 0:
            step = min(quantum_us, remaining)
            yield from self.compute(step)
            remaining -= step
            if remaining > 0:
                yield from am.poll()

    def begin_compute(self) -> None:
        """Bracket a compute phase that advances time by other means
        (e.g. real numpy work charged via node.compute elsewhere)."""
        self._span_t0 = self.node.sim.now

    def end_compute(self) -> None:
        if self._span_t0 is None:
            raise RuntimeError("begin_compute not called")
        t1 = self.node.sim.now
        self.cpu_us += t1 - self._span_t0
        self._record_phase(self._span_t0, t1)
        self._span_t0 = None

    def _record_phase(self, t0: float, t1: float) -> None:
        obs = getattr(self.node, "obs", None)
        if obs is not None and t1 > t0:
            obs.phase(self.node.id, "phase", "compute", t0, t1)
            obs.hist("splitc.compute_us").observe(t1 - t0)

    # -- results --------------------------------------------------------------

    @property
    def net_us(self) -> float:
        if not hasattr(self, "total_us"):
            raise RuntimeError("profile not stopped")
        return max(0.0, self.total_us - self.cpu_us)

    def split(self):
        """(cpu_us, net_us, total_us)."""
        return self.cpu_us, self.net_us, self.total_us
