"""The Split-C runtime: split-phase memory operations over Active Messages.

Each node holds a :class:`SplitC` instance (``node.splitc``).  Operations
mirror the Split-C runtime calls the compiler emits:

* ``read_word`` / ``write_word`` — blocking remote word access,
* ``get_bulk`` / ``put_bulk``    — split-phase (``:=``), completed by ``sync()``,
* ``store_bulk`` / ``store_word`` — one-way signaling stores (``:-``),
  completed globally by ``all_store_sync()`` or locally by ``store_sync``,
* ``barrier`` — dissemination barrier,
* ``allreduce_int`` / ``broadcast_int`` — the small collectives the
  benchmarks need.

All operations work over any object implementing the AM API (SP AM,
generic AM, or the MPL shim), so Table 5's five machine columns run the
same application code.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.splitc.gptr import GlobalPtr
from repro.splitc.profile import PhaseProfile

WORD = 8  # Split-C word for our purposes: 64-bit


# ---------------------------------------------------------------------------
# module-level handlers (registered identically on every node)
# ---------------------------------------------------------------------------

def _rt(token) -> "SplitC":
    return token.am.node.splitc


def _h_read(token, addr, op_token):
    rt = _rt(token)
    value = struct.unpack("<q", rt.node.memory.read(addr, WORD))[0]
    yield from token.reply_2(_h_read_reply, value, op_token)


def _h_read_reply(token, value, op_token):
    _rt(token)._read_replies[op_token] = value


def _h_write(token, addr, value, op_token):
    rt = _rt(token)
    rt.node.memory.write(addr, struct.pack("<q", value))
    yield from token.reply_1(_h_write_ack, op_token)


def _h_write_ack(token, op_token):
    _rt(token)._pending_acks.discard(op_token)


def _h_store_word(token, addr, value):
    rt = _rt(token)
    rt.node.memory.write(addr, struct.pack("<q", value))
    rt.stores_recv_bytes += WORD


def _h_store_complete(token, addr, nbytes, arg):
    _rt(token).stores_recv_bytes += nbytes


def _h_barrier(token, round_no, epoch):
    _rt(token)._barrier_hits.setdefault((epoch, round_no), 0)
    _rt(token)._barrier_hits[(epoch, round_no)] += 1


def _h_reduce_value(token, value, epoch, src):
    rt = _rt(token)
    rt._reduce_values.setdefault(epoch, []).append(value)


def _h_bcast_value(token, value, epoch):
    _rt(token)._bcast_values[epoch] = value


class SplitC:
    """Split-C runtime on one node."""

    def __init__(self, node, nprocs: int):
        if node.am is None:
            raise ValueError("attach an AM layer before the Split-C runtime")
        self.node = node
        self.am = node.am
        self.rank = node.id
        self.nprocs = nprocs
        self.profile = PhaseProfile(node)
        self._next_op = 1
        self._read_replies = {}
        self._pending_acks = set()
        #: outstanding split-phase bulk ops (BulkSendOp handles / events)
        self._pending_ops: List = []
        self.stores_sent_bytes = 0
        self.stores_recv_bytes = 0
        self._barrier_hits = {}
        self._barrier_epoch = 0
        self._reduce_values = {}
        self._bcast_values = {}
        self._collective_epoch = 0
        #: scratch shared by the library collectives (splitc.collective)
        self._collective_scratch = {}
        # ensure identical handler ids everywhere
        for h in (_h_read, _h_read_reply, _h_write, _h_write_ack,
                  _h_store_word, _h_store_complete, _h_barrier,
                  _h_reduce_value, _h_bcast_value):
            self.am.register(h)
        node.splitc = self

    # -- word access -------------------------------------------------------

    def read_word(self, gp: GlobalPtr):
        """Blocking remote read of one 64-bit word."""
        if gp.proc == self.rank:
            return struct.unpack("<q", self.node.memory.read(gp.addr, WORD))[0]
        tok = self._take_op()
        yield from self.am.request_2(gp.proc, _h_read, gp.addr, tok)
        while tok not in self._read_replies:
            yield from self.am._wait_progress()
        return self._read_replies.pop(tok)

    def write_word(self, gp: GlobalPtr, value: int):
        """Blocking remote write of one word (acknowledged)."""
        if gp.proc == self.rank:
            self.node.memory.write(gp.addr, struct.pack("<q", value))
            return
        tok = self._take_op()
        self._pending_acks.add(tok)
        yield from self.am.request_3(gp.proc, _h_write, gp.addr, value, tok)
        while tok in self._pending_acks:
            yield from self.am._wait_progress()

    # -- split-phase bulk ----------------------------------------------------

    def get_bulk(self, local_addr: int, gp: GlobalPtr, nbytes: int):
        """Split-phase bulk get (``local := *gp``); complete with sync()."""
        if gp.proc == self.rank:
            data = self.node.memory.read(gp.addr, nbytes)
            self.node.memory.write(local_addr, data)
            return
        ev = yield from self.am.get_async(gp.proc, gp.addr, local_addr, nbytes)
        self._pending_ops.append(ev)

    def put_bulk(self, gp: GlobalPtr, local_addr: int, nbytes: int):
        """Split-phase bulk put (``*gp := local``); complete with sync()."""
        if gp.proc == self.rank:
            data = self.node.memory.read(local_addr, nbytes)
            self.node.memory.write(gp.addr, data)
            return
        op = yield from self.am.store_async(gp.proc, local_addr, gp.addr, nbytes)
        self._pending_ops.append(op.done)

    def sync(self):
        """Wait for every outstanding split-phase operation."""
        while self._pending_ops:
            ev = self._pending_ops[-1]
            while not ev.triggered:
                yield from self.am._wait_progress()
            self._pending_ops.pop()

    # -- signaling stores -----------------------------------------------------

    def store_bulk(self, gp: GlobalPtr, local_addr: int, nbytes: int):
        """One-way bulk store (``*gp :- local``)."""
        if gp.proc == self.rank:
            data = self.node.memory.read(local_addr, nbytes)
            self.node.memory.write(gp.addr, data)
            self.stores_recv_bytes += nbytes
            self.stores_sent_bytes += nbytes
            return
        op = yield from self.am.store_async(
            gp.proc, local_addr, gp.addr, nbytes, handler=_h_store_complete)
        self._pending_ops.append(op.done)
        self.stores_sent_bytes += nbytes

    def store_word(self, gp: GlobalPtr, value: int):
        """One-way single-word store — the fine-grain op of the
        small-message sort variants."""
        if gp.proc == self.rank:
            self.node.memory.write(gp.addr, struct.pack("<q", value))
            self.stores_recv_bytes += WORD
            self.stores_sent_bytes += WORD
            return
        yield from self.am.request_2(gp.proc, _h_store_word, gp.addr, value)
        self.stores_sent_bytes += WORD

    def store_sync(self, expected_bytes: int):
        """Wait until this node has received ``expected_bytes`` of stores
        (and its own outgoing stores are complete)."""
        yield from self.sync()
        while self.stores_recv_bytes < expected_bytes:
            yield from self.am._wait_progress()

    def all_store_sync(self):
        """Global store completion: every store issued anywhere has landed.

        Outgoing stores complete locally first (acked), so a barrier then
        suffices for bulk stores; one-way word stores may still be in
        flight at the barrier, so we verify with a global sent/received
        reduction and retry (in the common case a single round).
        """
        yield from self.sync()
        while True:
            yield from self.barrier()
            sent = yield from self.allreduce_int(self.stores_sent_bytes)
            recv = yield from self.allreduce_int(self.stores_recv_bytes)
            if sent == recv:
                return
            yield from self.am.poll()

    # -- collectives --------------------------------------------------------

    def barrier(self):
        """Dissemination barrier: ceil(log2 P) rounds of requests."""
        if self.nprocs == 1:
            return
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        rounds = (self.nprocs - 1).bit_length()
        for k in range(rounds):
            peer = (self.rank + (1 << k)) % self.nprocs
            yield from self.am.request_2(peer, _h_barrier, k, epoch)
            while self._barrier_hits.get((epoch, k), 0) < 1:
                yield from self.am._wait_progress()
        # epoch bookkeeping: drop counters for this epoch
        for k in range(rounds):
            self._barrier_hits.pop((epoch, k), None)

    def allreduce_int(self, value: int):
        """Sum an integer across all processors (gather to 0, broadcast)."""
        if self.nprocs == 1:
            return value
        epoch = self._collective_epoch
        self._collective_epoch += 1
        if self.rank == 0:
            vals = self._reduce_values.setdefault(epoch, [])
            while len(vals) < self.nprocs - 1:
                yield from self.am._wait_progress()
            total = value + sum(vals)
            del self._reduce_values[epoch]
            for peer in range(1, self.nprocs):
                yield from self.am.request_2(peer, _h_bcast_value, total, epoch)
            return total
        yield from self.am.request_3(0, _h_reduce_value, value, epoch, self.rank)
        while epoch not in self._bcast_values:
            yield from self.am._wait_progress()
        return self._bcast_values.pop(epoch)

    def broadcast_int(self, value: Optional[int], root: int = 0):
        """Broadcast a word from ``root`` (linear fan-out)."""
        if self.nprocs == 1:
            return value
        epoch = self._collective_epoch
        self._collective_epoch += 1
        if self.rank == root:
            for peer in range(self.nprocs):
                if peer != root:
                    yield from self.am.request_2(peer, _h_bcast_value,
                                                 value, epoch)
            return value
        while epoch not in self._bcast_values:
            yield from self.am._wait_progress()
        return self._bcast_values.pop(epoch)

    # -- misc ---------------------------------------------------------------

    def _take_op(self) -> int:
        t = self._next_op
        self._next_op += 1
        return t


def attach_splitc(machine) -> List[SplitC]:
    """Install the Split-C runtime on every node (AM must be attached)."""
    return [SplitC(node, machine.nprocs) for node in machine.nodes]
