"""Shared fixtures and helpers for AM tests."""

import pytest

from repro.am import attach_generic_am, attach_spam
from repro.hardware import build_generic_machine, build_sp_machine
from repro.hardware.params import machine_params
from repro.sim import Simulator


@pytest.fixture
def sp2():
    """A 2-node SP with AM attached: (machine, am0, am1)."""
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    am0, am1 = attach_spam(m)
    return m, am0, am1


@pytest.fixture
def sp4():
    sim = Simulator()
    m = build_sp_machine(sim, 4)
    ams = attach_spam(m)
    return m, ams


def run_pair(machine, prog0, prog1, wait_both=False, limit=1e9):
    """Spawn two node programs; run until prog0 (or both) finish."""
    sim = machine.sim
    p0 = sim.spawn(prog0, name="n0")
    p1 = sim.spawn(prog1, name="n1")
    targets = [p0, p1] if wait_both else [p0]
    sim.run_until_processes_done(targets, limit=limit)
    return p0, p1


def serve(am, flag):
    """Background receiver loop until flag[0] set."""
    while not flag[0]:
        yield from am._wait_progress()
