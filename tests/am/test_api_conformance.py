"""Table 1 conformance: every AM implementation exposes the same surface.

The paper's premise — AM as a *portable* substrate — requires the SP
implementation, the Table-4 peer machines' implementation, and the
AM-over-MPL shim to be drop-in interchangeable.  The Split-C runtime and
the Table-5 comparison rely on it; this suite pins it.
"""

import inspect

import pytest

from repro.am import attach_generic_am, attach_spam
from repro.hardware import build_generic_machine, build_sp_machine
from repro.hardware.params import machine_params
from repro.mpl import attach_mpl_am
from repro.sim import Simulator

#: the Table-1 operations plus the attachment points portable code uses
SURFACE = [
    "request_1", "request_2", "request_3", "request_4",
    "store", "store_async", "get", "get_async",
    "poll", "wait_op", "register",
]
TOKEN_SURFACE = ["reply_1", "reply_2", "reply_3", "reply_4"]


def all_stacks():
    out = {}
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    out["spam"] = (m, attach_spam(m))
    sim = Simulator()
    m = build_generic_machine(sim, 2, machine_params("cm5"))
    out["generic"] = (m, attach_generic_am(m))
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    out["mpl-shim"] = (m, attach_mpl_am(m))
    return out


class TestSurface:
    @pytest.mark.parametrize("stack", ["spam", "generic", "mpl-shim"])
    def test_operations_present_and_generator_shaped(self, stack):
        m, ams = all_stacks()[stack]
        am = ams[0]
        for name in SURFACE:
            assert hasattr(am, name), f"{stack} lacks {name}"
            assert callable(getattr(am, name))
        # the calls are generator functions (or return generators)
        gen = am.request_1(1, lambda t, x: None, 0)
        assert inspect.isgenerator(gen)
        gen.close()

    @pytest.mark.parametrize("stack", ["spam", "generic", "mpl-shim"])
    def test_node_attachment(self, stack):
        m, ams = all_stacks()[stack]
        for node, am in zip(m.nodes, ams):
            assert node.am is am
            assert am.node is node

    def test_identical_program_runs_on_all_three(self):
        """One program text, three stacks: the portability claim."""

        def experiment(machine, ams):
            sim = machine.sim
            am0, am1 = ams
            n = 3000
            data = bytes(i % 256 for i in range(n))
            src = machine.node(0).memory.alloc(n)
            dst = machine.node(1).memory.alloc(n)
            machine.node(0).memory.write(src, data)
            pings = []

            def on_reply(token, x):
                pings.append(x)

            def on_request(token, x):
                yield from token.reply_1(on_reply, x + 1)

            flag = [0]

            def node0():
                yield from am0.request_1(1, on_request, 41)
                while not pings:
                    yield from am0._wait_progress()
                yield from am0.store(1, src, dst, n)
                back = machine.node(0).memory.alloc(n)
                yield from am0.get(1, dst, back, n)
                assert machine.node(0).memory.read(back, n) == data
                flag[0] = 1

            def node1():
                while not flag[0]:
                    yield from am1._wait_progress()

            p = sim.spawn(node0())
            sim.spawn(node1())
            # wait on the driver only: the server parks on its arrival
            # event once traffic stops (the usual server idiom here)
            sim.run_until_processes_done([p], limit=1e9)
            assert pings == [42]
            assert machine.node(1).memory.read(dst, n) == data
            return sim.now

        times = {}
        for stack, (m, ams) in all_stacks().items():
            times[stack] = experiment(m, ams)
        # same program, very different costs — the paper's whole point
        assert times["mpl-shim"] > times["spam"]

    @pytest.mark.parametrize("stack", ["spam", "generic", "mpl-shim"])
    def test_reply_tokens_conform(self, stack):
        m, ams = all_stacks()[stack]
        am0, am1 = ams
        shapes = []

        def on_reply(token, a, b, c, d):
            shapes.append((a, b, c, d))

        def on_request(token, x):
            for name in TOKEN_SURFACE:
                assert hasattr(token, name)
            yield from token.reply_4(on_reply, 1, 2, 3, x)

        flag = [0]

        def node0():
            yield from am0.request_1(1, on_request, 4)
            while not shapes:
                yield from am0._wait_progress()
            flag[0] = 1

        def node1():
            while not flag[0]:
                yield from am1._wait_progress()

        p = m.sim.spawn(node0())
        m.sim.spawn(node1())
        m.sim.run_until_processes_done([p], limit=1e8)
        assert shapes == [(1, 2, 3, 4)]
