"""Bulk transfers: stores, async stores, gets — data integrity + protocol."""

import pytest

from repro.am.constants import CHUNK_BYTES, CHUNK_PACKETS
from tests.am.conftest import run_pair, serve


def _payload(n, seed=0):
    return bytes((i * 37 + seed) % 256 for i in range(n))


class TestStore:
    @pytest.mark.parametrize("nbytes", [1, 17, 224, 225, 1000, 8064, 8065, 30000])
    def test_store_moves_exact_bytes(self, sp2, nbytes):
        m, am0, am1 = sp2
        data = _payload(nbytes)
        src = m.node(0).memory.alloc(nbytes)
        dst = m.node(1).memory.alloc(nbytes)
        m.node(0).memory.write(src, data)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, nbytes)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert m.node(1).memory.read(dst, nbytes) == data

    def test_zero_byte_store_completes_immediately(self, sp2):
        m, am0, am1 = sp2
        src = m.node(0).memory.alloc(16)
        dst = m.node(1).memory.alloc(16)

        def sender():
            op = yield from am0.store(1, src, dst, 0)
            return op

        p = m.sim.spawn(sender())
        m.sim.run()
        assert p.result.complete

    def test_store_completion_handler_runs_on_receiver(self, sp2):
        m, am0, am1 = sp2
        completions = []

        def on_complete(token, addr, nbytes, arg):
            completions.append((token.src, addr, nbytes, arg))

        n = 5000
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n, handler=on_complete, arg=99)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert completions == [(0, dst, n, 99)]

    def test_chunk_accounting(self, sp2):
        m, am0, am1 = sp2
        n = 3 * CHUNK_BYTES + 100  # 4 chunks
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert am0.stats.get("chunks_sent") == 4
        assert am1.stats.get("chunk_acks_sent") == 4
        assert am0.stats.get("bulk_packets_sent") == 3 * CHUNK_PACKETS + 1

    def test_negative_store_rejected(self, sp2):
        m, am0, am1 = sp2

        def sender():
            yield from am0.store(1, 0, 0, -1)

        m.sim.spawn(sender())
        with pytest.raises(ValueError):
            m.sim.run()


class TestAsyncStore:
    def test_async_returns_before_completion(self, sp2):
        m, am0, am1 = sp2
        n = 4 * CHUNK_BYTES
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        snapshot = {}
        flag = [0]

        def sender():
            op = yield from am0.store_async(1, src, dst, n)
            snapshot["done_at_return"] = op.done.triggered
            snapshot["chunks_at_return"] = op.next_chunk
            yield from am0.wait_op(op)
            flag[0] = 1
            return op

        p, _ = run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert snapshot["done_at_return"] is False
        # only the initial pipeline depth went out synchronously (Fig. 2)
        assert snapshot["chunks_at_return"] == 2
        assert p.result.complete

    def test_completion_fn_called_once(self, sp2):
        m, am0, am1 = sp2
        n = 2 * CHUNK_BYTES
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        calls = []
        flag = [0]

        def sender():
            op = yield from am0.store_async(
                1, src, dst, n, completion_fn=lambda op: calls.append(op))
            yield from am0.wait_op(op)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert len(calls) == 1
        assert calls[0].complete

    def test_many_small_asyncs_all_land(self, sp2):
        m, am0, am1 = sp2
        k, n = 60, 300
        srcs, dsts, datas = [], [], []
        for i in range(k):
            d = _payload(n, seed=i)
            s = m.node(0).memory.alloc(n)
            t = m.node(1).memory.alloc(n)
            m.node(0).memory.write(s, d)
            srcs.append(s), dsts.append(t), datas.append(d)
        flag = [0]

        def sender():
            ops = []
            for i in range(k):
                op = yield from am0.store_async(1, srcs[i], dsts[i], n)
                ops.append(op)
            for op in ops:
                yield from am0.wait_op(op)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        for i in range(k):
            assert m.node(1).memory.read(dsts[i], n) == datas[i]


class TestGet:
    @pytest.mark.parametrize("nbytes", [1, 224, 5000, 8064, 20000])
    def test_get_fetches_exact_bytes(self, sp2, nbytes):
        m, am0, am1 = sp2
        data = _payload(nbytes, seed=3)
        remote = m.node(1).memory.alloc(nbytes)
        local = m.node(0).memory.alloc(nbytes)
        m.node(1).memory.write(remote, data)
        flag = [0]

        def getter():
            yield from am0.get(1, remote, local, nbytes)
            flag[0] = 1

        run_pair(m, getter(), serve(am1, flag), limit=1e8)
        assert m.node(0).memory.read(local, nbytes) == data

    def test_get_handler_runs_locally(self, sp2):
        m, am0, am1 = sp2
        done = []

        def on_got(token, addr, nbytes, arg):
            done.append((addr, nbytes, arg))

        n = 1000
        remote = m.node(1).memory.alloc(n)
        local = m.node(0).memory.alloc(n)
        flag = [0]

        def getter():
            yield from am0.get(1, remote, local, n, handler=on_got, arg=7)
            flag[0] = 1

        run_pair(m, getter(), serve(am1, flag), limit=1e8)
        assert done == [(local, n, 7)]

    def test_get_of_zero_bytes_rejected(self, sp2):
        m, am0, am1 = sp2

        def getter():
            yield from am0.get(1, 0, 0, 0)

        m.sim.spawn(getter())
        with pytest.raises(ValueError):
            m.sim.run()

    def test_interleaved_stores_and_gets(self, sp2):
        m, am0, am1 = sp2
        n = 6000
        d_out = _payload(n, 1)
        d_back = _payload(n, 2)
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        remote = m.node(1).memory.alloc(n)
        local = m.node(0).memory.alloc(n)
        m.node(0).memory.write(src, d_out)
        m.node(1).memory.write(remote, d_back)
        flag = [0]

        def sender():
            op = yield from am0.store_async(1, src, dst, n)
            yield from am0.get(1, remote, local, n)
            yield from am0.wait_op(op)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert m.node(1).memory.read(dst, n) == d_out
        assert m.node(0).memory.read(local, n) == d_back


class TestMultiNode:
    def test_all_pairs_stores(self, sp4):
        m, ams = sp4
        n = 2000
        nproc = 4
        bufs = {}
        for i in range(nproc):
            for j in range(nproc):
                if i != j:
                    bufs[(i, j)] = (
                        m.node(i).memory.alloc(n),
                        m.node(j).memory.alloc(n),
                        _payload(n, seed=i * 16 + j),
                    )
        for (i, j), (s, d, data) in bufs.items():
            m.node(i).memory.write(s, data)
        done = [0]

        def prog(rank):
            def run():
                ops = []
                for j in range(nproc):
                    if j == rank:
                        continue
                    s, d, _ = bufs[(rank, j)]
                    op = yield from ams[rank].store_async(j, s, d, n)
                    ops.append(op)
                for op in ops:
                    yield from ams[rank].wait_op(op)
                done[0] += 1
                while done[0] < nproc:
                    yield from ams[rank]._wait_progress()
            return run()

        sim = m.sim
        procs = [sim.spawn(prog(r), name=f"r{r}") for r in range(nproc)]
        sim.run_until_processes_done(procs, limit=1e8)
        for (i, j), (s, d, data) in bufs.items():
            assert m.node(j).memory.read(d, n) == data, (i, j)
