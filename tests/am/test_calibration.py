"""Calibration tests: pin the simulated primitives to the paper's numbers.

These are the contract between the hardware/software cost models and the
benchmark suite.  If a refactor moves any of these, Tables 2/3 and the
figures drift with it — fail loudly here instead.

Tolerances are a few percent: the simulation is deterministic, but poll
granularity introduces sub-microsecond phase effects.
"""

import pytest

from repro.am import attach_spam
from repro.am.constants import AMCosts
from repro.bench.bandwidth import measure_bandwidth
from repro.bench.pingpong import am_roundtrip, mpl_roundtrip, raw_roundtrip
from repro.hardware import build_sp_machine
from repro.sim import Simulator

pytestmark = pytest.mark.calibration


class TestRoundTrips:
    def test_raw_roundtrip_47us(self):
        assert raw_roundtrip(iterations=50) == pytest.approx(47.0, abs=1.0)

    def test_am_roundtrip_51us(self):
        assert am_roundtrip(1, iterations=50) == pytest.approx(51.0, abs=1.0)

    def test_am_roundtrip_grows_half_us_per_word(self):
        rtts = [am_roundtrip(w, iterations=30) for w in (1, 2, 3, 4)]
        for a, b in zip(rtts, rtts[1:]):
            assert 0.2 <= b - a <= 1.0  # "about 0.5 us per word"

    def test_mpl_roundtrip_88us(self):
        assert mpl_roundtrip(iterations=50) == pytest.approx(88.0, abs=1.5)

    def test_am_vs_mpl_40_percent_reduction(self):
        # the paper's headline: "40% lower than the 88 us measured using MPL"
        am = am_roundtrip(1, iterations=50)
        mpl = mpl_roundtrip(iterations=50)
        assert (mpl - am) / mpl == pytest.approx(0.42, abs=0.04)


class TestCallOverheads:
    """Table 2: am_request_N 7.7..8.2 us; am_reply_N 4.0..4.4 us."""

    @pytest.mark.parametrize("words", [1, 2, 3, 4])
    def test_am_request_call_cost(self, words):
        from repro.bench.callcosts import PAPER_REQUEST, request_call_cost

        cost = request_call_cost(words)
        assert cost == pytest.approx(PAPER_REQUEST[words], abs=0.25)

    @pytest.mark.parametrize("words", [1, 2, 3, 4])
    def test_am_reply_call_cost(self, words):
        from repro.bench.callcosts import PAPER_REPLY, reply_call_cost

        cost = reply_call_cost(words)
        assert cost == pytest.approx(PAPER_REPLY[words], abs=0.25)

    def test_empty_poll_cost(self):
        """§2.5: polling an empty network costs 1.3 us."""
        from repro.bench.callcosts import empty_poll_cost

        assert empty_poll_cost() == pytest.approx(1.3, abs=0.01)


class TestBandwidthSummary:
    """Table 3 bandwidth lines (coarse pins; the full sweep lives in the
    benchmark suite)."""

    def test_am_async_asymptote_near_34_3(self):
        bw = measure_bandwidth("am_store_async", 262144, total=1_048_576)
        assert bw == pytest.approx(34.3, abs=1.2)

    def test_mpl_asymptote_near_34_6(self):
        bw = measure_bandwidth("mpl_send", 262144, total=1_048_576)
        assert bw == pytest.approx(34.6, abs=1.3)

    def test_mpl_slightly_above_am(self):
        am = measure_bandwidth("am_store_async", 524288, total=2_097_152)
        mpl = measure_bandwidth("mpl_send", 524288, total=2_097_152)
        assert mpl > am

    def test_am_async_half_power_near_260(self):
        # "a message half-power point of only ~260 bytes"
        lo = measure_bandwidth("am_store_async", 128)
        hi = measure_bandwidth("am_store_async", 512)
        assert lo < 34.3 / 2 < hi

    def test_mpl_half_power_near_2kb(self):
        lo = measure_bandwidth("mpl_send", 1024)
        hi = measure_bandwidth("mpl_send", 4096)
        assert lo < 34.6 / 2 < hi

    def test_am_blocking_below_async_at_small_sizes(self):
        sync = measure_bandwidth("am_store", 1024, total=100_000)
        async_ = measure_bandwidth("am_store_async", 1024, total=100_000)
        assert sync < async_

    def test_get_below_store_at_small_sizes(self):
        # "the performance for gets is slightly lower than for stores
        # because of the overhead of the get request"
        g = measure_bandwidth("am_get", 1024, total=80_000)
        s = measure_bandwidth("am_store", 1024, total=80_000)
        assert g < s

    def test_blocking_converges_to_async_at_large_sizes(self):
        # "virtually no distinction between blocking and non-blocking
        # stores for very large transfer sizes"
        sync = measure_bandwidth("am_store", 524288, total=1_048_576)
        async_ = measure_bandwidth("am_store_async", 524288, total=1_048_576)
        assert sync == pytest.approx(async_, rel=0.03)
