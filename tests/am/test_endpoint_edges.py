"""SPAM endpoint edge cases: deferred replies, backpressure, peer isolation."""

import pytest

from repro.am import attach_spam
from repro.am.constants import REPLY_WINDOW, REQUEST_WINDOW
from repro.hardware import build_sp_machine
from repro.hardware.params import machine_params, with_overrides
from repro.sim import Delay, Simulator
from tests.am.conftest import run_pair, serve


class TestDeferredReplies:
    def test_replies_deferred_when_window_full_then_drained(self):
        """A handler whose reply window is exhausted must defer, not block
        (handlers are atomic); later polls drain the deferred replies."""
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        am0, am1 = attach_spam(m)
        got = []

        def reply_sink(token, x):
            got.append(x)

        def replying(token, x):
            yield from token.reply_1(reply_sink, x)

        n = REPLY_WINDOW + 20  # more replies than reply-window credits
        flag = [0]

        def sender():
            for i in range(n):
                yield from am0.request_1(1, replying, i)
            while len(got) < n:
                yield from am0._wait_progress()
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert got == list(range(n))
        # at least some replies must have taken the deferred path OR the
        # piggybacked acks kept the window open the whole way; either way
        # nothing was lost and order held
        assert am1.stats.get("replies_sent") + \
            am1.stats.get("replies_deferred") >= n


class TestSendFifoBackpressure:
    def test_tiny_send_fifo_still_delivers_bulk(self):
        """With a 8-entry send FIFO the chunk injection must interleave
        with drain instead of overflowing."""
        sim = Simulator()
        p = with_overrides(machine_params("sp-thin"), send_fifo_entries=8)
        m = build_sp_machine(sim, 2, p)
        am0, am1 = attach_spam(m)
        n = 20_000
        data = bytes(i % 256 for i in range(n))
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        m.node(0).memory.write(src, data)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert m.node(1).memory.read(dst, n) == data


class TestPeerIsolation:
    def test_windows_are_per_peer(self):
        """Saturating the window toward one silent peer must not impede
        traffic to a live peer."""
        sim = Simulator()
        m = build_sp_machine(sim, 3)
        ams = attach_spam(m)
        am0 = ams[0]
        got = []

        def handler(token, i):
            got.append(i)

        def sender():
            # fill the window toward silent node 2
            for i in range(REQUEST_WINDOW):
                yield from am0.request_1(2, handler, 1000 + i)
            # node 1 must still be reachable immediately
            for i in range(10):
                yield from am0.request_1(1, handler, i)

        def live_peer():
            while len([g for g in got if g < 1000]) < 10:
                yield from ams[1]._wait_progress()

        def silent_peer():
            yield Delay(1.0)  # never polls

        p0 = sim.spawn(sender())
        p1 = sim.spawn(live_peer())
        sim.spawn(silent_peer())
        sim.run(until=50_000.0, check_deadlock=False)
        assert [g for g in got if g < 1000] == list(range(10))

    def test_sequence_spaces_are_per_peer(self):
        """Identical sequence numbers toward different peers never mix."""
        sim = Simulator()
        m = build_sp_machine(sim, 3)
        ams = attach_spam(m)
        got = {1: [], 2: []}

        def handler(token, i):
            got[token.am.node.id].append(i)

        done = [0]

        def sender():
            for i in range(30):
                yield from ams[0].request_1(1 + i % 2, handler, i)
            done[0] = 1

        def receiver(rank):
            def go():
                while not done[0] or len(got[rank]) < 15:
                    yield from ams[rank]._wait_progress()
            return go()

        procs = [sim.spawn(sender()), sim.spawn(receiver(1)),
                 sim.spawn(receiver(2))]
        sim.run_until_processes_done(procs, limit=1e8)
        assert got[1] == list(range(0, 30, 2))
        assert got[2] == list(range(1, 30, 2))


class TestHandlerGenerators:
    def test_plain_function_handler_supported(self, sp2):
        m, am0, am1 = sp2
        seen = []

        def plain(token, a):     # not a generator
            seen.append(a)

        def sender():
            yield from am0.request_1(1, plain, 9)

        def receiver():
            while not seen:
                yield from am1._wait_progress()

        run_pair(m, sender(), receiver(), wait_both=True)
        assert seen == [9]

    def test_handler_exception_propagates_loudly(self, sp2):
        m, am0, am1 = sp2

        def bad(token, a):
            raise RuntimeError("handler bug")

        def sender():
            yield from am0.request_1(1, bad, 1)

        def receiver():
            while True:
                yield from am1._wait_progress()

        m.sim.spawn(sender())
        m.sim.spawn(receiver())
        with pytest.raises(RuntimeError, match="handler bug"):
            m.sim.run(until=1e6)


class TestWideNodeAM:
    def test_wide_node_roundtrip_close_to_thin(self):
        from repro.bench.pingpong import am_roundtrip

        thin = am_roundtrip(1, 40, "sp-thin")
        wide = am_roundtrip(1, 40, "sp-wide")
        # wide nodes: coarser flush granularity, slightly slower PIO —
        # within a microsecond of thin (Fig 10's story)
        assert abs(wide - thin) < 1.5
