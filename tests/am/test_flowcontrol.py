"""Reliability under loss: NACK go-back-N, keep-alive, FIFO overflow (§2.2).

The switch's fault injector drops chosen packets; the protocol must still
deliver everything exactly once, in order — and the stats must show it
recovered the way the paper describes (NACK-triggered retransmission,
keep-alive probes for tail losses).
"""

import pytest

from repro.am.constants import CHUNK_BYTES
from repro.hardware.packet import PacketKind
from tests.am.conftest import run_pair, serve


def _payload(n, seed=0):
    return bytes((i * 31 + seed) % 256 for i in range(n))


class DropNth:
    """Drop the n-th data packet (one-shot)."""

    def __init__(self, n, kinds=None):
        self.n = n
        self.count = 0
        self.kinds = kinds

    def __call__(self, pkt):
        if self.kinds is not None and pkt.kind not in self.kinds:
            return False
        self.count += 1
        return self.count == self.n


class DropEvery:
    """Drop every k-th matching packet, up to a budget."""

    def __init__(self, k, budget, kinds=None):
        self.k = k
        self.budget = budget
        self.count = 0
        self.dropped = 0
        self.kinds = kinds

    def __call__(self, pkt):
        if self.kinds is not None and pkt.kind not in self.kinds:
            return False
        self.count += 1
        if self.count % self.k == 0 and self.dropped < self.budget:
            self.dropped += 1
            return True
        return False


class TestLossRecovery:
    def test_dropped_request_is_retransmitted(self, sp2):
        m, am0, am1 = sp2
        m.switch.fault_injector = DropNth(3, kinds={PacketKind.REQUEST})
        seen = []

        def handler(token, i):
            seen.append(i)

        n = 30

        def sender():
            for i in range(n):
                yield from am0.request_1(1, handler, i)

        def receiver():
            while len(seen) < n:
                yield from am1._wait_progress()

        run_pair(m, sender(), receiver(), wait_both=True, limit=1e8)
        assert seen == list(range(n))
        assert am0.stats.get("retransmissions") > 0
        assert am1.stats.get("nacks_sent") >= 1

    def test_dropped_store_packet_recovers_with_correct_data(self, sp2):
        m, am0, am1 = sp2
        m.switch.fault_injector = DropNth(20, kinds={PacketKind.STORE_DATA})
        n = 2 * CHUNK_BYTES + 500
        data = _payload(n)
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        m.node(0).memory.write(src, data)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert m.node(1).memory.read(dst, n) == data
        assert am0.stats.get("retransmissions") > 0

    def test_repeated_losses_still_exactly_once(self, sp2):
        m, am0, am1 = sp2
        m.switch.fault_injector = DropEvery(7, budget=15,
                                            kinds={PacketKind.REQUEST})
        seen = []

        def handler(token, i):
            seen.append(i)

        n = 120

        def sender():
            for i in range(n):
                yield from am0.request_1(1, handler, i)

        def receiver():
            while len(seen) < n:
                yield from am1._wait_progress()

        run_pair(m, sender(), receiver(), wait_both=True, limit=1e9)
        assert seen == list(range(n))

    def test_lost_tail_packet_recovered_by_keepalive(self, sp2):
        """If the LAST packet is lost there is no subsequent packet to
        trigger a NACK; only the keep-alive probe can recover it."""
        m, am0, am1 = sp2
        # drop the very first request — and nothing follows it
        m.switch.fault_injector = DropNth(1, kinds={PacketKind.REQUEST})
        seen = []

        def handler(token, i):
            seen.append(i)

        flag = [0]

        def sender():
            yield from am0.request_1(1, handler, 0)
            while am0._peer(1).send[0].has_unacked:
                yield from am0._wait_progress()
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert seen == [0]
        assert am0.stats.get("keepalives_sent") >= 1
        assert am1.stats.get("keepalive_nacks_sent") >= 1

    def test_lost_ack_recovered(self, sp2):
        """Chunk acks may be lost too; sender's keep-alive re-solicits."""
        m, am0, am1 = sp2
        m.switch.fault_injector = DropNth(1, kinds={PacketKind.ACK})
        n = 1000
        data = _payload(n)
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        m.node(0).memory.write(src, data)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert m.node(1).memory.read(dst, n) == data
        assert flag[0] == 1

    def test_nack_storm_suppressed(self, sp2):
        """One gap followed by a full chunk of wrong-sequence packets ->
        a single NACK, not one per out-of-sequence arrival."""
        m, am0, am1 = sp2
        # drop one packet of chunk 0 so every packet of chunk 1 arrives
        # with the wrong (too-high) sequence number
        m.switch.fault_injector = DropNth(5, kinds={PacketKind.STORE_DATA})
        n = 2 * CHUNK_BYTES
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert am1.stats.get("nacks_sent") == 1
        assert am1.stats.get("nacks_suppressed") >= 10

    def test_intra_chunk_loss_recovered_by_stall_nack(self, sp2):
        """A loss inside a chunk produces no wrong-sequence arrival at all
        (every chunk packet carries the base seq), so the normal NACK path
        never fires.  The receiver's stalled-assembly watchdog must NACK
        well before the sender's 400 us keep-alive would."""
        m, am0, am1 = sp2
        m.switch.fault_injector = DropNth(5, kinds={PacketKind.STORE_DATA})
        n = CHUNK_BYTES
        data = _payload(n)
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        m.node(0).memory.write(src, data)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert m.node(1).memory.read(dst, n) == data
        assert am1.stats.get("nacks_sent") == 0          # no gap ever seen
        assert am1.stats.get("stall_nacks_sent") >= 1    # watchdog fired
        assert am0.stats.get("retransmissions") > 0
        # recovery beat the keep-alive: the whole store (clean ~330 us)
        # finished within a couple of stall timeouts
        assert am0.stats.get("keepalives_sent") == 0
        assert m.sim.now < 3 * am1.costs.assembly_stall_timeout + 500

    def test_retransmit_does_not_alias_saved_packets(self, sp2):
        """Regression: retransmission used to push the retransmission
        buffer's own Packet objects back through the send FIFO, re-stamping
        their ack fields in place.  A duplicated NACK then triggered a
        second retransmission of the *same* aliased objects while the first
        copies were still in flight through ``sim.at`` callbacks.  Clones
        must go on the wire; the saved copies must stay pristine."""
        from repro.faults import FaultPlan, FaultRule, install_faults

        m, am0, am1 = sp2
        install_faults(m, FaultPlan(seed=3, rules=(
            # lose a mid-chunk data packet to force go-back-N...
            FaultRule(kind="drop", rate=1.0, after=4, budget=1,
                      packet_kinds=frozenset({PacketKind.STORE_DATA})),
            # ...and duplicate the recovery NACK so the sender retransmits
            # the same saved unit twice, back to back
            FaultRule(kind="duplicate", rate=1.0, budget=2, delay_us=30.0,
                      packet_kinds=frozenset({PacketKind.NACK})),
        )))
        n = 2 * CHUNK_BYTES + 500
        data = _payload(n, seed=9)
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        m.node(0).memory.write(src, data)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert m.node(1).memory.read(dst, n) == data
        assert am0.stats.get("retransmissions") > 0
        # saved packets must still carry their original (unstamped-over)
        # identity: every window fully acked means no unit was stranded
        assert not any(w.has_unacked
                       for peer in am0._peers.values() for w in peer.send)


class TestOverflowRecovery:
    def test_receive_fifo_overflow_recovers(self, sp2):
        """A sender bursting while the receiver naps overflows the receive
        FIFO (window 72+76 vs 128 slots); drops must be retransmitted."""
        m, am0, am1 = sp2
        from repro.sim import Delay
        n_msgs = 100
        seen = []

        def handler(token, i):
            seen.append(i)

        def sender():
            for i in range(n_msgs):
                yield from am0.request_1(1, handler, i)

        def sleepy_receiver():
            yield Delay(5_000.0)  # let the FIFO fill and overflow
            while len(seen) < n_msgs:
                yield from am1._wait_progress()

        run_pair(m, sender(), sleepy_receiver(), wait_both=True, limit=1e9)
        assert seen == list(range(n_msgs))

    def test_idle_pop_flush_returns_consumed_slots(self):
        """Regression: consumed receive-FIFO slots below ``lazy_pop_batch``
        were never popped back to the adapter once the receiver went idle.
        With a FIFO smaller than the batch, the capacity silently shrank
        to zero — and every retransmission of the dropped packets was
        itself dropped, forever.  ``_wait_progress`` must flush pending
        pops before sleeping."""
        from repro.am import attach_spam
        from repro.hardware import build_sp_machine
        from repro.hardware.fifo import RecvFIFO
        from repro.sim import Delay, Simulator

        sim = Simulator()
        m = build_sp_machine(sim, 2)
        # capacity 12 < lazy_pop_batch 16: without the idle flush the
        # batch threshold is unreachable and consumed slots never return
        m.node(1).adapter.recv_fifo = RecvFIFO(capacity=12, lazy_pop_batch=16)
        am0, am1 = attach_spam(m)
        n_msgs = 100
        seen = []

        def handler(token, i):
            seen.append(i)

        flag = [0]

        def sender():
            for i in range(n_msgs):
                yield from am0.request_1(1, handler, i)
            # keep serving until everything is acknowledged: dropped
            # packets are only recovered by this side's retransmissions
            while any(w.has_unacked for w in am0._peer(1).send):
                yield from am0._wait_progress()
            flag[0] = 1

        def drowsy_receiver():
            # alternate between serving a little and napping, so the FIFO
            # repeatedly drains below the batch threshold and idles
            while not flag[0]:
                yield from am1._wait_progress()
                yield Delay(200.0)

        run_pair(m, sender(), drowsy_receiver(), wait_both=True, limit=1e9)
        assert seen == list(range(n_msgs))
        assert am1.stats.get("idle_pop_flushes") >= 1
        fifo = m.node(1).adapter.recv_fifo
        assert fifo.pending_pop < fifo.capacity

    def test_no_retransmissions_on_clean_runs(self, sp2):
        m, am0, am1 = sp2
        n = 4 * CHUNK_BYTES
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert am0.stats.get("retransmissions") == 0
        assert am1.stats.get("nacks_sent") == 0
        assert m.node(1).adapter.stats.get("rx_dropped_overflow") == 0


class TestChunkPipeline:
    def test_chunk_pacing_matches_figure_2(self, sp2):
        """Chunk N goes out only after the ack for chunk N-2 (Fig. 2):
        initially two chunks, then one per ack."""
        m, am0, am1 = sp2
        n = 6 * CHUNK_BYTES
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        flag = [0]
        events = []
        orig_send = am0._send_chunk
        orig_ack = am0._complete_units

        def traced_send(op, peer, win, idx, off, length, npk):
            events.append(("send", idx))
            return orig_send(op, peer, win, idx, off, length, npk)

        def traced_ack(peer, channel, ack):
            before = len([e for e in events if e[0] == "ack"])
            orig_ack(peer, channel, ack)
            # count acked chunks by deltas in op bookkeeping
            events.append(("ack", before))

        am0._send_chunk = traced_send
        am0._complete_units = traced_ack

        def sender():
            yield from am0.store(1, src, dst, n)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        send_indices = [i for kind, i in events if kind == "send"]
        assert send_indices == list(range(6))
        # the first two sends happen before any ack; every later send after
        # at least (idx - 1) acks
        ack_positions = [j for j, e in enumerate(events) if e[0] == "ack"]
        for idx in (0, 1):
            pos = events.index(("send", idx))
            assert all(p > pos for p in ack_positions) or idx < 2
        for idx in range(2, 6):
            pos = events.index(("send", idx))
            acks_before = sum(1 for p in ack_positions if p < pos)
            assert acks_before >= idx - 1
