"""Generic AM on the Table-4 peer machines (CM-5, Meiko CS-2, U-Net)."""

import pytest

from repro.am import attach_generic_am, attach_spam
from repro.am.handler import HandlerRestrictionError
from repro.bench.pingpong import machine_roundtrip
from repro.hardware import build_generic_machine, build_sp_machine
from repro.hardware.params import machine_params
from repro.sim import Simulator


def make(name="cm5", nprocs=2):
    sim = Simulator()
    m = build_generic_machine(sim, nprocs, machine_params(name))
    ams = attach_generic_am(m)
    return m, ams


class TestGenericRequestReply:
    def test_request_reply_roundtrip(self):
        m, (am0, am1) = make()
        replies = []

        def on_reply(t, x):
            replies.append(x)

        def on_request(token, x):
            yield from token.reply_1(on_reply, x + 1)

        def sender():
            yield from am0.request_1(1, on_request, 41)
            while not replies:
                yield from am0._wait_progress()

        def receiver():
            while not replies:
                yield from am1._wait_progress()

        sim = m.sim
        p = sim.spawn(sender())
        sim.spawn(receiver())
        sim.run_until_processes_done([p], limit=1e7)
        assert replies == [42]

    def test_handler_restrictions_apply(self):
        m, (am0, am1) = make()
        errors = []

        def bad(token, x):
            try:
                yield from am1.request_1(0, lambda t, y: None, 0)
            except HandlerRestrictionError as e:
                errors.append(e)

        def sender():
            yield from am0.request_1(1, bad, 0)

        def receiver():
            while not errors:
                yield from am1._wait_progress()

        sim = m.sim
        p = sim.spawn(sender())
        q = sim.spawn(receiver())
        sim.run_until_processes_done([p, q], limit=1e7)
        assert len(errors) == 1


class TestGenericBulk:
    @pytest.mark.parametrize("name", ["cm5", "meiko", "unet"])
    @pytest.mark.parametrize("nbytes", [100, 1024, 5000])
    def test_store_moves_bytes(self, name, nbytes):
        m, (am0, am1) = make(name)
        data = bytes(i % 256 for i in range(nbytes))
        src = m.node(0).memory.alloc(nbytes)
        dst = m.node(1).memory.alloc(nbytes)
        m.node(0).memory.write(src, data)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, nbytes)
            flag[0] = 1

        def receiver():
            while not flag[0]:
                yield from am1._wait_progress()

        sim = m.sim
        p = sim.spawn(sender())
        sim.spawn(receiver())
        sim.run_until_processes_done([p], limit=1e8)
        assert m.node(1).memory.read(dst, nbytes) == data

    def test_get_fetches_bytes(self):
        m, (am0, am1) = make("meiko")
        n = 3000
        data = bytes((7 * i) % 256 for i in range(n))
        remote = m.node(1).memory.alloc(n)
        local = m.node(0).memory.alloc(n)
        m.node(1).memory.write(remote, data)
        flag = [0]

        def getter():
            yield from am0.get(1, remote, local, n)
            flag[0] = 1

        def receiver():
            while not flag[0]:
                yield from am1._wait_progress()

        sim = m.sim
        p = sim.spawn(getter())
        sim.spawn(receiver())
        sim.run_until_processes_done([p], limit=1e8)
        assert m.node(0).memory.read(local, n) == data

    def test_store_completion_handler(self):
        m, (am0, am1) = make("cm5")
        done = []

        def on_complete(token, addr, nbytes, arg):
            done.append((token.src, nbytes, arg))

        n = 2048
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n, handler=on_complete, arg=5)
            flag[0] = 1

        def receiver():
            while not done:
                yield from am1._wait_progress()

        sim = m.sim
        p = sim.spawn(sender())
        q = sim.spawn(receiver())
        sim.run_until_processes_done([p, q], limit=1e8)
        assert done == [(0, n, 5)]


class TestTable4RoundTrips:
    """Table 4's round-trip column, on each simulated machine."""

    EXPECTED = {"cm5": 12.0, "meiko": 25.0, "unet": 66.0, "sp-thin": 51.0}

    @pytest.mark.parametrize("name,rtt", sorted(EXPECTED.items()))
    def test_roundtrip_matches_table4(self, name, rtt):
        measured = machine_roundtrip(name, iterations=40)
        assert measured == pytest.approx(rtt, rel=0.10), name


class TestAttachValidation:
    def test_attach_generic_on_sp_rejected(self):
        sim = Simulator()
        m = build_sp_machine(sim, 2)
        with pytest.raises(ValueError):
            attach_generic_am(m)

    def test_attach_spam_on_generic_rejected(self):
        sim = Simulator()
        m = build_generic_machine(sim, 2, machine_params("cm5"))
        with pytest.raises(ValueError):
            attach_spam(m)
