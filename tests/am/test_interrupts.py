"""Interrupt-driven reception (§1.1's unused alternative) vs polling."""

import pytest

from repro.am import compute_interruptible, compute_polled
from repro.am.interrupts import INTERRUPT_OVERHEAD_US
from tests.am.conftest import run_pair


class TestInterruptCompute:
    def test_pure_compute_without_traffic(self, sp2):
        m, am0, am1 = sp2

        def prog():
            t0 = m.sim.now
            n = yield from compute_interruptible(am0, 5000.0)
            return n, m.sim.now - t0

        p = m.sim.spawn(prog())
        m.sim.run_until_processes_done([p], limit=1e7)
        interrupts, elapsed = p.result
        assert interrupts == 0
        assert elapsed == pytest.approx(5000.0)

    def test_arrivals_interrupt_and_get_served(self, sp2):
        m, am0, am1 = sp2
        served = []

        def handler(token, i):
            served.append((m.sim.now, i))

        n_msgs = 5

        def computer():
            t0 = m.sim.now
            taken = yield from compute_interruptible(am1, 20_000.0)
            return taken, m.sim.now - t0

        def sender():
            from repro.sim import Delay
            for i in range(n_msgs):
                yield Delay(2_000.0)
                yield from am0.request_1(1, handler, i)

        p1 = m.sim.spawn(computer())
        p0 = m.sim.spawn(sender())
        m.sim.run_until_processes_done([p0, p1], limit=1e8)
        taken, elapsed = p1.result
        assert len(served) == n_msgs       # every message served mid-compute
        assert taken >= n_msgs
        # elapsed = compute + interrupt overheads + service
        assert elapsed > 20_000.0 + n_msgs * INTERRUPT_OVERHEAD_US * 0.9

    def test_service_latency_beats_coarse_polling(self, sp2):
        """Interrupts answer a remote request immediately; a coarse poll
        loop answers at its next quantum — interrupts win latency."""
        m, am0, am1 = sp2

        def measure(compute_style):
            import importlib

            from tests.splitc.conftest import build_stack
            mx, rts = build_stack("sp-am", 2)
            amx0, amx1 = mx.node(0).am, mx.node(1).am
            stamps = {}

            def handler(token, i):
                stamps["served"] = mx.sim.now

            def victim():
                if compute_style == "interrupt":
                    yield from compute_interruptible(amx1, 50_000.0)
                else:
                    yield from compute_polled(amx1, 50_000.0,
                                              quantum_us=10_000.0)

            def requester():
                from repro.sim import Delay
                yield Delay(11_000.0)
                stamps["sent"] = mx.sim.now
                yield from amx0.request_1(1, handler, 1)

            pv = mx.sim.spawn(victim())
            pr = mx.sim.spawn(requester())
            mx.sim.run_until_processes_done([pv, pr], limit=1e8)
            return stamps["served"] - stamps["sent"]

        lat_int = measure("interrupt")
        lat_poll = measure("poll")
        assert lat_int < 200.0            # ~wire + interrupt overhead
        assert lat_poll > 2_000.0         # waits for the next quantum
        assert lat_int < lat_poll / 5

    def test_interrupt_overhead_swamps_fine_grain_traffic(self, sp2):
        """The reason SP AM ships polling: under a message stream the
        per-interrupt cost exceeds the poll it replaces."""
        m, am0, am1 = sp2
        count = [0]

        def handler(token, i):
            count[0] += 1

        n_msgs = 60

        def victim():
            t0 = m.sim.now
            yield from compute_interruptible(am1, 1_000.0)
            while count[0] < n_msgs:
                yield from am1._wait_progress()
            return m.sim.now - t0

        def sender():
            for i in range(n_msgs):
                yield from am0.request_1(1, handler, i)

        pv = m.sim.spawn(victim())
        ps = m.sim.spawn(sender())
        m.sim.run_until_processes_done([pv, ps], limit=1e8)
        # with ~55 us per interrupt, even a few interrupts during 1 ms of
        # compute add measurable overhead vs the 1.3+1.8 us poll path
        interrupts_cost = INTERRUPT_OVERHEAD_US
        assert interrupts_cost > 10 * (1.3 + 1.8)

    def test_negative_compute_rejected(self, sp2):
        m, am0, _ = sp2

        def prog():
            yield from compute_interruptible(am0, -1.0)

        m.sim.spawn(prog())
        with pytest.raises(ValueError):
            m.sim.run()
