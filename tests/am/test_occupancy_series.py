"""Regression: window-occupancy sampling must honour the bounded ring.

``SPAM._note_occupancy`` used to append to ``TimeSeries.samples``
directly, bypassing :meth:`TimeSeries.record` — on a capacity-bounded
series the deque silently evicted old samples while ``dropped_samples``
stayed 0, so long soaks could not tell truncated data from complete data.
"""

from repro.am import attach_spam
from repro.hardware.machine import build_sp_machine
from repro.obs import Observatory
from repro.sim import Simulator, TimeSeries


def test_occupancy_sampling_counts_ring_evictions():
    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    ams = attach_spam(machine)
    Observatory().attach(machine)

    # swap in a tightly bounded ring so a short run overflows it
    capacity = 4
    ams[0]._occ_series = TimeSeries("window_occupancy", capacity=capacity)

    def handler(token, x):
        pass

    def prog():
        for r in range(16):
            yield from ams[0].request_1(1, handler, r)

    p = sim.spawn(prog(), name="sender")
    sim.run_until_processes_done([p])

    series = ams[0]._occ_series
    assert len(series.samples) == capacity
    # every eviction is accounted — this is what the direct append lost
    assert series.dropped_samples > 0
    recorded = len(series.samples) + series.dropped_samples
    assert recorded > capacity


def test_occupancy_sampling_unbounded_default_unchanged():
    sim = Simulator()
    machine = build_sp_machine(sim, 2)
    ams = attach_spam(machine)
    Observatory().attach(machine)

    def handler(token, x):
        pass

    def prog():
        for r in range(8):
            yield from ams[0].request_1(1, handler, r)

    p = sim.spawn(prog(), name="sender")
    sim.run_until_processes_done([p])

    series = ams[0]._occ_series
    assert len(series.samples) > 0
    assert series.dropped_samples == 0
