"""Rendezvous (RTS/CTS + simulated RDMA) large-message mode.

Covers mode selection (the ``xfer_mode`` knob and the auto crossover),
data integrity across the chunk boundary, protocol accounting (one RTS,
one CTS, one FIN, N RDMA chunks), exactly-once remote completion, grant
cleanup at quiescence, and pipelined/multi-node traffic.
"""

import pytest

from repro.am import attach_spam
from repro.am.constants import CHUNK_BYTES, RDZV_CROSSOVER
from repro.hardware import build_sp_machine
from repro.sim import Simulator
from tests.am.conftest import run_pair, serve


def _payload(n, seed=0):
    return bytes((i * 37 + seed) % 256 for i in range(n))


def make_pair(xfer_mode, **kw):
    sim = Simulator()
    m = build_sp_machine(sim, 2)
    am0, am1 = attach_spam(m, xfer_mode=xfer_mode, **kw)
    return m, am0, am1


def _store(m, am0, am1, nbytes, seed=0):
    """One blocking store of ``nbytes``; returns the received bytes."""
    data = _payload(nbytes, seed)
    src = m.node(0).memory.alloc(nbytes)
    dst = m.node(1).memory.alloc(nbytes)
    m.node(0).memory.write(src, data)
    flag = [0]

    def sender():
        yield from am0.store(1, src, dst, nbytes)
        flag[0] = 1

    run_pair(m, sender(), serve(am1, flag), limit=1e8)
    return data, m.node(1).memory.read(dst, nbytes)


class TestModeSelection:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="xfer_mode"):
            make_pair("zero-copy")

    def test_eager_mode_never_sends_rts(self):
        m, am0, am1 = make_pair("eager")
        _store(m, am0, am1, 4 * CHUNK_BYTES)
        assert am0.stats.get("rts_sent") == 0

    def test_rendezvous_mode_always_handshakes(self):
        m, am0, am1 = make_pair("rendezvous")
        _store(m, am0, am1, 1)
        assert am0.stats.get("rts_sent") == 1
        assert am1.stats.get("cts_sent") == 1

    def test_auto_stays_eager_at_crossover(self):
        m, am0, am1 = make_pair("auto")
        _store(m, am0, am1, RDZV_CROSSOVER)
        assert am0.stats.get("rts_sent") == 0

    def test_auto_goes_rendezvous_above_crossover(self):
        m, am0, am1 = make_pair("auto")
        _store(m, am0, am1, RDZV_CROSSOVER + 1)
        assert am0.stats.get("rts_sent") == 1

    def test_custom_crossover_respected(self):
        m, am0, am1 = make_pair("auto", rdzv_crossover=1000)
        _store(m, am0, am1, 1001)
        assert am0.stats.get("rts_sent") == 1


class TestDataIntegrity:
    @pytest.mark.parametrize("nbytes", [
        1, 17, CHUNK_BYTES - 1, CHUNK_BYTES, CHUNK_BYTES + 1,
        3 * CHUNK_BYTES + 100, 30000,
    ])
    def test_store_moves_exact_bytes(self, nbytes):
        m, am0, am1 = make_pair("rendezvous")
        data, got = _store(m, am0, am1, nbytes)
        assert got == data

    def test_protocol_accounting_one_handshake_n_chunks(self):
        m, am0, am1 = make_pair("rendezvous")
        n = 2 * CHUNK_BYTES + 100  # 3 RDMA chunks
        _store(m, am0, am1, n)
        assert am0.stats.get("rts_sent") == 1
        assert am1.stats.get("rts_received") == 1
        assert am1.stats.get("cts_sent") == 1
        assert am0.stats.get("cts_received") == 1
        assert am0.stats.get("rdma_chunks_sent") == 3
        assert am0.stats.get("fins_sent") == 1
        assert am1.stats.get("rdma_recv_completed") == 1
        # the eager chunk path must not have been involved at all
        assert am0.stats.get("chunks_sent") == 0

    def test_completion_handler_runs_exactly_once(self):
        m, am0, am1 = make_pair("rendezvous")
        completions = []

        def on_complete(token, addr, nbytes, arg):
            completions.append((token.src, addr, nbytes, arg))

        n = 2 * CHUNK_BYTES
        src = m.node(0).memory.alloc(n)
        dst = m.node(1).memory.alloc(n)
        flag = [0]

        def sender():
            yield from am0.store(1, src, dst, n, handler=on_complete, arg=42)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        assert completions == [(0, dst, n, 42)]

    def test_grants_drained_at_quiescence(self):
        m, am0, am1 = make_pair("rendezvous")
        _store(m, am0, am1, 3 * CHUNK_BYTES)
        assert am1._rdma_grants == {}
        assert am0._rdma_grants == {}


class TestPipelined:
    def test_pipelined_async_stores_all_land(self):
        m, am0, am1 = make_pair("rendezvous")
        k, n = 8, 2 * CHUNK_BYTES + 33
        bufs = []
        for i in range(k):
            d = _payload(n, seed=i)
            s = m.node(0).memory.alloc(n)
            t = m.node(1).memory.alloc(n)
            m.node(0).memory.write(s, d)
            bufs.append((s, t, d))
        flag = [0]

        def sender():
            ops = []
            for s, t, _d in bufs:
                ops.append((yield from am0.store_async(1, s, t, n)))
            for op in ops:
                yield from am0.wait_op(op)
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag), limit=1e8)
        for _s, t, d in bufs:
            assert m.node(1).memory.read(t, n) == d
        assert am0.stats.get("rts_sent") == k
        assert am1.stats.get("rdma_recv_completed") == k
        assert am1._rdma_grants == {}

    def test_multi_node_all_pairs(self):
        sim = Simulator()
        m = build_sp_machine(sim, 4)
        ams = attach_spam(m, xfer_mode="rendezvous")
        n = 2 * CHUNK_BYTES
        bufs = {}
        for i in range(4):
            for j in range(4):
                if i != j:
                    s = m.node(i).memory.alloc(n)
                    d = m.node(j).memory.alloc(n)
                    data = _payload(n, seed=i * 16 + j)
                    m.node(i).memory.write(s, data)
                    bufs[(i, j)] = (s, d, data)
        done = [0]

        def prog(rank):
            def run():
                ops = []
                for j in range(4):
                    if j == rank:
                        continue
                    s, d, _ = bufs[(rank, j)]
                    op = yield from ams[rank].store_async(j, s, d, n)
                    ops.append(op)
                for op in ops:
                    yield from ams[rank].wait_op(op)
                done[0] += 1
                while done[0] < 4:
                    yield from ams[rank]._wait_progress()
            return run()

        procs = [sim.spawn(prog(r), name=f"r{r}") for r in range(4)]
        sim.run_until_processes_done(procs, limit=1e8)
        for (i, j), (_s, d, data) in bufs.items():
            assert m.node(j).memory.read(d, n) == data, (i, j)
        for am in ams:
            assert am._rdma_grants == {}
