"""Property test: eager and rendezvous are observably the same transfer.

For any payload size around the crossover (and well past it), any seed,
with and without fabric loss, on both schedulers, a blocking store must
land byte-identical data in the destination region in both modes — the
``xfer_mode`` knob may change the wire protocol, never the result.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am import attach_spam
from repro.am.constants import RDZV_CROSSOVER
from repro.faults import FaultPlan, install_faults
from repro.hardware import build_sp_machine
from repro.sim import Simulator

#: the interesting sizes: both sides of the auto crossover plus a
#: multi-chunk transfer that exercises the RDMA streaming path
SIZES = (RDZV_CROSSOVER - 1, RDZV_CROSSOVER, RDZV_CROSSOVER + 1,
         3 * RDZV_CROSSOVER + 17)


def _run_store(mode, scheduler, nbytes, seed, loss):
    sim = Simulator(scheduler=scheduler)
    m = build_sp_machine(sim, 2)
    am0, am1 = attach_spam(m, xfer_mode=mode)
    if loss:
        install_faults(m, FaultPlan.loss(seed, loss))
    data = bytes((i * 31 + seed) % 256 for i in range(nbytes))
    src = m.node(0).memory.alloc(nbytes)
    dst = m.node(1).memory.alloc(nbytes)
    m.node(0).memory.write(src, data)
    flag = [0]

    def sender():
        yield from am0.store(1, src, dst, nbytes)
        flag[0] = 1

    def receiver():
        while not flag[0]:
            yield from am1._wait_progress()

    p = sim.spawn(sender(), name="send")
    sim.spawn(receiver(), name="recv")
    sim.run_until_processes_done([p], limit=1e8)
    assert flag[0] == 1, f"{mode} store deadlocked at loss={loss}"
    return data, m.node(1).memory.read(dst, nbytes)


@pytest.mark.parametrize("scheduler", ["wheel", "heap"])
@pytest.mark.parametrize("loss", [0.0, 0.01])
class TestEagerRendezvousEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(nbytes=st.sampled_from(SIZES), seed=st.integers(0, 2 ** 16))
    def test_both_modes_land_identical_bytes(self, scheduler, loss,
                                             nbytes, seed):
        sent_e, got_e = _run_store("eager", scheduler, nbytes, seed, loss)
        sent_r, got_r = _run_store("rendezvous", scheduler, nbytes, seed,
                                   loss)
        assert sent_e == sent_r
        assert got_e == sent_e
        assert got_r == sent_r
        assert got_e == got_r
