"""Request/reply semantics, handler rules, and window behaviour end-to-end."""

import pytest

from repro.am.handler import HandlerRestrictionError
from repro.am.constants import REQUEST_WINDOW
from repro.hardware.packet import PacketKind
from tests.am.conftest import run_pair, serve


class TestRequestReply:
    def test_request_invokes_handler_with_args(self, sp2):
        m, am0, am1 = sp2
        seen = []

        def handler(token, a, b, c):
            seen.append((token.src, a, b, c))

        def sender():
            yield from am0.request_3(1, handler, 10, 20, 30)

        flag = [0]

        def receiver():
            while not seen:
                yield from am1._wait_progress()

        run_pair(m, sender(), receiver(), wait_both=True)
        assert seen == [(0, 10, 20, 30)]

    def test_reply_reaches_requester(self, sp2):
        m, am0, am1 = sp2
        replies = []

        def on_reply(token, x):
            replies.append(x)

        def on_request(token, x):
            yield from token.reply_1(on_reply, x * 2)

        flag = [0]

        def sender():
            yield from am0.request_1(1, on_request, 21)
            while not replies:
                yield from am0._wait_progress()
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag))
        assert replies == [42]

    def test_all_arities(self, sp2):
        m, am0, am1 = sp2
        seen = []

        def h1(t, a):
            seen.append((a,))

        def h2(t, a, b):
            seen.append((a, b))

        def h3(t, a, b, c):
            seen.append((a, b, c))

        def h4(t, a, b, c, d):
            seen.append((a, b, c, d))

        def sender():
            yield from am0.request_1(1, h1, 1)
            yield from am0.request_2(1, h2, 1, 2)
            yield from am0.request_3(1, h3, 1, 2, 3)
            yield from am0.request_4(1, h4, 1, 2, 3, 4)

        def receiver():
            while len(seen) < 4:
                yield from am1._wait_progress()

        run_pair(m, sender(), receiver(), wait_both=True)
        assert seen == [(1,), (1, 2), (1, 2, 3), (1, 2, 3, 4)]

    def test_many_requests_ordered(self, sp2):
        m, am0, am1 = sp2
        seen = []

        def handler(token, i):
            seen.append(i)

        n = 3 * REQUEST_WINDOW  # forces window turnover

        def sender():
            for i in range(n):
                yield from am0.request_1(1, handler, i)

        def receiver():
            while len(seen) < n:
                yield from am1._wait_progress()

        run_pair(m, sender(), receiver(), wait_both=True, limit=1e8)
        assert seen == list(range(n))

    def test_window_limits_in_flight(self, sp2):
        """With a receiver that never polls, the sender can put at most
        one window of requests on the wire and then must block."""
        m, am0, am1 = sp2
        sent = [0]

        def sender():
            for i in range(REQUEST_WINDOW + 10):
                yield from am0.request_1(1, lambda t, x: None, i)
                sent[0] += 1

        def silent_receiver():
            # never services the network
            from repro.sim import Delay
            yield Delay(1.0)

        sim = m.sim
        p0 = sim.spawn(sender())
        sim.spawn(silent_receiver())
        # run for a while; the sender must be stuck before finishing
        sim.run(until=30_000.0, check_deadlock=False)
        assert sent[0] == REQUEST_WINDOW
        assert not p0.finished


class TestHandlerRules:
    def test_handler_cannot_request(self, sp2):
        m, am0, am1 = sp2
        errors = []

        def bad_handler(token, x):
            try:
                yield from am1.request_1(0, lambda t, y: None, 1)
            except HandlerRestrictionError as e:
                errors.append(e)

        def sender():
            yield from am0.request_1(1, bad_handler, 5)

        def receiver():
            while not errors:
                yield from am1._wait_progress()

        run_pair(m, sender(), receiver(), wait_both=True)
        assert len(errors) == 1

    def test_handler_cannot_poll(self, sp2):
        m, am0, am1 = sp2
        errors = []

        def bad_handler(token, x):
            try:
                yield from am1.poll()
            except HandlerRestrictionError as e:
                errors.append(e)

        def sender():
            yield from am0.request_1(1, bad_handler, 5)

        def receiver():
            while not errors:
                yield from am1._wait_progress()

        run_pair(m, sender(), receiver(), wait_both=True)
        assert len(errors) == 1

    def test_handler_single_reply_enforced(self, sp2):
        m, am0, am1 = sp2
        errors = []
        replies = []

        def on_reply(t, x):
            replies.append(x)

        def greedy_handler(token, x):
            yield from token.reply_1(on_reply, 1)
            try:
                yield from token.reply_1(on_reply, 2)
            except HandlerRestrictionError as e:
                errors.append(e)

        flag = [0]

        def sender():
            yield from am0.request_1(1, greedy_handler, 5)
            while not replies:
                yield from am0._wait_progress()
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag))
        assert len(errors) == 1
        assert replies == [1]

    def test_request_to_self_rejected(self, sp2):
        m, am0, am1 = sp2

        def sender():
            yield from am0.request_1(0, lambda t, x: None, 1)

        p = m.sim.spawn(sender())
        with pytest.raises(ValueError):
            m.sim.run()


class TestPiggybackAcks:
    def test_pingpong_needs_no_explicit_acks(self, sp2):
        """Request/reply traffic acks itself by piggybacking (§2.2)."""
        m, am0, am1 = sp2
        replies = []

        def on_reply(t, x):
            replies.append(x)

        def on_request(token, x):
            yield from token.reply_1(on_reply, x)

        flag = [0]

        def sender():
            for i in range(40):
                before = len(replies)
                yield from am0.request_1(1, on_request, i)
                while len(replies) == before:
                    yield from am0._wait_progress()
            flag[0] = 1

        run_pair(m, sender(), serve(am1, flag))
        assert am0.stats.get("explicit_acks_sent") == 0
        assert am1.stats.get("explicit_acks_sent") == 0
        assert am0.stats.get("retransmissions") == 0

    def test_one_way_stream_generates_quarter_window_acks(self, sp2):
        """A pure one-way request stream must be acked explicitly once a
        quarter of the window is outstanding (§2.2)."""
        m, am0, am1 = sp2
        count = [0]

        def handler(token, i):
            count[0] += 1

        n = 2 * REQUEST_WINDOW

        def sender():
            for i in range(n):
                yield from am0.request_1(1, handler, i)

        def receiver():
            while count[0] < n:
                yield from am1._wait_progress()

        run_pair(m, sender(), receiver(), wait_both=True, limit=1e8)
        # receiver issued explicit acks; roughly one per quarter window
        acks = am1.stats.get("explicit_acks_sent")
        assert acks >= n // REQUEST_WINDOW * 2
        assert am0.stats.get("retransmissions") == 0
