"""Unit tests for the sliding-window state machines (§2.2)."""

import pytest

from repro.am.window import RecvWindow, SendWindow
from repro.hardware.packet import Packet, PacketKind


def pkt(seq, chunk_packets=1, offset=0):
    return Packet(src=0, dst=1, kind=PacketKind.REQUEST, seq=seq,
                  chunk_packets=chunk_packets, offset=offset)


class TestSendWindow:
    def test_allocate_advances_sequence(self):
        w = SendWindow(8)
        assert w.allocate(1) == 0
        assert w.allocate(3) == 1
        assert w.next_seq == 4
        assert w.in_flight == 4

    def test_credit_exhaustion(self):
        w = SendWindow(4)
        w.allocate(4)
        assert not w.can_send(1)
        with pytest.raises(RuntimeError):
            w.allocate(1)

    def test_ack_restores_credit(self):
        w = SendWindow(4)
        w.allocate(4)
        w.save(0, [pkt(0)])
        w.on_ack(2)
        assert w.can_send(2)
        assert not w.can_send(3)

    def test_cumulative_ack_frees_saved_packets(self):
        w = SendWindow(10)
        for s in range(5):
            w.allocate(1)
            w.save(s, [pkt(s)])
        freed = w.on_ack(3)
        assert freed == 3
        assert [p.seq for p in w.unacked_from(0)] == [3, 4]

    def test_stale_ack_is_noop(self):
        w = SendWindow(10)
        w.allocate(2)
        w.save(0, [pkt(0)])
        w.save(1, [pkt(1)])
        w.on_ack(2)
        assert w.on_ack(1) == 0
        assert w.base == 2

    def test_ack_beyond_next_seq_rejected(self):
        w = SendWindow(10)
        w.allocate(1)
        with pytest.raises(ValueError):
            w.on_ack(5)

    def test_unacked_from_orders_chunks(self):
        w = SendWindow(100)
        w.allocate(36)
        w.save(0, [pkt(0, 36, off) for off in range(0, 36 * 224, 224)])
        w.allocate(1)
        w.save(36, [pkt(36)])
        out = w.unacked_from(0)
        assert len(out) == 37
        assert out[-1].seq == 36

    def test_window_of_zero_rejected(self):
        with pytest.raises(ValueError):
            SendWindow(0)

    def test_has_unacked(self):
        w = SendWindow(4)
        assert not w.has_unacked
        w.allocate(1)
        w.save(0, [pkt(0)])
        assert w.has_unacked
        w.on_ack(1)
        assert not w.has_unacked


class TestRecvWindow:
    def test_in_order_singles_deliver(self):
        w = RecvWindow(8, 2)
        for s in range(3):
            verdict, unit = w.accept(pkt(s))
            assert verdict == "deliver"
            assert unit[0].seq == s
        assert w.expected == 3

    def test_gap_triggers_nack(self):
        w = RecvWindow(8, 2)
        w.accept(pkt(0))
        verdict, _ = w.accept(pkt(2))
        assert verdict == "nack"
        assert w.expected == 1

    def test_old_seq_is_duplicate(self):
        w = RecvWindow(8, 2)
        w.accept(pkt(0))
        verdict, _ = w.accept(pkt(0))
        assert verdict == "duplicate"

    def test_chunk_assembles_out_of_order_offsets(self):
        w = RecvWindow(100, 25)
        offsets = [448, 0, 224]
        verdicts = []
        for off in offsets:
            v, unit = w.accept(pkt(0, chunk_packets=3, offset=off))
            verdicts.append(v)
        assert verdicts == ["partial", "partial", "deliver"]
        assert w.expected == 3

    def test_chunk_duplicate_offset_ignored(self):
        w = RecvWindow(100, 25)
        w.accept(pkt(0, 3, 0))
        v, _ = w.accept(pkt(0, 3, 0))  # duplicate offset within chunk
        assert v == "duplicate"
        w.accept(pkt(0, 3, 224))
        v, unit = w.accept(pkt(0, 3, 448))
        assert v == "deliver"
        assert len(unit) == 3

    def test_window_slides_by_chunk_size(self):
        # "the window slides by the number of packets in a chunk"
        w = RecvWindow(100, 25)
        for off in range(0, 36 * 224, 224):
            w.accept(pkt(0, 36, off))
        assert w.expected == 36
        v, _ = w.accept(pkt(36))
        assert v == "deliver"

    def test_explicit_ack_due_at_quarter_window(self):
        w = RecvWindow(72, 18)
        for s in range(17):
            w.accept(pkt(s))
        assert not w.explicit_ack_due
        w.accept(pkt(17))
        assert w.explicit_ack_due
        assert w.ack_value() == 18
        assert not w.explicit_ack_due

    def test_nack_outstanding_clears_on_progress(self):
        w = RecvWindow(8, 2)
        w.accept(pkt(1))  # gap
        w.nack_outstanding = True
        w.accept(pkt(0))  # fills the gap
        assert not w.nack_outstanding
