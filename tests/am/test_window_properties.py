"""Property-based tests: sliding-window invariants under arbitrary traffic.

The model simulates a lossy, duplicating, reordering delivery of a sender's
sequenced stream into a receiver window and checks the go-back-N contract:
whatever the loss pattern, the receiver delivers each transfer unit exactly
once and in order, provided every suffix is eventually retransmitted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am.bulk import BulkRecvState, split_chunks
from repro.am.constants import CHUNK_BYTES
from repro.am.window import RecvWindow, SendWindow
from repro.hardware.packet import Packet, PacketKind


def pkt(seq, chunk_packets=1, offset=0):
    return Packet(src=0, dst=1, kind=PacketKind.REQUEST, seq=seq,
                  chunk_packets=chunk_packets, offset=offset)


@given(
    acks=st.lists(st.integers(min_value=0, max_value=200), max_size=50),
    allocs=st.lists(st.integers(min_value=1, max_value=36), max_size=40),
)
def test_sender_invariants_hold(acks, allocs):
    w = SendWindow(72)
    alloc_iter = iter(allocs)
    last_base = 0
    for ack in acks:
        # interleave allocations when credit allows
        n = next(alloc_iter, None)
        if n is not None and w.can_send(n):
            seq = w.allocate(n)
            w.save(seq, [pkt(seq + i) for i in range(n)])
        assert 0 <= w.in_flight <= w.window
        if w.base <= ack <= w.next_seq:
            w.on_ack(ack)
        # the base never regresses
        assert w.base >= last_base
        last_base = w.base
        assert w.base <= w.next_seq


@given(
    # each unit is 1..36 packets; loss pattern drops arbitrary packets
    units=st.lists(st.integers(min_value=1, max_value=36), min_size=1, max_size=12),
    drops=st.sets(st.integers(min_value=0, max_value=400)),
)
@settings(max_examples=60)
def test_go_back_n_delivers_everything_in_order(units, drops):
    """Lossy first transmission + retransmit-all-from-expected recovery."""
    recv = RecvWindow(10_000, 2_500)
    delivered = []

    def offer(seq, npk):
        """Send one unit's packets, minus dropped ones."""
        for i in range(npk):
            global_index = seq + i
            if global_index in drops:
                continue
            v, unit = recv.accept(pkt(seq, npk, offset=i * 224))
            if v == "deliver":
                delivered.append(seq)

    # first pass (lossy)
    seqs = []
    s = 0
    for npk in units:
        seqs.append((s, npk))
        offer(s, npk)
        s += npk
    # recovery rounds: go-back-N from the receiver's expected value,
    # retransmitting everything (no losses now), until all delivered
    for _ in range(len(units) + 1):
        exp = recv.expected
        for seq, npk in seqs:
            if seq + npk <= exp:
                continue
            for i in range(npk):
                v, unit = recv.accept(pkt(seq, npk, offset=i * 224))
                if v == "deliver":
                    delivered.append(seq)
        if recv.expected == s:
            break
    # exactly-once, in-order delivery of every unit
    assert delivered == [seq for seq, _ in seqs]
    assert recv.expected == s


@given(st.integers(min_value=0, max_value=10 * CHUNK_BYTES + 17))
def test_split_chunks_partitions_exactly(nbytes):
    chunks = split_chunks(nbytes)
    assert sum(length for _, length in chunks) == nbytes
    assert all(0 < length <= CHUNK_BYTES for _, length in chunks)
    # contiguous, ordered coverage
    pos = 0
    for off, length in chunks:
        assert off == pos
        pos += length


@given(
    total=st.integers(min_value=1, max_value=100_000),
    pieces=st.lists(st.integers(min_value=1, max_value=8064), min_size=1, max_size=40),
)
def test_bulk_recv_completion_exactly_at_total(total, pieces):
    st_ = BulkRecvState(src=0, token=1, addr=0, total_len=total,
                        handler=-1, handler_args=())
    got = 0
    completed = 0
    for piece in pieces:
        take = min(piece, total - got)
        if take == 0:
            break
        if st_.add(take):
            completed += 1
        got += take
    assert completed == (1 if got == total else 0)
