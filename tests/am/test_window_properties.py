"""Property-based tests: sliding-window invariants under arbitrary traffic.

The model simulates a lossy, duplicating, reordering delivery of a sender's
sequenced stream into a receiver window and checks the go-back-N contract:
whatever the loss pattern, the receiver delivers each transfer unit exactly
once and in order, provided every suffix is eventually retransmitted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.am.bulk import BulkRecvState, split_chunks
from repro.am.constants import CHUNK_BYTES
from repro.am.window import (
    AckBeyondWindowError,
    MidChunkAckError,
    RecvWindow,
    SendWindow,
)
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.hardware.packet import Packet, PacketKind


def pkt(seq, chunk_packets=1, offset=0):
    return Packet(src=0, dst=1, kind=PacketKind.REQUEST, seq=seq,
                  chunk_packets=chunk_packets, offset=offset)


@given(
    acks=st.lists(st.integers(min_value=0, max_value=200), max_size=50),
    allocs=st.lists(st.integers(min_value=1, max_value=36), max_size=40),
)
def test_sender_invariants_hold(acks, allocs):
    w = SendWindow(72)
    alloc_iter = iter(allocs)
    units = []  # (seq, npackets) transfer units, in order
    last_base = 0
    for ack in acks:
        # interleave allocations when credit allows
        n = next(alloc_iter, None)
        if n is not None and w.can_send(n):
            seq = w.allocate(n)
            w.save(seq, [pkt(seq, n, offset=i * 224) for i in range(n)])
            units.append((seq, n))
        assert 0 <= w.in_flight <= w.window
        if w.base <= ack <= w.next_seq:
            # a real receiver only advertises unit-aligned cumulative
            # acks (chunks slide the window as one unit, §2.2)
            for s, un in units:
                if s < ack < s + un:
                    ack = s
                    break
            w.on_ack(ack)
        # the base never regresses
        assert w.base >= last_base
        last_base = w.base
        assert w.base <= w.next_seq


@given(
    npk=st.integers(min_value=2, max_value=36),
    cut=st.integers(min_value=1, max_value=35),
)
def test_mid_chunk_ack_rejected(npk, cut):
    """An ack strictly inside a saved chunk means the peers have
    desynchronized; it must raise, not silently strand packets below
    ``base`` where go-back-N can no longer retransmit them."""
    cut = min(cut, npk - 1)
    w = SendWindow(72)
    seq = w.allocate(npk)
    w.save(seq, [pkt(seq, npk, offset=i * 224) for i in range(npk)])
    with pytest.raises(MidChunkAckError):
        w.on_ack(seq + cut)
    # the reject left the window untouched: base unchanged, every saved
    # packet still reachable, and a unit-aligned ack still works
    assert w.base == 0
    assert len(w.unacked_from(0)) == npk
    assert w.on_ack(seq + npk) == npk
    assert not w.has_unacked


def test_ack_beyond_window_rejected():
    w = SendWindow(72)
    seq = w.allocate(4)
    w.save(seq, [pkt(seq + i) for i in range(4)])
    with pytest.raises(AckBeyondWindowError):
        w.on_ack(5)
    assert w.base == 0


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    units=st.lists(st.integers(min_value=1, max_value=36),
                   min_size=1, max_size=10),
)
@settings(max_examples=50, deadline=None)
def test_fault_plan_model_checker(seed, units):
    """Model checker: push a sequenced stream through a FaultInjector-
    driven channel (random drops, duplicates, reorders) into a receiver
    window, run go-back-N recovery rounds, and check every docstring
    invariant of window.py against a reference in-order channel."""
    plan = FaultPlan(seed=seed, budget=25, rules=(
        FaultRule(kind="drop", rate=0.2),
        FaultRule(kind="duplicate", rate=0.2),
        FaultRule(kind="reorder", rate=0.2, delay_us=5.0),
    ))
    inj = FaultInjector(plan)
    send = SendWindow(10_000)
    recv = RecvWindow(10_000, 2_500)
    saved_units = []
    for npk in units:
        seq = send.allocate(npk)
        send.save(seq, [pkt(seq, npk, offset=i * 224) for i in range(npk)])
        saved_units.append(seq)

    delivered = []       # unit base seqs, in delivery order
    last_ack = 0
    t = 0.0

    def channel(packets):
        """The faulty wire: returns the arrival order after injection."""
        nonlocal t
        arrivals = []    # (arrival_time, tiebreak, pkt)
        order = 0
        for p in packets:
            t += 1.0
            act = inj.at_switch(p, t)
            if act is None:
                arrivals.append((t, order, p))
            elif act.kind == "drop":
                continue
            elif act.kind == "reorder":
                arrivals.append((t + act.delay_us, order, p))
            elif act.kind == "duplicate":
                arrivals.append((t, order, p))
                arrivals.append((t + act.delay_us, order + 0.5, act.packet))
            else:  # corrupt: modelled as a loss (CRC reject)
                continue
            order += 1
        return [p for _t, _o, p in sorted(arrivals, key=lambda a: a[:2])]

    # first lossy pass, then go-back-N rounds (budget exhaustion makes
    # the channel eventually clean, so recovery must converge)
    pending = [p for seq in saved_units for p in send.unacked_from(seq)][:]
    for _round in range(60):
        for p in channel(pending):
            verdict, unit = recv.accept(p)
            if verdict == "deliver":
                delivered.append(unit[0].seq)
        ack = recv.ack_value()
        assert ack >= last_ack, "cumulative ack moved backwards"
        last_ack = ack
        send.on_ack(ack)          # unit-aligned by construction
        assert 0 <= send.in_flight <= send.window
        assert send.base <= send.next_seq
        if not send.has_unacked:
            break
        pending = [p.clone() for p in send.unacked_from(recv.expected)]
    # exactly-once, in-order delivery of every transfer unit
    assert delivered == saved_units
    assert not send.has_unacked
    assert recv.expected == send.next_seq


@given(
    # each unit is 1..36 packets; loss pattern drops arbitrary packets
    units=st.lists(st.integers(min_value=1, max_value=36), min_size=1, max_size=12),
    drops=st.sets(st.integers(min_value=0, max_value=400)),
)
@settings(max_examples=60)
def test_go_back_n_delivers_everything_in_order(units, drops):
    """Lossy first transmission + retransmit-all-from-expected recovery."""
    recv = RecvWindow(10_000, 2_500)
    delivered = []

    def offer(seq, npk):
        """Send one unit's packets, minus dropped ones."""
        for i in range(npk):
            global_index = seq + i
            if global_index in drops:
                continue
            v, unit = recv.accept(pkt(seq, npk, offset=i * 224))
            if v == "deliver":
                delivered.append(seq)

    # first pass (lossy)
    seqs = []
    s = 0
    for npk in units:
        seqs.append((s, npk))
        offer(s, npk)
        s += npk
    # recovery rounds: go-back-N from the receiver's expected value,
    # retransmitting everything (no losses now), until all delivered
    for _ in range(len(units) + 1):
        exp = recv.expected
        for seq, npk in seqs:
            if seq + npk <= exp:
                continue
            for i in range(npk):
                v, unit = recv.accept(pkt(seq, npk, offset=i * 224))
                if v == "deliver":
                    delivered.append(seq)
        if recv.expected == s:
            break
    # exactly-once, in-order delivery of every unit
    assert delivered == [seq for seq, _ in seqs]
    assert recv.expected == s


@given(st.integers(min_value=0, max_value=10 * CHUNK_BYTES + 17))
def test_split_chunks_partitions_exactly(nbytes):
    chunks = split_chunks(nbytes)
    assert sum(length for _, length in chunks) == nbytes
    assert all(0 < length <= CHUNK_BYTES for _, length in chunks)
    # contiguous, ordered coverage
    pos = 0
    for off, length in chunks:
        assert off == pos
        pos += length


@given(
    total=st.integers(min_value=1, max_value=100_000),
    pieces=st.lists(st.integers(min_value=1, max_value=8064), min_size=1, max_size=40),
)
def test_bulk_recv_completion_exactly_at_total(total, pieces):
    st_ = BulkRecvState(src=0, token=1, addr=0, total_len=total,
                        handler=-1, handler_args=())
    got = 0
    completed = 0
    for piece in pieces:
        take = min(piece, total - got)
        if take == 0:
            break
        if st_.add(take):
            completed += 1
        got += take
    assert completed == (1 if got == total else 0)
