"""NAS kernel correctness + Table 6 relations (small scales)."""

import pytest

from repro.apps.nas import (
    NAS_KERNELS,
    run_bt,
    run_ft,
    run_lu,
    run_mg,
    run_sp,
)
from repro.apps.nas.common import (
    build_variant,
    check_pattern,
    face_pattern,
    grid_2d,
    neighbors_2d,
)


class TestHelpers:
    @pytest.mark.parametrize("nprocs,expect", [(16, (4, 4)), (8, (2, 4)),
                                               (4, (2, 2)), (2, (1, 2))])
    def test_grid_2d(self, nprocs, expect):
        assert grid_2d(nprocs) == expect

    def test_neighbors_edges(self):
        n = neighbors_2d(0, 4, 4)
        assert n["west"] is None and n["south"] is None
        assert n["east"] == 1 and n["north"] == 4
        n = neighbors_2d(15, 4, 4)
        assert n["east"] is None and n["north"] is None
        assert n["west"] == 14 and n["south"] == 11

    def test_face_pattern_roundtrip(self):
        p = face_pattern(3, 7, 11, 50)
        assert check_pattern(p.tobytes(), 3, 7, 11, 50)
        assert not check_pattern(p.tobytes(), 4, 7, 11, 50)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_variant("lam-mpi", 4)

    def test_registry_complete(self):
        assert set(NAS_KERNELS) == {"BT", "FT", "LU", "MG", "SP"}


class TestKernelsRun:
    """Each kernel at tiny scale, on both MPI implementations, verified."""

    @pytest.mark.parametrize("variant", ["mpi-am", "mpi-f"])
    def test_bt(self, variant):
        r = run_bt(variant, nprocs=4, grid_n=8, iters=2)
        assert r.verified and r.elapsed_s > 0

    @pytest.mark.parametrize("variant", ["mpi-am", "mpi-f"])
    def test_sp(self, variant):
        r = run_sp(variant, nprocs=4, grid_n=8, iters=2)
        assert r.verified

    @pytest.mark.parametrize("variant", ["mpi-am", "mpi-f"])
    def test_lu(self, variant):
        r = run_lu(variant, nprocs=4, grid_n=8, iters=2)
        assert r.verified

    @pytest.mark.parametrize("variant", ["mpi-am", "mpi-f"])
    def test_mg(self, variant):
        r = run_mg(variant, nprocs=4, grid_n=16, cycles=2)
        assert r.verified

    @pytest.mark.parametrize("variant", ["mpi-am", "mpi-f"])
    def test_ft(self, variant):
        r = run_ft(variant, nprocs=4, grid_n=16, iters=2)
        assert r.verified

    def test_unoptimized_variant_runs(self):
        r = run_bt("mpi-am-unopt", nprocs=4, grid_n=8, iters=1)
        assert r.verified


class TestTable6Relations:
    """The paper's headline: MPI-AM's NAS times are close to MPI-F's."""

    @pytest.mark.parametrize("runner", [run_bt, run_mg])
    def test_am_within_25_percent_of_mpif(self, runner):
        am = runner("mpi-am", nprocs=4, grid_n=16,
                    **({"cycles": 2} if runner is run_mg else {"iters": 2}))
        f = runner("mpi-f", nprocs=4, grid_n=16,
                   **({"cycles": 2} if runner is run_mg else {"iters": 2}))
        assert am.verified and f.verified
        assert am.elapsed_s / f.elapsed_s < 1.25

    def test_ft_staggered_beats_naive(self):
        naive = run_ft("mpi-am", nprocs=4, grid_n=16, iters=2)
        spread = run_ft("mpi-am", nprocs=4, grid_n=16, iters=2,
                        staggered=True)
        assert spread.elapsed_s < naive.elapsed_s
