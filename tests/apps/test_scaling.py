"""Scale-stability of the application benchmarks.

EXPERIMENTS.md projects the sort results from the reduced default scale to
the paper's ~131 K keys/proc by multiplying — valid only if the per-key
cost is scale-stable.  These tests measure it.
"""

import pytest

from repro.apps.radix_sort import run_radix_sort
from repro.apps.sample_sort import run_sample_sort


class TestPerKeyCostStability:
    def test_sample_sort_per_key_time_stable(self):
        small = run_sample_sort("sp-am", nprocs=4, keys_per_proc=512,
                                variant="small")
        large = run_sample_sort("sp-am", nprocs=4, keys_per_proc=2048,
                                variant="small")
        per_key_small = small.elapsed_us / 512
        per_key_large = large.elapsed_us / 2048
        # fixed startup (splitter exchange) amortizes: within 25%
        assert per_key_large == pytest.approx(per_key_small, rel=0.25)
        # and the larger run is not SLOWER per key (no superlinear cost)
        assert per_key_large <= per_key_small * 1.05

    def test_radix_sort_per_key_time_stable(self):
        small = run_radix_sort("sp-am", nprocs=4, keys_per_proc=512,
                               variant="large", radix_bits=8)
        large = run_radix_sort("sp-am", nprocs=4, keys_per_proc=2048,
                               variant="large", radix_bits=8)
        per_key_small = small.elapsed_us / 512
        per_key_large = large.elapsed_us / 2048
        assert per_key_large <= per_key_small  # histogram cost amortizes

    def test_mpl_am_ratio_scale_stable(self):
        """The Table-5 headline (MPL/AM ratio for fine-grain sorts) must
        not depend on the problem scale used."""
        def ratio(keys):
            am = run_sample_sort("sp-am", nprocs=4, keys_per_proc=keys,
                                 variant="small")
            mpl = run_sample_sort("sp-mpl", nprocs=4, keys_per_proc=keys,
                                  variant="small")
            return mpl.elapsed_us / am.elapsed_us

        r_small = ratio(512)
        r_large = ratio(2048)
        assert r_large == pytest.approx(r_small, rel=0.20)


class TestProcCountScaling:
    def test_sample_sort_scales_with_processors(self):
        """Same total keys on more processors: comm grows, compute splits."""
        four = run_sample_sort("sp-am", nprocs=4, keys_per_proc=1024,
                               variant="bulk")
        eight = run_sample_sort("sp-am", nprocs=8, keys_per_proc=512,
                                variant="bulk")
        assert four.payload["verified"] and eight.payload["verified"]
        # per-node compute halves (same total work over twice the nodes)
        assert eight.cpu_s == pytest.approx(four.cpu_s / 2, rel=0.30)
