"""Correctness of the Split-C application benchmarks (small scales)."""

import numpy as np
import pytest

from repro.apps.matmul import run_matmul
from repro.apps.radix_sort import run_radix_sort
from repro.apps.sample_sort import run_sample_sort
from repro.apps.workloads import STACKS, build_stack, keys_for_rank


class TestMatmul:
    @pytest.mark.parametrize("stack", ["sp-am", "sp-mpl", "cm5"])
    def test_product_correct(self, stack):
        r = run_matmul(stack, nprocs=4, n=4, b=8, verify=True)
        assert r.payload["verified"]

    def test_uneven_grid(self):
        # 3x3 blocks on 4 procs: uneven ownership
        r = run_matmul("sp-am", nprocs=4, n=3, b=8, verify=True)
        assert r.payload["verified"]

    def test_single_proc_degenerates(self):
        r = run_matmul("sp-am", nprocs=1, n=2, b=8, verify=True)
        assert r.payload["verified"]

    def test_profile_split_sane(self):
        r = run_matmul("sp-am", nprocs=4, n=4, b=16, verify=False)
        assert r.cpu_s > 0
        assert r.net_s > 0
        assert r.elapsed_s >= r.cpu_s

    def test_bigger_blocks_shift_ratio_to_cpu(self):
        # larger blocks amortize communication: cpu fraction must rise
        small = run_matmul("sp-am", nprocs=4, n=4, b=8)
        big = run_matmul("sp-am", nprocs=4, n=4, b=32)
        frac_small = small.cpu_s / small.elapsed_s
        frac_big = big.cpu_s / big.elapsed_s
        assert frac_big > frac_small


class TestSampleSort:
    @pytest.mark.parametrize("variant", ["small", "bulk"])
    @pytest.mark.parametrize("stack", ["sp-am", "sp-mpl", "cm5"])
    def test_sorts_correctly(self, stack, variant):
        r = run_sample_sort(stack, nprocs=4, keys_per_proc=512,
                            variant=variant)
        assert r.payload["verified"]

    def test_eight_procs(self):
        r = run_sample_sort("sp-am", nprocs=8, keys_per_proc=256,
                            variant="bulk")
        assert r.payload["verified"]

    def test_duplicate_heavy_keys(self):
        # adversarial: tiny key space -> heavy splitter collisions
        import repro.apps.sample_sort as ss
        import repro.apps.workloads as wl

        orig = wl.keys_for_rank
        try:
            wl.keys_for_rank = lambda tot, np_, r, seed=0: (
                orig(tot, np_, r, seed) % 7)
            ss.keys_for_rank = wl.keys_for_rank
            r = run_sample_sort("sp-am", nprocs=4, keys_per_proc=256,
                                variant="bulk")
            assert r.payload["verified"]
        finally:
            wl.keys_for_rank = orig
            ss.keys_for_rank = orig

    def test_small_variant_sends_one_message_per_key(self):
        r = run_sample_sort("sp-am", nprocs=4, keys_per_proc=256,
                            variant="small")
        assert r.payload["verified"]
        # small-message traffic dominates the net phase vs bulk
        rb = run_sample_sort("sp-am", nprocs=4, keys_per_proc=256,
                             variant="bulk")
        assert r.net_s > 2 * rb.net_s


class TestRadixSort:
    @pytest.mark.parametrize("variant", ["small", "large"])
    @pytest.mark.parametrize("stack", ["sp-am", "cm5"])
    def test_sorts_correctly(self, stack, variant):
        r = run_radix_sort(stack, nprocs=4, keys_per_proc=256,
                           variant=variant, radix_bits=8)
        assert r.payload["verified"]

    def test_sp_mpl_stack(self):
        r = run_radix_sort("sp-mpl", nprocs=4, keys_per_proc=128,
                           variant="large", radix_bits=8)
        assert r.payload["verified"]

    def test_full_radix_width(self):
        # the paper's 11-bit digits, 3 passes over 32-bit keys
        r = run_radix_sort("sp-am", nprocs=4, keys_per_proc=256,
                           variant="large", radix_bits=11)
        assert r.payload["verified"]

    def test_already_sorted_input(self):
        import repro.apps.radix_sort as rs

        orig = rs.keys_for_rank
        try:
            def sorted_keys(tot, np_, r, seed=0):
                per = tot // np_
                return np.arange(r * per, (r + 1) * per, dtype=np.int64)
            rs.keys_for_rank = sorted_keys
            r = run_radix_sort("sp-am", nprocs=4, keys_per_proc=128,
                               variant="small", radix_bits=8)
            assert r.payload["verified"]
        finally:
            rs.keys_for_rank = orig


class TestWorkloads:
    def test_keys_deterministic(self):
        a = keys_for_rank(1024, 4, 2)
        b = keys_for_rank(1024, 4, 2)
        assert (a == b).all()
        c = keys_for_rank(1024, 4, 3)
        assert not (a == c).all()

    def test_build_stack_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_stack("paragon", 4)

    def test_all_stacks_buildable(self):
        for s in STACKS:
            m, rts = build_stack(s, 2)
            assert len(rts) == 2


class TestInterruptService:
    def test_interrupt_served_matmul_correct(self):
        r = run_matmul("sp-am", nprocs=4, n=4, b=8, verify=True,
                       service="interrupt")
        assert r.payload["verified"]

    def test_interrupt_vs_polled_service_both_work_at_scale(self):
        polled = run_matmul("sp-am", nprocs=4, n=4, b=32, service="poll")
        interrupted = run_matmul("sp-am", nprocs=4, n=4, b=32,
                                 service="interrupt")
        # both correct; total times in the same ballpark (the few-gets
        # workload does not expose the fine-grain interrupt penalty)
        assert interrupted.elapsed_s == pytest.approx(polled.elapsed_s,
                                                      rel=0.30)
