"""Tests for the SPMD experiment harness."""

import pytest

from repro.am import attach_spam
from repro.bench.harness import run_programs, serve_until
from repro.hardware import build_sp_machine
from repro.sim import Delay, Simulator
from repro.sim.errors import SimTimeoutError


def make_machine(n=2):
    sim = Simulator()
    m = build_sp_machine(sim, n)
    attach_spam(m)
    return m


class TestRunPrograms:
    def test_runs_one_program_per_node(self):
        m = make_machine(3)
        hits = []

        def prog(node):
            yield Delay(10.0 * (node.id + 1))
            hits.append(node.id)
            return node.id * 2

        result = run_programs(m, [prog] * 3)
        assert sorted(hits) == [0, 1, 2]
        assert [result.result(r) for r in range(3)] == [0, 2, 4]
        assert result.elapsed_us == pytest.approx(30.0)

    def test_program_count_must_match_nodes(self):
        m = make_machine(2)
        with pytest.raises(ValueError):
            run_programs(m, [lambda n: iter(())])

    def test_wait_for_subset_abandons_servers(self):
        m = make_machine(2)
        flag = [0]

        def worker(node):
            got = []

            def handler(token, x):
                got.append(x)

            yield from node.am.request_1(1, handler, 7)
            yield Delay(100.0)
            flag[0] = 1

        def server(node):
            yield from serve_until(node.am, flag)

        result = run_programs(m, [worker, server], wait_for=[0])
        assert result.processes[0].finished

    def test_time_limit_raises(self):
        m = make_machine(2)

        def slow(node):
            yield Delay(1e9)

        with pytest.raises(SimTimeoutError):
            run_programs(m, [slow, slow], limit_us=100.0)

    def test_elapsed_measures_from_call(self):
        m = make_machine(2)
        m.sim.schedule(5.0, lambda: None)
        m.sim.run()  # advance the clock before the experiment

        def prog(node):
            yield Delay(7.0)

        result = run_programs(m, [prog, prog])
        assert result.elapsed_us == pytest.approx(7.0)
