"""Smoke the ``spam-bench perf`` suite on tiny workloads.

Full-size numbers live in the committed ``BENCH_simperf.json``; here we
only prove the machinery: workloads run on both schedulers, the
differential digests agree, the report validates against the
``spam-bench/1`` schema, and the regression gate passes against itself
and trips on a doctored ratio.
"""

import copy

from repro.bench.benchjson import make_report
from repro.bench.perf import (
    PRE_PR_BASELINE,
    check_regression,
    report_entries,
    run_determinism,
    run_perf,
)
from repro.obs.schema import validate_bench_report

_TINY_SIZES = {
    "pingpong": (60,),
    "bulk": (8_192, 1),
    "alltoall": (3, 2_048, 1),
    "soak": (6,),
}
_TINY_DIGESTS = {
    "pingpong": (40,),
    "bulk": (8_192, 1),
    "alltoall": (3, 2_048, 1),
}
_TINY_PARALLEL = {
    "pingpong": (40,),
    "bulk": (8_192, 1),
    "soak": (6,),
}


def _tiny_run():
    return run_perf(quick=True, repeat=1, sizes=_TINY_SIZES,
                    digest_sizes=_TINY_DIGESTS,
                    parallel_digest_sizes=_TINY_PARALLEL)


class TestSuite:
    def test_suite_runs_and_report_validates(self):
        data = _tiny_run()
        for name in ("pingpong", "bulk", "alltoall", "soak"):
            w = data["workloads"][name]["wheel"]
            assert w["events"] > 0
            assert w["adj_eps"] > 0
            assert w["sim_us"] > 0
        for name in ("pingpong", "bulk", "alltoall"):
            per = data["workloads"][name]
            assert per["heap"]["sim_us"] == per["wheel"]["sim_us"]
            assert per["ratio_wheel_over_heap"] > 0
        assert data["determinism"]["identical"]
        assert set(PRE_PR_BASELINE) == {"pingpong", "bulk", "alltoall",
                                        "soak"}
        report = make_report("simperf", report_entries(data), extra=data)
        assert validate_bench_report(report) == []

    def test_regression_gate_self_and_doctored(self):
        data = _tiny_run()
        assert check_regression(data, data) == []
        doctored = copy.deepcopy(data)
        doctored["workloads"]["pingpong"]["ratio_wheel_over_heap"] *= 2.0
        problems = check_regression(data, doctored)
        assert problems and "pingpong" in problems[0]

    def test_regression_gate_flags_determinism_mismatch(self):
        data = _tiny_run()
        broken = copy.deepcopy(data)
        broken["determinism"]["identical"] = False
        problems = check_regression(broken, data)
        assert any("digest" in p for p in problems)

    def test_suite_covers_workers_backend(self):
        data = _tiny_run()
        dw = data["determinism_workers"]
        assert dw["identical"], dw
        for name in ("pingpong", "bulk", "soak"):
            assert dw[name]["identical"], (name, dw[name])
        assert data["cpus"] >= 1

    def test_regression_gate_flags_workers_digest_mismatch(self):
        data = _tiny_run()
        broken = copy.deepcopy(data)
        broken["determinism_workers"]["identical"] = False
        problems = check_regression(broken, data)
        assert any("worker-backend" in p for p in problems)


class TestWorkersRatioGate:
    """The workers speedup columns gate only when the committed report
    shows a real gain AND this runner has the cores to reproduce it."""

    @staticmethod
    def _scaling(ratio):
        base = {"nodes": 64, "iterations": 4,
                "sequential": {"adj_eps": 1.0},
                "sharded": {"adj_eps": 1.0},
                "ratio_sharded_over_sequential": 1.0,
                "workers": {"2": {"adj_eps": ratio,
                                  "ratio_workers_over_sharded": ratio,
                                  "identical": True}},
                "identical": True}
        return {"64": base, "identical": True}

    def _reports(self, committed_ratio, current_ratio):
        skeleton = {"workloads": {n: {"ratio_wheel_over_heap": 1.0}
                                  for n in ("pingpong", "bulk",
                                            "alltoall")},
                    "determinism": {"identical": True}}
        cur = {**copy.deepcopy(skeleton),
               "scaling": self._scaling(current_ratio)}
        ref = {**copy.deepcopy(skeleton),
               "scaling": self._scaling(committed_ratio)}
        return cur, ref

    def test_collapsed_speedup_trips_when_cores_exist(self, monkeypatch):
        import repro.bench.perf as perf
        monkeypatch.setattr(perf.os, "cpu_count", lambda: 8)
        cur, ref = self._reports(2.0, 1.0)
        problems = check_regression(cur, ref)
        assert any("worker backend regression" in p for p in problems)

    def test_no_gate_without_the_cores(self, monkeypatch):
        import repro.bench.perf as perf
        monkeypatch.setattr(perf.os, "cpu_count", lambda: 1)
        cur, ref = self._reports(2.0, 0.2)
        assert check_regression(cur, ref) == []

    def test_honest_sub_one_committed_ratio_is_not_a_target(self,
                                                            monkeypatch):
        import repro.bench.perf as perf
        monkeypatch.setattr(perf.os, "cpu_count", lambda: 8)
        cur, ref = self._reports(0.2, 0.1)
        assert check_regression(cur, ref) == []


def test_determinism_digests_are_stable_within_scheduler():
    # same scheduler, same workload -> same digest (the digest itself is
    # deterministic, so a wheel/heap match is meaningful)
    a = run_determinism({"pingpong": (30,)})
    b = run_determinism({"pingpong": (30,)})
    assert a["pingpong"]["wheel_digest"] == b["pingpong"]["wheel_digest"]
