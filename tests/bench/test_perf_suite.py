"""Smoke the ``spam-bench perf`` suite on tiny workloads.

Full-size numbers live in the committed ``BENCH_simperf.json``; here we
only prove the machinery: workloads run on both schedulers, the
differential digests agree, the report validates against the
``spam-bench/1`` schema, and the regression gate passes against itself
and trips on a doctored ratio.
"""

import copy

from repro.bench.benchjson import make_report
from repro.bench.perf import (
    PRE_PR_BASELINE,
    check_regression,
    report_entries,
    run_determinism,
    run_perf,
)
from repro.obs.schema import validate_bench_report

_TINY_SIZES = {
    "pingpong": (60,),
    "bulk": (8_192, 1),
    "alltoall": (3, 2_048, 1),
    "soak": (6,),
}
_TINY_DIGESTS = {
    "pingpong": (40,),
    "bulk": (8_192, 1),
    "alltoall": (3, 2_048, 1),
}


def _tiny_run():
    return run_perf(quick=True, repeat=1, sizes=_TINY_SIZES,
                    digest_sizes=_TINY_DIGESTS)


class TestSuite:
    def test_suite_runs_and_report_validates(self):
        data = _tiny_run()
        for name in ("pingpong", "bulk", "alltoall", "soak"):
            w = data["workloads"][name]["wheel"]
            assert w["events"] > 0
            assert w["adj_eps"] > 0
            assert w["sim_us"] > 0
        for name in ("pingpong", "bulk", "alltoall"):
            per = data["workloads"][name]
            assert per["heap"]["sim_us"] == per["wheel"]["sim_us"]
            assert per["ratio_wheel_over_heap"] > 0
        assert data["determinism"]["identical"]
        assert set(PRE_PR_BASELINE) == {"pingpong", "bulk", "alltoall",
                                        "soak"}
        report = make_report("simperf", report_entries(data), extra=data)
        assert validate_bench_report(report) == []

    def test_regression_gate_self_and_doctored(self):
        data = _tiny_run()
        assert check_regression(data, data) == []
        doctored = copy.deepcopy(data)
        doctored["workloads"]["pingpong"]["ratio_wheel_over_heap"] *= 2.0
        problems = check_regression(data, doctored)
        assert problems and "pingpong" in problems[0]

    def test_regression_gate_flags_determinism_mismatch(self):
        data = _tiny_run()
        broken = copy.deepcopy(data)
        broken["determinism"]["identical"] = False
        problems = check_regression(broken, data)
        assert any("digest" in p for p in problems)


def test_determinism_digests_are_stable_within_scheduler():
    # same scheduler, same workload -> same digest (the digest itself is
    # deterministic, so a wheel/heap match is meaningful)
    a = run_determinism({"pingpong": (30,)})
    b = run_determinism({"pingpong": (30,)})
    assert a["pingpong"]["wheel_digest"] == b["pingpong"]["wheel_digest"]
